//! Determinism and ordering-invariance checks for the discrete-event
//! simulator.
//!
//! Two properties gate the event core:
//!
//! 1. **Reproducibility**: the engine is a pure function of its inputs —
//!    the same problem under the same tie-break policy (FIFO or any fuzzed
//!    seed) yields a bit-identical `SimReport`, floats included.
//! 2. **Ordering invariance**: same-tick events may execute in any order
//!    (seeded permutations via `TieBreak::Fuzzed`) without changing any
//!    traffic or result counter. A divergence would be a schedule race —
//!    the dynamic analogue of what cake-verify's interleaving DFS proves
//!    statically for the executor's panel-ring protocol — and is reported
//!    with the event trace as a witness.

use cake::sim::config::CpuConfig;
use cake::sim::engine::{
    check_ordering_invariance, simulate_opts, Algo, SimOptions, SimParams,
};
use cake::sim::event::TieBreak;
use proptest::prelude::*;

const FUZZ_SEEDS: u64 = 64;

fn table2(which: usize) -> CpuConfig {
    CpuConfig::table2().swap_remove(which % 3)
}

#[test]
fn sixty_four_fuzzed_orderings_per_table2_cpu_leave_counters_invariant() {
    // The acceptance gate: >= 64 seeds per Table-2 config, both
    // schedules, a ragged problem so edge blocks and partial panels are
    // in play.
    let sp_of = |cores: usize| SimParams::new(200, 168, 184, cores.min(4));
    for cpu in CpuConfig::table2() {
        let sp = sp_of(cpu.cores);
        for algo in [Algo::Cake, Algo::Goto] {
            match check_ordering_invariance(&cpu, &sp, algo, FUZZ_SEEDS) {
                Ok(n) => assert_eq!(n, FUZZ_SEEDS),
                Err(d) => panic!("{} {algo:?}: {d}", cpu.name),
            }
        }
    }
}

#[test]
fn fifo_reports_are_bit_identical_across_runs() {
    for cpu in CpuConfig::table2() {
        let sp = SimParams::square(256, cpu.cores.min(4));
        for algo in [Algo::Cake, Algo::Goto] {
            let a = simulate_opts(&cpu, &sp, algo, SimOptions::default());
            let b = simulate_opts(&cpu, &sp, algo, SimOptions::default());
            assert_eq!(a, b, "{} {algo:?} FIFO not reproducible", cpu.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_gives_bit_identical_reports(
        m in 16usize..220,
        k in 16usize..200,
        n in 16usize..220,
        p in prop::sample::select(vec![1usize, 2, 4, 8]),
        cpu_idx in 0usize..3,
        seed in 0u64..1024,
        cake in any::<bool>(),
    ) {
        let cpu = table2(cpu_idx);
        let sp = SimParams::new(m, k, n, p);
        let algo = if cake { Algo::Cake } else { Algo::Goto };
        let opts = SimOptions { tie_break: TieBreak::Fuzzed { seed }, trace: false };
        let a = simulate_opts(&cpu, &sp, algo, opts);
        let b = simulate_opts(&cpu, &sp, algo, opts);
        // Bit-identical across the whole report: counters AND floats.
        prop_assert_eq!(&a, &b);
        // And the work done is the problem, exactly.
        prop_assert_eq!(a.macs, (m * k * n) as u64);
    }

    #[test]
    fn fuzzed_counters_match_fifo_baseline(
        m in 16usize..180,
        k in 16usize..160,
        n in 16usize..180,
        p in prop::sample::select(vec![1usize, 2, 4]),
        cpu_idx in 0usize..3,
        seed in 0u64..1024,
        cake in any::<bool>(),
    ) {
        let cpu = table2(cpu_idx);
        let sp = SimParams::new(m, k, n, p);
        let algo = if cake { Algo::Cake } else { Algo::Goto };
        let fifo = simulate_opts(&cpu, &sp, algo, SimOptions::default());
        let fz = simulate_opts(
            &cpu,
            &sp,
            algo,
            SimOptions { tie_break: TieBreak::Fuzzed { seed }, trace: false },
        );
        prop_assert_eq!(fifo.dram_bytes, fz.dram_bytes);
        prop_assert_eq!(fifo.int_bytes, fz.int_bytes);
        prop_assert_eq!(fifo.macs, fz.macs);
        prop_assert_eq!(fifo.steps, fz.steps);
    }
}
