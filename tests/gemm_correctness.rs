//! Cross-implementation correctness: CAKE and GOTO against the naive
//! reference over shapes, dtypes, thread counts, and layouts.

use cake::matrix::compare::assert_gemm_eq;
use cake::matrix::{init, Layout, Matrix};
use cake::prelude::*;
use proptest::prelude::*;

fn naive<T: cake::matrix::Element>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let mut c = Matrix::<T>::zeros(a.rows(), b.cols());
    cake::goto::naive::naive_gemm_views(&a.view(), &b.view(), &mut c.view_mut());
    c
}

#[test]
fn cake_matches_naive_across_shape_grid() {
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (2, 3, 4),
        (16, 16, 16),
        (17, 19, 23),
        (64, 8, 64),
        (8, 64, 8),
        (100, 100, 100),
        (128, 1, 128),
        (1, 128, 1),
        (96, 192, 48),
    ] {
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);
        let mut c = Matrix::<f32>::zeros(m, n);
        cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(2));
        assert_gemm_eq(&c, &naive(&a, &b), k);
    }
}

#[test]
fn goto_matches_naive_across_shape_grid() {
    for &(m, k, n) in &[(1usize, 1usize, 1usize), (17, 19, 23), (100, 100, 100), (64, 8, 64)] {
        let a = init::random::<f32>(m, k, 3);
        let b = init::random::<f32>(k, n, 4);
        let mut c = Matrix::<f32>::zeros(m, n);
        goto_gemm(&a, &b, &mut c, &GotoConfig::with_threads(2));
        assert_gemm_eq(&c, &naive(&a, &b), k);
    }
}

#[test]
fn thread_counts_agree() {
    let (m, k, n) = (73, 61, 89);
    let a = init::random::<f32>(m, k, 5);
    let b = init::random::<f32>(k, n, 6);
    let reference = naive(&a, &b);
    for p in [1usize, 2, 3, 4, 7] {
        let mut c = Matrix::<f32>::zeros(m, n);
        cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(p));
        assert_gemm_eq(&c, &reference, k);
    }
}

#[test]
fn integer_matrices_are_exact() {
    // Small-integer entries with K <= 64: every product is exactly
    // representable, so all implementations must agree bit-for-bit.
    let (m, k, n) = (48, 32, 56);
    let a = init::random_ints::<f32>(m, k, 7);
    let b = init::random_ints::<f32>(k, n, 8);
    let reference = naive(&a, &b);
    let mut c1 = Matrix::<f32>::zeros(m, n);
    let mut c2 = Matrix::<f32>::zeros(m, n);
    cake_sgemm(&a, &b, &mut c1, &CakeConfig::with_threads(3));
    goto_gemm(&a, &b, &mut c2, &GotoConfig::with_threads(3));
    assert_eq!(c1.as_slice(), reference.as_slice());
    assert_eq!(c2.as_slice(), reference.as_slice());
}

#[test]
fn f64_agrees_between_algorithms() {
    let (m, k, n) = (45, 52, 38);
    let a = init::random::<f64>(m, k, 9);
    let b = init::random::<f64>(k, n, 10);
    let mut c1 = Matrix::<f64>::zeros(m, n);
    let mut c2 = Matrix::<f64>::zeros(m, n);
    cake::core::api::cake_dgemm(&a, &b, &mut c1, &CakeConfig::with_threads(2));
    goto_gemm(&a, &b, &mut c2, &GotoConfig::with_threads(2));
    assert_gemm_eq(&c1, &c2, k);
}

#[test]
fn column_major_operands() {
    let (m, k, n) = (30, 40, 20);
    let a = init::random::<f32>(m, k, 11).to_layout(Layout::ColMajor);
    let b = init::random::<f32>(k, n, 12).to_layout(Layout::ColMajor);
    let mut c = Matrix::<f32>::zeros_with_layout(m, n, Layout::ColMajor);
    cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(2));
    let expected = naive(&a, &b);
    assert_gemm_eq(&c.to_layout(Layout::RowMajor), &expected, k);
}

#[test]
fn repeated_accumulation_is_linear() {
    // Running GEMM twice must equal one GEMM with doubled A.
    let (m, k, n) = (24, 24, 24);
    let a = init::random::<f32>(m, k, 13);
    let b = init::random::<f32>(k, n, 14);
    let a2 = Matrix::from_fn(m, k, |i, j| 2.0 * a.get(i, j));

    let cfg = CakeConfig::with_threads(2);
    let mut c_twice = Matrix::<f32>::zeros(m, n);
    cake_sgemm(&a, &b, &mut c_twice, &cfg);
    cake_sgemm(&a, &b, &mut c_twice, &cfg);

    let mut c_double = Matrix::<f32>::zeros(m, n);
    cake_sgemm(&a2, &b, &mut c_double, &cfg);
    assert_gemm_eq(&c_twice, &c_double, 2 * k);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cake_matches_naive_random_shapes(
        m in 1usize..80,
        k in 1usize..80,
        n in 1usize..80,
        p in 1usize..4,
        seed in 0u64..1000,
    ) {
        let a = init::random::<f32>(m, k, seed);
        let b = init::random::<f32>(k, n, seed + 1);
        let mut c = Matrix::<f32>::zeros(m, n);
        cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(p));
        let expected = naive(&a, &b);
        let tol = cake::matrix::compare::gemm_tolerance::<f32>(k);
        prop_assert!(cake::matrix::approx_eq(&c, &expected, tol));
    }

    #[test]
    fn goto_matches_cake_random_shapes(
        m in 1usize..60,
        k in 1usize..60,
        n in 1usize..60,
        seed in 0u64..1000,
    ) {
        let a = init::random::<f32>(m, k, seed);
        let b = init::random::<f32>(k, n, seed + 1);
        let mut c1 = Matrix::<f32>::zeros(m, n);
        let mut c2 = Matrix::<f32>::zeros(m, n);
        cake_sgemm(&a, &b, &mut c1, &CakeConfig::with_threads(2));
        goto_gemm(&a, &b, &mut c2, &GotoConfig::with_threads(2));
        let tol = cake::matrix::compare::gemm_tolerance::<f32>(k);
        prop_assert!(cake::matrix::approx_eq(&c1, &c2, tol));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The low-level executor with arbitrary CB shapes (not just the
    /// config-derived ones) must stay correct: random block geometry,
    /// random worker counts, ragged everything.
    #[test]
    fn executor_correct_for_random_cb_shapes(
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
        p in 1usize..4,
        mc in 4usize..24,
        kc in 4usize..24,
        nc in 8usize..40,
        seed in 0u64..1000,
    ) {
        use cake::core::executor::execute;
        use cake::core::pool::ThreadPool;
        use cake::core::shape::CbBlockShape;

        let a = init::random::<f32>(m, k, seed);
        let b = init::random::<f32>(k, n, seed + 1);
        let mut c = Matrix::<f32>::zeros(m, n);
        let shape = CbBlockShape::fixed(p, mc, kc, nc);
        let pool = ThreadPool::new(p);
        let ukr = cake::kernels::best_kernel::<f32>();
        execute(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool);

        let expected = naive(&a, &b);
        let tol = cake::matrix::compare::gemm_tolerance::<f32>(k);
        prop_assert!(cake::matrix::approx_eq(&c, &expected, tol));
    }
}
