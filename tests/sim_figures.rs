//! Golden figure-reproduction tests: the discrete-event simulator's
//! p-sweeps on the three Table-2 CPUs must reproduce the *shapes* of the
//! paper's Figures 9–12 and the Eq. 4 flat-vs-growing separation.
//!
//! Every assertion is against a closed form — `cake_core::traffic`'s exact
//! schedule tally or the Eq. 4/5 models — never a hard-coded GFLOP/s or
//! GB/s number, so the gates survive retuning of CPU constants.

use cake::core::model::CakeModel;
use cake::core::schedule::{BlockGrid, KFirstSchedule};
use cake::core::traffic::{dram_traffic, CResidency, TrafficParams};
use cake::goto::model::GotoModel;
use cake::goto::params::GotoParams;
use cake::sim::config::CpuConfig;
use cake::sim::engine::{
    resolve_cake_shape, resolve_goto_params, simulate_cake, simulate_goto, SimParams,
};
use cake::sim::SimReport;

/// One figure-scale problem per Table-2 CPU (the paper used 4608 / 23040 /
/// 3000; the event count scales with the block count, not bytes, so the
/// sweeps stay cheap). The problem must tile the blocks many times over on
/// every p or edge blocks drown the constant-bandwidth signal.
fn problem_of(cpu: &CpuConfig) -> usize {
    match cpu.cores {
        0..=4 => 3000,  // ARM Cortex-A53
        5..=10 => 4608, // Intel i9-10900K
        _ => 9216,      // AMD Ryzen 9 5950X
    }
}

fn p_sweep(cpu: &CpuConfig) -> Vec<usize> {
    (1..=cpu.cores).filter(|p| *p == 1 || *p == cpu.cores || p % 2 == 0).collect()
}

fn cake_sweep(cpu: &CpuConfig) -> Vec<SimReport> {
    let n = problem_of(cpu);
    p_sweep(cpu).iter().map(|&p| simulate_cake(cpu, &SimParams::square(n, p))).collect()
}

fn goto_sweep(cpu: &CpuConfig) -> Vec<SimReport> {
    let n = problem_of(cpu);
    p_sweep(cpu).iter().map(|&p| simulate_goto(cpu, &SimParams::square(n, p))).collect()
}

/// Figures 9b/10a/11a/12a, CAKE series: average DRAM bandwidth stays in a
/// narrow band while p grows to the full part, and tracks the Eq. 4
/// closed form of the resolved shape.
#[test]
fn cake_dram_bandwidth_flat_and_tracks_eq4_on_all_table2_cpus() {
    for cpu in CpuConfig::table2() {
        let n = problem_of(&cpu);
        let reps = cake_sweep(&cpu);
        let bws: Vec<f64> = reps.iter().map(|r| r.avg_dram_bw_gbs).collect();
        let lo = bws.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = bws.iter().cloned().fold(0.0_f64, f64::max);
        assert!(hi / lo < 2.0, "{}: CAKE BW not flat across p: {bws:?}", cpu.name);

        for (rep, &p) in reps.iter().zip(p_sweep(&cpu).iter()) {
            let shape = resolve_cake_shape(&cpu, &SimParams::square(n, p));
            let eq4 = CakeModel::with_mac_rate(
                shape,
                cpu.mr,
                cpu.nr,
                4,
                cpu.freq_ghz,
                cpu.macs_per_cycle_f32,
            )
            .ext_bw_gbs();
            let ratio = rep.avg_dram_bw_gbs / eq4;
            assert!(
                (0.5..=1.6).contains(&ratio),
                "{} p={p}: engine {:.2} GB/s vs Eq.4 {eq4:.2} (x{ratio:.2})",
                cpu.name,
                rep.avg_dram_bw_gbs
            );
        }
    }
}

/// The Eq. 4 separation, engine-observed: GOTO's bandwidth demand grows
/// with p on every part while CAKE's stays flat — and the growth is
/// capped only by the machine's usable DRAM bandwidth (the knee).
#[test]
fn eq4_separation_goto_grows_cake_flat_on_all_table2_cpus() {
    for cpu in CpuConfig::table2() {
        let cake: Vec<f64> = cake_sweep(&cpu).iter().map(|r| r.avg_dram_bw_gbs).collect();
        let goto: Vec<f64> = goto_sweep(&cpu).iter().map(|r| r.avg_dram_bw_gbs).collect();
        let cake_growth = cake.last().unwrap() / cake[0];
        let goto_growth = goto.last().unwrap() / goto[0];
        // GOTO must grow visibly faster than CAKE (separation), unless the
        // machine's knee capped it — in which case it must be *at* the cap.
        let capped = *goto.last().unwrap() > cpu.usable_dram_bw_gbs() * 0.9;
        assert!(
            goto_growth > 1.8 * cake_growth || capped,
            "{}: GOTO x{goto_growth:.2} vs CAKE x{cake_growth:.2}, not separated \
             (goto {goto:?}, cake {cake:?})",
            cpu.name
        );
        // CAKE never saturates the link on any part (the constant-bandwidth
        // property that lets it scale where GOTO starves).
        assert!(
            cake.iter().all(|bw| *bw < cpu.usable_dram_bw_gbs() * 1.05),
            "{}: CAKE saturated DRAM: {cake:?}",
            cpu.name
        );
    }
}

/// Figures 9a/9b: CAKE's speedup is monotone in p (within jitter) on every
/// part; GOTO's speedup is monotone only until the modeled Eq. 5 demand
/// crosses the usable bandwidth — the knee — and degrades past it on the
/// bandwidth-starved ARM part.
#[test]
fn speedup_monotone_until_bandwidth_knee_on_all_table2_cpus() {
    for cpu in CpuConfig::table2() {
        let ps = p_sweep(&cpu);
        let n = problem_of(&cpu);
        let cake: Vec<f64> = cake_sweep(&cpu).iter().map(|r| r.gflops).collect();
        for w in cake.windows(2) {
            assert!(w[1] >= w[0] * 0.98, "{}: CAKE speedup regressed: {cake:?}", cpu.name);
        }

        let goto: Vec<f64> = goto_sweep(&cpu).iter().map(|r| r.gflops).collect();
        for (i, w) in goto.windows(2).enumerate() {
            let p_next = ps[i + 1];
            let params = resolve_goto_params(&cpu, &SimParams::square(n, p_next));
            let demand = GotoModel::with_mac_rate(
                params,
                cpu.mr,
                cpu.nr,
                4,
                cpu.freq_ghz,
                cpu.macs_per_cycle_f32,
            )
            .ext_bw_gbs();
            if demand <= cpu.usable_dram_bw_gbs() {
                // Below the knee GOTO still scales.
                assert!(
                    w[1] >= w[0] * 0.95,
                    "{}: GOTO regressed below its knee (p={p_next}, demand {demand:.1} \
                     of {:.1} GB/s): {goto:?}",
                    cpu.name,
                    cpu.usable_dram_bw_gbs()
                );
            }
        }
        // On the ARM part the knee bites inside the sweep: the last point
        // must fall short of linear scaling by a wide margin while CAKE
        // keeps scaling past it (Figure 9b / 11b).
        if cpu.cores <= 4 {
            let goto_speedup = goto.last().unwrap() / goto[0];
            let cake_speedup = cake.last().unwrap() / cake[0];
            assert!(
                cake_speedup > goto_speedup + 0.5,
                "{}: CAKE x{cake_speedup:.2} should outscale GOTO x{goto_speedup:.2}",
                cpu.name
            );
        }
    }
}

/// The engine's DRAM byte totals equal `cake_core::traffic`'s exact
/// schedule tally for the auto-resolved shape at every swept p — the
/// figure series are the closed forms, u64-exactly, not approximations.
#[test]
fn sweep_traffic_equals_closed_form_tally_on_all_table2_cpus() {
    for cpu in CpuConfig::table2() {
        let n = problem_of(&cpu);
        let wa: u64 = if cpu.write_allocate { 2 } else { 1 };
        for p in p_sweep(&cpu) {
            let sp = SimParams::square(n, p);
            let shape = resolve_cake_shape(&cpu, &sp);
            let rep = simulate_cake(&cpu, &sp);
            let tp = TrafficParams {
                m: n,
                k: n,
                n,
                bm: shape.m_block(),
                bk: shape.k_block(),
                bn: shape.n_block(),
            };
            let grid = BlockGrid::for_problem(n, n, n, tp.bm, tp.bk, tp.bn);
            let t = dram_traffic(KFirstSchedule::new(grid, n, n), tp, CResidency::HoldInLlc);
            let closed = (t.a_loads + t.b_loads + t.c_final_writes * wa) * 4;
            assert_eq!(
                rep.dram_bytes, closed,
                "{} p={p}: engine bytes != traffic.rs tally",
                cpu.name
            );
        }
    }
}

/// GOTO's blocking never beats CAKE on the starved part, and the two stay
/// comparable on the desktop parts at full core count (Figures 10b/11b/12b).
#[test]
fn throughput_endpoints_match_figure_stories() {
    for cpu in CpuConfig::table2() {
        let n = problem_of(&cpu);
        let p = cpu.cores;
        let c = simulate_cake(&cpu, &SimParams::square(n, p));
        let g = simulate_goto(&cpu, &SimParams::square(n, p));
        let ratio = c.gflops / g.gflops;
        if cpu.cores <= 4 {
            assert!(ratio > 1.25, "{}: CAKE/GOTO = {ratio:.2}, expected clear win", cpu.name);
        } else {
            assert!((0.8..=1.7).contains(&ratio), "{}: CAKE/GOTO = {ratio:.2}", cpu.name);
        }
        let _ = GotoParams::derive(p, cpu.l2_bytes, cpu.llc_bytes, 4, cpu.mr, cpu.nr);
    }
}
