//! Integration tests for the DNN substrate and the beyond-the-paper
//! extensions (design search, packet machine, executor stats) at the
//! facade-crate level.

use cake::core::api::CakeConfig;
use cake::dnn::im2col::{direct_conv, im2col, ConvGeom};
use cake::dnn::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU, Sequential, Tensor};
use cake::matrix::{init, Matrix};

#[test]
fn cnn_forward_pass_end_to_end() {
    let net = Sequential::new(CakeConfig::with_threads(2))
        .push(Conv2d::random("c1", 3, 16, ConvGeom::same(3), 1))
        .push(ReLU)
        .push(MaxPool2d)
        .push(Conv2d::random("c2", 16, 32, ConvGeom::same(3), 2))
        .push(ReLU)
        .push(GlobalAvgPool)
        .push(Linear::random("fc", 32, 10, 3));

    let input = Tensor::from_matrix(init::random::<f32>(3, 24 * 24, 7), 24, 24);
    let (out, reports) = net.forward(&input);
    assert_eq!(out.channels(), 10);
    assert_eq!(reports.len(), 7);
    assert!(out.as_matrix().as_slice().iter().all(|x| x.is_finite()));
    // Shape propagation agrees with the dry-run API.
    let shapes = net.shapes(3, 24, 24);
    assert_eq!(shapes.last().copied().unwrap(), (10, 1, 1));
}

#[test]
fn conv_as_gemm_equals_direct_convolution_through_facade() {
    let input = Tensor::from_matrix(init::random::<f32>(4, 10 * 12, 11), 10, 12);
    let geom = ConvGeom::square(3, 2, 1);
    let weights = init::random::<f32>(6, 4 * 9, 12);

    let patches = im2col(&input, &geom);
    let (oh, ow) = geom.out_dims(10, 12);
    let mut y = Matrix::<f32>::zeros(6, oh * ow);
    cake::core::api::cake_sgemm(&weights, &patches, &mut y, &CakeConfig::with_threads(2));

    let direct = direct_conv(&input, &weights, &geom);
    cake::matrix::compare::assert_gemm_eq(&y, direct.as_matrix(), 36);
}

#[test]
fn packet_machine_agrees_with_real_gemm() {
    // The Section 6.2 validation path: the packet machine's product must
    // equal the threaded library's product.
    use cake::sim::packet::{simulate_packets, PacketSimConfig};
    let (m, k, n) = (20, 16, 28);
    let a = init::random::<f64>(m, k, 21);
    let b = init::random::<f64>(k, n, 22);

    let cfg = PacketSimConfig::balanced(2, 2, 2, 4.0);
    let (c_packets, res) = simulate_packets(&a, &b, &cfg).unwrap();
    assert_eq!(res.macs, (m * k * n) as u64);

    let mut c_lib = Matrix::<f64>::zeros(m, n);
    cake::core::api::cake_dgemm(&a, &b, &mut c_lib, &CakeConfig::with_threads(2));
    cake::matrix::compare::assert_gemm_eq(&c_packets, &c_lib, k);
}

#[test]
fn design_search_confirms_analytic_shape() {
    use cake::sim::config::CpuConfig;
    use cake::sim::search::{analytic_point, grid_search};
    let cpu = CpuConfig::intel_i9_10900k();
    let searched = grid_search(&cpu, 2304, 4, 4);
    let analytic = analytic_point(&cpu, 2304, 4);
    assert!(analytic.fits_llc);
    assert!(analytic.seconds <= searched.best_point().seconds * 1.12);
}

#[test]
fn executor_stats_reflect_snake_reuse() {
    use cake::core::executor::execute_with_stats;
    use cake::core::pool::ThreadPool;
    use cake::core::shape::CbBlockShape;

    let a = init::random::<f32>(64, 96, 1);
    let b = init::random::<f32>(96, 64, 2);
    let mut c = Matrix::<f32>::zeros(64, 64);
    let shape = CbBlockShape::fixed(2, 16, 32, 32);
    let pool = ThreadPool::new(2);
    let ukr = cake::kernels::best_kernel::<f32>();
    let stats = execute_with_stats(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool);

    // Grid: mb = 2, kb = 3, nb = 2 -> 12 blocks, 11 transitions.
    assert_eq!(stats.blocks, 12);
    // N-outer K-first: B skipped at each m-advance (2), A at each n-advance (1).
    assert_eq!(stats.b_packs_skipped, 2);
    assert_eq!(stats.a_packs_skipped, 1);

    // And the result is still right.
    let mut expected = Matrix::<f32>::zeros(64, 64);
    cake::goto::naive::naive_gemm(&a, &b, &mut expected);
    cake::matrix::compare::assert_gemm_eq(&c, &expected, 96);
}

#[test]
fn blas_scalars_via_facade() {
    use cake::core::api::cake_gemm_scaled;
    let a = init::random::<f32>(12, 8, 31);
    let b = init::random::<f32>(8, 9, 32);
    let c0 = init::ones::<f32>(12, 9);
    let mut c = c0.clone();
    cake_gemm_scaled(3.0f32, &a, &b, 0.5, &mut c, &CakeConfig::with_threads(1));

    let mut ab = Matrix::<f32>::zeros(12, 9);
    cake::goto::naive::naive_gemm(&a, &b, &mut ab);
    let expected = Matrix::from_fn(12, 9, |i, j| 3.0 * ab.get(i, j) + 0.5);
    cake::matrix::compare::assert_gemm_eq(&c, &expected, 8);
}
