//! Schedule and traffic invariants across crates (paper Sections 2.2, 4.1).

use cake::core::schedule::{shared_surfaces, BlockGrid, KFirstSchedule, OuterLoop};
use cake::core::shape::CbBlockShape;
use cake::core::traffic::{dram_traffic, CResidency, TrafficParams};
use cake::goto::model::goto_dram_traffic;
use cake::goto::params::GotoParams;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every K-first snake schedule visits each block exactly once and
    /// every pair of consecutive blocks shares exactly one IO surface.
    #[test]
    fn schedule_covers_once_and_shares_one_surface(
        mb in 1usize..7, kb in 1usize..7, nb in 1usize..7, m_outer in any::<bool>(),
    ) {
        let outer = if m_outer { OuterLoop::MOuter } else { OuterLoop::NOuter };
        let grid = BlockGrid { mb, kb, nb };
        let blocks: Vec<_> = KFirstSchedule::with_outer(grid, outer).collect();
        prop_assert_eq!(blocks.len(), mb * kb * nb);
        let unique: HashSet<_> = blocks.iter().copied().collect();
        prop_assert_eq!(unique.len(), blocks.len());
        for w in blocks.windows(2) {
            prop_assert_eq!(shared_surfaces(w[0], w[1]).len(), 1);
        }
    }

    /// The K-first schedule with LLC-resident partials never spills, and
    /// its total C traffic is exactly the output size.
    #[test]
    fn kfirst_c_traffic_is_exactly_output(
        m in 1usize..200, k in 1usize..200, n in 1usize..200,
        bm in prop::sample::select(vec![8usize, 16, 32]),
        bk in prop::sample::select(vec![8usize, 16, 32]),
        bn in prop::sample::select(vec![8usize, 16, 32]),
    ) {
        let tp = TrafficParams { m, k, n, bm, bk, bn };
        let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
        let t = dram_traffic(KFirstSchedule::new(grid, m, n), tp, CResidency::HoldInLlc);
        prop_assert_eq!(t.c_partial_writes, 0);
        prop_assert_eq!(t.c_partial_reads, 0);
        prop_assert_eq!(t.c_final_writes, (m * n) as u64);
        // Inputs are each loaded at least once.
        prop_assert!(t.a_loads >= (m * k) as u64);
        prop_assert!(t.b_loads >= (k * n) as u64);
    }

    /// CAKE's total DRAM traffic never exceeds GOTO's for matched blocking.
    #[test]
    fn cake_traffic_le_goto_traffic(
        m in 32usize..300, k in 32usize..300, n in 32usize..300,
        p in 1usize..8,
    ) {
        let mc = 16usize;
        let goto = goto_dram_traffic(m, k, n, &GotoParams::fixed(p, mc, mc, 4 * mc));
        let tp = TrafficParams { m, k, n, bm: p * mc, bk: mc, bn: 4 * mc };
        let grid = BlockGrid::for_problem(m, k, n, tp.bm, tp.bk, tp.bn);
        let cake = dram_traffic(KFirstSchedule::new(grid, m, n), tp, CResidency::HoldInLlc);
        prop_assert!(
            cake.total() <= goto.total(),
            "cake {} > goto {}", cake.total(), goto.total()
        );
    }

    /// Streaming partials costs exactly 2*(kb-1)*M*N extra C elements.
    #[test]
    fn streaming_cost_closed_form(
        m in 1usize..100, k in 1usize..150, n in 1usize..100,
    ) {
        let (bm, bk, bn) = (16usize, 16usize, 16usize);
        let tp = TrafficParams { m, k, n, bm, bk, bn };
        let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
        let hold = dram_traffic(KFirstSchedule::new(grid, m, n), tp, CResidency::HoldInLlc);
        let stream = dram_traffic(KFirstSchedule::new(grid, m, n), tp, CResidency::StreamToDram);
        let kb = k.div_ceil(bk) as u64;
        prop_assert_eq!(
            stream.c_total() - hold.c_total(),
            2 * (kb - 1) * (m * n) as u64
        );
    }

    /// Snaking (Algorithm 2) never loads more input data than the
    /// non-snaking variant, and strictly less when a flip boundary exists.
    #[test]
    fn snaking_dominates_naive_traversal(
        mb in 1usize..6, kb in 2usize..6, nb in 2usize..6,
    ) {
        let (b, m, k, n) = (16usize, mb * 16, kb * 16, nb * 16);
        let tp = TrafficParams { m, k, n, bm: b, bk: b, bn: b };
        let grid = BlockGrid::for_problem(m, k, n, b, b, b);
        let snake = dram_traffic(
            KFirstSchedule::with_outer(grid, OuterLoop::NOuter), tp, CResidency::HoldInLlc);
        let naive = dram_traffic(
            KFirstSchedule::without_snaking(grid, OuterLoop::NOuter), tp, CResidency::HoldInLlc);
        let s_in = snake.a_loads + snake.b_loads;
        let n_in = naive.a_loads + naive.b_loads;
        prop_assert!(s_in <= n_in);
        if mb > 1 {
            prop_assert!(s_in < n_in, "expected strict win with mb={mb}");
        }
    }
}

#[test]
fn derived_shapes_respect_lru_rule_on_all_table2_cpus() {
    use cake::sim::config::CpuConfig;
    for cpu in CpuConfig::table2() {
        for p in 1..=cpu.cores {
            let s = CbBlockShape::derive(p, 1.0, cpu.l2_bytes, cpu.llc_bytes, 4, cpu.mr, cpu.nr);
            assert!(
                s.fits_llc_lru(cpu.llc_bytes, 4),
                "{} p={p}: {s} violates C + 2(A+B) <= S",
                cpu.name
            );
        }
    }
}

#[test]
fn block_counts_match_grid_dimensions() {
    let grid = BlockGrid::for_problem(100, 90, 80, 32, 16, 24);
    assert_eq!(grid.mb, 4);
    assert_eq!(grid.kb, 6);
    assert_eq!(grid.nb, 4);
    assert_eq!(KFirstSchedule::new(grid, 100, 80).count(), 96);
}
