//! End-to-end simulator checks: engine vs analytical model vs paper claims.

use cake::core::model::{cb_min_ext_bw_tiles, CakeModel};
use cake::core::shape::CbBlockShape;
use cake::goto::model::GotoModel;
use cake::goto::params::GotoParams;
use cake::sim::config::CpuConfig;
use cake::sim::engine::{
    resolve_cake_shape, simulate_cake, simulate_cake_with_shape, simulate_goto, SimParams,
};

#[test]
fn cake_dram_bw_tracks_eq4_within_20_percent() {
    // The engine's observed average bandwidth for a large compute-bound
    // run must sit near the Eq. 4 closed form (it can only differ through
    // edge blocks and the final C writes Eq. 4 ignores).
    let cpu = CpuConfig::intel_i9_10900k();
    for p in [2usize, 4, 8] {
        let sp = SimParams::square(4608, p);
        let shape = resolve_cake_shape(&cpu, &sp);
        let rep = simulate_cake_with_shape(&cpu, &sp, &shape);
        let model = CakeModel::with_mac_rate(shape, cpu.mr, cpu.nr, 4, cpu.freq_ghz, cpu.macs_per_cycle_f32);
        let ratio = rep.avg_dram_bw_gbs / model.ext_bw_gbs();
        assert!(
            (0.8..=1.25).contains(&ratio),
            "p={p}: engine {:.2} vs Eq.4 {:.2}",
            rep.avg_dram_bw_gbs,
            model.ext_bw_gbs()
        );
    }
}

#[test]
fn goto_bw_model_grows_and_engine_agrees_in_trend() {
    let cpu = CpuConfig::intel_i9_10900k();
    let mut last_model = 0.0;
    let mut last_engine = 0.0;
    for p in [2usize, 4, 8] {
        let params = GotoParams::derive(p, cpu.l2_bytes, cpu.llc_bytes, 4, cpu.mr, cpu.nr);
        let model = GotoModel::with_mac_rate(params, cpu.mr, cpu.nr, 4, cpu.freq_ghz, cpu.macs_per_cycle_f32);
        let engine = simulate_goto(&cpu, &SimParams::square(4608, p));
        assert!(model.ext_bw_gbs() > last_model);
        assert!(engine.avg_dram_bw_gbs > last_engine);
        last_model = model.ext_bw_gbs();
        last_engine = engine.avg_dram_bw_gbs;
    }
}

#[test]
fn section3_claim_bw_constant_while_volume_grows() {
    // Figure 4's message: doubling p doubles block volume and compute
    // throughput at identical minimum external bandwidth (tile units).
    let k = 4;
    let bw16 = cb_min_ext_bw_tiles(k, 1.0);
    let bw32 = cb_min_ext_bw_tiles(k, 1.0); // independent of p by formula
    assert_eq!(bw16, bw32);
    // Volume p^2*k^3 quadruples when p doubles (Figure 4's (b) -> (c)).
    let vol = |p: usize| CbBlockShape::fixed(p, k, k, p * k).block_macs();
    assert_eq!(vol(32), 4 * vol(16));
}

#[test]
fn paper_headline_arm_throughput_shape() {
    // Figure 11b: CAKE ~2.8 GFLOP/s at 1 core scaling to ~10.5-11 at 4;
    // ARMPL stuck near 7-8.
    let cpu = CpuConfig::arm_cortex_a53();
    let c1 = simulate_cake(&cpu, &SimParams::square(3000, 1));
    let c4 = simulate_cake(&cpu, &SimParams::square(3000, 4));
    let g4 = simulate_goto(&cpu, &SimParams::square(3000, 4));
    assert!((2.0..3.5).contains(&c1.gflops), "c1 = {}", c1.gflops);
    assert!((9.0..11.5).contains(&c4.gflops), "c4 = {}", c4.gflops);
    assert!(c4.gflops / g4.gflops > 1.25, "ratio {}", c4.gflops / g4.gflops);
}

#[test]
fn paper_headline_intel_parity_at_scale() {
    // Figure 10b: CAKE within a few percent of MKL at 10 cores for the
    // large square problem, with far lower DRAM bandwidth (10a).
    let cpu = CpuConfig::intel_i9_10900k();
    let c = simulate_cake(&cpu, &SimParams::square(11520, 10));
    let g = simulate_goto(&cpu, &SimParams::square(11520, 10));
    let tput_ratio = c.gflops / g.gflops;
    assert!((0.9..=1.15).contains(&tput_ratio), "throughput ratio {tput_ratio:.3}");
    assert!(
        g.avg_dram_bw_gbs > 5.0 * c.avg_dram_bw_gbs,
        "MKL {:.1} GB/s vs CAKE {:.1} GB/s",
        g.avg_dram_bw_gbs,
        c.avg_dram_bw_gbs
    );
}

#[test]
fn speedup_definition_matches_figure9() {
    // Speedup is throughput_p / throughput_1 == t_1 / t_p for fixed work.
    let cpu = CpuConfig::arm_cortex_a53();
    let r1 = simulate_cake(&cpu, &SimParams::square(2000, 1));
    let r2 = simulate_cake(&cpu, &SimParams::square(2000, 2));
    let by_gflops = r2.gflops / r1.gflops;
    let by_time = r1.seconds / r2.seconds;
    assert!((by_gflops - by_time).abs() < 1e-9);
    assert!(by_gflops > 1.5);
}

#[test]
fn simulator_results_are_deterministic() {
    let cpu = CpuConfig::amd_ryzen_9_5950x();
    let a = simulate_cake(&cpu, &SimParams::square(3072, 8));
    let b = simulate_cake(&cpu, &SimParams::square(3072, 8));
    assert_eq!(a.seconds, b.seconds);
    assert_eq!(a.dram_bytes, b.dram_bytes);
}

#[test]
fn llc_override_scales_block_and_cuts_traffic() {
    let cpu = CpuConfig::intel_i9_10900k();
    let mut small = SimParams::square(4608, 8);
    small.llc_bytes_override = Some(cpu.llc_bytes / 4);
    let mut large = SimParams::square(4608, 8);
    large.llc_bytes_override = Some(cpu.llc_bytes * 4);
    let shape_small = resolve_cake_shape(&cpu, &small);
    let shape_large = resolve_cake_shape(&cpu, &large);
    // Bigger LLC -> taller/wider CB block (until the L2 bound).
    assert!(shape_large.local_footprint() >= shape_small.local_footprint());
    let t_small = simulate_cake(&cpu, &small).dram_bytes;
    let t_large = simulate_cake(&cpu, &large).dram_bytes;
    assert!(t_large <= t_small);
}

// ---------------------------------------------------------------------------
// Differential checks: discrete-event engine vs the feature-gated
// closed-form oracle and the packet-level functional simulator.
// ---------------------------------------------------------------------------

/// Every `SimParams` case exercised above, as (cpu, params) pairs.
fn all_cases() -> Vec<(CpuConfig, SimParams)> {
    let intel = CpuConfig::intel_i9_10900k();
    let amd = CpuConfig::amd_ryzen_9_5950x();
    let arm = CpuConfig::arm_cortex_a53();
    let mut cases = vec![
        (intel.clone(), SimParams::square(4608, 2)),
        (intel.clone(), SimParams::square(4608, 4)),
        (intel.clone(), SimParams::square(4608, 8)),
        (intel.clone(), SimParams::square(11520, 10)),
        (arm.clone(), SimParams::square(3000, 1)),
        (arm.clone(), SimParams::square(3000, 4)),
        (arm.clone(), SimParams::square(2000, 1)),
        (arm, SimParams::square(2000, 2)),
        (amd, SimParams::square(3072, 8)),
    ];
    let mut small = SimParams::square(4608, 8);
    small.llc_bytes_override = Some(intel.llc_bytes / 4);
    let mut large = SimParams::square(4608, 8);
    large.llc_bytes_override = Some(intel.llc_bytes * 4);
    cases.push((intel.clone(), small));
    cases.push((intel, large));
    cases
}

#[test]
fn event_engine_traffic_equals_closed_form_oracle_u64_exactly() {
    // Both engines consume the same lowered `StepLoad` streams, so every
    // traffic and work counter must agree bit-for-bit on every case this
    // file exercises — for both schedules.
    use cake::sim::closed_form;
    for (cpu, sp) in all_cases() {
        let ev = simulate_cake(&cpu, &sp);
        let cf = closed_form::simulate_cake(&cpu, &sp);
        assert_eq!(ev.dram_bytes, cf.dram_bytes, "{} {sp:?} cake dram", cpu.name);
        assert_eq!(ev.int_bytes, cf.int_bytes, "{} {sp:?} cake int", cpu.name);
        assert_eq!(ev.macs, cf.macs, "{} {sp:?} cake macs", cpu.name);
        assert_eq!(ev.steps, cf.steps, "{} {sp:?} cake steps", cpu.name);

        let ev = simulate_goto(&cpu, &sp);
        let cf = closed_form::simulate_goto(&cpu, &sp);
        assert_eq!(ev.dram_bytes, cf.dram_bytes, "{} {sp:?} goto dram", cpu.name);
        assert_eq!(ev.int_bytes, cf.int_bytes, "{} {sp:?} goto int", cpu.name);
        assert_eq!(ev.macs, cf.macs, "{} {sp:?} goto macs", cpu.name);
        assert_eq!(ev.steps, cf.steps, "{} {sp:?} goto steps", cpu.name);
    }
}

#[test]
fn event_engine_cycle_counts_near_closed_form_oracle() {
    // Timing is where the engines legitimately differ: the closed form
    // takes a per-step max(compute, dram, internal) while the event core
    // plays out causality (read-ahead, posted writes, barrier edges,
    // clock-divider rounding). The documented differential tolerance is
    // 30% (see DESIGN.md §11); a timing-model regression in either
    // engine trips it.
    use cake::sim::closed_form;
    for (cpu, sp) in all_cases() {
        let ev = simulate_cake(&cpu, &sp);
        let cf = closed_form::simulate_cake(&cpu, &sp);
        let ratio = ev.seconds / cf.seconds;
        assert!(
            (0.70..=1.30).contains(&ratio),
            "{} {sp:?} cake: event {:.4}s vs closed-form {:.4}s (x{ratio:.3})",
            cpu.name,
            ev.seconds,
            cf.seconds
        );
        let ev = simulate_goto(&cpu, &sp);
        let cf = closed_form::simulate_goto(&cpu, &sp);
        let ratio = ev.seconds / cf.seconds;
        assert!(
            (0.70..=1.30).contains(&ratio),
            "{} {sp:?} goto: event {:.4}s vs closed-form {:.4}s (x{ratio:.3})",
            cpu.name,
            ev.seconds,
            cf.seconds
        );
    }
}

#[test]
fn event_engine_traffic_equals_packet_simulator_byte_counts() {
    // The packet machine counts tile transfers functionally (real
    // dataflow, HoldInLlc residency); the event engine counts bytes from
    // the lowered schedule. On a CPU without write-allocate the two must
    // agree u64-exactly: bytes == tiles * elem_bytes.
    use cake::matrix::init;
    use cake::sim::packet::{simulate_packets, PacketSimConfig};
    let mut cpu = CpuConfig::intel_i9_10900k();
    assert!(!cpu.write_allocate);
    // Packet tiles carry one element each; the engine books 4-byte f32.
    let elem_bytes = 4u64;
    for (p, k_grid, alpha, m, k, n) in
        [(2usize, 4usize, 1usize, 32usize, 24usize, 40usize), (2, 2, 2, 20, 16, 28), (4, 3, 2, 48, 27, 72)]
    {
        let cfg = PacketSimConfig::balanced(p, k_grid, alpha, 4.0);
        let (bm, bk, bn) = cfg.block_dims();
        let a = init::random::<f64>(m, k, 11);
        let b = init::random::<f64>(k, n, 12);
        let (_, res) = simulate_packets(&a, &b, &cfg).unwrap();

        cpu.cores = p.max(cpu.cores);
        let shape = cake::core::shape::CbBlockShape::fixed(p, bm / p, bk, bn);
        let sp = SimParams::new(m, k, n, p);
        let rep = simulate_cake_with_shape(&cpu, &sp, &shape);
        assert_eq!(
            rep.dram_bytes,
            res.dram_tile_transfers * elem_bytes,
            "p={p} k_grid={k_grid} alpha={alpha} {m}x{k}x{n}"
        );
    }
}
