//! The pipelined executor and the reusable workspace, exercised the way a
//! framework would use them: one long-lived [`GemmWorkspace`] fed arbitrary
//! problems — strided views, transposed operands, column-major storage,
//! shrinking and growing shapes — with the double-buffered packing path
//! checked against the naive reference every time.

use cake::core::executor::{execute_in, execute_with_stats_in};
use cake::core::pool::ThreadPool;
use cake::core::shape::CbBlockShape;
use cake::core::workspace::GemmWorkspace;
use cake::matrix::{init, Layout, Matrix};
use proptest::prelude::*;

fn naive(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    let mut c = Matrix::<f32>::zeros(a.rows(), b.cols());
    cake::goto::naive::naive_gemm_views(&a.view(), &b.view(), &mut c.view_mut());
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pipelined executor vs naive for arbitrary problem and CB-block
    /// geometry, with every operand presented as a *strided* view: A
    /// transposed (column-major access), B a sub-view of a larger parent,
    /// C column-major. The double-buffered pack paths must handle all of
    /// them — the fast `copy_from_slice` routes only fire where strides
    /// permit, and must agree with the element-wise fallback elsewhere.
    #[test]
    fn pipelined_executor_matches_naive_on_strided_views(
        m in 1usize..60,
        k in 1usize..60,
        n in 1usize..60,
        p in 1usize..4,
        mc in 4usize..20,
        kc in 4usize..20,
        nc in 8usize..36,
        seed in 0u64..1000,
    ) {
        // A stored transposed (k x m), used through .t(): row stride 1
        // becomes column stride 1 — pack_a's contiguous_col fast path.
        let at = init::random::<f32>(k, m, seed);
        // B embedded in a larger parent, used through .sub(): strided rows.
        let b_parent = init::random::<f32>(k + 3, n + 5, seed + 1);
        let a_dense = Matrix::from_fn(m, k, |i, j| at.get(j, i));
        let b_dense = Matrix::from_fn(k, n, |i, j| b_parent.get(i + 2, j + 4));
        let expected = naive(&a_dense, &b_dense);

        let shape = CbBlockShape::fixed(p, mc, kc, nc);
        let pool = ThreadPool::new(p);
        let ukr = cake::kernels::best_kernel::<f32>();
        let mut ws = GemmWorkspace::new();

        // Row-major C through the shared workspace.
        let mut c = Matrix::<f32>::zeros(m, n);
        let av = at.view().t();
        let bv = b_parent.view().sub(2, 4, k, n);
        execute_in(&av, &bv, &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);
        let tol = cake::matrix::compare::gemm_tolerance::<f32>(k);
        prop_assert!(cake::matrix::approx_eq(&c, &expected, tol));

        // Column-major C, reusing the same (now warm) workspace.
        let mut cc = Matrix::<f32>::zeros_with_layout(m, n, Layout::ColMajor);
        let stats = execute_with_stats_in(
            &av, &bv, &mut cc.view_mut(), &shape, &ukr, &pool, &mut ws,
        );
        prop_assert_eq!(stats.allocations, 0, "second call through the workspace allocated");
        prop_assert!(cake::matrix::approx_eq(&cc.to_layout(Layout::RowMajor), &expected, tol));
    }
}

/// At least 100 back-to-back GEMMs of cycling shapes through ONE workspace:
/// after the largest shape class has been seen once, every later call must
/// be allocation-free, and every result must stay correct (stale panel data
/// from earlier calls must never leak through the never-zeroed buffers).
#[test]
fn hundred_gemms_share_one_workspace() {
    let p = 2;
    let shape = CbBlockShape::fixed(p, 8, 12, 16);
    let pool = ThreadPool::new(p);
    let ukr = cake::kernels::best_kernel::<f32>();
    let mut ws = GemmWorkspace::new();

    // Shape cycle: grows then shrinks, ragged on purpose.
    let dims = [(24usize, 24usize, 24usize), (17, 31, 9), (40, 12, 33), (5, 5, 48)];
    let mut calls = 0;
    let mut allocs_after_warmup = 0;
    for round in 0..25 {
        for (ci, &(m, k, n)) in dims.iter().enumerate() {
            let seed = (round * dims.len() + ci) as u64;
            let a = init::random::<f32>(m, k, seed);
            let b = init::random::<f32>(k, n, seed + 7777);
            let mut c = Matrix::<f32>::zeros(m, n);
            let stats = execute_with_stats_in(
                &a.view(),
                &b.view(),
                &mut c.view_mut(),
                &shape,
                &ukr,
                &pool,
                &mut ws,
            );
            calls += 1;
            if round > 0 {
                allocs_after_warmup += stats.allocations;
            }
            assert_eq!(stats.barriers, stats.blocks, "one rotation barrier per block");
            let expected = naive(&a, &b);
            let tol = cake::matrix::compare::gemm_tolerance::<f32>(k);
            assert!(
                cake::matrix::approx_eq(&c, &expected, tol),
                "call {calls} ({m}x{k}x{n}) diverged from reference"
            );
        }
    }
    assert!(calls >= 100, "stress test must run >= 100 GEMMs, ran {calls}");
    assert_eq!(
        allocs_after_warmup, 0,
        "workspace must be allocation-free after the first round"
    );
    // The single fixed block shape needs one A-strip sizing plus the B
    // panel ring: two panels up front, and a third once the k = 31 problem
    // (three k-blocks at bk = 12) deepens the ring.
    assert_eq!(ws.allocations(), 4);
}

/// 100 back-to-back GEMMs with *shrinking* shapes — problem extents AND
/// CB-block geometry both monotonically non-increasing — through one
/// workspace. The first (largest) call sizes every buffer; all 99 later
/// calls must be allocation-free, and each result must be byte-identical
/// to the same GEMM run through a fresh workspace: shrinking `pa_stride`
/// and panel sizes over buffers still holding larger stale panels must
/// never leak a single stale bit into the output.
#[test]
fn shrinking_shapes_are_alloc_free_and_byte_identical() {
    let p = 2;
    let pool = ThreadPool::new(p);
    let ukr = cake::kernels::best_kernel::<f32>();
    let mut warm = GemmWorkspace::new();

    for call in 0..100usize {
        // 64 down to 8, never increasing; block geometry shrinks with it.
        let s = 64 - (call * 56) / 99;
        let (m, k, n) = (s, s.max(9) - 1, s + 3);
        let shape = CbBlockShape::fixed(p, (s / 8).max(2), (s / 8).max(2), (s / 4).max(4));

        let a = init::random::<f32>(m, k, call as u64);
        let b = init::random::<f32>(k, n, call as u64 + 5000);
        let mut c = Matrix::<f32>::zeros(m, n);
        let stats = execute_with_stats_in(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &ukr,
            &pool,
            &mut warm,
        );
        if call == 0 {
            assert!(stats.allocations > 0, "largest-first call must size the workspace");
        } else {
            assert_eq!(
                stats.allocations, 0,
                "call {call} ({m}x{k}x{n}, {shape}) allocated on a shrinking shape"
            );
        }

        let mut fresh = GemmWorkspace::new();
        let mut c_fresh = Matrix::<f32>::zeros(m, n);
        execute_in(
            &a.view(),
            &b.view(),
            &mut c_fresh.view_mut(),
            &shape,
            &ukr,
            &pool,
            &mut fresh,
        );
        let warm_bits: Vec<u32> = c.as_slice().iter().map(|v| v.to_bits()).collect();
        let fresh_bits: Vec<u32> = c_fresh.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            warm_bits, fresh_bits,
            "call {call} ({m}x{k}x{n}): reused workspace changed the result bits"
        );
    }
}
