//! Failure injection and degenerate inputs: the library must fail loudly
//! on misuse and behave sanely at the edges.

use cake::matrix::{init, Matrix};
use cake::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    catch_unwind(f).is_err()
}

#[test]
fn dimension_mismatches_panic() {
    // A: 4x5, B: 4x4 (should be 5 rows).
    assert!(panics(|| {
        let a = Matrix::<f32>::zeros(4, 5);
        let b = Matrix::<f32>::zeros(4, 4);
        let mut c = Matrix::<f32>::zeros(4, 4);
        cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(1));
    }));
    // C has wrong shape.
    assert!(panics(|| {
        let a = Matrix::<f32>::zeros(4, 5);
        let b = Matrix::<f32>::zeros(5, 4);
        let mut c = Matrix::<f32>::zeros(3, 4);
        cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(1));
    }));
    // Same for GOTO.
    assert!(panics(|| {
        let a = Matrix::<f32>::zeros(4, 5);
        let b = Matrix::<f32>::zeros(6, 4);
        let mut c = Matrix::<f32>::zeros(4, 4);
        goto_gemm(&a, &b, &mut c, &GotoConfig::with_threads(1));
    }));
}

#[test]
fn worker_panic_does_not_poison_future_calls() {
    use cake::core::pool::ThreadPool;
    let pool = ThreadPool::new(3);
    let blew_up = catch_unwind(AssertUnwindSafe(|| {
        pool.broadcast(|id| {
            if id == 2 {
                panic!("injected");
            }
        });
    }))
    .is_err();
    assert!(blew_up);
    // The pool still works and a real GEMM through a fresh pool is fine.
    pool.broadcast(|_| {});
    let a = init::random::<f32>(16, 16, 1);
    let b = init::random::<f32>(16, 16, 2);
    let mut c = Matrix::<f32>::zeros(16, 16);
    cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(3));
    assert!(c.as_slice().iter().all(|x| x.is_finite()));
}

#[test]
fn zero_dimensions_are_quiet_noops() {
    let cfg = CakeConfig::with_threads(2);
    for (m, k, n) in [(0usize, 8usize, 8usize), (8, 0, 8), (8, 8, 0), (0, 0, 0)] {
        let a = Matrix::<f32>::zeros(m, k);
        let b = Matrix::<f32>::zeros(k, n);
        let mut c = init::ones::<f32>(m, n);
        let before = c.sum_f64();
        cake_sgemm(&a, &b, &mut c, &cfg);
        assert_eq!(c.sum_f64(), before, "({m},{k},{n})");
    }
}

#[test]
fn degenerate_configs_still_compute_correctly() {
    let a = init::random::<f32>(33, 29, 1);
    let b = init::random::<f32>(29, 31, 2);
    let mut reference = Matrix::<f32>::zeros(33, 31);
    cake::goto::naive::naive_gemm(&a, &b, &mut reference);

    // Pathologically small caches.
    let tiny = CakeConfig {
        threads: Some(2),
        l2_bytes: 64,
        llc_bytes: 256,
        ..CakeConfig::default()
    };
    // Extreme alpha.
    let wide = CakeConfig {
        threads: Some(2),
        alpha: Some(16.0),
        ..CakeConfig::default()
    };
    // Starved DRAM hint.
    let starved = CakeConfig {
        threads: Some(2),
        dram_bw_gbs: Some(0.1),
        ..CakeConfig::default()
    };
    for cfg in [tiny, wide, starved] {
        let mut c = Matrix::<f32>::zeros(33, 31);
        cake_sgemm(&a, &b, &mut c, &cfg);
        cake::matrix::compare::assert_gemm_eq(&c, &reference, 29);
    }
}

#[test]
fn more_threads_than_rows() {
    let a = init::random::<f32>(3, 20, 1);
    let b = init::random::<f32>(20, 5, 2);
    let mut c = Matrix::<f32>::zeros(3, 5);
    cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(8));
    let mut reference = Matrix::<f32>::zeros(3, 5);
    cake::goto::naive::naive_gemm(&a, &b, &mut reference);
    cake::matrix::compare::assert_gemm_eq(&c, &reference, 20);
}

#[test]
fn nan_inputs_propagate_not_hang() {
    let mut a = init::random::<f32>(8, 8, 1);
    a.set(3, 3, f32::NAN);
    let b = init::random::<f32>(8, 8, 2);
    let mut c = Matrix::<f32>::zeros(8, 8);
    cake_sgemm(&a, &b, &mut c, &CakeConfig::with_threads(2));
    // Row 3 is poisoned, other rows are finite.
    assert!((0..8).any(|j| c.get(3, j).is_nan()));
    assert!((0..8).all(|j| c.get(0, j).is_finite()));
}

#[test]
fn simulator_rejects_nothing_but_handles_extremes() {
    use cake::sim::config::CpuConfig;
    use cake::sim::engine::{simulate_cake, SimParams};
    let cpu = CpuConfig::arm_cortex_a53();
    // 1x1x1 problem.
    let r = simulate_cake(&cpu, &SimParams::new(1, 1, 1, 4));
    assert!(r.seconds > 0.0);
    assert!(r.gflops > 0.0);
    // Extremely skewed problem.
    let r = simulate_cake(&cpu, &SimParams::new(1, 10000, 1, 2));
    assert!(r.seconds.is_finite());
}
