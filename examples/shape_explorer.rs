//! Shape explorer: how the CB block and its resource demands respond to
//! machine parameters (paper Section 3's analysis, interactive).
//!
//! Sweeps core count and DRAM bandwidth, printing the analytically derived
//! CB block, the alpha the tuner picks, and the Eq. 4/5/6 resource
//! demands — the "no design search needed" pitch of the paper.
//!
//! ```sh
//! cargo run --release --example shape_explorer
//! ```

use cake::core::model::CakeModel;
use cake::core::shape::CbBlockShape;
use cake::core::tune;

const KIB: usize = 1024;
const MIB: usize = 1024 * 1024;

fn main() {
    let (l2, llc) = (256 * KIB, 20 * MIB);
    let (mr, nr) = (6usize, 16usize);
    let freq = 3.7;
    let macs = (mr * nr) as f64;

    println!("== CB block vs core count (alpha = 1, Intel-like caches) ==\n");
    println!(
        "{:>3} {:>6} {:>6} {:>7} {:>14} {:>16} {:>15}",
        "p", "mc", "kc", "nc", "DRAM GB/s", "local mem MiB", "internal GB/s"
    );
    for p in [1usize, 2, 4, 6, 8, 10, 12, 16] {
        let shape = CbBlockShape::derive(p, 1.0, l2, llc, 4, mr, nr);
        let model = CakeModel::new(shape, mr, nr, 4, freq);
        println!(
            "{:>3} {:>6} {:>6} {:>7} {:>14.2} {:>16.2} {:>15.1}",
            p,
            shape.mc,
            shape.kc,
            shape.nc,
            model.ext_bw_gbs(),
            model.local_mem_bytes() / MIB as f64,
            model.int_bw_gbs(),
        );
    }
    println!("\nNote: the DRAM column is constant in p (Eq. 4) while local memory");
    println!("grows ~p^2 (Eq. 5) and internal bandwidth ~p (Eq. 6) — the CAKE trade.\n");

    println!("== alpha selection vs available DRAM bandwidth (p = 10) ==\n");
    println!(
        "{:>14} {:>8} {:>9} {:>14} {:>16}",
        "DRAM GB/s", "alpha", "nc", "need GB/s", "local mem MiB"
    );
    let probe = CbBlockShape::derive(10, 1.0, l2, llc, 4, mr, nr);
    for bw in [200.0, 100.0, 60.0, 40.0, 25.0, 18.0, 15.0] {
        let alpha = tune::select_alpha(bw, probe.mc, macs, 4, freq);
        let shape = CbBlockShape::derive(10, alpha, l2, llc, 4, mr, nr);
        let model = CakeModel::new(shape, mr, nr, 4, freq);
        println!(
            "{:>14.1} {:>8.2} {:>9} {:>14.2} {:>16.2}",
            bw,
            alpha,
            shape.nc,
            model.ext_bw_gbs(),
            model.local_mem_bytes() / MIB as f64,
        );
    }
    println!("\nScarcer bandwidth -> larger alpha -> wider blocks: arithmetic");
    println!("intensity rises so the same cores stay busy on less DRAM traffic.");

    println!("\n== LRU sizing rule check (Section 4.3: C + 2(A+B) <= S) ==\n");
    for p in [2usize, 4, 8, 10] {
        let shape = CbBlockShape::derive(p, 1.0, l2, llc, 4, mr, nr);
        let lhs = shape.c_surface() + 2 * (shape.a_surface() + shape.b_surface());
        println!(
            "p={p:<3} C+2(A+B) = {:>9} elems  vs  LLC capacity {:>9} elems  -> fits: {}",
            lhs,
            llc / 4,
            shape.fits_llc_lru(llc, 4)
        );
    }
}
