//! Simulator tour: run one GEMM through the architecture simulator on all
//! three Table 2 CPUs and read the full report (paper Section 6.2's
//! "validate the CB block design under various system characteristics").
//!
//! ```sh
//! cargo run --release --example simulator_tour
//! ```

use cake::sim::config::CpuConfig;
use cake::sim::engine::{resolve_cake_shape, simulate_cake, simulate_goto, SimParams};
use cake::sim::trace::{run_cake_trace, run_goto_trace};

fn main() {
    let n = 3000;
    println!("Simulating a {n}x{n}x{n} f32 GEMM on the paper's three CPUs\n");

    for cpu in CpuConfig::table2() {
        let sp = SimParams::square(n, cpu.cores);
        let shape = resolve_cake_shape(&cpu, &sp);
        let cake = simulate_cake(&cpu, &sp);
        let goto = simulate_goto(&cpu, &sp);

        println!("--- {} ({} cores, {} GB/s DRAM) ---", cpu.name, cpu.cores, cpu.dram_bw_gbs);
        println!("  CB block: {shape}");
        println!("  CAKE: {cake}");
        println!("  GOTO: {goto}");
        println!(
            "  CAKE uses {:.1}x less DRAM traffic and runs {:.2}x {} than GOTO",
            goto.dram_bytes as f64 / cake.dram_bytes.max(1) as f64,
            (goto.seconds / cake.seconds).max(cake.seconds / goto.seconds),
            if cake.seconds <= goto.seconds { "faster" } else { "slower" },
        );
        println!();
    }

    // Cache-hierarchy view (Figure 7 mechanism) on the ARM part, where the
    // contrast is starkest.
    let cpu = CpuConfig::arm_cortex_a53();
    let sp = SimParams::square(1200, cpu.cores);
    println!("--- cache-hierarchy trace on {} (1200^3) ---", cpu.name);
    let c = run_cake_trace(&cpu, &sp);
    let g = run_goto_trace(&cpu, &sp);
    println!(
        "  CAKE : {:>9} L1 hits  {:>9} LLC hits  {:>9} DRAM requests",
        c.l1_hits,
        c.l2_hits + c.llc_hits,
        c.dram_accesses
    );
    println!(
        "  GOTO : {:>9} L1 hits  {:>9} LLC hits  {:>9} DRAM requests",
        g.l1_hits,
        g.l2_hits + g.llc_hits,
        g.dram_accesses
    );
    println!(
        "  GOTO performs {:.1}x more DRAM requests (paper Figure 7b: ~2.5x)",
        g.dram_accesses as f64 / c.dram_accesses.max(1) as f64
    );
}
