//! Quickstart: drop-in CAKE GEMM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cake::prelude::*;
use cake_matrix::init;

fn main() {
    // C (m x n) += A (m x k) * B (k x n), single precision.
    let (m, k, n) = (512, 384, 640);
    let a = init::random::<f32>(m, k, 1);
    let b = init::random::<f32>(k, n, 2);
    let mut c = Matrix::<f32>::zeros(m, n);

    // Fully automatic configuration: thread count, CB block shape, and
    // kernel are chosen from the machine.
    let cfg = CakeConfig::default();
    let t0 = std::time::Instant::now();
    cake_sgemm(&a, &b, &mut c, &cfg);
    let dt = t0.elapsed().as_secs_f64();

    let gflops = 2.0 * (m * k * n) as f64 / dt / 1e9;
    println!("CAKE sgemm {m}x{k}x{n}: {:.2} ms  ({gflops:.2} GFLOP/s)", dt * 1e3);

    // Verify against the naive reference.
    let mut reference = Matrix::<f32>::zeros(m, n);
    cake::goto::naive::naive_gemm(&a, &b, &mut reference);
    assert!(
        cake::matrix::approx_eq(&c, &reference, cake::matrix::compare::gemm_tolerance::<f32>(k)),
        "CAKE result does not match the reference!"
    );
    println!("verified against naive reference ✓");

    // The analytical side: what does the CB block look like here, and
    // what does the model promise? (Paper Section 3.)
    let shape = cfg.resolve_shape(m, k, n, 6, 16, 4, 96.0);
    let model = CakeModel::new(shape, 6, 16, 4, cfg.freq_ghz);
    println!("\nCB block: {shape}");
    println!("  required DRAM bandwidth (Eq. 4): {:.2} GB/s (constant in p)", model.ext_bw_gbs());
    println!("  local memory footprint  (Eq. 5): {:.2} MiB", model.local_mem_bytes() / 1048576.0);
    println!("  internal bandwidth      (Eq. 6): {:.2} GB/s", model.int_bw_gbs());
}
