//! The memory wall, quantified: sweep DRAM bandwidth in the simulator and
//! watch GOTO's throughput collapse while CAKE holds (the paper's central
//! thesis, Section 1: "DRAM bandwidth may become the limiting factor as
//! more processing power is added").
//!
//! ```sh
//! cargo run --release --example memory_wall
//! ```

use cake::sim::config::CpuConfig;
use cake::sim::engine::{simulate_cake, simulate_goto, SimParams};

fn main() {
    // Start from the Intel config and scale its DRAM bandwidth down,
    // holding everything else fixed — emulating ever more compute-rich
    // (or memory-starved) future machines.
    let base = CpuConfig::intel_i9_10900k();
    let n = 4608;
    let p = base.cores;

    println!(
        "Memory-wall sweep: {n}^3 f32 GEMM on {} cores, shrinking DRAM bandwidth\n",
        p
    );
    println!(
        "{:>12} {:>14} {:>14} {:>9} {:>22}",
        "DRAM GB/s", "CAKE GFLOP/s", "GOTO GFLOP/s", "ratio", "GOTO DRAM-stall %"
    );

    for bw in [40.0, 30.0, 20.0, 15.0, 10.0, 7.0, 5.0, 3.0, 2.0] {
        let mut cpu = base.clone();
        cpu.dram_bw_gbs = bw;
        let sp = SimParams::square(n, p);
        let cake = simulate_cake(&cpu, &sp);
        let goto = simulate_goto(&cpu, &sp);
        println!(
            "{:>12.1} {:>14.1} {:>14.1} {:>8.2}x {:>21.1}%",
            bw,
            cake.gflops,
            goto.gflops,
            cake.gflops / goto.gflops,
            100.0 * goto.dram_stall_fraction(),
        );
    }

    println!();
    println!("CAKE's alpha auto-tuner widens the CB block as bandwidth shrinks");
    println!("(Section 3.2), trading local-memory capacity for DRAM traffic;");
    println!("GOTO has no such knob — its required bandwidth grows with cores");
    println!("(Section 4.1), so the wall hits it first and hardest.");
}
