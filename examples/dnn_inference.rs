//! DNN forward pass as a sequence of GEMMs (the paper's motivating
//! workload: "most computations in the forward pass of a convolutional
//! neural network consist of one matrix multiplication per convolutional
//! layer"), built on the `cake-dnn` substrate crate.
//!
//! ```sh
//! cargo run --release --example dnn_inference
//! ```

use cake::core::api::CakeConfig;
use cake::dnn::im2col::ConvGeom;
use cake::dnn::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU, Sequential, Tensor};

fn main() {
    // A VGG-ish 32x32 network: every conv layer becomes one CAKE GEMM.
    let net = Sequential::new(CakeConfig::default())
        .push(Conv2d::random("conv1a", 3, 32, ConvGeom::same(3), 1))
        .push(ReLU)
        .push(Conv2d::random("conv1b", 32, 32, ConvGeom::same(3), 2))
        .push(ReLU)
        .push(MaxPool2d)
        .push(Conv2d::random("conv2a", 32, 64, ConvGeom::same(3), 3))
        .push(ReLU)
        .push(Conv2d::random("conv2b", 64, 64, ConvGeom::same(3), 4))
        .push(ReLU)
        .push(MaxPool2d)
        .push(Conv2d::random("conv3", 64, 128, ConvGeom::same(3), 5))
        .push(ReLU)
        .push(GlobalAvgPool)
        .push(Linear::random("fc", 128, 10, 6));

    // Shape check before running anything.
    let shapes = net.shapes(3, 32, 32);
    println!("network: {} layers, final output {:?}", net.len(), shapes.last().unwrap());
    println!(
        "total forward FLOPs: {:.1} M\n",
        net.total_flops(3, 32, 32) as f64 / 1e6
    );

    // Input "image": 3 x 32 x 32.
    let input = Tensor::from_matrix(cake::matrix::init::random::<f32>(3, 32 * 32, 42), 32, 32);

    let t0 = std::time::Instant::now();
    let (logits, reports) = net.forward(&input);
    let total = t0.elapsed().as_secs_f64();

    println!("{:<8} {:>14} {:>12} {:>10} {:>12}", "layer", "out shape", "MFLOPs", "ms", "GFLOP/s");
    println!("{}", "-".repeat(62));
    for r in &reports {
        let gflops = if r.seconds > 0.0 { r.flops as f64 / r.seconds / 1e9 } else { 0.0 };
        println!(
            "{:<8} {:>4}x{:<3}x{:<4} {:>13.2} {:>10.3} {:>12.2}",
            r.name,
            r.out_shape.0,
            r.out_shape.1,
            r.out_shape.2,
            r.flops as f64 / 1e6,
            r.seconds * 1e3,
            gflops
        );
    }
    let total_flops: u64 = reports.iter().map(|r| r.flops).sum();
    println!(
        "\nforward pass: {:.2} ms total, {:.2} GFLOP/s average",
        total * 1e3,
        total_flops as f64 / total / 1e9
    );

    let pred = (0..10)
        .max_by(|&i, &j| {
            logits
                .get(i, 0, 0)
                .partial_cmp(&logits.get(j, 0, 0))
                .unwrap()
        })
        .unwrap();
    println!("predicted class: {pred} (random weights — timing demo only)");
}
