#!/usr/bin/env bash
# CI gate for the cake-rs workspace.
#
#   ./ci.sh                full gate: tier-1, all tests, clippy, audit, verify, bench snapshot
#   ./ci.sh --fast         tier-1 + clippy only (skip audit + verify + bench snapshot)
#   ./ci.sh --verify       verification suite only (cakectl verify, 256 fuzz cases)
#   ./ci.sh --scale-smoke  one p=4 GEMM sweep asserting pack counters match p=1
#   ./ci.sh --kernel-smoke one GEMM per available kernel tier (portable/avx2/
#                          avx512) asserting pack counters are tier-invariant
#   ./ci.sh --dtype-smoke  one GEMM per supported dtype (f32/f64/bf16/int8)
#                          asserting element counters are dtype-invariant and
#                          every dtype's warm path runs allocation-free
#   ./ci.sh --sim-smoke    one deterministic + one fuzzed-ordering event-
#                          simulator run per Table-2 CPU; exits 1 if any
#                          same-tick permutation moves a traffic counter
#   ./ci.sh --tune-smoke   one small-shape autotune run (candidate grid ->
#                          sim ranking -> micro-bench refinement) with
#                          --check: asserts the tuned winner is >= the
#                          closed-form default and that the persisted
#                          cache round-trips through
#                          CakeConfig::autotuned_for
#   ./ci.sh --audit        static analysis only (cakectl audit: unsafe ratchet
#                          with transmute/static-mut ratchets, symbolic bounds
#                          proofs, executor phase checker, and the call-graph
#                          dataflow passes — warm-path alloc-freedom, hot-path
#                          panic-freedom, atomics-ordering protocol)
#   ./ci.sh --miri         Miri pass over the pointer-heavy crates (needs a
#                          nightly toolchain with the miri component; skips
#                          gracefully when unavailable so the gate stays green
#                          on the stable-only container)
#   ./ci.sh --tsan         ThreadSanitizer pass over cake-core's sync and
#                          executor tests (needs a nightly toolchain with the
#                          rust-src component; skips gracefully on stable-only
#                          hosts)
#
# The bench snapshot rewrites BENCH_gemm.json in the repo root so the
# pipelined executor's throughput, allocation-freedom, and pack-overlap
# numbers are tracked over time.
#
# The verify stage runs the cake-verify harness: 256-case differential
# fuzzing (CAKE vs GOTO vs naive; seed via CAKE_TEST_SEED), the
# model-conformance oracle (measured executor counters == analytic traffic
# == simulator, Eq. 4 p-invariance), and the deterministic interleaving
# checker for the panel-ring protocol.
#
# The scale-smoke gate is the CB-block bandwidth claim in one command:
# the executor at p=4 must move exactly the same packed elements as p=1
# (measured traffic-counters, fixed block grid), or cakectl exits 1. It
# also runs the same-host scaling sanity check (cores >= 2p must yield
# speedup > 1). On a single-core host the smoke is skipped with an
# explicit message — the topology clamp would run every p at
# effective_p=1, proving nothing.
#
# The kernel-smoke gate is the dispatch-tier counterpart: one GEMM per
# kernel tier the host supports (always at least portable), same fixed
# block grid for all of them. Pack counters tally live source elements,
# which depend on the block grid and never on the microkernel tile shape
# — so every tier must report identical a/b/c counters or cakectl exits
# 1. This catches a tier whose edge handling silently reads or packs a
# different footprint.
#
# The tsan stage (./ci.sh --tsan) covers cake-core's sync module and the
# pipelined executor — the sense-reversing SpinBarrier's tests drive
# multi-threaded episodes under an oversubscribed pool, exactly the
# schedule TSan needs to observe the Release/Acquire pairs. TSan's
# happens-before model is the runtime complement of the static
# atomics-ordering pass in cake-audit: the audit proves the declared
# protocol is the one written in the source; TSan checks the protocol the
# hardware actually executes. Needs nightly + rust-src (for -Zbuild-std);
# the pinned stable container has neither, so the stage skips gracefully.
set -euo pipefail
cd "$(dirname "$0")"

run_verify() {
    echo "==> verification suite (cakectl verify)"
    cargo run --release -p cake-bench --bin cakectl -- verify --cases 256
}

run_scale_smoke() {
    # The counter half of the gate is meaningful at any core count, but a
    # single-core host cannot exercise real parallelism (the topology
    # clamp runs every p at effective_p=1), so say why we skip instead of
    # reporting a vacuous pass. bench_snapshot records the same skip in
    # BENCH_gemm.json's host.scale_gate field.
    local cores
    cores=$(nproc 2>/dev/null || echo 1)
    if [[ "$cores" -lt 2 ]]; then
        echo "==> scale smoke: SKIPPED — host has $cores core(s); the p-sweep" \
             "would run entirely clamped to effective_p=1"
        return 0
    fi
    echo "==> scale smoke: p in {1,4} sweep on $cores core(s), pack counters must be p-invariant"
    cargo run --release -p cake-bench --bin cakectl -- \
        gemm --m 192 --k 192 --n 192 --threads 1,4 --check-counters
}

run_kernel_smoke() {
    echo "==> kernel smoke: one GEMM per available tier, pack counters must be tier-invariant"
    cargo run --release -p cake-bench --bin cakectl -- \
        gemm --m 192 --k 192 --n 192 --kernel-smoke
}

run_dtype_smoke() {
    # The narrow-dtype gate: every dtype (f32/f64/bf16/int8) must move
    # exactly the same packed *elements* on one fixed block grid — element
    # movement is a schedule property, only bytes-per-element changes —
    # and every dtype's post-warmup iterations must run allocation-free.
    echo "==> dtype smoke: one GEMM per dtype, element counters must be dtype-invariant"
    cargo run --release -p cake-bench --bin cakectl -- \
        gemm --m 192 --k 192 --n 192 --dtype-smoke
}

run_sim_smoke() {
    # The discrete-event simulator gate: for each Table-2 CPU, one
    # deterministic run (FIFO tie-break) and one 64-seed fuzzed-ordering
    # sweep. cakectl exits 1 on any counter divergence, printing the
    # diverging seed, counter, and event-trace witness — a schedule race
    # in the event machine, caught the same way cake-verify's
    # interleaving DFS catches executor races.
    echo "==> sim smoke (event simulator determinism + ordering fuzz)"
    for cpu in intel amd arm; do
        cargo run --release -p cake-bench --bin cakectl -- \
            sim --cpu "$cpu" --m 600 --k 480 --n 552 --fuzz-orderings 64
        cargo run --release -p cake-bench --bin cakectl -- \
            sim --cpu "$cpu" --m 600 --k 480 --n 552 --algo goto --fuzz-orderings 64
    done
}

run_tune_smoke() {
    # The tuning-loop gate in one command: autotune a small shape end to
    # end (deterministic candidate grid, host-shaped sim ranking, top-K
    # micro-bench with the closed-form default competing), write the
    # winner to a throwaway cache, and --check that (a) the winner never
    # measured below the default and (b) a fresh CakeConfig::autotuned_for
    # sees exactly the persisted entry. Uses a temp cache path so the
    # smoke never pollutes the user's target/cake-tune.json.
    echo "==> tune smoke (cakectl tune --check on a small shape)"
    local cache
    cache=$(mktemp -u /tmp/cake-tune-smoke.XXXXXX.json)
    cargo run --release -p cake-bench --bin cakectl -- \
        tune --m 128 --k 128 --n 128 --dtype f32 --top-k 2 --reps 2 \
        --cache "$cache" --check
    rm -f "$cache"
}

run_audit() {
    echo "==> static analysis (cakectl audit)"
    cargo run --release -p cake-bench --bin cakectl -- audit
}

run_miri() {
    # Interpret the pointer-heavy unit tests under Miri to catch UB the
    # static bounds checker cannot see (uninit reads, provenance misuse).
    # The spin barrier drops to a tiny spin limit under cfg(miri) and the
    # sched_setaffinity syscalls are compiled out, so the executor tests
    # terminate. Requires nightly + the miri component; the pinned stable
    # container has neither, so skip (not fail) when they are missing.
    echo "==> miri (cake-matrix, cake-kernels, cake-core unit tests)"
    if ! cargo +nightly miri --version >/dev/null 2>&1; then
        echo "    miri unavailable (no nightly toolchain with miri component); skipping"
        return 0
    fi
    MIRIFLAGS="-Zmiri-many-seeds=0..4" cargo +nightly miri test \
        -p cake-matrix -p cake-kernels -p cake-core -q
}

run_tsan() {
    # Run the barrier/pool/executor tests under ThreadSanitizer: the
    # multi-threaded episodes those tests drive are exactly the schedules
    # TSan needs to observe the barrier's Release/Acquire pairs and the
    # panel ring's pack/compute handoff. Requires nightly (for
    # -Zsanitizer=thread) and the rust-src component (for -Zbuild-std,
    # which rebuilds std with instrumentation so std sync primitives are
    # visible to the race detector). The pinned stable container has
    # neither, so skip (not fail) when they are missing.
    echo "==> tsan (cake-core sync + executor tests under ThreadSanitizer)"
    if ! cargo +nightly --version >/dev/null 2>&1; then
        echo "    nightly toolchain unavailable; skipping"
        return 0
    fi
    local sysroot
    sysroot=$(rustc +nightly --print sysroot 2>/dev/null || true)
    if [[ -z "$sysroot" || ! -d "$sysroot/lib/rustlib/src/rust/library" ]]; then
        echo "    rust-src component unavailable (needed for -Zbuild-std); skipping"
        return 0
    fi
    local target
    target=$(rustc +nightly -vV | sed -n 's/^host: //p')
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -Zbuild-std \
        --target "$target" -p cake-core --lib -q -- sync:: pool:: executor::
}

if [[ "${1:-}" == "--verify" ]]; then
    run_verify
    echo "==> ci.sh: verification passed"
    exit 0
fi

if [[ "${1:-}" == "--scale-smoke" ]]; then
    run_scale_smoke
    echo "==> ci.sh: scale smoke passed"
    exit 0
fi

if [[ "${1:-}" == "--kernel-smoke" ]]; then
    run_kernel_smoke
    echo "==> ci.sh: kernel smoke passed"
    exit 0
fi

if [[ "${1:-}" == "--dtype-smoke" ]]; then
    run_dtype_smoke
    echo "==> ci.sh: dtype smoke passed"
    exit 0
fi

if [[ "${1:-}" == "--sim-smoke" ]]; then
    run_sim_smoke
    echo "==> ci.sh: sim smoke passed"
    exit 0
fi

if [[ "${1:-}" == "--tune-smoke" ]]; then
    run_tune_smoke
    echo "==> ci.sh: tune smoke passed"
    exit 0
fi

if [[ "${1:-}" == "--audit" ]]; then
    run_audit
    echo "==> ci.sh: audit passed"
    exit 0
fi

if [[ "${1:-}" == "--miri" ]]; then
    run_miri
    echo "==> ci.sh: miri pass done"
    exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
    run_tsan
    echo "==> ci.sh: tsan pass done"
    exit 0
fi

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    run_audit
    run_verify
    run_scale_smoke
    run_kernel_smoke
    run_dtype_smoke
    run_sim_smoke
    run_tune_smoke

    echo "==> bench snapshot (writes BENCH_gemm.json)"
    cargo run --release -p cake-bench --bin bench_snapshot -- --iters 10
fi

echo "==> ci.sh: all gates passed"
