#!/usr/bin/env bash
# CI gate for the cake-rs workspace.
#
#   ./ci.sh            full gate: tier-1, all tests, clippy, bench snapshot
#   ./ci.sh --fast     tier-1 + clippy only (skip the bench snapshot)
#
# The bench snapshot rewrites BENCH_gemm.json in the repo root so the
# pipelined executor's throughput, allocation-freedom, and pack-overlap
# numbers are tracked over time.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> bench snapshot (writes BENCH_gemm.json)"
    cargo run --release -p cake-bench --bin bench_snapshot -- --iters 10
fi

echo "==> ci.sh: all gates passed"
