#!/usr/bin/env bash
# CI gate for the cake-rs workspace.
#
#   ./ci.sh            full gate: tier-1, all tests, clippy, verify, bench snapshot
#   ./ci.sh --fast     tier-1 + clippy only (skip verify + bench snapshot)
#   ./ci.sh --verify   verification suite only (cakectl verify, 256 fuzz cases)
#
# The bench snapshot rewrites BENCH_gemm.json in the repo root so the
# pipelined executor's throughput, allocation-freedom, and pack-overlap
# numbers are tracked over time.
#
# The verify stage runs the cake-verify harness: 256-case differential
# fuzzing (CAKE vs GOTO vs naive; seed via CAKE_TEST_SEED), the
# model-conformance oracle (measured executor counters == analytic traffic
# == simulator, Eq. 4 p-invariance), and the deterministic interleaving
# checker for the panel-ring protocol.
#
# Opt-in ThreadSanitizer pass (needs a nightly toolchain with rust-src;
# not part of the gate because the container pins stable):
#   RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -Zbuild-std \
#     --target x86_64-unknown-linux-gnu -p cake-core
set -euo pipefail
cd "$(dirname "$0")"

run_verify() {
    echo "==> verification suite (cakectl verify)"
    cargo run --release -p cake-bench --bin cakectl -- verify --cases 256
}

if [[ "${1:-}" == "--verify" ]]; then
    run_verify
    echo "==> ci.sh: verification passed"
    exit 0
fi

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    run_verify

    echo "==> bench snapshot (writes BENCH_gemm.json)"
    cargo run --release -p cake-bench --bin bench_snapshot -- --iters 10
fi

echo "==> ci.sh: all gates passed"
