//! A minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` 1.x API this workspace uses.
//!
//! The build container has no access to crates.io, so the real `proptest`
//! crate cannot be fetched; this in-tree stand-in keeps every property test
//! in the workspace source-compatible. Differences from the real crate:
//!
//! * no shrinking — a failing case panics with the sampled arguments in the
//!   normal assertion message instead of a minimized counterexample;
//! * sampling is deterministic per test (seeded from the test's module
//!   path + name), so failures reproduce across runs; setting the
//!   `CAKE_TEST_SEED` environment variable (a `u64`) perturbs every
//!   test's stream, and a failing case prints the seed and case index
//!   needed to reproduce it locally;
//! * only the strategies the workspace uses are implemented: integer
//!   ranges (half-open and inclusive), `any::<bool>()`, and
//!   `prop::sample::select(Vec<T>)`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Mirror of the `prop::` path exposed by the real crate's prelude.
pub mod prop {
    pub use crate::sample;
}

/// `prop::sample` strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly select one of the given items per case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

/// The [`Strategy`] trait and the built-in strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A value generator driven by the per-test RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Sample one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);

    /// `any::<T>()` — full-domain strategy for simple types.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Sample an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Config and RNG plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic splitmix64 RNG, seeded from the test's full name so
    /// each property samples a stable, independent stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test: FNV-1a hash of the name, perturbed by
        /// the `CAKE_TEST_SEED` environment variable so CI can re-roll
        /// every property's stream and failures stay reproducible.
        pub fn for_test(name: &str) -> Self {
            Self::for_test_with_seed(name, env_seed())
        }

        /// RNG for the named test with an explicit extra seed (what
        /// [`TestRng::for_test`] does with the `CAKE_TEST_SEED` value).
        pub fn for_test_with_seed(name: &str, seed: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h ^ seed }
        }

        /// RNG from a raw 64-bit seed (for non-macro consumers such as
        /// the `cake-verify` differential fuzzer).
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// The `CAKE_TEST_SEED` environment value (0 when unset or invalid),
    /// read once and cached so a process sees one consistent seed even if
    /// the environment is mutated mid-run.
    pub fn env_seed() -> u64 {
        static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        *SEED.get_or_init(|| {
            std::env::var("CAKE_TEST_SEED")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0)
        })
    }
}

/// Property-test entry macro: same surface as `proptest::proptest!` for
/// plain `arg in strategy` parameter lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursive expansion of the test items inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut __rng);)*
                let __outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {} of {}; reproduce with \
                         CAKE_TEST_SEED={}",
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                        __cfg.cases,
                        $crate::test_runner::env_seed(),
                    );
                    std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)) => {};
}

/// `prop_assert!` — no shrinking, so a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — forwarded to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — forwarded to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn explicit_seed_perturbs_the_stream_deterministically() {
        let mut base = crate::test_runner::TestRng::for_test_with_seed("x", 0);
        let mut same = crate::test_runner::TestRng::for_test_with_seed("x", 0);
        let mut other = crate::test_runner::TestRng::for_test_with_seed("x", 1234);
        assert_eq!(base.next_u64(), same.next_u64());
        assert_ne!(base.next_u64(), other.next_u64());
    }

    #[test]
    fn for_test_uses_the_env_seed() {
        // In a clean environment the cached seed is 0, so `for_test` and
        // the explicit-seed constructor agree; either way they must match
        // the process-wide cached value.
        let seed = crate::test_runner::env_seed();
        let mut a = crate::test_runner::TestRng::for_test("consistency");
        let mut b = crate::test_runner::TestRng::for_test_with_seed("consistency", seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn from_seed_is_a_raw_splitmix_stream() {
        let mut a = crate::test_runner::TestRng::from_seed(42);
        let mut b = crate::test_runner::TestRng::from_seed(42);
        let mut c = crate::test_runner::TestRng::from_seed(43);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::pick(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::pick(&(0u64..5), &mut rng);
            assert!(w < 5);
            let i = Strategy::pick(&(-4i32..9), &mut rng);
            assert!((-4..9).contains(&i));
        }
    }

    #[test]
    fn select_draws_every_item_eventually() {
        let mut rng = crate::test_runner::TestRng::for_test("select");
        let s = crate::sample::select(vec![1usize, 2, 3]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::pick(&s, &mut rng) - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_samples_all_declared_args(
            a in 1usize..10,
            b in prop::sample::select(vec![2usize, 4]),
            flip in any::<bool>(),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b == 2 || b == 4);
            prop_assert_eq!(flip as u8 <= 1, true);
        }
    }
}
