//! A minimal `C x H x W` feature-map tensor.
//!
//! Backed by a `channels x (h*w)` row-major matrix — exactly the layout
//! im2col and the GEMM layers consume, so no reshapes ever copy data.

use cake_matrix::{Element, Matrix};

/// A 3D feature map stored as `channels x (h * w)`.
pub struct Tensor<T = f32> {
    data: Matrix<T>,
    h: usize,
    w: usize,
}

impl<T: Element> Tensor<T> {
    /// A zero tensor of shape `c x h x w`.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self {
            data: Matrix::zeros(c, h * w),
            h,
            w,
        }
    }

    /// Build from a generator `f(c, y, x)`.
    pub fn from_fn(c: usize, h: usize, w: usize, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let data = Matrix::from_fn(c, h * w, |ch, idx| f(ch, idx / w, idx % w));
        Self { data, h, w }
    }

    /// Wrap an existing `c x (h*w)` matrix.
    ///
    /// # Panics
    /// Panics if `matrix.cols() != h * w`.
    pub fn from_matrix(matrix: Matrix<T>, h: usize, w: usize) -> Self {
        assert_eq!(matrix.cols(), h * w, "matrix cols must equal h*w");
        Self { data: matrix, h, w }
    }

    /// Channels.
    pub fn channels(&self) -> usize {
        self.data.rows()
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.channels() * self.h * self.w
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at `(c, y, x)`.
    pub fn get(&self, c: usize, y: usize, x: usize) -> T {
        assert!(y < self.h && x < self.w, "spatial index out of bounds");
        self.data.get(c, y * self.w + x)
    }

    /// Set element at `(c, y, x)`.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: T) {
        assert!(y < self.h && x < self.w, "spatial index out of bounds");
        self.data.set(c, y * self.w + x, v);
    }

    /// The backing `channels x (h*w)` matrix.
    pub fn as_matrix(&self) -> &Matrix<T> {
        &self.data
    }

    /// Mutable backing matrix.
    pub fn as_matrix_mut(&mut self) -> &mut Matrix<T> {
        &mut self.data
    }

    /// Consume into the backing matrix.
    pub fn into_matrix(self) -> Matrix<T> {
        self.data
    }

    /// Flatten to a `len x 1` column matrix (for classifier heads).
    pub fn flatten(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.len(), 1);
        for c in 0..self.channels() {
            for i in 0..self.h * self.w {
                out.set(c * self.h * self.w + i, 0, self.data.get(c, i));
            }
        }
        out
    }
}

impl<T: Element> Clone for Tensor<T> {
    fn clone(&self) -> Self {
        Self {
            data: self.data.clone(),
            h: self.h,
            w: self.w,
        }
    }
}

impl<T: Element> std::fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor {}x{}x{}", self.channels(), self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get_set() {
        let mut t = Tensor::<f32>::from_fn(2, 3, 4, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.get(1, 2, 3), 123.0);
        t.set(0, 0, 0, -1.0);
        assert_eq!(t.get(0, 0, 0), -1.0);
        assert_eq!(t.channels(), 2);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn matrix_round_trip() {
        let t = Tensor::<f32>::from_fn(3, 2, 2, |c, y, x| (c + y + x) as f32);
        let m = t.clone().into_matrix();
        let back = Tensor::from_matrix(m, 2, 2);
        assert_eq!(back.get(2, 1, 1), 4.0);
    }

    #[test]
    fn flatten_orders_channel_major() {
        let t = Tensor::<f32>::from_fn(2, 1, 2, |c, _, x| (10 * c + x) as f32);
        let f = t.flatten();
        assert_eq!(f.rows(), 4);
        assert_eq!(
            (0..4).map(|i| f.get(i, 0)).collect::<Vec<_>>(),
            vec![0.0, 1.0, 10.0, 11.0]
        );
    }

    #[test]
    #[should_panic(expected = "h*w")]
    fn wrong_spatial_shape_rejected() {
        let m = cake_matrix::Matrix::<f32>::zeros(2, 5);
        let _ = Tensor::from_matrix(m, 2, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn spatial_bounds_checked() {
        let t = Tensor::<f32>::zeros(1, 2, 2);
        let _ = t.get(0, 2, 0);
    }
}
