//! im2col lowering: convolution as matrix multiplication.
//!
//! A convolution of a `C_in x H x W` input with `C_out` kernels of size
//! `C_in x KH x KW` (stride `s`, zero padding `p`) equals the GEMM
//!
//! ```text
//! W (C_out x C_in*KH*KW)  x  patches (C_in*KH*KW x OH*OW)  =  Y (C_out x OH*OW)
//! ```
//!
//! which is the per-layer MM the paper's intro refers to. [`im2col`]
//! builds the patch matrix; [`direct_conv`] is the quadruple-loop
//! reference the tests verify the GEMM path against.

use cake_matrix::{Element, Matrix};

use crate::tensor::Tensor;

/// Convolution geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub pad: usize,
}

impl ConvGeom {
    /// Square-kernel geometry.
    pub fn square(k: usize, stride: usize, pad: usize) -> Self {
        Self { kh: k, kw: k, stride, pad }
    }

    /// `k x k` kernel, stride 1, "same" padding (odd `k`).
    pub fn same(k: usize) -> Self {
        assert!(k % 2 == 1, "'same' padding requires an odd kernel");
        Self::square(k, 1, k / 2)
    }

    /// Output spatial size for an `h x w` input.
    ///
    /// # Panics
    /// Panics if the kernel does not fit the padded input.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(self.stride > 0, "stride must be positive");
        let ph = h + 2 * self.pad;
        let pw = w + 2 * self.pad;
        assert!(ph >= self.kh && pw >= self.kw, "kernel larger than padded input");
        ((ph - self.kh) / self.stride + 1, (pw - self.kw) / self.stride + 1)
    }
}

/// Build the `(C_in*KH*KW) x (OH*OW)` patch matrix for `input`.
pub fn im2col<T: Element>(input: &Tensor<T>, geom: &ConvGeom) -> Matrix<T> {
    let (cin, h, w) = (input.channels(), input.height(), input.width());
    let (oh, ow) = geom.out_dims(h, w);
    let rows = cin * geom.kh * geom.kw;
    Matrix::from_fn(rows, oh * ow, |r, col| {
        let c = r / (geom.kh * geom.kw);
        let dy = (r / geom.kw) % geom.kh;
        let dx = r % geom.kw;
        let oy = col / ow;
        let ox = col % ow;
        let iy = (oy * geom.stride + dy) as isize - geom.pad as isize;
        let ix = (ox * geom.stride + dx) as isize - geom.pad as isize;
        if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
            T::ZERO
        } else {
            input.get(c, iy as usize, ix as usize)
        }
    })
}

/// Direct (quadruple-loop) convolution reference:
/// `weights` is `C_out x (C_in*KH*KW)` in the same row layout as
/// [`im2col`] rows; returns the `C_out x OH x OW` output.
pub fn direct_conv<T: Element>(
    input: &Tensor<T>,
    weights: &Matrix<T>,
    geom: &ConvGeom,
) -> Tensor<T> {
    let (cin, h, w) = (input.channels(), input.height(), input.width());
    assert_eq!(
        weights.cols(),
        cin * geom.kh * geom.kw,
        "weight columns must equal C_in*KH*KW"
    );
    let (oh, ow) = geom.out_dims(h, w);
    let cout = weights.rows();
    let mut out = Tensor::zeros(cout, oh, ow);
    for co in 0..cout {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f64;
                for c in 0..cin {
                    for dy in 0..geom.kh {
                        for dx in 0..geom.kw {
                            let iy = (oy * geom.stride + dy) as isize - geom.pad as isize;
                            let ix = (ox * geom.stride + dx) as isize - geom.pad as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue;
                            }
                            let wv = weights.get(co, c * geom.kh * geom.kw + dy * geom.kw + dx);
                            acc += wv.to_f64()
                                * input.get(c, iy as usize, ix as usize).to_f64();
                        }
                    }
                }
                out.set(co, oy, ox, T::from_f64(acc));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_matrix::init;
    use proptest::prelude::*;

    fn gemm_conv(input: &Tensor<f32>, weights: &Matrix<f32>, geom: &ConvGeom) -> Tensor<f32> {
        let patches = im2col(input, geom);
        let (oh, ow) = geom.out_dims(input.height(), input.width());
        let mut y = Matrix::<f32>::zeros(weights.rows(), oh * ow);
        cake_core::api::cake_sgemm(
            weights,
            &patches,
            &mut y,
            &cake_core::api::CakeConfig::with_threads(1),
        );
        Tensor::from_matrix(y, oh, ow)
    }

    #[test]
    fn out_dims_follow_formula() {
        assert_eq!(ConvGeom::same(3).out_dims(8, 8), (8, 8));
        assert_eq!(ConvGeom::square(3, 1, 0).out_dims(8, 8), (6, 6));
        assert_eq!(ConvGeom::square(2, 2, 0).out_dims(8, 8), (4, 4));
        assert_eq!(ConvGeom::square(3, 2, 1).out_dims(7, 7), (4, 4));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel, identity weights: conv == input.
        let input = Tensor::<f32>::from_fn(3, 4, 4, |c, y, x| (c * 16 + y * 4 + x) as f32);
        let weights = init::eye::<f32>(3, 3);
        let geom = ConvGeom::square(1, 1, 0);
        let out = gemm_conv(&input, &weights, &geom);
        for c in 0..3 {
            for y in 0..4 {
                for x in 0..4 {
                    assert_eq!(out.get(c, y, x), input.get(c, y, x));
                }
            }
        }
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        let input = Tensor::<f32>::from_fn(3, 9, 7, |c, y, x| ((c + 2 * y + 3 * x) % 5) as f32 - 2.0);
        let geom = ConvGeom::same(3);
        let weights = init::random::<f32>(8, 3 * 9, 42);
        let fast = gemm_conv(&input, &weights, &geom);
        let slow = direct_conv(&input, &weights, &geom);
        cake_matrix::compare::assert_gemm_eq(fast.as_matrix(), slow.as_matrix(), 27);
    }

    #[test]
    fn strided_and_padded_variants_match() {
        let input = Tensor::<f32>::from_fn(2, 8, 8, |c, y, x| ((c * y) as f32 - x as f32) * 0.1);
        for geom in [
            ConvGeom::square(3, 2, 1),
            ConvGeom::square(5, 1, 2),
            ConvGeom::square(2, 2, 0),
            ConvGeom::square(1, 3, 0),
        ] {
            let weights = init::random::<f32>(4, 2 * geom.kh * geom.kw, 7);
            let fast = gemm_conv(&input, &weights, &geom);
            let slow = direct_conv(&input, &weights, &geom);
            cake_matrix::compare::assert_gemm_eq(
                fast.as_matrix(),
                slow.as_matrix(),
                2 * geom.kh * geom.kw,
            );
        }
    }

    #[test]
    fn padding_region_is_zero() {
        // All-ones input and all-ones 3x3 kernel: corner outputs see only
        // 4 of 9 taps.
        let input = Tensor::<f32>::from_fn(1, 4, 4, |_, _, _| 1.0);
        let weights = init::ones::<f32>(1, 9);
        let out = gemm_conv(&input, &weights, &ConvGeom::same(3));
        assert_eq!(out.get(0, 0, 0), 4.0);
        assert_eq!(out.get(0, 0, 1), 6.0);
        assert_eq!(out.get(0, 1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "larger than padded")]
    fn oversized_kernel_rejected() {
        let _ = ConvGeom::square(9, 1, 0).out_dims(4, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn conv_equivalence_random(
            cin in 1usize..4,
            cout in 1usize..5,
            h in 3usize..9,
            w in 3usize..9,
            k in prop::sample::select(vec![1usize, 3]),
            stride in 1usize..3,
            seed in 0u64..500,
        ) {
            let geom = ConvGeom::square(k, stride, k / 2);
            let input = Tensor::from_matrix(init::random::<f32>(cin, h * w, seed), h, w);
            let weights = init::random::<f32>(cout, cin * k * k, seed + 1);
            let fast = gemm_conv(&input, &weights, &geom);
            let slow = direct_conv(&input, &weights, &geom);
            let tol = cake_matrix::compare::gemm_tolerance::<f32>(cin * k * k);
            prop_assert!(cake_matrix::approx_eq(fast.as_matrix(), slow.as_matrix(), tol));
        }
    }
}
