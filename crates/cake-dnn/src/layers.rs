//! Network layers, all GEMMs routed through a shared CAKE context.
//!
//! Because every [`Conv2d`] and [`Linear`] GEMM goes through the same
//! [`CakeGemm`] context, they share its persistent [`GemmWorkspace`]
//! (packed-A strips + the B panel ring): after the first forward pass has
//! sized the workspace for the largest layer, subsequent passes run the
//! pipelined executor with **zero** heap allocations — see
//! `LayerReport::gemm` for the per-layer evidence.
//!
//! [`GemmWorkspace`]: cake_core::workspace::GemmWorkspace

use cake_core::api::CakeGemm;
use cake_matrix::Matrix;

use crate::im2col::{im2col, ConvGeom};
use crate::tensor::Tensor;

/// A forward-pass layer over f32 feature maps.
pub trait Layer {
    /// Layer name for reporting.
    fn name(&self) -> &str;

    /// Output shape `(c, h, w)` for an input shape.
    fn out_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize);

    /// Forward pass; `ctx` provides the GEMM engine.
    fn forward(&self, ctx: &CakeGemm, input: &Tensor) -> Tensor;

    /// FLOPs for an input shape (0 for elementwise layers by convention).
    fn flops(&self, c: usize, h: usize, w: usize) -> u64;
}

/// 2D convolution via im2col + CAKE GEMM.
pub struct Conv2d {
    name: String,
    weights: Matrix<f32>,
    bias: Vec<f32>,
    geom: ConvGeom,
    in_ch: usize,
    out_ch: usize,
}

impl Conv2d {
    /// Build a conv layer; `weights` is `out_ch x (in_ch*kh*kw)`.
    ///
    /// # Panics
    /// Panics if the weight shape does not match the geometry.
    pub fn new(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        geom: ConvGeom,
        weights: Matrix<f32>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(weights.rows(), out_ch, "weight rows must equal out_ch");
        assert_eq!(
            weights.cols(),
            in_ch * geom.kh * geom.kw,
            "weight cols must equal in_ch*kh*kw"
        );
        assert!(bias.is_empty() || bias.len() == out_ch, "bias length mismatch");
        Self {
            name: name.into(),
            weights,
            bias,
            geom,
            in_ch,
            out_ch,
        }
    }

    /// Random-weight conv layer (for benchmarks and examples).
    pub fn random(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        geom: ConvGeom,
        seed: u64,
    ) -> Self {
        let fan_in = (in_ch * geom.kh * geom.kw) as f64;
        let scale = (2.0 / fan_in).sqrt(); // He initialization
        let w = cake_matrix::init::random::<f32>(out_ch, in_ch * geom.kh * geom.kw, seed);
        let w = Matrix::from_fn(w.rows(), w.cols(), |i, j| w.get(i, j) * scale as f32);
        Self::new(name, in_ch, out_ch, geom, w, vec![0.0; out_ch])
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        assert_eq!(c, self.in_ch, "{}: channel mismatch", self.name);
        let (oh, ow) = self.geom.out_dims(h, w);
        (self.out_ch, oh, ow)
    }

    // audit: warm
    fn forward(&self, ctx: &CakeGemm, input: &Tensor) -> Tensor {
        assert_eq!(input.channels(), self.in_ch, "{}: channel mismatch", self.name);
        // audit: cold im2col patch buffer, allocated per layer by contract
        let patches = im2col(input, &self.geom);
        let (oh, ow) = self.geom.out_dims(input.height(), input.width());
        // audit: cold output accumulator, allocated per layer by contract
        let mut y = Matrix::<f32>::zeros(self.out_ch, oh * ow);
        ctx.gemm(&self.weights, &patches, &mut y);
        if !self.bias.is_empty() {
            for co in 0..self.out_ch {
                let b = self.bias[co];
                for i in 0..oh * ow {
                    y.set(co, i, y.get(co, i) + b);
                }
            }
        }
        // audit: cold output tensor wrap, allocated per layer by contract
        Tensor::from_matrix(y, oh, ow)
    }

    fn flops(&self, _c: usize, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.geom.out_dims(h, w);
        2 * (self.out_ch * self.in_ch * self.geom.kh * self.geom.kw * oh * ow) as u64
    }
}

/// Elementwise rectified linear unit.
pub struct ReLU;

impl Layer for ReLU {
    fn name(&self) -> &str {
        "relu"
    }

    fn out_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        (c, h, w)
    }

    fn forward(&self, _ctx: &CakeGemm, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        for v in out.as_matrix_mut().as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    fn flops(&self, _c: usize, _h: usize, _w: usize) -> u64 {
        0
    }
}

/// 2x2 max pooling with stride 2 (floor semantics).
pub struct MaxPool2d;

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        "maxpool2"
    }

    fn out_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        (c, h / 2, w / 2)
    }

    fn forward(&self, _ctx: &CakeGemm, input: &Tensor) -> Tensor {
        let (c, h, w) = (input.channels(), input.height(), input.width());
        let (oh, ow) = (h / 2, w / 2);
        Tensor::from_fn(c, oh, ow, |ch, y, x| {
            let mut m = f32::NEG_INFINITY;
            for dy in 0..2 {
                for dx in 0..2 {
                    m = m.max(input.get(ch, 2 * y + dy, 2 * x + dx));
                }
            }
            m
        })
    }

    fn flops(&self, _c: usize, _h: usize, _w: usize) -> u64 {
        0
    }
}

/// Global average pooling: `c x h x w -> c x 1 x 1`.
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        "gap"
    }

    fn out_shape(&self, c: usize, _h: usize, _w: usize) -> (usize, usize, usize) {
        (c, 1, 1)
    }

    fn forward(&self, _ctx: &CakeGemm, input: &Tensor) -> Tensor {
        let area = (input.height() * input.width()) as f64;
        Tensor::from_fn(input.channels(), 1, 1, |c, _, _| {
            let mut s = 0.0f64;
            for y in 0..input.height() {
                for x in 0..input.width() {
                    s += input.get(c, y, x) as f64;
                }
            }
            (s / area) as f32
        })
    }

    fn flops(&self, c: usize, h: usize, w: usize) -> u64 {
        (c * h * w) as u64
    }
}

/// Fully connected layer on flattened features (expects `c x 1 x 1` input
/// or flattens larger maps channel-major).
pub struct Linear {
    name: String,
    weights: Matrix<f32>,
    bias: Vec<f32>,
}

impl Linear {
    /// `weights` is `out_features x in_features`.
    pub fn new(name: impl Into<String>, weights: Matrix<f32>, bias: Vec<f32>) -> Self {
        assert!(bias.is_empty() || bias.len() == weights.rows(), "bias length mismatch");
        Self {
            name: name.into(),
            weights,
            bias,
        }
    }

    /// Random-weight linear layer.
    pub fn random(name: impl Into<String>, in_features: usize, out_features: usize, seed: u64) -> Self {
        let w = cake_matrix::init::random::<f32>(out_features, in_features, seed);
        Self::new(name, w, vec![0.0; out_features])
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        assert_eq!(c * h * w, self.weights.cols(), "{}: feature count mismatch", self.name);
        (self.weights.rows(), 1, 1)
    }

    // audit: warm
    fn forward(&self, ctx: &CakeGemm, input: &Tensor) -> Tensor {
        // audit: cold flattened feature staging, allocated per layer by contract
        let x = input.flatten();
        assert_eq!(x.rows(), self.weights.cols(), "{}: feature count mismatch", self.name);
        // audit: cold output accumulator, allocated per layer by contract
        let mut y = Matrix::<f32>::zeros(self.weights.rows(), 1);
        ctx.gemm(&self.weights, &x, &mut y);
        for (i, b) in self.bias.iter().enumerate() {
            y.set(i, 0, y.get(i, 0) + b);
        }
        // audit: cold output tensor wrap, allocated per layer by contract
        Tensor::from_matrix(y, 1, 1)
    }

    fn flops(&self, _c: usize, _h: usize, _w: usize) -> u64 {
        2 * (self.weights.rows() * self.weights.cols()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_core::api::CakeConfig;
    use cake_matrix::init;

    fn ctx() -> CakeGemm {
        CakeGemm::new(CakeConfig::with_threads(1))
    }

    #[test]
    fn conv_forward_matches_direct() {
        let layer = Conv2d::random("c", 3, 6, ConvGeom::same(3), 1);
        let input = Tensor::from_matrix(init::random::<f32>(3, 8 * 8, 2), 8, 8);
        let out = layer.forward(&ctx(), &input);
        let direct = crate::im2col::direct_conv(&input, &layer.weights, &layer.geom);
        cake_matrix::compare::assert_gemm_eq(out.as_matrix(), direct.as_matrix(), 27);
        assert_eq!(layer.out_shape(3, 8, 8), (6, 8, 8));
    }

    #[test]
    fn conv_bias_adds_per_channel() {
        let geom = ConvGeom::square(1, 1, 0);
        let weights = init::eye::<f32>(2, 2);
        let layer = Conv2d::new("b", 2, 2, geom, weights, vec![10.0, 20.0]);
        let input = Tensor::from_fn(2, 2, 2, |c, _, _| c as f32);
        let out = layer.forward(&ctx(), &input);
        assert_eq!(out.get(0, 0, 0), 10.0);
        assert_eq!(out.get(1, 1, 1), 21.0);
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let input = Tensor::from_fn(1, 2, 2, |_, y, x| if (y + x) % 2 == 0 { -1.0 } else { 2.0 });
        let out = ReLU.forward(&ctx(), &input);
        assert_eq!(out.get(0, 0, 0), 0.0);
        assert_eq!(out.get(0, 0, 1), 2.0);
    }

    #[test]
    fn maxpool_takes_window_max() {
        let input = Tensor::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let out = MaxPool2d.forward(&ctx(), &input);
        assert_eq!(out.height(), 2);
        assert_eq!(out.get(0, 0, 0), 5.0);
        assert_eq!(out.get(0, 1, 1), 15.0);
    }

    #[test]
    fn gap_averages() {
        let input = Tensor::from_fn(2, 2, 2, |c, y, x| (c * 4 + y * 2 + x) as f32);
        let out = GlobalAvgPool.forward(&ctx(), &input);
        assert_eq!(out.get(0, 0, 0), 1.5);
        assert_eq!(out.get(1, 0, 0), 5.5);
    }

    #[test]
    fn linear_matches_manual_product() {
        let w = init::sequential::<f32>(2, 3);
        let layer = Linear::new("fc", w, vec![1.0, -1.0]);
        let input = Tensor::from_fn(3, 1, 1, |c, _, _| (c + 1) as f32);
        let out = layer.forward(&ctx(), &input);
        // row0: 0*1+1*2+2*3 = 8 + 1 = 9; row1: 3+8+15 = 26 - 1 = 25.
        assert_eq!(out.get(0, 0, 0), 9.0);
        assert_eq!(out.get(1, 0, 0), 25.0);
    }

    #[test]
    fn flops_formulas() {
        let conv = Conv2d::random("c", 3, 8, ConvGeom::same(3), 1);
        assert_eq!(conv.flops(3, 10, 10), 2 * 8 * 27 * 100);
        let lin = Linear::random("l", 16, 4, 2);
        assert_eq!(lin.flops(16, 1, 1), 2 * 4 * 16);
        assert_eq!(ReLU.flops(8, 8, 8), 0);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_rejects_wrong_channels() {
        let layer = Conv2d::random("c", 3, 4, ConvGeom::same(3), 1);
        let input = Tensor::<f32>::zeros(2, 4, 4);
        let _ = layer.forward(&ctx(), &input);
    }
}
