//! Quantized (int8) inference path over the narrow-dtype kernel tier.
//!
//! Weights are quantized **per output channel** with symmetric scales
//! (`w ≈ s_w[o] * wq`, `wq` in `[-127, 127]`); activations **per tensor**
//! with an affine scale + zero-point (`x ≈ s_x * (xq - z_x)`). The GEMM
//! itself runs entirely in int8 operands with i32 accumulation through the
//! same [`CakeGemm`] context — and therefore the same persistent
//! [`GemmWorkspace`](cake_core::workspace::GemmWorkspace) pools — as the
//! f32 layers, so warm quantized passes are allocation-free too.
//!
//! Requantization applies the zero-point correction exactly:
//!
//! ```text
//! y[o][j] = s_w[o] * s_x * (acc[o][j] - z_x * rowsum(wq[o])) + bias[o]
//! ```
//!
//! where `acc` is the raw i32 GEMM output and `rowsum(wq[o])` is
//! precomputed at quantization time. The correction is algebraically exact
//! (i32 arithmetic admits no rounding), so the only error versus f32 is
//! the input/weight rounding itself.

use cake_core::api::CakeGemm;
use cake_matrix::Matrix;

use crate::im2col::{im2col, ConvGeom};
use crate::layers::Layer;
use crate::tensor::Tensor;

/// Per-output-channel symmetrically quantized weights.
pub struct QuantizedWeights {
    /// int8 weight matrix, same shape as the f32 original.
    pub q: Matrix<i8>,
    /// Per-row (output channel) dequantization scales.
    pub scales: Vec<f32>,
    /// Per-row sums of `q` — the zero-point correction term.
    pub row_sums: Vec<i32>,
}

impl QuantizedWeights {
    /// Quantize an f32 weight matrix row-by-row: `scale[o]` maps the row's
    /// max-magnitude weight onto ±127, and every entry rounds to nearest.
    /// All-zero rows get scale 1.0 (and an all-zero quantized row).
    pub fn from_f32(w: &Matrix<f32>) -> Self {
        let (m, k) = (w.rows(), w.cols());
        let mut scales = vec![1.0f32; m];
        for (o, scale) in scales.iter_mut().enumerate() {
            let mut amax = 0.0f32;
            for i in 0..k {
                amax = amax.max(w.get(o, i).abs());
            }
            if amax > 0.0 {
                *scale = amax / 127.0;
            }
        }
        let q = Matrix::from_fn(m, k, |o, i| {
            let v = (w.get(o, i) / scales[o]).round();
            v.clamp(-127.0, 127.0) as i8
        });
        let row_sums = (0..m)
            .map(|o| (0..k).map(|i| q.get(o, i) as i32).sum())
            .collect();
        Self { q, scales, row_sums }
    }
}

/// Per-tensor affine activation quantization parameters.
#[derive(Debug, Clone, Copy)]
pub struct ActQuant {
    /// Dequantization scale.
    pub scale: f32,
    /// Zero point, in the i8 domain: `x ≈ scale * (xq - zero_point)`.
    pub zero_point: i32,
}

/// Quantize an f32 activation matrix to int8 with a per-tensor affine
/// mapping of `[min(x, 0), max(x, 0)]` onto `[-128, 127]`. Including zero
/// in the range guarantees zero is exactly representable — padding and
/// post-ReLU zeros survive quantization bit-exactly.
// audit: cold activation quantization staging, allocates the int8 activation buffer
pub fn quantize_activations(x: &Matrix<f32>) -> (Matrix<i8>, ActQuant) {
    let (mut lo, mut hi) = (0.0f32, 0.0f32);
    for &v in x.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    if range == 0.0 {
        return (Matrix::zeros(x.rows(), x.cols()), ActQuant { scale: 1.0, zero_point: 0 });
    }
    let scale = range / 255.0;
    let zero_point = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i32;
    let q = Matrix::from_fn(x.rows(), x.cols(), |i, j| {
        let v = (x.get(i, j) / scale).round() + zero_point as f32;
        v.clamp(-128.0, 127.0) as i8
    });
    (q, ActQuant { scale, zero_point })
}

/// Run `wq * xq` in int8 through the shared context and requantize to f32
/// with the exact zero-point correction; `bias` may be empty.
// audit: warm
fn quant_gemm_requant(
    ctx: &CakeGemm,
    wq: &QuantizedWeights,
    xq: &Matrix<i8>,
    aq: ActQuant,
    bias: &[f32],
) -> Matrix<f32> {
    let (m, n) = (wq.q.rows(), xq.cols());
    // audit: cold int32 accumulator, allocated per layer by contract
    let mut acc = Matrix::<i32>::zeros(m, n);
    ctx.gemm(&wq.q, xq, &mut acc);
    // audit: cold requantized output matrix, allocated per layer by contract
    Matrix::from_fn(m, n, |o, j| {
        let corrected = acc.get(o, j) - aq.zero_point * wq.row_sums[o];
        let y = wq.scales[o] * aq.scale * corrected as f32;
        y + bias.get(o).copied().unwrap_or(0.0)
    })
}

/// Int8-quantized 2D convolution: im2col + int8 CAKE GEMM + requantize.
pub struct QuantConv2d {
    name: String,
    weights: QuantizedWeights,
    bias: Vec<f32>,
    geom: ConvGeom,
    in_ch: usize,
    out_ch: usize,
}

impl QuantConv2d {
    /// Quantize an f32 conv layer; `weights` is `out_ch x (in_ch*kh*kw)`.
    ///
    /// # Panics
    /// Panics if the weight shape does not match the geometry.
    pub fn from_f32(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        geom: ConvGeom,
        weights: &Matrix<f32>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(weights.rows(), out_ch, "weight rows must equal out_ch");
        assert_eq!(weights.cols(), in_ch * geom.kh * geom.kw, "weight cols must equal in_ch*kh*kw");
        assert!(bias.is_empty() || bias.len() == out_ch, "bias length mismatch");
        Self {
            name: name.into(),
            weights: QuantizedWeights::from_f32(weights),
            bias,
            geom,
            in_ch,
            out_ch,
        }
    }
}

impl Layer for QuantConv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        assert_eq!(c, self.in_ch, "{}: channel mismatch", self.name);
        let (oh, ow) = self.geom.out_dims(h, w);
        (self.out_ch, oh, ow)
    }

    // audit: warm
    fn forward(&self, ctx: &CakeGemm, input: &Tensor) -> Tensor {
        assert_eq!(input.channels(), self.in_ch, "{}: channel mismatch", self.name);
        // audit: cold im2col patch buffer, allocated per layer by contract
        let patches = im2col(input, &self.geom);
        let (xq, aq) = quantize_activations(&patches);
        let (oh, ow) = self.geom.out_dims(input.height(), input.width());
        let y = quant_gemm_requant(ctx, &self.weights, &xq, aq, &self.bias);
        // audit: cold output tensor wrap, allocated per layer by contract
        Tensor::from_matrix(y, oh, ow)
    }

    fn flops(&self, _c: usize, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.geom.out_dims(h, w);
        2 * (self.out_ch * self.in_ch * self.geom.kh * self.geom.kw * oh * ow) as u64
    }
}

/// Int8-quantized fully connected layer.
pub struct QuantLinear {
    name: String,
    weights: QuantizedWeights,
    bias: Vec<f32>,
    in_features: usize,
}

impl QuantLinear {
    /// Quantize an f32 linear layer; `weights` is
    /// `out_features x in_features`.
    pub fn from_f32(name: impl Into<String>, weights: &Matrix<f32>, bias: Vec<f32>) -> Self {
        assert!(bias.is_empty() || bias.len() == weights.rows(), "bias length mismatch");
        Self {
            name: name.into(),
            in_features: weights.cols(),
            weights: QuantizedWeights::from_f32(weights),
            bias,
        }
    }
}

impl Layer for QuantLinear {
    fn name(&self) -> &str {
        &self.name
    }

    fn out_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        assert_eq!(c * h * w, self.in_features, "{}: feature count mismatch", self.name);
        (self.weights.q.rows(), 1, 1)
    }

    // audit: warm
    fn forward(&self, ctx: &CakeGemm, input: &Tensor) -> Tensor {
        // audit: cold flattened feature staging, allocated per layer by contract
        let x = input.flatten();
        assert_eq!(x.rows(), self.in_features, "{}: feature count mismatch", self.name);
        let (xq, aq) = quantize_activations(&x);
        let y = quant_gemm_requant(ctx, &self.weights, &xq, aq, &self.bias);
        // audit: cold output tensor wrap, allocated per layer by contract
        Tensor::from_matrix(y, 1, 1)
    }

    fn flops(&self, _c: usize, _h: usize, _w: usize) -> u64 {
        2 * (self.weights.q.rows() * self.weights.q.cols()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear};
    use crate::network::Sequential;
    use cake_core::api::CakeConfig;
    use cake_matrix::init;

    fn ctx() -> CakeGemm {
        CakeGemm::new(CakeConfig::with_threads(1))
    }

    /// Max |a - b| relative to the max |b|, over whole tensors.
    fn rel_err(a: &Matrix<f32>, b: &Matrix<f32>) -> f32 {
        let mut max_diff = 0.0f32;
        let mut max_mag = 0.0f32;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            max_diff = max_diff.max((x - y).abs());
            max_mag = max_mag.max(y.abs());
        }
        if max_mag == 0.0 { max_diff } else { max_diff / max_mag }
    }

    #[test]
    fn weight_quantization_round_trips_within_half_step() {
        let w = init::random::<f32>(6, 20, 7);
        let qw = QuantizedWeights::from_f32(&w);
        for o in 0..6 {
            for i in 0..20 {
                let back = qw.q.get(o, i) as f32 * qw.scales[o];
                assert!(
                    (back - w.get(o, i)).abs() <= qw.scales[o] * 0.5 + 1e-6,
                    "({o},{i}): {back} vs {}",
                    w.get(o, i)
                );
            }
            let s: i32 = (0..20).map(|i| qw.q.get(o, i) as i32).sum();
            assert_eq!(s, qw.row_sums[o]);
        }
    }

    #[test]
    fn activation_quantization_represents_zero_exactly() {
        // All-positive data: without the zero-point, zero would round to
        // the range minimum instead of an exact grid point.
        let x = Matrix::from_fn(3, 5, |i, j| 1.0 + (i * 5 + j) as f32);
        let (q, aq) = quantize_activations(&x);
        assert!(aq.zero_point >= -128 && aq.zero_point <= 127);
        let zero_back = aq.scale * (0 - aq.zero_point + aq.zero_point) as f32;
        assert_eq!(zero_back, 0.0);
        // Every value round-trips within half a quantization step.
        for i in 0..3 {
            for j in 0..5 {
                let back = aq.scale * (q.get(i, j) as i32 - aq.zero_point) as f32;
                assert!((back - x.get(i, j)).abs() <= aq.scale * 0.5 + 1e-5);
            }
        }
    }

    #[test]
    fn constant_activations_quantize_to_zero_without_dividing_by_zero() {
        let x = Matrix::<f32>::zeros(4, 4);
        let (q, aq) = quantize_activations(&x);
        assert!(q.as_slice().iter().all(|&v| v == 0));
        assert_eq!(aq.zero_point, 0);
    }

    #[test]
    fn requantization_matches_scalar_i32_reference_exactly() {
        // The i32 accumulate + zero-point correction admits no rounding:
        // the context's GEMM output must requantize to bit-identical f32
        // versus a naive scalar i32 pipeline.
        let w = init::random::<f32>(9, 31, 11);
        let x = Matrix::from_fn(31, 13, |i, j| ((i * 13 + j) % 17) as f32 * 0.25 - 1.0);
        let qw = QuantizedWeights::from_f32(&w);
        let (xq, aq) = quantize_activations(&x);
        let y = quant_gemm_requant(&ctx(), &qw, &xq, aq, &[]);
        for o in 0..9 {
            for j in 0..13 {
                let mut acc = 0i32;
                for k in 0..31 {
                    acc += qw.q.get(o, k) as i32 * xq.get(k, j) as i32;
                }
                let expect = qw.scales[o] * aq.scale * (acc - aq.zero_point * qw.row_sums[o]) as f32;
                assert_eq!(y.get(o, j), expect, "({o},{j})");
            }
        }
    }

    #[test]
    fn quant_linear_tracks_f32_linear() {
        let w = init::random::<f32>(10, 64, 3);
        let bias: Vec<f32> = (0..10).map(|i| i as f32 * 0.1).collect();
        let f32_layer = Linear::new("fc", w.clone(), bias.clone());
        let q_layer = QuantLinear::from_f32("fcq", &w, bias);
        let input = Tensor::from_matrix(init::random::<f32>(64, 1, 4), 1, 1);
        let exact = f32_layer.forward(&ctx(), &input);
        let quant = q_layer.forward(&ctx(), &input);
        assert_eq!(q_layer.out_shape(64, 1, 1), (10, 1, 1));
        let err = rel_err(quant.as_matrix(), exact.as_matrix());
        assert!(err < 0.05, "relative error {err} too large for int8");
    }

    #[test]
    fn quant_conv_tracks_f32_conv() {
        let geom = ConvGeom::same(3);
        let w = {
            let raw = init::random::<f32>(8, 3 * 9, 5);
            Matrix::from_fn(8, 27, |i, j| raw.get(i, j) * 0.2)
        };
        let f32_layer = Conv2d::new("c", 3, 8, geom, w.clone(), vec![0.0; 8]);
        let q_layer = QuantConv2d::from_f32("cq", 3, 8, geom, &w, vec![0.0; 8]);
        let input = Tensor::from_matrix(init::random::<f32>(3, 100, 6), 10, 10);
        let exact = f32_layer.forward(&ctx(), &input);
        let quant = q_layer.forward(&ctx(), &input);
        assert_eq!(q_layer.out_shape(3, 10, 10), (8, 10, 10));
        let err = rel_err(quant.as_matrix(), exact.as_matrix());
        assert!(err < 0.05, "relative error {err} too large for int8");
    }

    #[test]
    fn quantized_network_is_warm_alloc_free() {
        // Mixed f32 + int8 layers share one context: after the first pass
        // has sized both dtype pools, every layer — including the int8
        // GEMMs — must run allocation-free.
        let wq = init::random::<f32>(10, 16, 21);
        let net = Sequential::new(CakeConfig::with_threads(1))
            .push(Conv2d::random("conv", 3, 8, ConvGeom::same(3), 1))
            .push(QuantConv2d::from_f32(
                "qconv",
                8,
                16,
                ConvGeom::same(3),
                &init::random::<f32>(16, 72, 20),
                vec![0.0; 16],
            ))
            .push(crate::layers::GlobalAvgPool)
            .push(QuantLinear::from_f32("qfc", &wq, vec![0.0; 10]));
        let input = Tensor::from_matrix(init::random::<f32>(3, 64, 22), 8, 8);
        let (_, cold) = net.forward(&input);
        assert!(cold.iter().any(|r| r.gemm.allocations > 0), "cold pass must size pools");
        let (out, warm) = net.forward(&input);
        assert_eq!((out.channels(), out.height(), out.width()), (10, 1, 1));
        for r in &warm {
            assert_eq!(r.gemm.allocations, 0, "layer {} allocated when warm", r.name);
        }
    }
}
