//! Sequential networks with per-layer accounting.

use std::time::Instant;

use cake_core::api::{CakeConfig, CakeGemm};
use cake_core::executor::ExecStats;

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Per-layer forward-pass record.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Output shape `(c, h, w)`.
    pub out_shape: (usize, usize, usize),
    /// FLOPs performed.
    pub flops: u64,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Stats of the layer's GEMM call (the last one, for layers that issue
    /// several); all-zero for GEMM-free layers like pooling and ReLU. After
    /// the first forward pass `gemm.allocations` is 0 for every layer — the
    /// context's workspace is warm.
    pub gemm: ExecStats,
}

/// A feed-forward stack of layers sharing one CAKE GEMM context.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    ctx: CakeGemm,
}

impl Sequential {
    /// Empty network with a given GEMM configuration.
    pub fn new(cfg: CakeConfig) -> Self {
        Self {
            layers: Vec::new(),
            ctx: CakeGemm::new(cfg),
        }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Propagate an input shape through every layer; validates layer
    /// compatibility without running any arithmetic.
    ///
    /// # Panics
    /// Panics (inside the offending layer) on shape mismatch.
    pub fn shapes(&self, mut c: usize, mut h: usize, mut w: usize) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (nc, nh, nw) = layer.out_shape(c, h, w);
            out.push((nc, nh, nw));
            (c, h, w) = (nc, nh, nw);
        }
        out
    }

    /// Total FLOPs for an input shape.
    pub fn total_flops(&self, mut c: usize, mut h: usize, mut w: usize) -> u64 {
        let mut total = 0;
        for layer in &self.layers {
            total += layer.flops(c, h, w);
            (c, h, w) = layer.out_shape(c, h, w);
        }
        total
    }

    /// Run the forward pass, returning the output and per-layer reports.
    pub fn forward(&self, input: &Tensor) -> (Tensor, Vec<LayerReport>) {
        let mut x = input.clone();
        let mut reports = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (c, h, w) = (x.channels(), x.height(), x.width());
            let flops = layer.flops(c, h, w);
            let _ = self.ctx.take_stats(); // attribute GEMMs to this layer
            let t0 = Instant::now();
            let y = layer.forward(&self.ctx, &x);
            reports.push(LayerReport {
                name: layer.name().to_string(),
                out_shape: (y.channels(), y.height(), y.width()),
                flops,
                seconds: t0.elapsed().as_secs_f64(),
                gemm: self.ctx.take_stats(),
            });
            x = y;
        }
        (x, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::ConvGeom;
    use crate::layers::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU};

    fn tiny_net() -> Sequential {
        Sequential::new(CakeConfig::with_threads(1))
            .push(Conv2d::random("conv1", 3, 8, ConvGeom::same(3), 1))
            .push(ReLU)
            .push(MaxPool2d)
            .push(Conv2d::random("conv2", 8, 16, ConvGeom::same(3), 2))
            .push(ReLU)
            .push(GlobalAvgPool)
            .push(Linear::random("fc", 16, 10, 3))
    }

    #[test]
    fn shapes_propagate() {
        let net = tiny_net();
        let shapes = net.shapes(3, 16, 16);
        assert_eq!(shapes[0], (8, 16, 16)); // conv1
        assert_eq!(shapes[2], (8, 8, 8)); // maxpool
        assert_eq!(shapes[3], (16, 8, 8)); // conv2
        assert_eq!(shapes[5], (16, 1, 1)); // gap
        assert_eq!(shapes[6], (10, 1, 1)); // fc
    }

    #[test]
    fn forward_produces_logits_and_reports() {
        let net = tiny_net();
        let input = Tensor::from_matrix(cake_matrix::init::random::<f32>(3, 256, 9), 16, 16);
        let (out, reports) = net.forward(&input);
        assert_eq!((out.channels(), out.height(), out.width()), (10, 1, 1));
        assert_eq!(reports.len(), 7);
        assert!(out.as_matrix().as_slice().iter().all(|x| x.is_finite()));
        // Conv layers dominate FLOPs.
        let conv_flops: u64 = reports
            .iter()
            .filter(|r| r.name.starts_with("conv"))
            .map(|r| r.flops)
            .sum();
        assert!(conv_flops > 9 * reports.iter().map(|r| r.flops).sum::<u64>() / 10);
    }

    #[test]
    fn total_flops_matches_reports() {
        let net = tiny_net();
        let input = Tensor::<f32>::zeros(3, 16, 16);
        let (_, reports) = net.forward(&input);
        let total: u64 = reports.iter().map(|r| r.flops).sum();
        assert_eq!(total, net.total_flops(3, 16, 16));
        assert!(total > 0);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = tiny_net();
        let input = Tensor::from_matrix(cake_matrix::init::random::<f32>(3, 256, 10), 16, 16);
        let (a, _) = net.forward(&input);
        let (b, _) = net.forward(&input);
        assert_eq!(a.as_matrix().as_slice(), b.as_matrix().as_slice());
    }

    #[test]
    fn layer_reports_attribute_gemm_stats() {
        let net = tiny_net();
        let input = Tensor::from_matrix(cake_matrix::init::random::<f32>(3, 256, 11), 16, 16);
        let (_, cold) = net.forward(&input);
        for r in &cold {
            if r.name.starts_with("conv") || r.name == "fc" {
                assert!(r.gemm.blocks > 0, "{} ran a GEMM", r.name);
            } else {
                assert_eq!(r.gemm, cake_core::ExecStats::default(), "{}", r.name);
            }
        }
        // First pass sizes the shared workspace; a second pass over the same
        // shapes must be allocation-free in every layer.
        assert!(cold.iter().any(|r| r.gemm.allocations > 0));
        let (_, warm) = net.forward(&input);
        for r in &warm {
            assert_eq!(r.gemm.allocations, 0, "layer {} allocated when warm", r.name);
        }
    }

    #[test]
    fn empty_network_is_identity() {
        let net = Sequential::new(CakeConfig::with_threads(1));
        assert!(net.is_empty());
        let input = Tensor::from_fn(1, 2, 2, |_, y, x| (y + x) as f32);
        let (out, reports) = net.forward(&input);
        assert!(reports.is_empty());
        assert_eq!(out.get(0, 1, 1), 2.0);
    }
}
