//! CNN forward-pass substrate on CAKE GEMM.
//!
//! The paper motivates CAKE with deep-learning inference: "most
//! computations in the forward pass of a convolutional neural network
//! consist of one matrix multiplication per convolutional layer between
//! the inputs to and the weights of a layer". This crate builds that
//! workload properly:
//!
//! * [`tensor`] — a minimal `C x H x W` feature-map tensor over the
//!   workspace's matrix type.
//! * [`im2col`] — patch-matrix lowering (with stride and padding) that
//!   turns a convolution into the `(out_ch) x (in_ch*kh*kw) x (oh*ow)`
//!   GEMM the paper's analysis applies to, plus a direct-convolution
//!   reference used to verify it.
//! * [`layers`] — `Conv2d`, `Linear`, `ReLU`, `MaxPool2d`,
//!   `GlobalAvgPool`, all running their GEMMs through one shared
//!   [`cake_core::api::CakeGemm`] context (the drop-in-library usage the
//!   paper describes).
//! * [`network`] — a `Sequential` container with per-layer FLOP and
//!   timing accounting.
//! * [`quant`] — int8-quantized `Conv2d`/`Linear` variants (per-channel
//!   weight scales, per-tensor activation zero-point, i32 accumulate, f32
//!   requantize) running on the narrow-dtype kernel tier through the same
//!   shared workspace pools.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod im2col;
pub mod layers;
pub mod network;
pub mod quant;
pub mod tensor;

pub use layers::{Conv2d, GlobalAvgPool, Layer, Linear, MaxPool2d, ReLU};
pub use network::Sequential;
pub use quant::{QuantConv2d, QuantLinear};
pub use tensor::Tensor;
