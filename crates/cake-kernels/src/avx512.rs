//! AVX-512F microkernels (x86_64 only, selected at runtime).
//!
//! Register blocking widens the AVX2 Haswell tiles to the 32-register
//! zmm file (MOMMS: the tile shape must grow with the machine's
//! compute/bandwidth ratio):
//!
//! * f32 `14 x 32`: 28 accumulator ZMM registers (14 rows x 2 vectors of
//!   16 lanes), 2 registers for the `B` row, 1 for the `A` broadcast —
//!   31 of the 32 architectural ZMM registers.
//! * f64 `8 x 16`: 16 accumulators (8 rows x 2 vectors of 8 lanes) + 3.
//!
//! Both kernels share the AVX2 tier's structure: a fast store path for
//! unit column stride (`csc == 1`, row-major `C`) and a scalar fallback
//! for arbitrary strides. The K-loop additionally issues software
//! prefetches [`PF_DIST_K`] iterations ahead into the current packed
//! slivers, and the `C` tile rows are prefetched once at kernel entry so
//! the read-modify-write at store time hits cache (the BLIS prefetch
//! discipline). Only `avx512f` is required; the wider `bw/dq/vl` subsets
//! are not used.

use core::arch::x86_64::*;

use cake_matrix::Bf16;

use crate::ukernel::Ukr;

/// K-loop software-prefetch distance, in k iterations. One iteration of
/// the f32 kernel consumes 56 B of A and 128 B of B; four iterations
/// ahead keeps ~0.5 KiB in flight — far enough to cover an L2 hit,
/// near enough not to thrash L1. Shared with the AVX2 tier.
pub const PF_DIST_K: usize = 4;

/// The f32 `14x32` AVX-512F kernel, if the CPU supports it.
pub fn avx512_f32_14x32() -> Option<Ukr<f32>> {
    if is_x86_feature_detected!("avx512f") {
        Some(Ukr::new(14, 32, "avx512_f32_14x32", ukr_f32_14x32))
    } else {
        None
    }
}

/// The f64 `8x16` AVX-512F kernel, if the CPU supports it.
pub fn avx512_f64_8x16() -> Option<Ukr<f64>> {
    if is_x86_feature_detected!("avx512f") {
        Some(Ukr::new(8, 16, "avx512_f64_8x16", ukr_f64_8x16))
    } else {
        None
    }
}

/// The int8 `16x16` AVX-512 VNNI kernel (i32 accumulate), if the CPU
/// supports it. Needs F+BW (byte masks), VNNI (`vpdpbusd`), and VBMI
/// (`vpermb` for the in-register 4-k interleave — the packed sliver
/// layout stays plain k-major, shared with every other dtype).
///
/// `vpdpbusd` multiplies *unsigned* bytes by signed bytes, so A is biased
/// by +128 (one XOR) and the bias is cancelled at store time with a
/// per-column compensation row: `C += acc - 128 * sum_k B[k][j]`, where
/// the column sums ride along in a 17th accumulator fed by an all-ones
/// unsigned operand. The compensation is exact in i32, so the kernel is
/// bit-exact against the widening scalar reference for all inputs,
/// including `-128` and zero-padded sliver tails.
pub fn avx512_vnni_i8_16x16() -> Option<Ukr<i8>> {
    if is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx512bw")
        && is_x86_feature_detected!("avx512vnni")
        && is_x86_feature_detected!("avx512vbmi")
    {
        Some(Ukr::new(16, 16, "avx512_vnni_i8_16x16", ukr_i8_16x16))
    } else {
        None
    }
}

/// The bf16 `14x32` AVX-512 BF16 kernel (f32 accumulate), if the CPU
/// supports it. Needs F+BW (`vpermt2w` for the in-register 2-k pair
/// interleave) and BF16 (`vdpbf16ps`). Same 14x32 tile as the f32 kernel:
/// 28 f32 accumulators, each `vdpbf16ps` retiring two k steps.
pub fn avx512_bf16_14x32() -> Option<Ukr<Bf16>> {
    if is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx512bw")
        && is_x86_feature_detected!("avx512bf16")
    {
        Some(Ukr::new(14, 32, "avx512_bf16_14x32", ukr_bf16_14x32))
    } else {
        None
    }
}

/// Thin wrapper: dispatch requires a plain fn pointer, but the
/// target-feature function below must only be called after detection,
/// which `avx512_f32_14x32` guarantees.
///
/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX-512F must be available.
unsafe fn ukr_f32_14x32(kc: usize, a: *const f32, b: *const f32, c: *mut f32, rsc: usize, csc: usize) {
    // SAFETY: this fn pointer is only installed by `avx512_f32_14x32`
    // after runtime AVX-512F detection, and the caller upholds UkrFn's
    // contract, which is exactly the impl's pointer-validity requirement.
    unsafe { ukr_f32_14x32_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX-512F must be available.
unsafe fn ukr_f64_8x16(kc: usize, a: *const f64, b: *const f64, c: *mut f64, rsc: usize, csc: usize) {
    // SAFETY: installed by `avx512_f64_8x16` after AVX-512F detection;
    // the caller upholds UkrFn's contract.
    unsafe { ukr_f64_8x16_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX-512F enforced by `target_feature`.
#[target_feature(enable = "avx512f")]
unsafe fn ukr_f32_14x32_impl(
    kc: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 14;
    const NR: usize = 32;

    // SAFETY: UkrFn's contract gives `a` kc*14 elements, `b` kc*32, and
    // valid non-aliasing C addresses c[i*rsc + j*csc] for i < 14, j < 32.
    // Every offset below stays within those ranges — prefetch offsets are
    // clamped ((k + PF_DIST_K).min(kc - 1) keeps the prefetched k in
    // [0, kc)) — and the unaligned intrinsics have no alignment needs.
    unsafe {
        // Warm the C tile while the K-loop runs: these are exactly the
        // row base addresses the store loop will read-modify-write.
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc0 = [_mm512_setzero_ps(); MR];
        let mut acc1 = [_mm512_setzero_ps(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR).cast::<i8>(), _MM_HINT_T0);
            // One B row is 128 B = two cache lines.
            _mm_prefetch(b.add(kpf * NR).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(b.add(kpf * NR + 16).cast::<i8>(), _MM_HINT_T0);

            let bk = b.add(k * NR);
            let b0 = _mm512_loadu_ps(bk);
            let b1 = _mm512_loadu_ps(bk.add(16));
            let ak = a.add(k * MR);
            for i in 0..MR {
                let ai = _mm512_set1_ps(*ak.add(i));
                acc0[i] = _mm512_fmadd_ps(ai, b0, acc0[i]);
                acc1[i] = _mm512_fmadd_ps(ai, b1, acc1[i]);
            }
        }

        if csc == 1 {
            for i in 0..MR {
                let row = c.add(i * rsc);
                let c0 = _mm512_loadu_ps(row);
                let c1 = _mm512_loadu_ps(row.add(16));
                _mm512_storeu_ps(row, _mm512_add_ps(c0, acc0[i]));
                _mm512_storeu_ps(row.add(16), _mm512_add_ps(c1, acc1[i]));
            }
        } else {
            let mut lanes = [0.0f32; NR];
            for i in 0..MR {
                _mm512_storeu_ps(lanes.as_mut_ptr(), acc0[i]);
                _mm512_storeu_ps(lanes.as_mut_ptr().add(16), acc1[i]);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX-512F enforced by `target_feature`.
#[target_feature(enable = "avx512f")]
unsafe fn ukr_f64_8x16_impl(
    kc: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 8;
    const NR: usize = 16;

    // SAFETY: UkrFn's contract gives `a` kc*8 elements, `b` kc*16
    // elements, and valid non-aliasing C addresses c[i*rsc + j*csc] for
    // i < 8, j < 16. All offsets below stay within those ranges, the
    // prefetch offsets are clamped to the same ranges, and the unaligned
    // load/store intrinsics have no alignment requirement.
    unsafe {
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc0 = [_mm512_setzero_pd(); MR];
        let mut acc1 = [_mm512_setzero_pd(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR).cast::<i8>(), _MM_HINT_T0);
            // One B row is 128 B = two cache lines.
            _mm_prefetch(b.add(kpf * NR).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(b.add(kpf * NR + 8).cast::<i8>(), _MM_HINT_T0);

            let bk = b.add(k * NR);
            let b0 = _mm512_loadu_pd(bk);
            let b1 = _mm512_loadu_pd(bk.add(8));
            let ak = a.add(k * MR);
            for i in 0..MR {
                let ai = _mm512_set1_pd(*ak.add(i));
                acc0[i] = _mm512_fmadd_pd(ai, b0, acc0[i]);
                acc1[i] = _mm512_fmadd_pd(ai, b1, acc1[i]);
            }
        }

        if csc == 1 {
            for i in 0..MR {
                let row = c.add(i * rsc);
                let c0 = _mm512_loadu_pd(row);
                let c1 = _mm512_loadu_pd(row.add(8));
                _mm512_storeu_pd(row, _mm512_add_pd(c0, acc0[i]));
                _mm512_storeu_pd(row.add(8), _mm512_add_pd(c1, acc1[i]));
            }
        } else {
            let mut lanes = [0.0f64; NR];
            for i in 0..MR {
                _mm512_storeu_pd(lanes.as_mut_ptr(), acc0[i]);
                _mm512_storeu_pd(lanes.as_mut_ptr().add(8), acc1[i]);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX-512 F/BW/VNNI/VBMI must
/// be available.
unsafe fn ukr_i8_16x16(kc: usize, a: *const i8, b: *const i8, c: *mut i32, rsc: usize, csc: usize) {
    // SAFETY: installed by `avx512_vnni_i8_16x16` after runtime detection
    // of all four features; the caller upholds UkrFn's contract.
    unsafe { ukr_i8_16x16_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX-512 F/BW/BF16 must be
/// available.
unsafe fn ukr_bf16_14x32(kc: usize, a: *const Bf16, b: *const Bf16, c: *mut f32, rsc: usize, csc: usize) {
    // SAFETY: installed by `avx512_bf16_14x32` after runtime detection of
    // all three features; the caller upholds UkrFn's contract.
    unsafe { ukr_bf16_14x32_impl(kc, a, b, c, rsc, csc) }
}

/// Groups of four k values staged per chunk of the VNNI kernel's A
/// pre-pass (4 KiB of stack — comfortably L1-resident alongside the B
/// panel slice the hot loop streams).
const VNNI_CHUNK: usize = 64;

/// 64-byte-aligned staging buffer: the VNNI kernel's pre-pass writes one
/// permuted+biased A group (16 dwords) per slot, and the hot loop reads
/// each row operand back as a plain `vpbroadcastd` load (one port-2/3
/// uop) instead of a cross-lane shuffle — shuffles share ports with
/// `vpdpbusd`, so every one issued in the hot loop would steal a MAC slot.
#[repr(align(64))]
struct Staged {
    // Accessed exclusively through `MaybeUninit` pointer casts; the field
    // exists to give the buffer its size and 64-byte alignment.
    _slots: [i32; 16 * VNNI_CHUNK],
}

/// 4-k interleave permutation for the VNNI kernel: output byte
/// `4*lane + t` takes input byte `t*16 + lane`, so one 64-byte load of
/// four k-major 16-wide rows becomes one dword per row/column holding
/// its four consecutive k values — exactly `vpdpbusd`'s operand shape.
/// The same index serves A and B because both use 16-element rows.
static VNNI_IDX: [u8; 64] = vnni_idx();

const fn vnni_idx() -> [u8; 64] {
    let mut idx = [0u8; 64];
    let mut lane = 0;
    while lane < 16 {
        let mut t = 0;
        while t < 4 {
            idx[4 * lane + t] = (t * 16 + lane) as u8;
            t += 1;
        }
        lane += 1;
    }
    idx
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; features enforced by
/// `target_feature`.
#[target_feature(enable = "avx512f,avx512bw,avx512vnni,avx512vbmi")]
unsafe fn ukr_i8_16x16_impl(
    kc: usize,
    a: *const i8,
    b: *const i8,
    c: *mut i32,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 16;
    const NR: usize = 16;

    // UkrFn's contract gives `a` kc*16 i8 elements, `b` kc*16 i8 elements,
    // and valid non-aliasing C addresses c[i*rsc + j*csc] for i < 16,
    // j < 16. Full-group loads read the 64 bytes at offset k0*16 with
    // k0 + 4 <= kc, so they stay inside kc*16; the tail load is byte-masked
    // to the remaining rem*16 bytes (masked-off bytes are never touched).
    // SAFETY: the contract above bounds every pointer add; prefetch offsets
    // are clamped to [0, kc); the unaligned intrinsics have no alignment
    // requirement; the relay store is 64 bytes into an align(64) buffer.
    unsafe {
        // Load the permutation through an opaque pointer: with a
        // known-constant selector LLVM rewrites the staging `vpermb` into
        // a ~13-op xmm unpack chain that floods the shuffle ports the
        // MACs need. One black_box per call pins it as a single vpermb.
        let vidx = _mm512_loadu_si512(std::hint::black_box(VNNI_IDX.as_ptr()).cast());
        // a ^ 0x80 == a + 128 reinterpreted as unsigned: vpdpbusd wants a
        // u8 left operand. The +128 bias adds 128 * sum_k b[k][j] to every
        // accumulator row, which `comp` tracks exactly for store-time
        // cancellation.
        let bias = _mm512_set1_epi8(-128i8);
        let ones = _mm512_set1_epi8(1);

        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc = [_mm512_setzero_si512(); MR];
        let mut comp = _mm512_setzero_si512();
        // Deliberately uninitialized: zero-filling 8 KiB of staging per
        // call compiles to a memset that dwarfs the MAC loop at small kc.
        // Every slot the kernel reads is stored first — the prologue
        // stages chunk 0's `min(VNNI_CHUNK, groups)` slots, iteration ci
        // reads exactly the `len` slots that the prologue (ci = 0) or
        // iteration ci-1's staging pass (`nlen == len` of ci) wrote, and
        // the k-tail writes slot 0 of `staged[0]` before reading it.
        let mut staged = [
            std::mem::MaybeUninit::<Staged>::uninit(),
            std::mem::MaybeUninit::<Staged>::uninit(),
        ];

        let groups = kc / 4;
        let rem = kc % 4;

        // Chunk-pipelined schedule: while the hot loop consumes chunk c's
        // staged A groups as dword broadcasts, it also permutes+biases
        // chunk c+1 into the other staging buffer. The staging shuffles
        // ride the hot loop's idle shuffle/store slots (`vpdpbusd` leaves
        // them free), and every staged read sits a whole chunk after its
        // store — so staging costs neither MAC slots nor forwarding stalls.
        let chunks = groups.div_ceil(VNNI_CHUNK);
        for cg in 0..VNNI_CHUNK.min(groups) {
            // Prologue: stage chunk 0.
            let araw = _mm512_loadu_si512(a.add(cg * 4 * MR).cast());
            let au = _mm512_xor_si512(_mm512_permutexvar_epi8(vidx, araw), bias);
            _mm512_storeu_si512(staged[0].as_mut_ptr().cast::<i32>().add(cg * 16).cast(), au);
        }
        for ci in 0..chunks {
            let base = ci * VNNI_CHUNK;
            let len = VNNI_CHUNK.min(groups - base);
            let nbase = base + len;
            let nlen = VNNI_CHUNK.min(groups.saturating_sub(nbase));
            let cur = staged[ci & 1].as_ptr().cast::<i32>();
            let nxt = staged[(ci + 1) & 1].as_mut_ptr().cast::<i32>();
            for cg in 0..len {
                if cg < nlen {
                    let araw = _mm512_loadu_si512(a.add((nbase + cg) * 4 * MR).cast());
                    let au = _mm512_xor_si512(_mm512_permutexvar_epi8(vidx, araw), bias);
                    _mm512_storeu_si512(nxt.add(cg * 16).cast(), au);
                }
                let k0 = (base + cg) * 4;
                let kpf = (k0 + 4 * PF_DIST_K).min(kc - 1);
                _mm_prefetch(b.add(kpf * NR), _MM_HINT_T0);
                let braw = _mm512_loadu_si512(b.add(k0 * NR).cast());
                let bperm = _mm512_permutexvar_epi8(vidx, braw);
                comp = _mm512_dpbusd_epi32(comp, ones, bperm);
                for (i, accr) in acc.iter_mut().enumerate() {
                    let va = _mm512_set1_epi32(*cur.add(cg * 16 + i));
                    *accr = _mm512_dpbusd_epi32(*accr, va, bperm);
                }
            }
        }

        if rem > 0 {
            // Tail: load only the rem*16 live bytes. After the bias XOR
            // the dead A bytes read 0x80, but their B partners are zero,
            // so both acc and comp gain exactly 0 from dead lanes.
            let k0 = groups * 4;
            let mask: __mmask64 = (1u64 << (rem * 16)) - 1;
            let araw = _mm512_maskz_loadu_epi8(mask, a.add(k0 * MR));
            let braw = _mm512_maskz_loadu_epi8(mask, b.add(k0 * NR));
            let bperm = _mm512_permutexvar_epi8(vidx, braw);
            let au = _mm512_xor_si512(_mm512_permutexvar_epi8(vidx, araw), bias);
            let tail = staged[0].as_mut_ptr().cast::<i32>();
            _mm512_storeu_si512(tail.cast(), au);
            comp = _mm512_dpbusd_epi32(comp, ones, bperm);
            for (i, accr) in acc.iter_mut().enumerate() {
                let va = _mm512_set1_epi32(*tail.add(i));
                *accr = _mm512_dpbusd_epi32(*accr, va, bperm);
            }
        }

        // C[i][j] += acc[i][j] - 128 * comp[j].
        let comp128 = _mm512_slli_epi32::<7>(comp);
        if csc == 1 {
            for (i, accv) in acc.iter().enumerate() {
                let row = c.add(i * rsc);
                let cur = _mm512_loadu_si512(row.cast());
                let val = _mm512_add_epi32(cur, _mm512_sub_epi32(*accv, comp128));
                _mm512_storeu_si512(row.cast(), val);
            }
        } else {
            let mut lanes = [0i32; NR];
            let mut comp_lanes = [0i32; NR];
            _mm512_storeu_si512(comp_lanes.as_mut_ptr().cast(), comp128);
            for (i, accv) in acc.iter().enumerate() {
                _mm512_storeu_si512(lanes.as_mut_ptr().cast(), *accv);
                for (j, (&lv, &cv)) in lanes.iter().zip(comp_lanes.iter()).enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += lv - cv;
                }
            }
        }
    }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; features enforced by
/// `target_feature`.
#[target_feature(enable = "avx512f,avx512bw,avx512bf16")]
unsafe fn ukr_bf16_14x32_impl(
    kc: usize,
    a: *const Bf16,
    b: *const Bf16,
    c: *mut f32,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 14;
    const NR: usize = 32;

    // 2-k pair interleave for vpermt2w: output word 2j takes word j of
    // the even-k row (selector j), word 2j+1 takes word j of the odd-k
    // row (selector 32 + j). `lo` covers columns 0..16, `hi` 16..32 —
    // each produces 16 column-pairs, vdpbf16ps's operand shape.
    let mut idx_lo = [0u16; 32];
    let mut idx_hi = [0u16; 32];
    for j in 0..16 {
        idx_lo[2 * j] = j as u16;
        idx_lo[2 * j + 1] = (32 + j) as u16;
        idx_hi[2 * j] = (16 + j) as u16;
        idx_hi[2 * j + 1] = (48 + j) as u16;
    }
    // Opaque for the same reason as the VNNI kernel's index: a constant
    // selector invites LLVM to lower vpermt2w into unpack chains.
    let idx_lo = std::hint::black_box(idx_lo);
    let idx_hi = std::hint::black_box(idx_hi);

    // UkrFn's contract gives `a` kc*14 bf16 elements, `b` kc*32 bf16
    // elements, and valid non-aliasing C addresses c[i*rsc + j*csc] for
    // i < 14, j < 32. B-row loads read the 64 bytes of row k (k < kc,
    // offset k*32 words); A-row loads are word-masked to the row's 14 live
    // words (masked-off words never touched); the odd-kc tail pairs the
    // last row with an all-zero register, reading nothing extra.
    // SAFETY: the contract above bounds every pointer add; prefetch offsets
    // are clamped to [0, kc); the unaligned intrinsics have no alignment
    // requirement; staging stores land at slot cp < VNNI_CHUNK, 64 bytes
    // each, inside the align(64) `Staged` buffer of 16 * VNNI_CHUNK dwords.
    unsafe {
        let vlo = _mm512_loadu_si512(idx_lo.as_ptr().cast());
        let vhi = _mm512_loadu_si512(idx_hi.as_ptr().cast());
        let amask: __mmask32 = 0x3FFF; // 14 live words per A row

        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc0 = [_mm512_setzero_ps(); MR];
        let mut acc1 = [_mm512_setzero_ps(); MR];
        // Uninitialized for the same reason as the VNNI kernel: the 4 KiB
        // zero-fill is a per-call memset, and every slot read below is
        // stored by the pre-pass (slots 0..chunk) or the odd tail (slot 0)
        // before the hot loop touches it.
        let mut staged = std::mem::MaybeUninit::<Staged>::uninit();
        let stage = staged.as_mut_ptr().cast::<i32>();

        // Chunked two-pass schedule, same as the VNNI kernel: the pre-pass
        // pair-interleaves up to VNNI_CHUNK A row pairs into `staged` (one
        // 64-byte slot per pair), then the hot loop re-reads each row's
        // k-pair as a dword broadcast — keeping every vpermt2w out of the
        // hot loop and every staging read a full pass away from its store.
        let pairs = kc / 2;
        let mut p0 = 0usize;
        while p0 < pairs {
            let chunk = VNNI_CHUNK.min(pairs - p0);
            for cp in 0..chunk {
                let k0 = 2 * (p0 + cp);
                let a0 = _mm512_maskz_loadu_epi16(amask, a.add(k0 * MR).cast::<i16>());
                let a1 = _mm512_maskz_loadu_epi16(amask, a.add((k0 + 1) * MR).cast::<i16>());
                let apair = _mm512_permutex2var_epi16(a0, vlo, a1);
                _mm512_storeu_si512(stage.add(cp * 16).cast(), apair);
            }
            for cp in 0..chunk {
                let k0 = 2 * (p0 + cp);
                let kpf = (k0 + 2 * PF_DIST_K).min(kc - 1);
                _mm_prefetch(b.add(kpf * NR).cast::<i8>(), _MM_HINT_T0);

                let b0 = _mm512_loadu_si512(b.add(k0 * NR).cast());
                let b1 = _mm512_loadu_si512(b.add((k0 + 1) * NR).cast());
                let blo = _mm512_permutex2var_epi16(b0, vlo, b1);
                let bhi = _mm512_permutex2var_epi16(b0, vhi, b1);

                for i in 0..MR {
                    let va: __m512bh = core::mem::transmute(_mm512_set1_epi32(*stage.add(cp * 16 + i)));
                    acc0[i] =
                        _mm512_dpbf16_ps(acc0[i], va, core::mem::transmute::<__m512i, __m512bh>(blo));
                    acc1[i] =
                        _mm512_dpbf16_ps(acc1[i], va, core::mem::transmute::<__m512i, __m512bh>(bhi));
                }
            }
            p0 += chunk;
        }

        if kc % 2 == 1 {
            // Odd tail: pair the final k with a zero row; 0.0bf16 products
            // contribute exactly 0.0f32 to the dot accumulation.
            let k0 = kc - 1;
            let b0 = _mm512_loadu_si512(b.add(k0 * NR).cast());
            let zero = _mm512_setzero_si512();
            let blo = _mm512_permutex2var_epi16(b0, vlo, zero);
            let bhi = _mm512_permutex2var_epi16(b0, vhi, zero);
            let a0 = _mm512_maskz_loadu_epi16(amask, a.add(k0 * MR).cast::<i16>());
            let apair = _mm512_permutex2var_epi16(a0, vlo, zero);
            _mm512_storeu_si512(stage.cast(), apair);
            for i in 0..MR {
                let va: __m512bh = core::mem::transmute(_mm512_set1_epi32(*stage.add(i)));
                acc0[i] = _mm512_dpbf16_ps(acc0[i], va, core::mem::transmute::<__m512i, __m512bh>(blo));
                acc1[i] = _mm512_dpbf16_ps(acc1[i], va, core::mem::transmute::<__m512i, __m512bh>(bhi));
            }
        }

        if csc == 1 {
            for i in 0..MR {
                let row = c.add(i * rsc);
                let c0 = _mm512_loadu_ps(row);
                let c1 = _mm512_loadu_ps(row.add(16));
                _mm512_storeu_ps(row, _mm512_add_ps(c0, acc0[i]));
                _mm512_storeu_ps(row.add(16), _mm512_add_ps(c1, acc1[i]));
            }
        } else {
            let mut lanes = [0.0f32; NR];
            for i in 0..MR {
                _mm512_storeu_ps(lanes.as_mut_ptr(), acc0[i]);
                _mm512_storeu_ps(lanes.as_mut_ptr().add(16), acc1[i]);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ukernel::reference_ukr;
    use cake_matrix::init;

    fn check_f32(kc: usize, rsc: usize, csc: usize, c_len: usize) {
        let Some(ukr) = avx512_f32_14x32() else {
            eprintln!("AVX-512F not available; skipping");
            return;
        };
        let a = init::random::<f32>(kc, 14, 5);
        let b = init::random::<f32>(kc, 32, 6);
        let mut c1 = vec![1.0f32; c_len];
        let mut c2 = c1.clone();
        // SAFETY: a/b are kc*14- and kc*32-element slivers, and each caller
        // passes a c_len large enough that 13*rsc + 31*csc < c_len.
        unsafe {
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
        };
        reference_ukr(kc, 14, 32, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn f32_unit_stride_matches_reference() {
        for kc in [1, 2, 5, 9, 100] {
            check_f32(kc, 32, 1, 14 * 32);
        }
    }

    #[test]
    fn f32_wide_row_stride() {
        check_f32(33, 40, 1, 14 * 40);
    }

    #[test]
    fn f32_column_major_c() {
        check_f32(17, 1, 14, 32 * 14);
    }

    #[test]
    fn f64_matches_reference_various_strides() {
        let Some(ukr) = avx512_f64_8x16() else {
            eprintln!("AVX-512F not available; skipping");
            return;
        };
        for (kc, rsc, csc, len) in [(1, 16, 1, 128), (23, 19, 1, 8 * 19), (23, 1, 8, 128)] {
            let a = init::random::<f64>(kc, 8, 7);
            let b = init::random::<f64>(kc, 16, 8);
            let mut c1 = vec![0.5f64; len];
            let mut c2 = c1.clone();
            // SAFETY: a/b are kc*8- and kc*16-element slivers; each (rsc,
            // csc, len) triple satisfies 7*rsc + 15*csc < len.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
            };
            reference_ukr(kc, 8, 16, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let Some(ukr) = avx512_f32_14x32() else {
            return;
        };
        let kc = 4;
        let a = init::ones::<f32>(kc, 14);
        let b = init::ones::<f32>(kc, 32);
        let mut c = vec![10.0f32; 14 * 32];
        // SAFETY: a/b are kc*14 and kc*32 ones-filled slivers, and c is a
        // dense 14x32 row-major tile (rsc=32, csc=1).
        unsafe {
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c.as_mut_ptr(), 32, 1)
        };
        // Each element: 10 + sum_k 1*1 = 10 + kc.
        assert!(c.iter().all(|&x| x == 14.0));
    }

    #[test]
    fn shapes_agree_with_the_tier_registry() {
        // The selection ladder and the audit lemma both rely on these
        // exact shapes; pin them here where the kernels live.
        if let Some(kf) = avx512_f32_14x32() {
            assert_eq!((kf.mr(), kf.nr()), (14, 32));
            assert!(kf.mr() * kf.nr() <= crate::edge::MAX_TILE);
        }
        if let Some(kd) = avx512_f64_8x16() {
            assert_eq!((kd.mr(), kd.nr()), (8, 16));
            assert!(kd.mr() * kd.nr() <= crate::edge::MAX_TILE);
        }
        if let Some(ki) = avx512_vnni_i8_16x16() {
            assert_eq!((ki.mr(), ki.nr()), (16, 16));
            assert!(ki.mr() * ki.nr() <= crate::edge::MAX_TILE);
        }
        if let Some(kb) = avx512_bf16_14x32() {
            assert_eq!((kb.mr(), kb.nr()), (14, 32));
            assert!(kb.mr() * kb.nr() <= crate::edge::MAX_TILE);
        }
    }

    #[test]
    fn i8_matches_reference_exactly_various_kc_and_strides() {
        let Some(ukr) = avx512_vnni_i8_16x16() else {
            eprintln!("AVX-512 VNNI/VBMI not available; skipping");
            return;
        };
        // kc sweeps every tail residue (rem 0..3) plus long runs.
        for (kc, rsc, csc, len) in [
            (1, 16, 1, 256),
            (2, 16, 1, 256),
            (3, 16, 1, 256),
            (4, 16, 1, 256),
            (5, 16, 1, 256),
            (63, 19, 1, 16 * 19),
            (64, 16, 1, 256),
            (257, 1, 16, 256),
        ] {
            let a = init::random_i8(kc, 16, kc as u64);
            let b = init::random_i8(kc, 16, kc as u64 + 1);
            let mut c1 = vec![-3i32; len];
            let mut c2 = c1.clone();
            // SAFETY: a/b are kc*16-element slivers; each (rsc, csc, len)
            // triple satisfies 15*rsc + 15*csc < len.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
            };
            reference_ukr(kc, 16, 16, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
            assert_eq!(c1, c2, "kc={kc} rsc={rsc} csc={csc}");
        }
    }

    #[test]
    fn i8_bias_compensation_is_exact_at_extremes() {
        // -128 x -128 everywhere: the biased unsigned operand is 0, so the
        // whole result rides on the compensation row being exact.
        let Some(ukr) = avx512_vnni_i8_16x16() else {
            return;
        };
        for kc in [1, 3, 4, 7, 32] {
            let a = vec![-128i8; kc * 16];
            let b = vec![-128i8; kc * 16];
            let mut c = vec![0i32; 256];
            // SAFETY: a/b are kc*16 slivers; c is a dense 16x16 tile.
            unsafe { ukr.call(kc, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), 16, 1) };
            assert!(c.iter().all(|&x| x == 16384 * kc as i32), "kc={kc}");
        }
    }

    #[test]
    fn i8_zero_padded_rows_contribute_nothing() {
        // Simulates pack_a's zero-padded sliver tail: rows 8.. are zero;
        // the bias trick must cancel exactly so those C rows stay put.
        let Some(ukr) = avx512_vnni_i8_16x16() else {
            return;
        };
        let kc = 9;
        let mut a = vec![0i8; kc * 16];
        for k in 0..kc {
            for i in 0..8 {
                a[k * 16 + i] = (k as i8).wrapping_mul(7).wrapping_add(i as i8);
            }
        }
        let b = init::random_i8(kc, 16, 77);
        let mut c = vec![5i32; 256];
        // SAFETY: a/b are kc*16 slivers; c is a dense 16x16 tile.
        unsafe { ukr.call(kc, a.as_ptr(), b.as_slice().as_ptr(), c.as_mut_ptr(), 16, 1) };
        for i in 8..16 {
            for j in 0..16 {
                assert_eq!(c[i * 16 + j], 5, "padded row changed at ({i},{j})");
            }
        }
    }

    #[test]
    fn bf16_matches_reference_various_kc_and_strides() {
        let Some(ukr) = avx512_bf16_14x32() else {
            eprintln!("AVX-512 BF16 not available; skipping");
            return;
        };
        // Odd and even kc to cover the zero-padded tail pair.
        for (kc, rsc, csc, len) in [
            (1, 32, 1, 14 * 32),
            (2, 32, 1, 14 * 32),
            (9, 40, 1, 14 * 40),
            (64, 32, 1, 14 * 32),
            (17, 1, 14, 32 * 14),
        ] {
            let a = init::random::<Bf16>(kc, 14, kc as u64 + 30);
            let b = init::random::<Bf16>(kc, 32, kc as u64 + 31);
            let mut c1 = vec![0.75f32; len];
            let mut c2 = c1.clone();
            // SAFETY: a/b are kc*14- and kc*32-element slivers; each (rsc,
            // csc, len) triple satisfies 13*rsc + 31*csc < len.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
            };
            reference_ukr(kc, 14, 32, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
            // Pairwise vdpbf16ps accumulation vs sequential reference: the
            // products themselves are exact, only summation order differs.
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()) * kc as f32, "{x} vs {y} kc={kc}");
            }
        }
    }
}
