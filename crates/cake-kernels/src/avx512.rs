//! AVX-512F microkernels (x86_64 only, selected at runtime).
//!
//! Register blocking widens the AVX2 Haswell tiles to the 32-register
//! zmm file (MOMMS: the tile shape must grow with the machine's
//! compute/bandwidth ratio):
//!
//! * f32 `14 x 32`: 28 accumulator ZMM registers (14 rows x 2 vectors of
//!   16 lanes), 2 registers for the `B` row, 1 for the `A` broadcast —
//!   31 of the 32 architectural ZMM registers.
//! * f64 `8 x 16`: 16 accumulators (8 rows x 2 vectors of 8 lanes) + 3.
//!
//! Both kernels share the AVX2 tier's structure: a fast store path for
//! unit column stride (`csc == 1`, row-major `C`) and a scalar fallback
//! for arbitrary strides. The K-loop additionally issues software
//! prefetches [`PF_DIST_K`] iterations ahead into the current packed
//! slivers, and the `C` tile rows are prefetched once at kernel entry so
//! the read-modify-write at store time hits cache (the BLIS prefetch
//! discipline). Only `avx512f` is required; the wider `bw/dq/vl` subsets
//! are not used.

use core::arch::x86_64::*;

use crate::ukernel::Ukr;

/// K-loop software-prefetch distance, in k iterations. One iteration of
/// the f32 kernel consumes 56 B of A and 128 B of B; four iterations
/// ahead keeps ~0.5 KiB in flight — far enough to cover an L2 hit,
/// near enough not to thrash L1. Shared with the AVX2 tier.
pub const PF_DIST_K: usize = 4;

/// The f32 `14x32` AVX-512F kernel, if the CPU supports it.
pub fn avx512_f32_14x32() -> Option<Ukr<f32>> {
    if is_x86_feature_detected!("avx512f") {
        Some(Ukr::new(14, 32, "avx512_f32_14x32", ukr_f32_14x32))
    } else {
        None
    }
}

/// The f64 `8x16` AVX-512F kernel, if the CPU supports it.
pub fn avx512_f64_8x16() -> Option<Ukr<f64>> {
    if is_x86_feature_detected!("avx512f") {
        Some(Ukr::new(8, 16, "avx512_f64_8x16", ukr_f64_8x16))
    } else {
        None
    }
}

/// Thin wrapper: dispatch requires a plain fn pointer, but the
/// target-feature function below must only be called after detection,
/// which `avx512_f32_14x32` guarantees.
///
/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX-512F must be available.
unsafe fn ukr_f32_14x32(kc: usize, a: *const f32, b: *const f32, c: *mut f32, rsc: usize, csc: usize) {
    // SAFETY: this fn pointer is only installed by `avx512_f32_14x32`
    // after runtime AVX-512F detection, and the caller upholds UkrFn's
    // contract, which is exactly the impl's pointer-validity requirement.
    unsafe { ukr_f32_14x32_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX-512F must be available.
unsafe fn ukr_f64_8x16(kc: usize, a: *const f64, b: *const f64, c: *mut f64, rsc: usize, csc: usize) {
    // SAFETY: installed by `avx512_f64_8x16` after AVX-512F detection;
    // the caller upholds UkrFn's contract.
    unsafe { ukr_f64_8x16_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX-512F enforced by `target_feature`.
#[target_feature(enable = "avx512f")]
unsafe fn ukr_f32_14x32_impl(
    kc: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 14;
    const NR: usize = 32;

    // SAFETY: UkrFn's contract gives `a` kc*14 elements, `b` kc*32, and
    // valid non-aliasing C addresses c[i*rsc + j*csc] for i < 14, j < 32.
    // Every offset below stays within those ranges — prefetch offsets are
    // clamped ((k + PF_DIST_K).min(kc - 1) keeps the prefetched k in
    // [0, kc)) — and the unaligned intrinsics have no alignment needs.
    unsafe {
        // Warm the C tile while the K-loop runs: these are exactly the
        // row base addresses the store loop will read-modify-write.
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc0 = [_mm512_setzero_ps(); MR];
        let mut acc1 = [_mm512_setzero_ps(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR).cast::<i8>(), _MM_HINT_T0);
            // One B row is 128 B = two cache lines.
            _mm_prefetch(b.add(kpf * NR).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(b.add(kpf * NR + 16).cast::<i8>(), _MM_HINT_T0);

            let bk = b.add(k * NR);
            let b0 = _mm512_loadu_ps(bk);
            let b1 = _mm512_loadu_ps(bk.add(16));
            let ak = a.add(k * MR);
            for i in 0..MR {
                let ai = _mm512_set1_ps(*ak.add(i));
                acc0[i] = _mm512_fmadd_ps(ai, b0, acc0[i]);
                acc1[i] = _mm512_fmadd_ps(ai, b1, acc1[i]);
            }
        }

        if csc == 1 {
            for i in 0..MR {
                let row = c.add(i * rsc);
                let c0 = _mm512_loadu_ps(row);
                let c1 = _mm512_loadu_ps(row.add(16));
                _mm512_storeu_ps(row, _mm512_add_ps(c0, acc0[i]));
                _mm512_storeu_ps(row.add(16), _mm512_add_ps(c1, acc1[i]));
            }
        } else {
            let mut lanes = [0.0f32; NR];
            for i in 0..MR {
                _mm512_storeu_ps(lanes.as_mut_ptr(), acc0[i]);
                _mm512_storeu_ps(lanes.as_mut_ptr().add(16), acc1[i]);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX-512F enforced by `target_feature`.
#[target_feature(enable = "avx512f")]
unsafe fn ukr_f64_8x16_impl(
    kc: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 8;
    const NR: usize = 16;

    // SAFETY: UkrFn's contract gives `a` kc*8 elements, `b` kc*16
    // elements, and valid non-aliasing C addresses c[i*rsc + j*csc] for
    // i < 8, j < 16. All offsets below stay within those ranges, the
    // prefetch offsets are clamped to the same ranges, and the unaligned
    // load/store intrinsics have no alignment requirement.
    unsafe {
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc0 = [_mm512_setzero_pd(); MR];
        let mut acc1 = [_mm512_setzero_pd(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR).cast::<i8>(), _MM_HINT_T0);
            // One B row is 128 B = two cache lines.
            _mm_prefetch(b.add(kpf * NR).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(b.add(kpf * NR + 8).cast::<i8>(), _MM_HINT_T0);

            let bk = b.add(k * NR);
            let b0 = _mm512_loadu_pd(bk);
            let b1 = _mm512_loadu_pd(bk.add(8));
            let ak = a.add(k * MR);
            for i in 0..MR {
                let ai = _mm512_set1_pd(*ak.add(i));
                acc0[i] = _mm512_fmadd_pd(ai, b0, acc0[i]);
                acc1[i] = _mm512_fmadd_pd(ai, b1, acc1[i]);
            }
        }

        if csc == 1 {
            for i in 0..MR {
                let row = c.add(i * rsc);
                let c0 = _mm512_loadu_pd(row);
                let c1 = _mm512_loadu_pd(row.add(8));
                _mm512_storeu_pd(row, _mm512_add_pd(c0, acc0[i]));
                _mm512_storeu_pd(row.add(8), _mm512_add_pd(c1, acc1[i]));
            }
        } else {
            let mut lanes = [0.0f64; NR];
            for i in 0..MR {
                _mm512_storeu_pd(lanes.as_mut_ptr(), acc0[i]);
                _mm512_storeu_pd(lanes.as_mut_ptr().add(8), acc1[i]);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ukernel::reference_ukr;
    use cake_matrix::init;

    fn check_f32(kc: usize, rsc: usize, csc: usize, c_len: usize) {
        let Some(ukr) = avx512_f32_14x32() else {
            eprintln!("AVX-512F not available; skipping");
            return;
        };
        let a = init::random::<f32>(kc, 14, 5);
        let b = init::random::<f32>(kc, 32, 6);
        let mut c1 = vec![1.0f32; c_len];
        let mut c2 = c1.clone();
        // SAFETY: a/b are kc*14- and kc*32-element slivers, and each caller
        // passes a c_len large enough that 13*rsc + 31*csc < c_len.
        unsafe {
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
        };
        reference_ukr(kc, 14, 32, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn f32_unit_stride_matches_reference() {
        for kc in [1, 2, 5, 9, 100] {
            check_f32(kc, 32, 1, 14 * 32);
        }
    }

    #[test]
    fn f32_wide_row_stride() {
        check_f32(33, 40, 1, 14 * 40);
    }

    #[test]
    fn f32_column_major_c() {
        check_f32(17, 1, 14, 32 * 14);
    }

    #[test]
    fn f64_matches_reference_various_strides() {
        let Some(ukr) = avx512_f64_8x16() else {
            eprintln!("AVX-512F not available; skipping");
            return;
        };
        for (kc, rsc, csc, len) in [(1, 16, 1, 128), (23, 19, 1, 8 * 19), (23, 1, 8, 128)] {
            let a = init::random::<f64>(kc, 8, 7);
            let b = init::random::<f64>(kc, 16, 8);
            let mut c1 = vec![0.5f64; len];
            let mut c2 = c1.clone();
            // SAFETY: a/b are kc*8- and kc*16-element slivers; each (rsc,
            // csc, len) triple satisfies 7*rsc + 15*csc < len.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
            };
            reference_ukr(kc, 8, 16, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let Some(ukr) = avx512_f32_14x32() else {
            return;
        };
        let kc = 4;
        let a = init::ones::<f32>(kc, 14);
        let b = init::ones::<f32>(kc, 32);
        let mut c = vec![10.0f32; 14 * 32];
        // SAFETY: a/b are kc*14 and kc*32 ones-filled slivers, and c is a
        // dense 14x32 row-major tile (rsc=32, csc=1).
        unsafe {
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c.as_mut_ptr(), 32, 1)
        };
        // Each element: 10 + sum_k 1*1 = 10 + kc.
        assert!(c.iter().all(|&x| x == 14.0));
    }

    #[test]
    fn shapes_agree_with_the_tier_registry() {
        // The selection ladder and the audit lemma both rely on these
        // exact shapes; pin them here where the kernels live.
        if let Some(kf) = avx512_f32_14x32() {
            assert_eq!((kf.mr(), kf.nr()), (14, 32));
            assert!(kf.mr() * kf.nr() <= crate::edge::MAX_TILE);
        }
        if let Some(kd) = avx512_f64_8x16() {
            assert_eq!((kd.mr(), kd.nr()), (8, 16));
            assert!(kd.mr() * kd.nr() <= crate::edge::MAX_TILE);
        }
    }
}
