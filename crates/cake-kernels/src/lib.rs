//! Tile-level GEMM microkernels for the CAKE reproduction.
//!
//! The paper implements CAKE on top of the BLIS kernel library: a single
//! register-blocked *microkernel* multiplies an `mr x kc` packed sliver of
//! `A` by a `kc x nr` packed sliver of `B`, accumulating into an `mr x nr`
//! tile of `C` held in SIMD registers (paper Figure 5e / 6e). Everything
//! above the microkernel — blocking, scheduling, packing order — is what
//! distinguishes CAKE from GOTO; the kernel itself is shared.
//!
//! This crate provides:
//!
//! * [`ukernel`] — the kernel contract ([`Ukr`]) and portable
//!   auto-vectorizing implementations for several `mr x nr` shapes.
//! * [`avx2`] — hand-written AVX2+FMA kernels (f32 `6x16`, f64 `4x8`,
//!   the classic Haswell register blocking) selected at runtime.
//! * [`avx512`] — hand-written AVX-512F kernels (f32 `14x32`, f64 `8x16`)
//!   blocked for the 32-register zmm file, the top dispatch tier.
//! * [`pack`] — packing of operand panels into the kernel's micro-panel
//!   format (BLIS-compatible: `A` slivers k-major `mr` wide, `B` slivers
//!   k-major `nr` wide), with zero-padding of edge slivers.
//! * [`edge`] — safe execution of partial tiles via a scratch buffer.
//! * [`select`] — runtime kernel dispatch per element type: a tier ladder
//!   (avx512 → avx2 → portable) with a `CAKE_KERNEL` env override that caps
//!   the tier for A/B experiments.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod edge;
pub mod pack;
pub mod select;
pub mod ukernel;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;

pub use select::{
    available_tiers, best_kernel, portable_kernel, registered_tile, registered_tiles_for,
    tier_kernel, KernelTier,
};
pub use ukernel::Ukr;
