//! The microkernel contract and portable implementations.
//!
//! A microkernel computes, for packed slivers `a` (`mr x kc`, k-major) and
//! `b` (`kc x nr`, k-major), the update
//!
//! ```text
//! C[0..mr, 0..nr] += sum_k a[k*mr + i] * b[k*nr + j]
//! ```
//!
//! writing through raw pointers with arbitrary row/column strides so the
//! same kernel serves row-major, column-major, and packed-intermediate `C`
//! tiles. One kernel invocation is the paper's "tile multiplication per
//! unit time" primitive (Section 3).

use cake_matrix::{Bf16, Dtype, Element};

/// Signature of a raw microkernel.
///
/// Operands are `T`; the C tile is `T::Acc` — identical types for the
/// classic f32/f64 paths, widened for the narrow-dtype tier (`i8 -> i32`,
/// `Bf16 -> f32`) so K-long reductions neither overflow nor lose
/// precision.
///
/// # Safety contract
/// * `a` points to at least `kc * mr` elements (one packed A sliver).
/// * `b` points to at least `kc * nr` elements (one packed B sliver).
/// * `c` points to a tile where `c[i*rsc + j*csc]` is valid for all
///   `i < mr`, `j < nr`, and does not alias `a` or `b`.
pub type UkrFn<T> = unsafe fn(
    kc: usize,
    a: *const T,
    b: *const T,
    c: *mut <T as Dtype>::Acc,
    rsc: usize,
    csc: usize,
);

/// A microkernel: its register-tile shape plus the raw function.
#[derive(Clone, Copy)]
pub struct Ukr<T: Dtype> {
    mr: usize,
    nr: usize,
    name: &'static str,
    func: UkrFn<T>,
}

impl<T: Dtype> Ukr<T> {
    /// Construct a kernel descriptor (crate-internal; users obtain kernels
    /// from [`crate::select`]).
    pub(crate) fn new(mr: usize, nr: usize, name: &'static str, func: UkrFn<T>) -> Self {
        Self { mr, nr, name, func }
    }

    /// Register-tile rows.
    #[inline]
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// Register-tile columns.
    #[inline]
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Human-readable kernel name (e.g. `"avx2_f32_6x16"`).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// FLOPs performed by one invocation with reduction depth `kc`.
    #[inline]
    pub fn flops(&self, kc: usize) -> usize {
        2 * self.mr * self.nr * kc
    }

    /// Invoke the kernel on a full `mr x nr` tile.
    ///
    /// # Safety
    /// See [`UkrFn`]'s safety contract.
    #[inline]
    pub unsafe fn call(
        &self,
        kc: usize,
        a: *const T,
        b: *const T,
        c: *mut T::Acc,
        rsc: usize,
        csc: usize,
    ) {
        // SAFETY: the caller upholds UkrFn's contract (sliver lengths and a
        // valid, non-aliasing C tile), which is exactly what `func` requires.
        unsafe { (self.func)(kc, a, b, c, rsc, csc) }
    }
}

impl<T: Dtype> std::fmt::Debug for Ukr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ukr({} {}x{})", self.name, self.mr, self.nr)
    }
}

/// Portable register-blocked kernel, monomorphized per tile shape.
///
/// The accumulator lives in a `[[T::Acc; NR]; MR]` array; with
/// `opt-level >= 2` LLVM keeps it in vector registers and auto-vectorizes
/// the inner loop. Operands are widened ([`Dtype::widen`]) before the
/// multiply — a no-op for f32/f64, a sign-extend for i8, a mantissa
/// zero-fill for bf16 — so narrow products accumulate exactly. Plain
/// `mul + add` is used rather than `mul_add`: on targets without a native
/// FMA the latter lowers to a libm call, which is catastrophically slow,
/// and the accuracy difference is absorbed by the GEMM tolerance.
///
/// # Safety
/// [`UkrFn`]'s contract with `mr = MR`, `nr = NR`.
#[allow(clippy::needless_range_loop)] // index form keeps the accumulator tile explicit for LLVM
pub(crate) unsafe fn generic_ukr<T: Dtype, const MR: usize, const NR: usize>(
    kc: usize,
    a: *const T,
    b: *const T,
    c: *mut T::Acc,
    rsc: usize,
    csc: usize,
) {
    let mut acc = [[<T::Acc>::ZERO; NR]; MR];
    // SAFETY: per UkrFn's contract `a` holds kc*MR elements and `b` holds
    // kc*NR, so k*MR + i < kc*MR and k*NR + j < kc*NR for k < kc, i < MR,
    // j < NR; the C writes touch c[i*rsc + j*csc] for i < MR, j < NR, which
    // the caller guarantees are in-bounds and non-aliasing.
    unsafe {
        for k in 0..kc {
            let ak = a.add(k * MR);
            let bk = b.add(k * NR);
            for i in 0..MR {
                let ai = (*ak.add(i)).widen();
                for j in 0..NR {
                    acc[i][j] += ai * (*bk.add(j)).widen();
                }
            }
        }
        for (i, row) in acc.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let p = c.add(i * rsc + j * csc);
                *p += v;
            }
        }
    }
}

/// Scalar reference kernel used to validate all other kernels in tests.
/// Widens each operand before multiplying, exactly like [`generic_ukr`].
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
pub fn reference_ukr<T: Dtype>(
    kc: usize,
    mr: usize,
    nr: usize,
    a: &[T],
    b: &[T],
    c: &mut [T::Acc],
    rsc: usize,
    csc: usize,
) {
    assert!(a.len() >= kc * mr, "A sliver too short");
    assert!(b.len() >= kc * nr, "B sliver too short");
    for k in 0..kc {
        for i in 0..mr {
            for j in 0..nr {
                c[i * rsc + j * csc] += a[k * mr + i].widen() * b[k * nr + j].widen();
            }
        }
    }
}

macro_rules! portable {
    ($name:ident, $t:ty, $mr:literal, $nr:literal, $label:literal) => {
        /// Portable kernel instantiation.
        pub fn $name() -> Ukr<$t> {
            Ukr::new($mr, $nr, $label, generic_ukr::<$t, $mr, $nr>)
        }
    };
}

portable!(portable_f32_8x8, f32, 8, 8, "portable_f32_8x8");
portable!(portable_f32_4x4, f32, 4, 4, "portable_f32_4x4");
portable!(portable_f64_4x8, f64, 4, 8, "portable_f64_4x8");
portable!(portable_f64_4x4, f64, 4, 4, "portable_f64_4x4");
portable!(portable_i8_8x8, i8, 8, 8, "portable_i8_8x8");
portable!(portable_bf16_8x8, Bf16, 8, 8, "portable_bf16_8x8");

#[cfg(test)]
mod tests {
    use super::*;
    use cake_matrix::init;

    fn check_against_reference<T: Dtype>(ukr: &Ukr<T>, kc: usize) {
        let mr = ukr.mr();
        let nr = ukr.nr();
        let a = init::random::<T>(kc, mr, 11);
        let b = init::random::<T>(kc, nr, 22);
        // C with a row-major stride wider than nr to catch stride bugs.
        let ld = nr + 3;
        let mut c_test = vec![<T::Acc>::ZERO; mr * ld];
        let mut c_ref = vec![<T::Acc>::ZERO; mr * ld];
        // Pre-fill with a pattern: kernels must accumulate, not overwrite.
        for (i, x) in c_test.iter_mut().enumerate() {
            *x = <T::Acc>::from_f64((i % 5) as f64);
        }
        c_ref.copy_from_slice(&c_test);

        // SAFETY: a/b are kc*mr- and kc*nr-element slices from init::random,
        // and c_test holds mr*ld elements with rsc=ld, csc=1 so every
        // c[i*ld + j] for i < mr, j < nr is in-bounds.
        unsafe {
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c_test.as_mut_ptr(), ld, 1);
        }
        reference_ukr(kc, mr, nr, a.as_slice(), b.as_slice(), &mut c_ref, ld, 1);

        for (i, (x, y)) in c_test.iter().zip(&c_ref).enumerate() {
            let d = (x.to_f64() - y.to_f64()).abs();
            assert!(
                d <= 1e-4 * (1.0 + y.to_f64().abs()),
                "{} idx {i}: {x} vs {y}",
                ukr.name()
            );
        }
    }

    #[test]
    fn portable_f32_matches_reference() {
        for kc in [1, 2, 7, 64] {
            check_against_reference(&portable_f32_8x8(), kc);
            check_against_reference(&portable_f32_4x4(), kc);
        }
    }

    #[test]
    fn portable_f64_matches_reference() {
        for kc in [1, 3, 17, 128] {
            check_against_reference(&portable_f64_4x8(), kc);
            check_against_reference(&portable_f64_4x4(), kc);
        }
    }

    #[test]
    fn portable_i8_matches_reference_exactly() {
        // Full-range operands, i32 accumulate: results must be bit-exact.
        for kc in [1, 2, 7, 64, 333] {
            let ukr = portable_i8_8x8();
            let (mr, nr) = (ukr.mr(), ukr.nr());
            let a = init::random_i8(kc, mr, 5);
            let b = init::random_i8(kc, nr, 6);
            let ld = nr + 2;
            let mut c_test = vec![7i32; mr * ld];
            let mut c_ref = c_test.clone();
            // SAFETY: a/b are kc*mr- and kc*nr-element slices; c_test holds
            // mr*ld i32 with rsc=ld, csc=1 so every write is in-bounds.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c_test.as_mut_ptr(), ld, 1);
            }
            reference_ukr(kc, mr, nr, a.as_slice(), b.as_slice(), &mut c_ref, ld, 1);
            assert_eq!(c_test, c_ref, "kc={kc}");
        }
    }

    #[test]
    fn portable_bf16_matches_reference_exactly() {
        // Identical widen-then-multiply order on both sides. The kernel sums
        // the k-products into a local accumulator and adds the prior C value
        // last, so the reference sums into a zeroed buffer and adds the init
        // afterwards — same association, hence bit-exact.
        for kc in [1, 3, 17, 128] {
            let ukr = portable_bf16_8x8();
            let (mr, nr) = (ukr.mr(), ukr.nr());
            let a = init::random::<Bf16>(kc, mr, 8);
            let b = init::random::<Bf16>(kc, nr, 9);
            let ld = nr + 1;
            let mut c_test = vec![0.5f32; mr * ld];
            let mut c_ref = vec![0.0f32; mr * ld];
            // SAFETY: a/b are kc*mr- and kc*nr-element slices; c_test holds
            // mr*ld f32 with rsc=ld, csc=1 so every write is in-bounds.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c_test.as_mut_ptr(), ld, 1);
            }
            reference_ukr(kc, mr, nr, a.as_slice(), b.as_slice(), &mut c_ref, ld, 1);
            for x in c_ref.iter_mut() {
                *x += 0.5;
            }
            assert_eq!(c_test, c_ref, "kc={kc}");
        }
    }

    #[test]
    fn kc_zero_is_identity() {
        let ukr = portable_f32_8x8();
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut c = vec![3.0f32; 64];
        // SAFETY: kc=0 means the kernel reads nothing from a/b, and c holds
        // a full 8x8 tile (64 elements) for the accumulate-zero writes.
        unsafe { ukr.call(0, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), 8, 1) };
        assert!(c.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn flops_counts_macs_times_two() {
        let ukr = portable_f32_8x8();
        assert_eq!(ukr.flops(10), 2 * 8 * 8 * 10);
    }

    #[test]
    fn column_major_c_strides() {
        let ukr = portable_f64_4x4();
        let kc = 5;
        let a = init::random::<f64>(kc, 4, 3);
        let b = init::random::<f64>(kc, 4, 4);
        let mut c_cm = vec![0.0f64; 16];
        let mut c_rm = vec![0.0f64; 16];
        // SAFETY: a/b are kc*4-element slivers; both C buffers hold 16
        // elements, covering the 4x4 tile under either stride order.
        unsafe {
            // column-major: rsc=1, csc=4
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c_cm.as_mut_ptr(), 1, 4);
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c_rm.as_mut_ptr(), 4, 1);
        }
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c_cm[j * 4 + i], c_rm[i * 4 + j]);
            }
        }
    }
}
