//! Runtime kernel selection.
//!
//! `best_kernel::<T>()` returns the fastest kernel the running CPU supports
//! (AVX2+FMA when detected on x86_64, the portable kernel otherwise).
//! Selection happens once per GEMM call, far off the hot path.

use cake_matrix::Element;

use crate::ukernel::{self, Ukr};

/// Element types with a kernel registry. Implemented for `f32` and `f64`.
pub trait KernelSelect: Element {
    /// Fastest kernel available on this CPU.
    fn best() -> Ukr<Self>;
    /// The portable (ISA-independent) kernel.
    fn portable() -> Ukr<Self>;
}

impl KernelSelect for f32 {
    fn best() -> Ukr<f32> {
        #[cfg(target_arch = "x86_64")]
        if let Some(k) = crate::avx2::avx2_f32_6x16() {
            return k;
        }
        ukernel::portable_f32_8x8()
    }

    fn portable() -> Ukr<f32> {
        ukernel::portable_f32_8x8()
    }
}

impl KernelSelect for f64 {
    fn best() -> Ukr<f64> {
        #[cfg(target_arch = "x86_64")]
        if let Some(k) = crate::avx2::avx2_f64_4x8() {
            return k;
        }
        ukernel::portable_f64_4x8()
    }

    fn portable() -> Ukr<f64> {
        ukernel::portable_f64_4x8()
    }
}

/// Fastest kernel available on this CPU for element type `T`.
pub fn best_kernel<T: KernelSelect>() -> Ukr<T> {
    T::best()
}

/// The portable kernel for element type `T` (useful for A/B testing and as
/// a deterministic baseline in benches).
pub fn portable_kernel<T: KernelSelect>() -> Ukr<T> {
    T::portable()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_kernels_have_sane_shapes() {
        let kf = best_kernel::<f32>();
        assert!(kf.mr() >= 1 && kf.nr() >= 1);
        assert!(kf.mr() * kf.nr() <= crate::edge::MAX_TILE);
        let kd = best_kernel::<f64>();
        assert!(kd.mr() * kd.nr() <= crate::edge::MAX_TILE);
    }

    #[test]
    fn portable_kernels_are_portable_named() {
        assert!(portable_kernel::<f32>().name().starts_with("portable"));
        assert!(portable_kernel::<f64>().name().starts_with("portable"));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_selected_when_available() {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            assert_eq!(best_kernel::<f32>().name(), "avx2_f32_6x16");
            assert_eq!(best_kernel::<f64>().name(), "avx2_f64_4x8");
        }
    }

    #[test]
    fn best_and_portable_agree_numerically() {
        use crate::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
        use cake_matrix::init;

        // Compare one full tile of the best kernel against a scalar compute.
        let ukr = best_kernel::<f32>();
        let (mr, nr, kc) = (ukr.mr(), ukr.nr(), 31);
        let a = init::random::<f32>(mr, kc, 1);
        let b = init::random::<f32>(kc, nr, 2);
        let mut pa = vec![0.0f32; packed_a_size(mr, kc, mr)];
        let mut pb = vec![0.0f32; packed_b_size(kc, nr, nr)];
        pack_a(&a.view(), &mut pa, mr);
        pack_b(&b.view(), &mut pb, nr);
        let mut c = vec![0.0f32; mr * nr];
        // SAFETY: pa/pb are full packed slivers (kc*mr / kc*nr elements) and
        // c is a dense mr x nr tile with rsc=nr, csc=1.
        unsafe { ukr.call(kc, pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr(), nr, 1) };

        for i in 0..mr {
            for j in 0..nr {
                let mut s = 0.0f64;
                for k in 0..kc {
                    s += a.get(i, k) as f64 * b.get(k, j) as f64;
                }
                assert!((c[i * nr + j] as f64 - s).abs() < 1e-4 * (1.0 + s.abs()));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::edge::run_tile;
    use crate::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
    use cake_matrix::init;
    use proptest::prelude::*;

    /// Drive the full kernel stack (pack -> edge-masked microkernel) on a
    /// single random tile and compare against a scalar computation.
    fn tile_case(kc: usize, mrows: usize, ncols: usize, ld_extra: usize, seed: u64) {
        let ukr = best_kernel::<f32>();
        let (mr, nr) = (ukr.mr(), ukr.nr());
        let mrows = mrows.min(mr).max(1);
        let ncols = ncols.min(nr).max(1);

        let a = init::random::<f32>(mrows, kc, seed);
        let b = init::random::<f32>(kc, ncols, seed + 1);
        let mut pa = vec![0.0f32; packed_a_size(mrows, kc, mr)];
        let mut pb = vec![0.0f32; packed_b_size(kc, ncols, nr)];
        pack_a(&a.view(), &mut pa, mr);
        pack_b(&b.view(), &mut pb, nr);

        let ld = ncols + ld_extra;
        let mut c = vec![0.25f32; mrows * ld];
        // SAFETY: pa/pb are ceil-padded packed slivers, and the mrows x
        // ncols region with rsc=ld >= ncols, csc=1 fits in mrows*ld.
        unsafe {
            run_tile(&ukr, kc, pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr(), ld, 1, mrows, ncols);
        }
        for i in 0..mrows {
            for j in 0..ncols {
                let mut s = 0.25f64;
                for kk in 0..kc {
                    s += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                }
                let got = c[i * ld + j] as f64;
                assert!(
                    (got - s).abs() <= 1e-4 * (1.0 + s.abs()),
                    "({i},{j}): {got} vs {s}"
                );
            }
            // Padding columns untouched.
            for j in ncols..ld {
                assert_eq!(c[i * ld + j], 0.25, "padding clobbered at ({i},{j})");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn best_kernel_tile_random(
            kc in 1usize..96,
            mrows in 1usize..9,
            ncols in 1usize..17,
            ld_extra in 0usize..5,
            seed in 0u64..10_000,
        ) {
            tile_case(kc, mrows, ncols, ld_extra, seed);
        }
    }
}
