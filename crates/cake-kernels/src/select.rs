//! Runtime kernel selection.
//!
//! Dispatch is a three-rung *tier ladder* — `avx512 → avx2 → portable` —
//! walked top-down: `best_kernel::<T>()` returns the highest tier the
//! running CPU supports. The `CAKE_KERNEL` environment variable (set
//! directly or via `cakectl gemm --kernel`) *caps* the ladder for A/B
//! experiments: `CAKE_KERNEL=avx2` forces at most the AVX2 tier, and a cap
//! naming a tier the host lacks falls through to the next rung rather than
//! failing, so the same command line works on any machine. Selection
//! happens once per GEMM call, far off the hot path.

use cake_matrix::{Bf16, Dtype};

use crate::ukernel::{self, Ukr};

/// Dispatch tiers, ordered slowest to fastest (derived `Ord` matches the
/// ladder: `Portable < Avx2 < Avx512`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelTier {
    /// Auto-vectorized portable kernels; always available.
    Portable,
    /// AVX2 + FMA ymm kernels (x86_64, runtime-detected).
    Avx2,
    /// AVX-512F zmm kernels (x86_64, runtime-detected).
    Avx512,
}

impl KernelTier {
    /// All tiers, ladder order (lowest first).
    pub const ALL: [KernelTier; 3] = [KernelTier::Portable, KernelTier::Avx2, KernelTier::Avx512];

    /// The tier's name as used by `CAKE_KERNEL` / `--kernel` and reported
    /// in stats and bench output.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Portable => "portable",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    /// Parse a tier name (case-insensitive). `None` for unknown names.
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.to_ascii_lowercase().as_str() {
            "portable" => Some(KernelTier::Portable),
            "avx2" => Some(KernelTier::Avx2),
            "avx512" => Some(KernelTier::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which SIMD tiers the host CPU supports. Separated from detection so the
/// fallback ladder ([`CpuTiers::resolve`]) is a pure function testable on
/// hosts missing any feature combination.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuTiers {
    /// AVX2 and FMA both present.
    pub avx2: bool,
    /// AVX-512F present.
    pub avx512: bool,
}

impl CpuTiers {
    /// Probe the running CPU.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            CpuTiers {
                avx2: is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
                avx512: is_x86_feature_detected!("avx512f"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuTiers::default()
        }
    }

    /// Walk the ladder down from `cap`: the highest tier that is both
    /// requested and supported. Portable is the unconditional floor.
    pub fn resolve(self, cap: KernelTier) -> KernelTier {
        if cap >= KernelTier::Avx512 && self.avx512 {
            return KernelTier::Avx512;
        }
        if cap >= KernelTier::Avx2 && self.avx2 {
            return KernelTier::Avx2;
        }
        KernelTier::Portable
    }
}

/// The tier cap requested via `CAKE_KERNEL` (unset or unparseable means
/// "no cap": the full ladder is available).
pub fn env_tier_cap() -> KernelTier {
    match std::env::var("CAKE_KERNEL") {
        Ok(v) => KernelTier::parse(&v).unwrap_or(KernelTier::Avx512),
        Err(_) => KernelTier::Avx512,
    }
}

/// The tier [`best_kernel`] will dispatch to right now: host features
/// resolved against the `CAKE_KERNEL` cap.
pub fn selected_tier() -> KernelTier {
    CpuTiers::detect().resolve(env_tier_cap())
}

/// Every tier the host can actually run, ladder order (portable first).
/// Drives the differential fuzzer's tier cross-check and `--kernel-smoke`.
pub fn available_tiers() -> Vec<KernelTier> {
    let cpu = CpuTiers::detect();
    let mut tiers = vec![KernelTier::Portable];
    if cpu.avx2 {
        tiers.push(KernelTier::Avx2);
    }
    if cpu.avx512 {
        tiers.push(KernelTier::Avx512);
    }
    tiers
}

/// Register-tile shapes of every kernel this crate can ever dispatch,
/// independent of host CPU detection: `(name, mr, nr)`. The audit lemma
/// over [`crate::edge::MAX_TILE`] quantifies over this registry, so a new
/// kernel that outgrows the edge scratch is caught even on hosts that
/// cannot run it.
pub const REGISTERED_SHAPES: [(&str, usize, usize); 14] = [
    ("portable_f32_8x8", 8, 8),
    ("portable_f32_4x4", 4, 4),
    ("portable_f64_4x8", 4, 8),
    ("portable_f64_4x4", 4, 4),
    ("portable_i8_8x8", 8, 8),
    ("portable_bf16_8x8", 8, 8),
    ("avx2_f32_6x16", 6, 16),
    ("avx2_f64_4x8", 4, 8),
    ("avx2_i8_4x8", 4, 8),
    ("avx2_bf16_4x8", 4, 8),
    ("avx512_f32_14x32", 14, 32),
    ("avx512_f64_8x16", 8, 16),
    ("avx512_vnni_i8_16x16", 16, 16),
    ("avx512_bf16_14x32", 14, 32),
];

/// `(tier, mr, nr)` for every entry of [`REGISTERED_SHAPES`] matching
/// `dtype`, in registry order (primary kernel first within each tier).
/// `dtype` is an [`element NAME`](cake_matrix::Element::NAME) —
/// `"f32"`/`"f64"`/`"int8"`/`"bf16"` (`"i8"` accepted as an alias).
/// Static metadata, independent of host CPU detection: the autotuner's
/// candidate generator quantifies over this so a tuned table built on one
/// host stays meaningful on another.
pub fn registered_tiles_for(dtype: &str) -> Vec<(KernelTier, usize, usize)> {
    let token = match dtype {
        "int8" | "i8" => "_i8_",
        "f32" => "_f32_",
        "f64" => "_f64_",
        "bf16" => "_bf16_",
        _ => return Vec::new(),
    };
    let mut out = Vec::new();
    for (name, mr, nr) in REGISTERED_SHAPES {
        if !name.contains(token) {
            continue;
        }
        let tier = if name.starts_with("portable_") {
            KernelTier::Portable
        } else if name.starts_with("avx2_") {
            KernelTier::Avx2
        } else {
            KernelTier::Avx512
        };
        out.push((tier, mr, nr));
    }
    out
}

/// Register-tile shape `(mr, nr)` of the primary registered kernel for
/// `(tier, dtype)`, or `None` when no kernel of that dtype exists at that
/// tier. See [`registered_tiles_for`] for the dtype naming convention.
pub fn registered_tile(tier: KernelTier, dtype: &str) -> Option<(usize, usize)> {
    registered_tiles_for(dtype)
        .into_iter()
        .find(|&(t, _, _)| t == tier)
        .map(|(_, mr, nr)| (mr, nr))
}

/// Element types with a kernel registry. Implemented for `f32`, `f64`,
/// `i8` (i32 accumulate) and [`Bf16`] (f32 accumulate).
pub trait KernelSelect: Dtype {
    /// The kernel for `tier`, if this host can run it. `Portable` always
    /// succeeds; SIMD tiers return `None` when the feature (or the
    /// x86_64 architecture itself) is absent. Narrow-dtype tiers need
    /// *more* than the base feature (int8 avx512 additionally wants
    /// BW+VNNI+VBMI, bf16 wants BW+BF16), so a tier can be in
    /// [`available_tiers`] yet return `None` for one dtype.
    fn for_tier(tier: KernelTier) -> Option<Ukr<Self>>;

    /// Fastest kernel available on this CPU, honoring the `CAKE_KERNEL`
    /// cap. Walks the ladder *per dtype*: if the capped tier exists but
    /// has no kernel for this element type (e.g. avx512f without VNNI for
    /// int8), the next rung down is tried rather than jumping straight to
    /// portable.
    fn best() -> Ukr<Self> {
        let cap = selected_tier();
        for tier in KernelTier::ALL.iter().rev() {
            if *tier <= cap {
                if let Some(k) = Self::for_tier(*tier) {
                    return k;
                }
            }
        }
        Self::portable()
    }

    /// The portable (ISA-independent) kernel.
    fn portable() -> Ukr<Self>;
}

impl KernelSelect for f32 {
    fn for_tier(tier: KernelTier) -> Option<Ukr<f32>> {
        match tier {
            KernelTier::Portable => Some(ukernel::portable_f32_8x8()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => crate::avx2::avx2_f32_6x16(),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => crate::avx512::avx512_f32_14x32(),
            #[cfg(not(target_arch = "x86_64"))]
            _ => None,
        }
    }

    fn portable() -> Ukr<f32> {
        ukernel::portable_f32_8x8()
    }
}

impl KernelSelect for f64 {
    fn for_tier(tier: KernelTier) -> Option<Ukr<f64>> {
        match tier {
            KernelTier::Portable => Some(ukernel::portable_f64_4x8()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => crate::avx2::avx2_f64_4x8(),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => crate::avx512::avx512_f64_8x16(),
            #[cfg(not(target_arch = "x86_64"))]
            _ => None,
        }
    }

    fn portable() -> Ukr<f64> {
        ukernel::portable_f64_4x8()
    }
}

impl KernelSelect for i8 {
    fn for_tier(tier: KernelTier) -> Option<Ukr<i8>> {
        match tier {
            KernelTier::Portable => Some(ukernel::portable_i8_8x8()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => crate::avx2::avx2_i8_4x8(),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => crate::avx512::avx512_vnni_i8_16x16(),
            #[cfg(not(target_arch = "x86_64"))]
            _ => None,
        }
    }

    fn portable() -> Ukr<i8> {
        ukernel::portable_i8_8x8()
    }
}

impl KernelSelect for Bf16 {
    fn for_tier(tier: KernelTier) -> Option<Ukr<Bf16>> {
        match tier {
            KernelTier::Portable => Some(ukernel::portable_bf16_8x8()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => crate::avx2::avx2_bf16_4x8(),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => crate::avx512::avx512_bf16_14x32(),
            #[cfg(not(target_arch = "x86_64"))]
            _ => None,
        }
    }

    fn portable() -> Ukr<Bf16> {
        ukernel::portable_bf16_8x8()
    }
}

/// Fastest kernel available on this CPU for element type `T`, honoring the
/// `CAKE_KERNEL` tier cap.
pub fn best_kernel<T: KernelSelect>() -> Ukr<T> {
    T::best()
}

/// The portable kernel for element type `T` (useful for A/B testing and as
/// a deterministic baseline in benches).
pub fn portable_kernel<T: KernelSelect>() -> Ukr<T> {
    T::portable()
}

/// The kernel for a specific tier, if this host can run it.
pub fn tier_kernel<T: KernelSelect>(tier: KernelTier) -> Option<Ukr<T>> {
    T::for_tier(tier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_kernels_have_sane_shapes() {
        let kf = best_kernel::<f32>();
        assert!(kf.mr() >= 1 && kf.nr() >= 1);
        assert!(kf.mr() * kf.nr() <= crate::edge::MAX_TILE);
        let kd = best_kernel::<f64>();
        assert!(kd.mr() * kd.nr() <= crate::edge::MAX_TILE);
    }

    #[test]
    fn registered_tiles_cover_every_dtype_at_every_tier() {
        for dtype in ["f32", "f64", "int8", "bf16"] {
            let tiles = registered_tiles_for(dtype);
            assert!(tiles.len() >= 3, "{dtype}: at least one kernel per tier");
            for tier in KernelTier::ALL {
                assert!(tiles.iter().any(|&(t, _, _)| t == tier), "{dtype} lacks {}", tier.name());
                let (mr, nr) = registered_tile(tier, dtype)
                    .unwrap_or_else(|| panic!("{dtype} missing at {}", tier.name()));
                assert!(mr >= 1 && nr >= 1);
                assert!(mr * nr <= crate::edge::MAX_TILE);
            }
        }
        // Aliases and unknowns.
        assert_eq!(registered_tiles_for("i8"), registered_tiles_for("int8"));
        assert!(registered_tiles_for("f16").is_empty());
        assert_eq!(registered_tile(KernelTier::Avx512, "f32"), Some((14, 32)));
        assert_eq!(registered_tile(KernelTier::Avx2, "int8"), Some((4, 8)));
    }

    #[test]
    fn portable_kernels_are_portable_named() {
        assert!(portable_kernel::<f32>().name().starts_with("portable"));
        assert!(portable_kernel::<f64>().name().starts_with("portable"));
        assert!(portable_kernel::<i8>().name().starts_with("portable"));
        assert!(portable_kernel::<Bf16>().name().starts_with("portable"));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn top_supported_tier_is_selected() {
        // This test must tolerate a CAKE_KERNEL cap set by the harness.
        let cap = env_tier_cap();
        let tier = CpuTiers::detect().resolve(cap);
        let expect_f32 = match tier {
            KernelTier::Avx512 => "avx512_f32_14x32",
            KernelTier::Avx2 => "avx2_f32_6x16",
            KernelTier::Portable => "portable_f32_8x8",
        };
        let expect_f64 = match tier {
            KernelTier::Avx512 => "avx512_f64_8x16",
            KernelTier::Avx2 => "avx2_f64_4x8",
            KernelTier::Portable => "portable_f64_4x8",
        };
        assert_eq!(best_kernel::<f32>().name(), expect_f32);
        assert_eq!(best_kernel::<f64>().name(), expect_f64);
    }

    /// Satellite: graceful fallback order on hosts missing each feature.
    /// `resolve` is pure, so all 4 feature combinations x 3 caps are
    /// checkable on any machine.
    #[test]
    fn ladder_falls_back_avx512_avx2_portable() {
        use KernelTier::*;
        let full = CpuTiers { avx2: true, avx512: true };
        let no512 = CpuTiers { avx2: true, avx512: false };
        let bare = CpuTiers { avx2: false, avx512: false };
        // Odd but possible (e.g. avx512 masked by a hypervisor quirk leaves
        // avx2-only; the inverse cannot happen in hardware but the ladder
        // must still not panic).
        let only512 = CpuTiers { avx2: false, avx512: true };

        // Uncapped: highest supported tier wins.
        assert_eq!(full.resolve(Avx512), Avx512);
        assert_eq!(no512.resolve(Avx512), Avx2);
        assert_eq!(bare.resolve(Avx512), Portable);
        assert_eq!(only512.resolve(Avx512), Avx512);

        // Capped at avx2: avx512 never selected even when present.
        assert_eq!(full.resolve(Avx2), Avx2);
        assert_eq!(no512.resolve(Avx2), Avx2);
        assert_eq!(bare.resolve(Avx2), Portable);
        assert_eq!(only512.resolve(Avx2), Portable);

        // Capped at portable: always portable.
        for cpu in [full, no512, bare, only512] {
            assert_eq!(cpu.resolve(Portable), Portable);
        }
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in KernelTier::ALL {
            assert_eq!(KernelTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(KernelTier::parse("AVX512"), Some(KernelTier::Avx512));
        assert_eq!(KernelTier::parse("neon"), None);
    }

    #[test]
    fn available_tiers_always_include_portable_and_match_detection() {
        let tiers = available_tiers();
        assert_eq!(tiers[0], KernelTier::Portable);
        let cpu = CpuTiers::detect();
        assert_eq!(tiers.contains(&KernelTier::Avx2), cpu.avx2);
        assert_eq!(tiers.contains(&KernelTier::Avx512), cpu.avx512);
        // Ladder order.
        let mut sorted = tiers.clone();
        sorted.sort();
        assert_eq!(tiers, sorted);
    }

    #[test]
    fn tier_kernels_match_registered_shapes() {
        for tier in available_tiers() {
            let kf = tier_kernel::<f32>(tier).expect("available tier must yield a kernel");
            let kd = tier_kernel::<f64>(tier).expect("available tier must yield a kernel");
            let mut shapes = vec![(kf.name(), kf.mr(), kf.nr()), (kd.name(), kd.mr(), kd.nr())];
            // Narrow dtypes need extra CPU features on top of the base tier
            // (VNNI/VBMI for int8, BF16 for bf16), so None is legitimate
            // here — but any kernel that *does* exist must be registered.
            if let Some(k) = tier_kernel::<i8>(tier) {
                shapes.push((k.name(), k.mr(), k.nr()));
            }
            if let Some(k) = tier_kernel::<Bf16>(tier) {
                shapes.push((k.name(), k.mr(), k.nr()));
            }
            for k in shapes {
                assert!(
                    REGISTERED_SHAPES.contains(&k),
                    "{k:?} missing from REGISTERED_SHAPES"
                );
            }
        }
    }

    /// The per-dtype ladder walk: capping at a tier whose narrow-dtype
    /// kernel is missing must fall to the next rung down, never skip
    /// straight past a usable one. (Observable end-to-end only through
    /// `best()`, so we check the invariant that best() always returns
    /// *some* registered kernel for every dtype.)
    #[test]
    fn best_exists_for_every_dtype() {
        let shapes: Vec<(&str, usize, usize)> = vec![
            {
                let k = best_kernel::<i8>();
                (k.name(), k.mr(), k.nr())
            },
            {
                let k = best_kernel::<Bf16>();
                (k.name(), k.mr(), k.nr())
            },
        ];
        for k in shapes {
            assert!(REGISTERED_SHAPES.contains(&k), "{k:?} unregistered");
        }
    }

    #[test]
    fn registered_shapes_fit_max_tile() {
        for (name, mr, nr) in REGISTERED_SHAPES {
            assert!(
                mr * nr <= crate::edge::MAX_TILE,
                "{name}: {mr}x{nr} exceeds MAX_TILE"
            );
        }
    }

    #[test]
    fn best_and_portable_agree_numerically() {
        use crate::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
        use cake_matrix::init;

        // Compare one full tile of the best kernel against a scalar compute.
        let ukr = best_kernel::<f32>();
        let (mr, nr, kc) = (ukr.mr(), ukr.nr(), 31);
        let a = init::random::<f32>(mr, kc, 1);
        let b = init::random::<f32>(kc, nr, 2);
        let mut pa = vec![0.0f32; packed_a_size(mr, kc, mr)];
        let mut pb = vec![0.0f32; packed_b_size(kc, nr, nr)];
        pack_a(&a.view(), &mut pa, mr);
        pack_b(&b.view(), &mut pb, nr);
        let mut c = vec![0.0f32; mr * nr];
        // SAFETY: pa/pb are full packed slivers (kc*mr / kc*nr elements) and
        // c is a dense mr x nr tile with rsc=nr, csc=1.
        unsafe { ukr.call(kc, pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr(), nr, 1) };

        for i in 0..mr {
            for j in 0..nr {
                let mut s = 0.0f64;
                for k in 0..kc {
                    s += a.get(i, k) as f64 * b.get(k, j) as f64;
                }
                assert!((c[i * nr + j] as f64 - s).abs() < 1e-4 * (1.0 + s.abs()));
            }
        }
    }

    /// Every tier the host supports must agree with the scalar reference on
    /// a full tile — a direct (if small) cross-check of the whole ladder.
    #[test]
    fn all_available_tiers_agree_numerically() {
        use crate::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
        use cake_matrix::init;

        for tier in available_tiers() {
            let ukr = tier_kernel::<f32>(tier).unwrap();
            let (mr, nr, kc) = (ukr.mr(), ukr.nr(), 17);
            let a = init::random::<f32>(mr, kc, 3);
            let b = init::random::<f32>(kc, nr, 4);
            let mut pa = vec![0.0f32; packed_a_size(mr, kc, mr)];
            let mut pb = vec![0.0f32; packed_b_size(kc, nr, nr)];
            pack_a(&a.view(), &mut pa, mr);
            pack_b(&b.view(), &mut pb, nr);
            let mut c = vec![0.0f32; mr * nr];
            // SAFETY: pa/pb are full packed slivers and c is a dense
            // mr x nr tile with rsc=nr, csc=1.
            unsafe { ukr.call(kc, pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr(), nr, 1) };
            for i in 0..mr {
                for j in 0..nr {
                    let mut s = 0.0f64;
                    for k in 0..kc {
                        s += a.get(i, k) as f64 * b.get(k, j) as f64;
                    }
                    assert!(
                        (c[i * nr + j] as f64 - s).abs() < 1e-4 * (1.0 + s.abs()),
                        "tier {tier} mismatch at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::edge::run_tile;
    use crate::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
    use cake_matrix::{init, Element};
    use proptest::prelude::*;

    /// Drive the full kernel stack (pack -> edge-masked microkernel) on a
    /// single random tile and compare against a scalar computation.
    fn tile_case<T: KernelSelect>(
        kc: usize,
        mrows: usize,
        ncols: usize,
        ld_extra: usize,
        seed: u64,
        tol: f64,
    ) {
        let ukr = best_kernel::<T>();
        let (mr, nr) = (ukr.mr(), ukr.nr());
        let mrows = mrows.min(mr).max(1);
        let ncols = ncols.min(nr).max(1);

        let a = init::random::<T>(mrows, kc, seed);
        let b = init::random::<T>(kc, ncols, seed + 1);
        let mut pa = vec![T::ZERO; packed_a_size(mrows, kc, mr)];
        let mut pb = vec![T::ZERO; packed_b_size(kc, ncols, nr)];
        pack_a(&a.view(), &mut pa, mr);
        pack_b(&b.view(), &mut pb, nr);

        let fill = <T::Acc>::from_f64(0.25);
        let ld = ncols + ld_extra;
        let mut c = vec![fill; mrows * ld];
        // SAFETY: pa/pb are ceil-padded packed slivers, and the mrows x
        // ncols region with rsc=ld >= ncols, csc=1 fits in mrows*ld.
        unsafe {
            run_tile(&ukr, kc, pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr(), ld, 1, mrows, ncols);
        }
        for i in 0..mrows {
            for j in 0..ncols {
                let mut s = 0.25f64;
                for kk in 0..kc {
                    s += a.get(i, kk).to_f64() * b.get(kk, j).to_f64();
                }
                let got = c[i * ld + j].to_f64();
                assert!(
                    (got - s).abs() <= tol * (1.0 + s.abs()),
                    "({i},{j}): {got} vs {s}"
                );
            }
            // Padding columns untouched.
            for j in ncols..ld {
                assert!(
                    c[i * ld + j] == fill,
                    "padding clobbered at ({i},{j})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn best_kernel_tile_random_f32(
            kc in 1usize..96,
            mrows in 1usize..15,
            ncols in 1usize..33,
            ld_extra in 0usize..5,
            seed in 0u64..10_000,
        ) {
            tile_case::<f32>(kc, mrows, ncols, ld_extra, seed, 1e-4);
        }

        #[test]
        fn best_kernel_tile_random_f64(
            kc in 1usize..96,
            mrows in 1usize..9,
            ncols in 1usize..17,
            ld_extra in 0usize..5,
            seed in 0u64..10_000,
        ) {
            tile_case::<f64>(kc, mrows, ncols, ld_extra, seed, 1e-10);
        }
    }
}
