//! Edge-tile execution.
//!
//! Packed slivers are always zero-padded to full `mr`/`nr`, so the kernel
//! can run at full width; but the `C` tile at a block edge is smaller than
//! `mr x nr` and must not be written outside its bounds. [`run_tile`]
//! computes the full padded tile into a stack scratch buffer and then
//! accumulates only the live `mrows x ncols` region into `C`.

use cake_matrix::{Dtype, Element};

use crate::ukernel::Ukr;

/// Upper bound on `mr * nr` across all kernels in this crate
/// (largest are the AVX-512 f32/bf16 `14x32` = 448; the int8 VNNI tile is
/// `16x16` = 256; AVX2 f32 `6x16` = 96; portable `8x8` = 64). Sized
/// exactly to the largest registered tile so the stack scratch stays small
/// (f64: 448 * 8 B = 3.5 KiB; the scratch is accumulator-typed, so int8
/// tiles cost 256 * 4 B).
pub const MAX_TILE: usize = 448;

/// Run one microkernel invocation with edge masking.
///
/// For a full tile this is a direct kernel call (no overhead). For a partial
/// tile the kernel writes into a zeroed stack scratch and the live region is
/// accumulated into `C` scalar-wise.
///
/// # Safety
/// * `a`/`b` must point to full zero-padded packed slivers of length
///   `kc * mr` / `kc * nr`.
/// * `c[i*rsc + j*csc]` must be valid for `i < mrows`, `j < ncols`.
/// * `mrows <= mr`, `ncols <= nr`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the BLAS ukernel signature
pub unsafe fn run_tile<T: Dtype>(
    ukr: &Ukr<T>,
    kc: usize,
    a: *const T,
    b: *const T,
    c: *mut T::Acc,
    rsc: usize,
    csc: usize,
    mrows: usize,
    ncols: usize,
) {
    let mr = ukr.mr();
    let nr = ukr.nr();
    debug_assert!(mrows <= mr && ncols <= nr, "tile region exceeds kernel shape");
    if mrows == 0 || ncols == 0 {
        return;
    }
    if mrows == mr && ncols == nr {
        // SAFETY: forwarded from caller.
        unsafe { ukr.call(kc, a, b, c, rsc, csc) };
        return;
    }
    // audit: checked every registered kernel satisfies mr*nr <= MAX_TILE (registry tests pin this)
    assert!(mr * nr <= MAX_TILE, "kernel tile exceeds scratch capacity");
    let mut scratch = [<T::Acc>::ZERO; MAX_TILE];
    // SAFETY: scratch is mr*nr contiguous (row stride nr), kernel writes
    // exactly that region; a/b contracts forwarded from caller.
    unsafe { ukr.call(kc, a, b, scratch.as_mut_ptr(), nr, 1) };
    for i in 0..mrows {
        for j in 0..ncols {
            // SAFETY: caller guarantees c indexing validity for i<mrows, j<ncols.
            unsafe {
                let p = c.add(i * rsc + j * csc);
                // audit: bounds edge_scratch_tile
                *p += scratch[i * nr + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
    use crate::ukernel::portable_f32_8x8;
    use cake_matrix::{init, Matrix};

    /// Multiply an arbitrary (m x k) by (k x n) with a single sliver pair
    /// (m <= mr, n <= nr) and compare with the naive product.
    fn run_small(m: usize, k: usize, n: usize) {
        let ukr = portable_f32_8x8();
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);

        let mut pa = vec![0.0f32; packed_a_size(m, k, ukr.mr())];
        let mut pb = vec![0.0f32; packed_b_size(k, n, ukr.nr())];
        pack_a(&a.view(), &mut pa, ukr.mr());
        pack_b(&b.view(), &mut pb, ukr.nr());

        let mut c = Matrix::<f32>::zeros(m, n);
        let ld = c.cols();
        // SAFETY: pa/pb are full ceil-padded slivers from pack_a/pack_b, and
        // c is a dense m x n matrix with rsc=ld=n, csc=1.
        unsafe {
            run_tile(
                &ukr,
                k,
                pa.as_ptr(),
                pb.as_ptr(),
                c.as_mut_slice().as_mut_ptr(),
                ld,
                1,
                m,
                n,
            );
        }

        let mut expected = Matrix::<f32>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                }
                expected.set(i, j, s as f32);
            }
        }
        cake_matrix::compare::assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn full_tile_uses_direct_path() {
        run_small(8, 10, 8);
    }

    #[test]
    fn partial_rows() {
        run_small(3, 10, 8);
    }

    #[test]
    fn partial_cols() {
        run_small(8, 10, 5);
    }

    #[test]
    fn partial_both_and_tiny() {
        run_small(1, 1, 1);
        run_small(2, 7, 3);
        run_small(7, 64, 7);
    }

    /// Exhaustive tail sweep for one kernel: every `(m_tail, n_tail)` in
    /// `1..=mr x 1..=nr` (the full tile included as the final pair) against
    /// the naive f64-accumulating reference, at a couple of depths so both
    /// short and long K runs cross the scratch-tile path.
    fn sweep_tails<T: Dtype>(ukr: &crate::Ukr<T>) {
        let (mr, nr) = (ukr.mr(), ukr.nr());
        for k in [1usize, 9] {
            for m in 1..=mr {
                for n in 1..=nr {
                    let a = init::random::<T>(m, k, (m * 31 + n) as u64);
                    let b = init::random::<T>(k, n, (m * 37 + n + 1) as u64);
                    let mut pa = vec![T::ZERO; packed_a_size(m, k, mr)];
                    let mut pb = vec![T::ZERO; packed_b_size(k, n, nr)];
                    pack_a(&a.view(), &mut pa, mr);
                    pack_b(&b.view(), &mut pb, nr);

                    let mut c = Matrix::<T::Acc>::zeros(m, n);
                    let ld = c.cols();
                    // SAFETY: pa/pb are ceil-padded packed slivers and c is
                    // a dense m x n tile with rsc=ld=n, csc=1.
                    unsafe {
                        run_tile(
                            ukr,
                            k,
                            pa.as_ptr(),
                            pb.as_ptr(),
                            c.as_mut_slice().as_mut_ptr(),
                            ld,
                            1,
                            m,
                            n,
                        );
                    }

                    let mut expected = Matrix::<T::Acc>::zeros(m, n);
                    for i in 0..m {
                        for j in 0..n {
                            let mut s = 0.0f64;
                            for kk in 0..k {
                                s += a.get(i, kk).to_f64() * b.get(kk, j).to_f64();
                            }
                            expected.set(i, j, <T::Acc>::from_f64(s));
                        }
                    }
                    cake_matrix::compare::assert_gemm_eq(&c, &expected, k);
                }
            }
        }
    }

    /// Exhaustive tail sweep for an int8 kernel: full-range operands,
    /// bit-exact i32 comparison against a widening scalar reference.
    fn sweep_tails_i8(ukr: &crate::Ukr<i8>) {
        let (mr, nr) = (ukr.mr(), ukr.nr());
        for k in [1usize, 3, 9] {
            for m in 1..=mr {
                for n in 1..=nr {
                    let a = init::random_i8(m, k, (m * 41 + n) as u64);
                    let b = init::random_i8(k, n, (m * 43 + n + 1) as u64);
                    let mut pa = vec![0i8; packed_a_size(m, k, mr)];
                    let mut pb = vec![0i8; packed_b_size(k, n, nr)];
                    pack_a(&a.view(), &mut pa, mr);
                    pack_b(&b.view(), &mut pb, nr);

                    let mut c = Matrix::<i32>::zeros(m, n);
                    let ld = c.cols();
                    // SAFETY: pa/pb are ceil-padded packed slivers and c is
                    // a dense m x n i32 tile with rsc=ld=n, csc=1.
                    unsafe {
                        run_tile(
                            ukr,
                            k,
                            pa.as_ptr(),
                            pb.as_ptr(),
                            c.as_mut_slice().as_mut_ptr(),
                            ld,
                            1,
                            m,
                            n,
                        );
                    }

                    for i in 0..m {
                        for j in 0..n {
                            let mut s = 0i32;
                            for kk in 0..k {
                                s += a.get(i, kk) as i32 * b.get(kk, j) as i32;
                            }
                            assert_eq!(
                                c.get(i, j),
                                s,
                                "{} ({m}x{k}x{n}) at ({i},{j})",
                                ukr.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_tail_sweep_f32_portable() {
        sweep_tails(&crate::select::portable_kernel::<f32>());
    }

    #[test]
    fn exhaustive_tail_sweep_f32_best() {
        sweep_tails(&crate::select::best_kernel::<f32>());
    }

    #[test]
    fn exhaustive_tail_sweep_f64_portable() {
        sweep_tails(&crate::select::portable_kernel::<f64>());
    }

    #[test]
    fn exhaustive_tail_sweep_f64_best() {
        sweep_tails(&crate::select::best_kernel::<f64>());
    }

    #[test]
    fn exhaustive_tail_sweep_i8_portable() {
        sweep_tails_i8(&crate::select::portable_kernel::<i8>());
    }

    #[test]
    fn exhaustive_tail_sweep_i8_best() {
        sweep_tails_i8(&crate::select::best_kernel::<i8>());
    }

    #[test]
    fn exhaustive_tail_sweep_bf16_portable() {
        sweep_tails(&crate::select::portable_kernel::<cake_matrix::Bf16>());
    }

    #[test]
    fn exhaustive_tail_sweep_bf16_best() {
        sweep_tails(&crate::select::best_kernel::<cake_matrix::Bf16>());
    }

    #[test]
    fn zero_region_is_noop() {
        let ukr = portable_f32_8x8();
        let mut c = [5.0f32; 4];
        // SAFETY: k=0 with a 0x0 region reads nothing from the null sliver
        // pointers and writes nothing to c.
        unsafe {
            run_tile(
                &ukr,
                0,
                std::ptr::null(),
                std::ptr::null(),
                c.as_mut_ptr(),
                2,
                1,
                0,
                0,
            );
        }
        assert_eq!(c, [5.0; 4]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn edge_path_does_not_touch_outside_region() {
        let ukr = portable_f32_8x8();
        let k = 4;
        let a = init::ones::<f32>(2, k);
        let b = init::ones::<f32>(k, 2);
        let mut pa = vec![0.0f32; packed_a_size(2, k, 8)];
        let mut pb = vec![0.0f32; packed_b_size(k, 2, 8)];
        pack_a(&a.view(), &mut pa, 8);
        pack_b(&b.view(), &mut pb, 8);

        // Canary buffer: a 4x4 C where only the top-left 2x2 may change.
        let mut c = [[-9.0f32; 4]; 4];
        // SAFETY: pa/pb are ceil-padded packed slivers; the 2x2 edge region
        // with rsc=4, csc=1 stays inside the 4x4 canary buffer.
        unsafe {
            run_tile(&ukr, k, pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr().cast(), 4, 1, 2, 2);
        }
        for i in 0..4 {
            for j in 0..4 {
                if i < 2 && j < 2 {
                    assert_eq!(c[i][j], -9.0 + k as f32);
                } else {
                    assert_eq!(c[i][j], -9.0, "canary clobbered at ({i},{j})");
                }
            }
        }
    }
}
