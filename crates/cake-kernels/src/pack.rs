//! Packing of operand blocks into micro-panel format.
//!
//! Both CAKE and GOTO copy the operand blocks they are about to compute on
//! into contiguous buffers (paper Section 5.2.1): packing minimizes cache
//! evictions and self-interference, and puts data in the exact streaming
//! order the microkernel consumes.
//!
//! Formats (BLIS-compatible):
//!
//! * **Packed `A`** (an `mc x kc` block): split into `ceil(mc/mr)` slivers
//!   of `mr` rows. Each sliver is stored k-major: for `k = 0..kc` the `mr`
//!   column elements `A[s*mr .. s*mr+mr, k]` are contiguous. Edge slivers
//!   are zero-padded to `mr` rows.
//! * **Packed `B`** (a `kc x nc` block): split into `ceil(nc/nr)` slivers
//!   of `nr` columns, each stored k-major with `nr` contiguous row elements
//!   per `k`, zero-padded to `nr` columns.
//!
//! Zero padding lets the hot loop always run full `mr x nr` kernels for the
//! interior; only the `C`-side write needs edge masking.

use cake_matrix::{Element, MatrixView};

/// Elements needed to pack an `mc x kc` block of `A` with sliver height `mr`.
pub fn packed_a_size(mc: usize, kc: usize, mr: usize) -> usize {
    if mc == 0 || kc == 0 {
        return 0;
    }
    mc.div_ceil(mr) * mr * kc
}

/// Elements needed to pack a `kc x nc` block of `B` with sliver width `nr`.
pub fn packed_b_size(kc: usize, nc: usize, nr: usize) -> usize {
    if kc == 0 || nc == 0 {
        return 0;
    }
    nc.div_ceil(nr) * nr * kc
}

/// Offset of A sliver `s` within a packed-A buffer.
#[inline]
pub fn a_sliver_offset(s: usize, kc: usize, mr: usize) -> usize {
    s * mr * kc
}

/// Offset of B sliver `t` within a packed-B buffer.
#[inline]
pub fn b_sliver_offset(t: usize, kc: usize, nr: usize) -> usize {
    t * nr * kc
}

/// Pack an `mc x kc` view of `A` into `dst`.
///
/// # Panics
/// Panics if `dst` is shorter than [`packed_a_size`].
pub fn pack_a<T: Element>(src: &MatrixView<'_, T>, dst: &mut [T], mr: usize) {
    let mc = src.rows();
    let kc = src.cols();
    let need = packed_a_size(mc, kc, mr);
    assert!(dst.len() >= need, "packed A buffer too small: {} < {need}", dst.len());
    let slivers = if mc == 0 { 0 } else { mc.div_ceil(mr) };
    for s in 0..slivers {
        let row0 = s * mr;
        let live = mr.min(mc - row0);
        let base = a_sliver_offset(s, kc, mr);
        for k in 0..kc {
            let out = &mut dst[base + k * mr..base + (k + 1) * mr];
            for (i, o) in out.iter_mut().enumerate() {
                *o = if i < live { src.get(row0 + i, k) } else { T::ZERO };
            }
        }
    }
}

/// Pack a `kc x nc` view of `B` into `dst`.
///
/// # Panics
/// Panics if `dst` is shorter than [`packed_b_size`].
pub fn pack_b<T: Element>(src: &MatrixView<'_, T>, dst: &mut [T], nr: usize) {
    let kc = src.rows();
    let nc = src.cols();
    let need = packed_b_size(kc, nc, nr);
    assert!(dst.len() >= need, "packed B buffer too small: {} < {need}", dst.len());
    let slivers = if nc == 0 { 0 } else { nc.div_ceil(nr) };
    for t in 0..slivers {
        let col0 = t * nr;
        let live = nr.min(nc - col0);
        let base = b_sliver_offset(t, kc, nr);
        for k in 0..kc {
            let out = &mut dst[base + k * nr..base + (k + 1) * nr];
            for (j, o) in out.iter_mut().enumerate() {
                *o = if j < live { src.get(k, col0 + j) } else { T::ZERO };
            }
        }
    }
}

/// Unpack a packed-A buffer back into row-major order (test helper).
pub fn unpack_a<T: Element>(packed: &[T], mc: usize, kc: usize, mr: usize) -> Vec<T> {
    let mut out = vec![T::ZERO; mc * kc];
    for i in 0..mc {
        let s = i / mr;
        let r = i % mr;
        for k in 0..kc {
            out[i * kc + k] = packed[a_sliver_offset(s, kc, mr) + k * mr + r];
        }
    }
    out
}

/// Unpack a packed-B buffer back into row-major order (test helper).
pub fn unpack_b<T: Element>(packed: &[T], kc: usize, nc: usize, nr: usize) -> Vec<T> {
    let mut out = vec![T::ZERO; kc * nc];
    for k in 0..kc {
        for j in 0..nc {
            let t = j / nr;
            let c = j % nr;
            out[k * nc + j] = packed[b_sliver_offset(t, kc, nr) + k * nr + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_matrix::{init, Matrix};
    use proptest::prelude::*;

    #[test]
    fn pack_a_round_trips() {
        let m = init::sequential::<f32>(10, 7);
        let mr = 4;
        let mut buf = vec![0.0; packed_a_size(10, 7, mr)];
        pack_a(&m.view(), &mut buf, mr);
        assert_eq!(unpack_a(&buf, 10, 7, mr), m.as_slice());
    }

    #[test]
    fn pack_b_round_trips() {
        let m = init::sequential::<f64>(5, 13);
        let nr = 8;
        let mut buf = vec![0.0; packed_b_size(5, 13, nr)];
        pack_b(&m.view(), &mut buf, nr);
        assert_eq!(unpack_b(&buf, 5, 13, nr), m.as_slice());
    }

    #[test]
    fn edge_slivers_are_zero_padded() {
        // 5 rows with mr=4: second sliver has 1 live + 3 padded rows.
        let m = init::ones::<f32>(5, 3);
        let mut buf = vec![-1.0; packed_a_size(5, 3, 4)];
        pack_a(&m.view(), &mut buf, 4);
        // Second sliver: entries at rows 1..4 of every k must be zero.
        let base = a_sliver_offset(1, 3, 4);
        for k in 0..3 {
            assert_eq!(buf[base + k * 4], 1.0);
            assert_eq!(&buf[base + k * 4 + 1..base + k * 4 + 4], &[0.0; 3]);
        }
    }

    #[test]
    fn packed_a_layout_is_k_major() {
        // 2x2 with mr=2: layout must be [a00, a10, a01, a11].
        let m = Matrix::from_rows(2, 2, &[1.0f32, 2.0, 3.0, 4.0]);
        let mut buf = vec![0.0; 4];
        pack_a(&m.view(), &mut buf, 2);
        assert_eq!(buf, vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn packed_b_layout_is_k_major() {
        // 2x2 with nr=2: layout must be [b00, b01, b10, b11].
        let m = Matrix::from_rows(2, 2, &[1.0f32, 2.0, 3.0, 4.0]);
        let mut buf = vec![0.0; 4];
        pack_b(&m.view(), &mut buf, 2);
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pack_from_column_major_source() {
        let rm = init::sequential::<f64>(6, 5);
        let cm = rm.to_layout(cake_matrix::Layout::ColMajor);
        let (mut b1, mut b2) = (
            vec![0.0; packed_a_size(6, 5, 4)],
            vec![0.0; packed_a_size(6, 5, 4)],
        );
        pack_a(&rm.view(), &mut b1, 4);
        pack_a(&cm.view(), &mut b2, 4);
        assert_eq!(b1, b2);
    }

    #[test]
    fn zero_sized_blocks() {
        assert_eq!(packed_a_size(0, 5, 4), 0);
        assert_eq!(packed_b_size(5, 0, 8), 0);
        let m = Matrix::<f32>::zeros(0, 5);
        let mut buf: Vec<f32> = vec![];
        pack_a(&m.view(), &mut buf, 4); // must not panic
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_buffer_panics() {
        let m = init::ones::<f32>(8, 8);
        let mut buf = vec![0.0; 10];
        pack_a(&m.view(), &mut buf, 4);
    }

    proptest! {
        #[test]
        fn pack_unpack_identity(
            mc in 1usize..40,
            kc in 1usize..40,
            mr in prop::sample::select(vec![1usize, 2, 4, 6, 8]),
        ) {
            let m = init::random::<f32>(mc, kc, 99);
            let mut buf = vec![0.0; packed_a_size(mc, kc, mr)];
            pack_a(&m.view(), &mut buf, mr);
            prop_assert_eq!(unpack_a(&buf, mc, kc, mr), m.as_slice().to_vec());
        }

        #[test]
        fn pack_b_unpack_identity(
            kc in 1usize..40,
            nc in 1usize..40,
            nr in prop::sample::select(vec![1usize, 4, 8, 16]),
        ) {
            let m = init::random::<f64>(kc, nc, 7);
            let mut buf = vec![0.0; packed_b_size(kc, nc, nr)];
            pack_b(&m.view(), &mut buf, nr);
            prop_assert_eq!(unpack_b(&buf, kc, nc, nr), m.as_slice().to_vec());
        }
    }
}
