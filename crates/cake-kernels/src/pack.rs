//! Packing of operand blocks into micro-panel format.
//!
//! Both CAKE and GOTO copy the operand blocks they are about to compute on
//! into contiguous buffers (paper Section 5.2.1): packing minimizes cache
//! evictions and self-interference, and puts data in the exact streaming
//! order the microkernel consumes.
//!
//! Formats (BLIS-compatible):
//!
//! * **Packed `A`** (an `mc x kc` block): split into `ceil(mc/mr)` slivers
//!   of `mr` rows. Each sliver is stored k-major: for `k = 0..kc` the `mr`
//!   column elements `A[s*mr .. s*mr+mr, k]` are contiguous. Edge slivers
//!   are zero-padded to `mr` rows.
//! * **Packed `B`** (a `kc x nc` block): split into `ceil(nc/nr)` slivers
//!   of `nr` columns, each stored k-major with `nr` contiguous row elements
//!   per `k`, zero-padded to `nr` columns.
//!
//! Zero padding lets the hot loop always run full `mr x nr` kernels for the
//! interior; only the `C`-side write needs edge masking.

use cake_matrix::{Element, MatrixView};

/// How many source columns/rows ahead the packing loops prefetch. Packing
/// streams are short (one sliver column is `mr <= 14` elements), so a small
/// distance keeps the next line in flight without outrunning L1.
const PF_DIST: usize = 4;

/// Hint the CPU to pull `src[idx]`'s cache line into L1. No-op on
/// non-x86_64 targets and for out-of-range `idx`, so callers can pass
/// speculative indices unguarded.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn prefetch_read<T: Element>(src: &[T], idx: usize) {
    if idx < src.len() {
        // SAFETY: idx < src.len(), so the offset pointer stays inside the
        // slice allocation; `_mm_prefetch` is a hint with no validity
        // requirements beyond the pointer computation and never faults.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                src.as_ptr().add(idx).cast::<i8>(),
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn prefetch_read<T: Element>(_src: &[T], _idx: usize) {}

/// Prefetch the head and tail lines of a short contiguous run (a packing
/// sliver column/row spans at most a couple of cache lines).
#[inline(always)]
fn prefetch_run<T: Element>(src: &[T]) {
    prefetch_read(src, 0);
    if std::mem::size_of_val(src) > 64 {
        prefetch_read(src, src.len() - 1);
    }
}

/// SSE2 16x16 byte-tile transpose for the row-major A fast path. The
/// scalar transpose-scatter costs ~2 scalar ops per element regardless of
/// element width, so for 1-byte dtypes packing time rivals the (4x
/// faster) VNNI compute it feeds. This tile kernel retires 256 elements
/// with 16 loads + 64 unpacks + 16 stores. SSE2 is baseline on x86_64 —
/// no runtime detection needed.
#[cfg(target_arch = "x86_64")]
mod bytetile {
    use core::arch::x86_64::*;

    /// Position `j` of the unpack network ends up holding column
    /// `BITREV4[j]`: each of the four lo/hi stages splits by one more
    /// address bit, low bit first, so the output order is bit-reversed.
    const BITREV4: [usize; 16] = [0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15];

    /// Transpose one 16x16 byte tile: `rows[i]` holds source bytes
    /// `k0..k0+16` of logical row `i`; afterwards `dst[k * 16 + i]` holds
    /// `rows[i][k]` for `k, i < 16`.
    ///
    /// # Safety
    /// Each `rows[i]` must be readable for 16 bytes and `dst` writable
    /// for 256 bytes; ranges may not overlap.
    #[inline]
    pub unsafe fn transpose_16x16(rows: &[*const u8; 16], dst: *mut u8) {
        // SAFETY: the caller guarantees 16 readable bytes per row pointer
        // and 256 writable bytes at dst; loadu/storeu are alignment-free.
        unsafe {
            let mut v: [__m128i; 16] = [_mm_setzero_si128(); 16];
            for i in 0..16 {
                v[i] = _mm_loadu_si128(rows[i].cast());
            }
            // Four lo/hi unpack stages: bytes -> words -> dwords -> qwords
            // -> full 16-byte columns.
            let mut w = [_mm_setzero_si128(); 16];
            for i in 0..8 {
                w[i] = _mm_unpacklo_epi8(v[2 * i], v[2 * i + 1]);
                w[i + 8] = _mm_unpackhi_epi8(v[2 * i], v[2 * i + 1]);
            }
            for i in 0..8 {
                v[i] = _mm_unpacklo_epi16(w[2 * i], w[2 * i + 1]);
                v[i + 8] = _mm_unpackhi_epi16(w[2 * i], w[2 * i + 1]);
            }
            for i in 0..8 {
                w[i] = _mm_unpacklo_epi32(v[2 * i], v[2 * i + 1]);
                w[i + 8] = _mm_unpackhi_epi32(v[2 * i], v[2 * i + 1]);
            }
            for i in 0..8 {
                v[i] = _mm_unpacklo_epi64(w[2 * i], w[2 * i + 1]);
                v[i + 8] = _mm_unpackhi_epi64(w[2 * i], w[2 * i + 1]);
            }
            for (j, col) in v.iter().enumerate() {
                _mm_storeu_si128(dst.add(BITREV4[j] * 16).cast(), *col);
            }
        }
    }
}

/// Elements needed to pack an `mc x kc` block of `A` with sliver height `mr`.
pub fn packed_a_size(mc: usize, kc: usize, mr: usize) -> usize {
    if mc == 0 || kc == 0 {
        return 0;
    }
    mc.div_ceil(mr) * mr * kc
}

/// Elements needed to pack a `kc x nc` block of `B` with sliver width `nr`.
pub fn packed_b_size(kc: usize, nc: usize, nr: usize) -> usize {
    if kc == 0 || nc == 0 {
        return 0;
    }
    nc.div_ceil(nr) * nr * kc
}

/// The `idx`-th of `parts` balanced contiguous sub-ranges of `[0, total)`.
///
/// The partition rule for all cooperative work splitting in the executor
/// (B-sliver packing shares, per-worker M-tile strips): the first
/// `total % parts` ranges hold `ceil(total / parts)` items, the rest
/// `floor(total / parts)` — so no range is more than one item longer than
/// any other, ranges are contiguous (consecutive memory => streaming packs),
/// and the union covers `[0, total)` exactly once. Ranges with index past
/// the work (`parts > total`) come back empty.
///
/// # Panics
/// Panics if `parts == 0` or `idx >= parts`.
#[inline]
pub fn split_range(total: usize, parts: usize, idx: usize) -> std::ops::Range<usize> {
    // audit: checked executor passes parts = pool size >= 1 (ThreadPool contract)
    assert!(parts > 0, "cannot split into zero parts");
    // audit: checked executor passes idx = worker id < parts
    assert!(idx < parts, "part index {idx} out of range for {parts} parts");
    let base = total / parts;
    let extra = total % parts;
    let start = idx * base + idx.min(extra);
    let len = base + usize::from(idx < extra);
    start..start + len
}

/// Offset of A sliver `s` within a packed-A buffer.
#[inline]
pub fn a_sliver_offset(s: usize, kc: usize, mr: usize) -> usize {
    s * mr * kc
}

/// Offset of B sliver `t` within a packed-B buffer.
#[inline]
pub fn b_sliver_offset(t: usize, kc: usize, nr: usize) -> usize {
    t * nr * kc
}

/// Pack an `mc x kc` view of `A` into `dst`.
///
/// # Panics
/// Panics if `dst` is shorter than [`packed_a_size`].
pub fn pack_a<T: Element>(src: &MatrixView<'_, T>, dst: &mut [T], mr: usize) {
    let mc = src.rows();
    let kc = src.cols();
    let need = packed_a_size(mc, kc, mr);
    // audit: cold buffer-size precondition, once per pack call before the sliver loop
    assert!(dst.len() >= need, "packed A buffer too small: {} < {need}", dst.len());
    let slivers = if mc == 0 { 0 } else { mc.div_ceil(mr) };
    for s in 0..slivers {
        let row0 = s * mr;
        let live = mr.min(mc - row0);
        let base = a_sliver_offset(s, kc, mr);
        // audit: bounds pack_a_sliver_tail
        let sliv = &mut dst[base..base + mr * kc];
        if src.row_stride() == 1 {
            // Column-major A: the `mr` rows of one k are contiguous —
            // exactly one packed-A sliver column, a straight memcpy.
            for k in 0..kc {
                // Pull the column PF_DIST k's ahead while this one copies.
                if let Some(ahead) = src.contiguous_col((k + PF_DIST).min(kc - 1), row0, live) {
                    prefetch_run(ahead);
                }
                // audit: checked k < kc keeps the sliver column inside mr*kc
                let out = &mut sliv[k * mr..(k + 1) * mr];
                // audit: checked guarded by the row_stride == 1 branch above
                let col = src.contiguous_col(k, row0, live).expect("unit row stride");
                // audit: checked live <= mr bounds the live prefix
                out[..live].copy_from_slice(col);
                // Edge tail handled once per k, outside the element loop.
                // audit: checked live <= mr bounds the zero tail
                out[live..].fill(T::ZERO);
            }
        } else if src.col_stride() == 1 {
            // Row-major A: each source row is contiguous along k, so the
            // sliver is an `live x kc` transpose.
            #[cfg(target_arch = "x86_64")]
            if std::mem::size_of::<T>() == 1 && mr == 16 && live == 16 {
                // Full sliver of a 1-byte dtype: 16x16 SIMD byte-tile
                // transpose, scalar loop only for the kc % 16 tail.
                let rows: [*const u8; 16] = std::array::from_fn(|i| {
                    src.contiguous_row(row0 + i, 0, kc)
                        // audit: checked guarded by the col_stride == 1 branch above
                        .expect("unit col stride")
                        .as_ptr()
                        .cast()
                });
                let dst8 = sliv.as_mut_ptr().cast::<u8>();
                let ktiles = kc / 16;
                for kt in 0..ktiles {
                    // SAFETY: every row has kc >= kt*16 + 16 readable
                    // bytes; the destination tile dst8[kt*256..][..256] is
                    // inside the mr*kc sliver (kt*16 + 16 <= kc columns of
                    // 16 bytes); `sliv` and `src` never alias (distinct
                    // allocations).
                    unsafe {
                        // audit: checked from_fn gives i < 16 = rows.len()
                        let tile: [*const u8; 16] = std::array::from_fn(|i| rows[i].add(kt * 16));
                        bytetile::transpose_16x16(&tile, dst8.add(kt * 256));
                    }
                }
                for k in ktiles * 16..kc {
                    for (i, &row) in rows.iter().enumerate() {
                        // SAFETY: k < kc bounds the row read; the write
                        // lands at element k*16 + i < kc*16 of the sliver.
                        unsafe { *dst8.add(k * 16 + i) = *row.add(k) };
                    }
                }
                continue;
            }
            // Stream each row once with an `mr`-strided scatter instead
            // of per-element 2-D indexing.
            for i in 0..live {
                // Pull the head of the next source row while this one streams.
                if i + 1 < live {
                    if let Some(ahead) = src.contiguous_row(row0 + i + 1, 0, kc) {
                        prefetch_read(ahead, 0);
                    }
                }
                // audit: checked guarded by the col_stride == 1 branch above
                let row = src.contiguous_row(row0 + i, 0, kc).expect("unit col stride");
                for (k, &v) in row.iter().enumerate() {
                    // audit: checked k < kc and i < live <= mr stay inside the mr*kc sliver
                    sliv[k * mr + i] = v;
                }
            }
            if live < mr {
                for k in 0..kc {
                    // audit: checked live < mr branch keeps k*mr+live..(k+1)*mr inside the sliver
                    sliv[k * mr + live..(k + 1) * mr].fill(T::ZERO);
                }
            }
        } else {
            // General strided view: element-wise gather.
            for k in 0..kc {
                // audit: checked k < kc keeps the sliver column inside mr*kc
                let out = &mut sliv[k * mr..(k + 1) * mr];
                // audit: checked live <= mr bounds the live prefix
                for (i, o) in out[..live].iter_mut().enumerate() {
                    *o = src.get(row0 + i, k);
                }
                // audit: checked live <= mr bounds the zero tail
                out[live..].fill(T::ZERO);
            }
        }
    }
}

/// Pack a `kc x nc` view of `B` into `dst`.
///
/// # Panics
/// Panics if `dst` is shorter than [`packed_b_size`].
pub fn pack_b<T: Element>(src: &MatrixView<'_, T>, dst: &mut [T], nr: usize) {
    let kc = src.rows();
    let nc = src.cols();
    let need = packed_b_size(kc, nc, nr);
    // audit: cold buffer-size precondition, once per pack call before the sliver loop
    assert!(dst.len() >= need, "packed B buffer too small: {} < {need}", dst.len());
    let slivers = if nc == 0 { 0 } else { nc.div_ceil(nr) };
    for t in 0..slivers {
        let col0 = t * nr;
        let live = nr.min(nc - col0);
        let base = b_sliver_offset(t, kc, nr);
        // audit: bounds pack_b_sliver_tail
        let sliv = &mut dst[base..base + nr * kc];
        if src.col_stride() == 1 {
            // Row-major B: the `nr` columns of one k are contiguous —
            // exactly one packed-B sliver row, a straight memcpy.
            for k in 0..kc {
                // Pull the row PF_DIST k's ahead while this one copies.
                if let Some(ahead) = src.contiguous_row((k + PF_DIST).min(kc - 1), col0, live) {
                    prefetch_run(ahead);
                }
                // audit: checked k < kc keeps the sliver row inside nr*kc
                let out = &mut sliv[k * nr..(k + 1) * nr];
                // audit: checked guarded by the col_stride == 1 branch above
                let row = src.contiguous_row(k, col0, live).expect("unit col stride");
                // audit: checked live <= nr bounds the live prefix
                out[..live].copy_from_slice(row);
                // audit: checked live <= nr bounds the zero tail
                out[live..].fill(T::ZERO);
            }
        } else if src.row_stride() == 1 {
            // Column-major B: each source column is contiguous along k —
            // stream each column once with an `nr`-strided scatter.
            for j in 0..live {
                // Pull the head of the next source column while this one
                // streams.
                if j + 1 < live {
                    if let Some(ahead) = src.contiguous_col(col0 + j + 1, 0, kc) {
                        prefetch_read(ahead, 0);
                    }
                }
                // audit: checked guarded by the row_stride == 1 branch above
                let col = src.contiguous_col(col0 + j, 0, kc).expect("unit row stride");
                for (k, &v) in col.iter().enumerate() {
                    // audit: checked k < kc and j < live <= nr stay inside the nr*kc sliver
                    sliv[k * nr + j] = v;
                }
            }
            if live < nr {
                for k in 0..kc {
                    // audit: checked live < nr branch keeps k*nr+live..(k+1)*nr inside the sliver
                    sliv[k * nr + live..(k + 1) * nr].fill(T::ZERO);
                }
            }
        } else {
            // General strided view: element-wise gather.
            for k in 0..kc {
                // audit: checked k < kc keeps the sliver row inside nr*kc
                let out = &mut sliv[k * nr..(k + 1) * nr];
                // audit: checked live <= nr bounds the live prefix
                for (j, o) in out[..live].iter_mut().enumerate() {
                    *o = src.get(k, col0 + j);
                }
                // audit: checked live <= nr bounds the zero tail
                out[live..].fill(T::ZERO);
            }
        }
    }
}

/// Unpack a packed-A buffer back into row-major order (test helper).
pub fn unpack_a<T: Element>(packed: &[T], mc: usize, kc: usize, mr: usize) -> Vec<T> {
    let mut out = vec![T::ZERO; mc * kc];
    for i in 0..mc {
        let s = i / mr;
        let r = i % mr;
        for k in 0..kc {
            out[i * kc + k] = packed[a_sliver_offset(s, kc, mr) + k * mr + r];
        }
    }
    out
}

/// Unpack a packed-B buffer back into row-major order (test helper).
pub fn unpack_b<T: Element>(packed: &[T], kc: usize, nc: usize, nr: usize) -> Vec<T> {
    let mut out = vec![T::ZERO; kc * nc];
    for k in 0..kc {
        for j in 0..nc {
            let t = j / nr;
            let c = j % nr;
            out[k * nc + j] = packed[b_sliver_offset(t, kc, nr) + k * nr + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_matrix::{init, Matrix};
    use proptest::prelude::*;

    #[test]
    fn split_range_partitions_exactly_with_max_one_extra() {
        for total in 0..60usize {
            for parts in 1..12usize {
                let mut next = 0usize;
                let mut sizes = Vec::new();
                for idx in 0..parts {
                    let r = split_range(total, parts, idx);
                    assert_eq!(r.start, next, "ranges must tile [0, total)");
                    next = r.end;
                    sizes.push(r.len());
                }
                assert_eq!(next, total, "union must cover all items");
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "imbalance > 1: {sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_range_rejects_zero_parts() {
        let _ = split_range(4, 0, 0);
    }

    #[test]
    fn pack_a_round_trips() {
        let m = init::sequential::<f32>(10, 7);
        let mr = 4;
        let mut buf = vec![0.0; packed_a_size(10, 7, mr)];
        pack_a(&m.view(), &mut buf, mr);
        assert_eq!(unpack_a(&buf, 10, 7, mr), m.as_slice());
    }

    #[test]
    fn pack_b_round_trips() {
        let m = init::sequential::<f64>(5, 13);
        let nr = 8;
        let mut buf = vec![0.0; packed_b_size(5, 13, nr)];
        pack_b(&m.view(), &mut buf, nr);
        assert_eq!(unpack_b(&buf, 5, 13, nr), m.as_slice());
    }

    #[test]
    fn edge_slivers_are_zero_padded() {
        // 5 rows with mr=4: second sliver has 1 live + 3 padded rows.
        let m = init::ones::<f32>(5, 3);
        let mut buf = vec![-1.0; packed_a_size(5, 3, 4)];
        pack_a(&m.view(), &mut buf, 4);
        // Second sliver: entries at rows 1..4 of every k must be zero.
        let base = a_sliver_offset(1, 3, 4);
        for k in 0..3 {
            assert_eq!(buf[base + k * 4], 1.0);
            assert_eq!(&buf[base + k * 4 + 1..base + k * 4 + 4], &[0.0; 3]);
        }
    }

    #[test]
    fn packed_a_layout_is_k_major() {
        // 2x2 with mr=2: layout must be [a00, a10, a01, a11].
        let m = Matrix::from_rows(2, 2, &[1.0f32, 2.0, 3.0, 4.0]);
        let mut buf = vec![0.0; 4];
        pack_a(&m.view(), &mut buf, 2);
        assert_eq!(buf, vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn packed_b_layout_is_k_major() {
        // 2x2 with nr=2: layout must be [b00, b01, b10, b11].
        let m = Matrix::from_rows(2, 2, &[1.0f32, 2.0, 3.0, 4.0]);
        let mut buf = vec![0.0; 4];
        pack_b(&m.view(), &mut buf, 2);
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pack_from_column_major_source() {
        let rm = init::sequential::<f64>(6, 5);
        let cm = rm.to_layout(cake_matrix::Layout::ColMajor);
        let (mut b1, mut b2) = (
            vec![0.0; packed_a_size(6, 5, 4)],
            vec![0.0; packed_a_size(6, 5, 4)],
        );
        pack_a(&rm.view(), &mut b1, 4);
        pack_a(&cm.view(), &mut b2, 4);
        assert_eq!(b1, b2);
    }

    #[test]
    fn zero_sized_blocks() {
        assert_eq!(packed_a_size(0, 5, 4), 0);
        assert_eq!(packed_b_size(5, 0, 8), 0);
        let m = Matrix::<f32>::zeros(0, 5);
        let mut buf: Vec<f32> = vec![];
        pack_a(&m.view(), &mut buf, 4); // must not panic
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_buffer_panics() {
        let m = init::ones::<f32>(8, 8);
        let mut buf = vec![0.0; 10];
        pack_a(&m.view(), &mut buf, 4);
    }

    #[test]
    fn pack_a_fast_path_matches_strided_paths() {
        // Same logical matrix through three source layouts: row-major
        // (row-transpose path), column-major (contiguous_col memcpy path),
        // and a transposed row-major view (also unit row stride).
        let rm = init::random::<f32>(13, 9, 5);
        let cm = rm.to_layout(cake_matrix::Layout::ColMajor);
        let tr = rm.transposed(); // 9x13 row-major; .t() view is 13x9
        for mr in [1usize, 2, 4, 6, 8] {
            let size = packed_a_size(13, 9, mr);
            let (mut slow, mut fast, mut trans) =
                (vec![-1.0; size], vec![-1.0; size], vec![-1.0; size]);
            pack_a(&rm.view(), &mut slow, mr);
            pack_a(&cm.view(), &mut fast, mr);
            pack_a(&tr.view().t(), &mut trans, mr);
            assert_eq!(slow, fast, "mr={mr}: col-major fast path diverged");
            assert_eq!(slow, trans, "mr={mr}: transposed-view path diverged");
        }
    }

    #[test]
    fn pack_a_i8_byte_tile_matches_column_major_path() {
        // mr = 16 with a 1-byte dtype takes the SIMD 16x16 byte-tile
        // transpose on x86_64. Cover: kc % 16 tails (scalar k loop), a
        // kc < 16 block (tile loop runs zero times), an edge sliver
        // (live < 16 falls back to the scalar scatter), and exact
        // multiples. The column-major source packs the same logical
        // matrix through the memcpy path as the reference.
        for (mc, kc) in [(16, 16), (16, 37), (48, 80), (35, 15), (32, 100), (16, 1)] {
            let rm = init::random_i8(mc, kc, 7);
            let cm = rm.to_layout(cake_matrix::Layout::ColMajor);
            let size = packed_a_size(mc, kc, 16);
            let (mut tile, mut refr) = (vec![0i8; size], vec![0i8; size]);
            pack_a(&rm.view(), &mut tile, 16);
            pack_a(&cm.view(), &mut refr, 16);
            assert_eq!(tile, refr, "mc={mc} kc={kc}: byte-tile transpose diverged");
        }
    }

    #[test]
    fn pack_b_fast_path_matches_strided_paths() {
        let rm = init::random::<f64>(7, 21, 6);
        let cm = rm.to_layout(cake_matrix::Layout::ColMajor);
        for nr in [1usize, 4, 8, 16] {
            let size = packed_b_size(7, 21, nr);
            let (mut fast, mut slow) = (vec![-1.0; size], vec![-1.0; size]);
            pack_b(&rm.view(), &mut fast, nr); // contiguous_row fast path
            pack_b(&cm.view(), &mut slow, nr); // strided element path
            assert_eq!(fast, slow, "nr={nr}: B fast path diverged");
        }
    }

    #[test]
    fn pack_a_fast_path_on_subview() {
        // The executor packs strips via sub-views; offsets must be honoured
        // by the contiguous_col path.
        let cm = init::sequential::<f32>(16, 12).to_layout(cake_matrix::Layout::ColMajor);
        let sub = cm.view().sub(3, 2, 10, 7);
        let rm_sub = init::sequential::<f32>(16, 12);
        let sub_rm = rm_sub.view().sub(3, 2, 10, 7);
        let size = packed_a_size(10, 7, 4);
        let (mut a, mut b) = (vec![0.0; size], vec![0.0; size]);
        pack_a(&sub, &mut a, 4);
        pack_a(&sub_rm, &mut b, 4);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn pack_unpack_identity(
            mc in 1usize..40,
            kc in 1usize..40,
            mr in prop::sample::select(vec![1usize, 2, 4, 6, 8]),
        ) {
            let m = init::random::<f32>(mc, kc, 99);
            let mut buf = vec![0.0; packed_a_size(mc, kc, mr)];
            pack_a(&m.view(), &mut buf, mr);
            prop_assert_eq!(unpack_a(&buf, mc, kc, mr), m.as_slice().to_vec());
        }

        #[test]
        fn pack_b_unpack_identity(
            kc in 1usize..40,
            nc in 1usize..40,
            nr in prop::sample::select(vec![1usize, 4, 8, 16]),
        ) {
            let m = init::random::<f64>(kc, nc, 7);
            let mut buf = vec![0.0; packed_b_size(kc, nc, nr)];
            pack_b(&m.view(), &mut buf, nr);
            prop_assert_eq!(unpack_b(&buf, kc, nc, nr), m.as_slice().to_vec());
        }
    }
}
