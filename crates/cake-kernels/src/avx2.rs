//! AVX2 + FMA microkernels (x86_64 only, selected at runtime).
//!
//! Register blocking follows the classic BLIS Haswell kernels the paper's
//! C++ implementation uses:
//!
//! * f32 `6 x 16`: 12 accumulator YMM registers (6 rows x 2 vectors of 8
//!   lanes), 2 registers for the `B` row, 1 for the `A` broadcast — 15 of
//!   the 16 architectural YMM registers.
//! * f64 `4 x 8`: 8 accumulators (4 rows x 2 vectors of 4 lanes) + 3.
//!
//! Both kernels have a fast store path for unit column stride (`csc == 1`,
//! i.e. row-major `C`) and a scalar fallback for arbitrary strides. The
//! K-loop issues software prefetches [`crate::avx512::PF_DIST_K`]
//! iterations ahead into the packed slivers, and the `C` tile rows are
//! prefetched at kernel entry (BLIS prefetch discipline; see `avx512.rs`
//! for the rationale).

use core::arch::x86_64::*;

use cake_matrix::Bf16;

use crate::avx512::PF_DIST_K;
use crate::ukernel::Ukr;

/// The f32 `6x16` AVX2+FMA kernel, if the CPU supports it.
pub fn avx2_f32_6x16() -> Option<Ukr<f32>> {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Some(Ukr::new(6, 16, "avx2_f32_6x16", ukr_f32_6x16))
    } else {
        None
    }
}

/// The f64 `4x8` AVX2+FMA kernel, if the CPU supports it.
pub fn avx2_f64_4x8() -> Option<Ukr<f64>> {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Some(Ukr::new(4, 8, "avx2_f64_4x8", ukr_f64_4x8))
    } else {
        None
    }
}

/// The int8 `4x8` AVX2 kernel (i32 accumulate), if the CPU supports it.
///
/// Correctness-first fallback tier: operands are sign-extended to i32
/// lanes (`vpmovsxbd` for the B row, scalar sign-extend + broadcast for
/// A) and multiplied with `vpmulld` — exact, because an i8 x i8 product
/// always fits 32 bits. No `vpmaddubsw` anywhere: its intermediate i16
/// saturation would silently clamp `(-128) * (-128) + (-128) * (-128)`.
pub fn avx2_i8_4x8() -> Option<Ukr<i8>> {
    if is_x86_feature_detected!("avx2") {
        Some(Ukr::new(4, 8, "avx2_i8_4x8", ukr_i8_4x8))
    } else {
        None
    }
}

/// The bf16 `4x8` AVX2+FMA kernel (f32 accumulate), if the CPU supports
/// it. bf16 operands widen to f32 exactly (append 16 zero mantissa bits),
/// so this is the f32 kernel's FMA loop behind a cheap integer shift.
pub fn avx2_bf16_4x8() -> Option<Ukr<Bf16>> {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Some(Ukr::new(4, 8, "avx2_bf16_4x8", ukr_bf16_4x8))
    } else {
        None
    }
}

/// Thin wrapper: dispatch requires a plain fn pointer, but the
/// target-feature function below must only be called after detection, which
/// `avx2_f32_6x16` guarantees.
///
/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX2+FMA must be available.
unsafe fn ukr_f32_6x16(kc: usize, a: *const f32, b: *const f32, c: *mut f32, rsc: usize, csc: usize) {
    // SAFETY: this fn pointer is only installed by `avx2_f32_6x16` after
    // runtime AVX2+FMA detection, and the caller upholds UkrFn's contract,
    // which is exactly the impl's pointer-validity requirement.
    unsafe { ukr_f32_6x16_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX2+FMA must be available.
unsafe fn ukr_f64_4x8(kc: usize, a: *const f64, b: *const f64, c: *mut f64, rsc: usize, csc: usize) {
    // SAFETY: installed by `avx2_f64_4x8` after AVX2+FMA detection; the
    // caller upholds UkrFn's contract.
    unsafe { ukr_f64_4x8_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX2 must be available.
unsafe fn ukr_i8_4x8(kc: usize, a: *const i8, b: *const i8, c: *mut i32, rsc: usize, csc: usize) {
    // SAFETY: installed by `avx2_i8_4x8` after AVX2 detection; the caller
    // upholds UkrFn's contract.
    unsafe { ukr_i8_4x8_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract, plus AVX2+FMA must be available.
unsafe fn ukr_bf16_4x8(kc: usize, a: *const Bf16, b: *const Bf16, c: *mut f32, rsc: usize, csc: usize) {
    // SAFETY: installed by `avx2_bf16_4x8` after AVX2+FMA detection; the
    // caller upholds UkrFn's contract.
    unsafe { ukr_bf16_4x8_impl(kc, a, b, c, rsc, csc) }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX2 enforced by `target_feature`.
#[target_feature(enable = "avx2")]
unsafe fn ukr_i8_4x8_impl(
    kc: usize,
    a: *const i8,
    b: *const i8,
    c: *mut i32,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 4;

    // SAFETY: UkrFn's contract gives `a` kc*4 i8 elements, `b` kc*8 i8
    // elements, and valid non-aliasing C addresses c[i*rsc + j*csc] for
    // i < 4, j < 8. The B load reads the 8 bytes b[k*8 .. k*8+8] (in
    // bounds for k < kc), the A reads are single bytes a[k*4 + i], the
    // prefetch offsets are clamped to the packed ranges, and the
    // unaligned load/store intrinsics have no alignment requirement.
    unsafe {
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc = [_mm256_setzero_si256(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR), _MM_HINT_T0);
            _mm_prefetch(b.add(kpf * 8), _MM_HINT_T0);

            // 8 B bytes -> 8 sign-extended i32 lanes.
            let braw = _mm_loadl_epi64(b.add(k * 8).cast::<__m128i>());
            let bk = _mm256_cvtepi8_epi32(braw);
            let ak = a.add(k * MR);
            for (i, accr) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_epi32(*ak.add(i) as i32);
                *accr = _mm256_add_epi32(*accr, _mm256_mullo_epi32(ai, bk));
            }
        }

        if csc == 1 {
            for (i, accv) in acc.iter().enumerate() {
                let row = c.add(i * rsc).cast::<__m256i>();
                let cur = _mm256_loadu_si256(row);
                _mm256_storeu_si256(row, _mm256_add_epi32(cur, *accv));
            }
        } else {
            let mut lanes = [0i32; 8];
            for (i, accv) in acc.iter().enumerate() {
                _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), *accv);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX2+FMA enforced by `target_feature`.
#[target_feature(enable = "avx2,fma")]
unsafe fn ukr_bf16_4x8_impl(
    kc: usize,
    a: *const Bf16,
    b: *const Bf16,
    c: *mut f32,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 4;

    // SAFETY: UkrFn's contract gives `a` kc*4 bf16 elements, `b` kc*8 bf16
    // elements, and valid non-aliasing C addresses c[i*rsc + j*csc] for
    // i < 4, j < 8. The B load reads the 16 bytes of b[k*8 .. k*8+8]
    // (in bounds for k < kc), A reads are single u16s, the prefetch
    // offsets are clamped to the packed ranges, and the unaligned
    // load/store intrinsics have no alignment requirement.
    unsafe {
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc = [_mm256_setzero_ps(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(b.add(kpf * 8).cast::<i8>(), _MM_HINT_T0);

            // 8 bf16 -> 8 f32 lanes: zero-extend each u16 into the high
            // half of an i32 lane (exact bf16 -> f32 widening).
            let braw = _mm_loadu_si128(b.add(k * 8).cast::<__m128i>());
            let bwide = _mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(braw));
            let bk = _mm256_castsi256_ps(bwide);
            let ak = a.add(k * MR).cast::<u16>();
            for (i, accr) in acc.iter_mut().enumerate() {
                let bits = (*ak.add(i) as u32) << 16;
                let ai = _mm256_castsi256_ps(_mm256_set1_epi32(bits as i32));
                *accr = _mm256_fmadd_ps(ai, bk, *accr);
            }
        }

        if csc == 1 {
            for (i, accv) in acc.iter().enumerate() {
                let row = c.add(i * rsc);
                let cur = _mm256_loadu_ps(row);
                _mm256_storeu_ps(row, _mm256_add_ps(cur, *accv));
            }
        } else {
            let mut lanes = [0.0f32; 8];
            for (i, accv) in acc.iter().enumerate() {
                _mm256_storeu_ps(lanes.as_mut_ptr(), *accv);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX2+FMA enforced by `target_feature`.
#[target_feature(enable = "avx2,fma")]
unsafe fn ukr_f32_6x16_impl(
    kc: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 6;

    // SAFETY: UkrFn's contract gives `a` kc*6 elements, `b` kc*16 elements,
    // and valid non-aliasing C addresses c[i*rsc + j*csc] for i < 6, j < 16;
    // every pointer offset below stays within those ranges, the prefetch
    // offsets are clamped to the same ranges ((k + PF_DIST_K).min(kc - 1)
    // keeps the prefetched k in [0, kc)), and the unaligned load/store
    // intrinsics have no alignment requirement.
    unsafe {
        // Warm the C tile rows the store loop will read-modify-write.
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc0 = [_mm256_setzero_ps(); MR];
        let mut acc1 = [_mm256_setzero_ps(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR).cast::<i8>(), _MM_HINT_T0);
            // One B row is 64 B = one cache line.
            _mm_prefetch(b.add(kpf * 16).cast::<i8>(), _MM_HINT_T0);

            let bk = b.add(k * 16);
            let b0 = _mm256_loadu_ps(bk);
            let b1 = _mm256_loadu_ps(bk.add(8));
            let ak = a.add(k * MR);
            for i in 0..MR {
                let ai = _mm256_broadcast_ss(&*ak.add(i));
                acc0[i] = _mm256_fmadd_ps(ai, b0, acc0[i]);
                acc1[i] = _mm256_fmadd_ps(ai, b1, acc1[i]);
            }
        }

        if csc == 1 {
            for i in 0..MR {
                let row = c.add(i * rsc);
                let c0 = _mm256_loadu_ps(row);
                let c1 = _mm256_loadu_ps(row.add(8));
                _mm256_storeu_ps(row, _mm256_add_ps(c0, acc0[i]));
                _mm256_storeu_ps(row.add(8), _mm256_add_ps(c1, acc1[i]));
            }
        } else {
            let mut lanes = [0.0f32; 16];
            for i in 0..MR {
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc0[i]);
                _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc1[i]);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

/// # Safety
/// [`crate::ukernel::UkrFn`]'s contract; AVX2+FMA enforced by `target_feature`.
#[target_feature(enable = "avx2,fma")]
unsafe fn ukr_f64_4x8_impl(
    kc: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    rsc: usize,
    csc: usize,
) {
    const MR: usize = 4;

    // SAFETY: UkrFn's contract gives `a` kc*4 elements, `b` kc*8 elements,
    // and valid non-aliasing C addresses c[i*rsc + j*csc] for i < 4, j < 8;
    // all offsets below stay within those ranges, the prefetch offsets are
    // clamped to the same ranges ((k + PF_DIST_K).min(kc - 1) keeps the
    // prefetched k in [0, kc)), and the unaligned load/store intrinsics
    // have no alignment requirement.
    unsafe {
        // Warm the C tile rows the store loop will read-modify-write.
        if csc == 1 {
            for i in 0..MR {
                _mm_prefetch(c.add(i * rsc).cast::<i8>(), _MM_HINT_T0);
            }
        }

        let mut acc0 = [_mm256_setzero_pd(); MR];
        let mut acc1 = [_mm256_setzero_pd(); MR];

        for k in 0..kc {
            let kpf = (k + PF_DIST_K).min(kc - 1);
            _mm_prefetch(a.add(kpf * MR).cast::<i8>(), _MM_HINT_T0);
            // One B row is 64 B = one cache line.
            _mm_prefetch(b.add(kpf * 8).cast::<i8>(), _MM_HINT_T0);

            let bk = b.add(k * 8);
            let b0 = _mm256_loadu_pd(bk);
            let b1 = _mm256_loadu_pd(bk.add(4));
            let ak = a.add(k * MR);
            for i in 0..MR {
                let ai = _mm256_broadcast_sd(&*ak.add(i));
                acc0[i] = _mm256_fmadd_pd(ai, b0, acc0[i]);
                acc1[i] = _mm256_fmadd_pd(ai, b1, acc1[i]);
            }
        }

        if csc == 1 {
            for i in 0..MR {
                let row = c.add(i * rsc);
                let c0 = _mm256_loadu_pd(row);
                let c1 = _mm256_loadu_pd(row.add(4));
                _mm256_storeu_pd(row, _mm256_add_pd(c0, acc0[i]));
                _mm256_storeu_pd(row.add(4), _mm256_add_pd(c1, acc1[i]));
            }
        } else {
            let mut lanes = [0.0f64; 8];
            for i in 0..MR {
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc0[i]);
                _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1[i]);
                for (j, &v) in lanes.iter().enumerate() {
                    let p = c.add(i * rsc + j * csc);
                    *p += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ukernel::reference_ukr;
    use cake_matrix::init;

    fn check_f32(kc: usize, rsc: usize, csc: usize, c_len: usize) {
        let Some(ukr) = avx2_f32_6x16() else {
            eprintln!("AVX2/FMA not available; skipping");
            return;
        };
        let a = init::random::<f32>(kc, 6, 5);
        let b = init::random::<f32>(kc, 16, 6);
        let mut c1 = vec![1.0f32; c_len];
        let mut c2 = c1.clone();
        // SAFETY: a/b are kc*6- and kc*16-element slivers, and each caller
        // passes a c_len large enough that 5*rsc + 15*csc < c_len.
        unsafe {
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
        };
        reference_ukr(kc, 6, 16, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn f32_unit_stride_matches_reference() {
        for kc in [1, 2, 9, 100] {
            check_f32(kc, 16, 1, 6 * 16);
        }
    }

    #[test]
    fn f32_wide_row_stride() {
        check_f32(33, 20, 1, 6 * 20);
    }

    #[test]
    fn f32_column_major_c() {
        check_f32(17, 1, 6, 16 * 6);
    }

    #[test]
    fn f64_matches_reference_various_strides() {
        let Some(ukr) = avx2_f64_4x8() else {
            eprintln!("AVX2/FMA not available; skipping");
            return;
        };
        for (kc, rsc, csc, len) in [(1, 8, 1, 32), (23, 11, 1, 44), (23, 1, 4, 32)] {
            let a = init::random::<f64>(kc, 4, 7);
            let b = init::random::<f64>(kc, 8, 8);
            let mut c1 = vec![0.5f64; len];
            let mut c2 = c1.clone();
            // SAFETY: a/b are kc*4- and kc*8-element slivers; each (rsc,
            // csc, len) triple satisfies 3*rsc + 7*csc < len.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
            };
            reference_ukr(kc, 4, 8, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn i8_matches_reference_exactly_various_strides() {
        let Some(ukr) = avx2_i8_4x8() else {
            eprintln!("AVX2 not available; skipping");
            return;
        };
        for (kc, rsc, csc, len) in [(1, 8, 1, 32), (23, 11, 1, 44), (23, 1, 4, 32), (257, 8, 1, 32)] {
            let a = init::random_i8(kc, 4, 17);
            let b = init::random_i8(kc, 8, 18);
            let mut c1 = vec![3i32; len];
            let mut c2 = c1.clone();
            // SAFETY: a/b are kc*4- and kc*8-element slivers; each (rsc,
            // csc, len) triple satisfies 3*rsc + 7*csc < len.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
            };
            reference_ukr(kc, 4, 8, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
            assert_eq!(c1, c2, "kc={kc} rsc={rsc} csc={csc}");
        }
    }

    #[test]
    fn bf16_matches_reference_exactly_various_strides() {
        let Some(ukr) = avx2_bf16_4x8() else {
            eprintln!("AVX2/FMA not available; skipping");
            return;
        };
        for (kc, rsc, csc, len) in [(1, 8, 1, 32), (23, 11, 1, 44), (23, 1, 4, 32)] {
            let a = init::random::<cake_matrix::Bf16>(kc, 4, 19);
            let b = init::random::<cake_matrix::Bf16>(kc, 8, 20);
            let mut c1 = vec![0.25f32; len];
            let mut c2 = c1.clone();
            // SAFETY: a/b are kc*4- and kc*8-element slivers; each (rsc,
            // csc, len) triple satisfies 3*rsc + 7*csc < len.
            unsafe {
                ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c1.as_mut_ptr(), rsc, csc)
            };
            reference_ukr(kc, 4, 8, a.as_slice(), b.as_slice(), &mut c2, rsc, csc);
            // FMA contraction in the kernel vs separate mul+add in the
            // reference: allow 2 ULP-ish relative slack per element.
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn i8_extreme_values_do_not_saturate() {
        // (-128)*(-128) summed over k: would clamp under vpmaddubsw-style
        // i16 saturation — must be exact here.
        let Some(ukr) = avx2_i8_4x8() else {
            return;
        };
        let kc = 16;
        let a = vec![-128i8; kc * 4];
        let b = vec![-128i8; kc * 8];
        let mut c = vec![0i32; 32];
        // SAFETY: a/b are kc*4 and kc*8 slivers; c is a dense 4x8 tile.
        unsafe { ukr.call(kc, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), 8, 1) };
        assert!(c.iter().all(|&x| x == 16384 * kc as i32));
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let Some(ukr) = avx2_f32_6x16() else {
            return;
        };
        let kc = 4;
        let a = init::ones::<f32>(kc, 6);
        let b = init::ones::<f32>(kc, 16);
        let mut c = vec![10.0f32; 6 * 16];
        // SAFETY: a/b are kc*6 and kc*16 ones-filled slivers, and c is a
        // dense 6x16 row-major tile (rsc=16, csc=1).
        unsafe {
            ukr.call(kc, a.as_slice().as_ptr(), b.as_slice().as_ptr(), c.as_mut_ptr(), 16, 1)
        };
        // Each element: 10 + sum_k 1*1 = 10 + kc.
        assert!(c.iter().all(|&x| x == 14.0));
    }
}
