//! Issue-width probe for the VNNI acceptance target: times register-only
//! loops of 8 independent `vpdpbusd` / `vfmadd231ps` zmm ops (no memory
//! traffic) and reports each in billions of instructions per second. The
//! ratio tells you how many VNNI MAC slots the host really has per FMA
//! slot — Ice-Lake-class servers issue `vpdpbusd zmm` on one port while
//! 512-bit FMA uses two, capping int8 at exactly 2x f32 kernel peak.
//! Run with `cargo run --release -p cake-kernels --example port_probe`.

#[cfg(target_arch = "x86_64")]
mod probe {
    use std::arch::x86_64::*;
    use std::time::Instant;

    /// # Safety
    /// Caller must have verified avx512f/bw/vnni via feature detection.
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub unsafe fn dpbusd_rate(iters: u64) -> (f64, i32) {
        let va = _mm512_set1_epi8(3);
        let vb = _mm512_set1_epi8(5);
        let (mut a0, mut a1, mut a2, mut a3) = (
            _mm512_set1_epi32(1),
            _mm512_set1_epi32(2),
            _mm512_set1_epi32(3),
            _mm512_set1_epi32(4),
        );
        let (mut a4, mut a5, mut a6, mut a7) = (
            _mm512_set1_epi32(5),
            _mm512_set1_epi32(6),
            _mm512_set1_epi32(7),
            _mm512_set1_epi32(8),
        );
        let t0 = Instant::now();
        for _ in 0..iters {
            a0 = _mm512_dpbusd_epi32(a0, va, vb);
            a1 = _mm512_dpbusd_epi32(a1, va, vb);
            a2 = _mm512_dpbusd_epi32(a2, va, vb);
            a3 = _mm512_dpbusd_epi32(a3, va, vb);
            a4 = _mm512_dpbusd_epi32(a4, va, vb);
            a5 = _mm512_dpbusd_epi32(a5, va, vb);
            a6 = _mm512_dpbusd_epi32(a6, va, vb);
            a7 = _mm512_dpbusd_epi32(a7, va, vb);
        }
        let dt = t0.elapsed().as_secs_f64();
        let sum = _mm512_add_epi32(
            _mm512_add_epi32(_mm512_add_epi32(a0, a1), _mm512_add_epi32(a2, a3)),
            _mm512_add_epi32(_mm512_add_epi32(a4, a5), _mm512_add_epi32(a6, a7)),
        );
        (dt, _mm512_reduce_add_epi32(sum))
    }

    /// # Safety
    /// Caller must have verified avx512f via feature detection.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn fmadd_rate(iters: u64) -> (f64, f32) {
        let fa = _mm512_set1_ps(1.000001);
        let (mut a0, mut a1, mut a2, mut a3) = (
            _mm512_set1_ps(1.0),
            _mm512_set1_ps(2.0),
            _mm512_set1_ps(3.0),
            _mm512_set1_ps(4.0),
        );
        let (mut a4, mut a5, mut a6, mut a7) = (
            _mm512_set1_ps(5.0),
            _mm512_set1_ps(6.0),
            _mm512_set1_ps(7.0),
            _mm512_set1_ps(8.0),
        );
        let t0 = Instant::now();
        for _ in 0..iters {
            a0 = _mm512_fmadd_ps(fa, a0, fa);
            a1 = _mm512_fmadd_ps(fa, a1, fa);
            a2 = _mm512_fmadd_ps(fa, a2, fa);
            a3 = _mm512_fmadd_ps(fa, a3, fa);
            a4 = _mm512_fmadd_ps(fa, a4, fa);
            a5 = _mm512_fmadd_ps(fa, a5, fa);
            a6 = _mm512_fmadd_ps(fa, a6, fa);
            a7 = _mm512_fmadd_ps(fa, a7, fa);
        }
        let dt = t0.elapsed().as_secs_f64();
        let sum = _mm512_add_ps(
            _mm512_add_ps(_mm512_add_ps(a0, a1), _mm512_add_ps(a2, a3)),
            _mm512_add_ps(_mm512_add_ps(a4, a5), _mm512_add_ps(a6, a7)),
        );
        (dt, _mm512_reduce_add_ps(sum))
    }
}

fn main() {
    #[cfg(target_arch = "x86_64")]
    {
        if !is_x86_feature_detected!("avx512vnni") || !is_x86_feature_detected!("avx512bw") {
            println!("no avx512vnni+bw on this host");
            return;
        }
        let iters = 200_000_000u64;
        // SAFETY: the is_x86_feature_detected! guard above covers every
        // feature both probe loops enable; register-only, no pointers.
        let (dp, sink) = unsafe { probe::dpbusd_rate(iters) };
        // SAFETY: avx512f is implied by the avx512vnni check above.
        let (fm, fsink) = unsafe { probe::fmadd_rate(iters) };
        let gdp = 8.0 * iters as f64 / dp / 1e9;
        let gfm = 8.0 * iters as f64 / fm / 1e9;
        println!(
            "vpdpbusd zmm: {gdp:6.2} Ginstr/s   vfmadd zmm: {gfm:6.2} Ginstr/s   vnni/fma issue ratio: {:.2}  (sinks {sink} {fsink})",
            gdp / gfm
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    println!("x86_64 only");
}
