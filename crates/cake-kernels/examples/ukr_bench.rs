//! Microkernel-only throughput probe: times each best-tier kernel on hot
//! packed panels (no executor, no packing) to isolate register-tile
//! performance. Kernels are measured in interleaved rounds with the
//! per-kernel best kept, so slow clock drift on a noisy host biases every
//! kernel equally instead of whichever ran last. Run with
//! `cargo run --release -p cake-kernels --example ukr_bench [kc] [rounds]`.

use std::time::Instant;

struct Probe {
    name: &'static str,
    dims: (usize, usize),
    best: f64, // seconds per burst
    run: Box<dyn FnMut()>,
}

fn probe<T: cake_kernels::select::KernelSelect>(kc: usize, burst: usize) -> Probe {
    let ukr = cake_kernels::best_kernel::<T>();
    let (mr, nr) = (ukr.mr(), ukr.nr());
    let a = vec![T::default(); kc * mr];
    let b = vec![T::default(); kc * nr];
    let mut c = vec![<T as cake_matrix::Dtype>::Acc::default(); mr * nr];
    Probe {
        name: ukr.name(),
        dims: (mr, nr),
        best: f64::INFINITY,
        run: Box::new(move || {
            for _ in 0..burst {
                // SAFETY: a/b/c are sized to the kernel's own mr/nr/kc
                // contract (kc*mr, kc*nr, mr*nr) and outlive the closure;
                // rsc = nr with csc = 1 is the packed row-major C layout.
                unsafe { ukr.call(kc, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), nr, 1) };
            }
        }),
    }
}

fn main() {
    let kc: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(256);
    let rounds: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(30);
    let burst = 2000usize;
    let mut probes = vec![
        probe::<f32>(kc, burst),
        probe::<f64>(kc, burst),
        probe::<cake_matrix::Bf16>(kc, burst),
        probe::<i8>(kc, burst),
    ];
    for p in probes.iter_mut() {
        (p.run)(); // warmup
    }
    for _ in 0..rounds {
        for p in probes.iter_mut() {
            let t0 = Instant::now();
            (p.run)();
            p.best = p.best.min(t0.elapsed().as_secs_f64());
        }
    }
    let f32_gops = {
        let p = &probes[0];
        2.0 * (p.dims.0 * p.dims.1 * kc * burst) as f64 / p.best / 1e9
    };
    for p in &probes {
        let gops = 2.0 * (p.dims.0 * p.dims.1 * kc * burst) as f64 / p.best / 1e9;
        println!(
            "{:<24} {}x{} kc={kc}: {:8.2} GOP/s  ({:.2}x f32)",
            p.name, p.dims.0, p.dims.1, gops, gops / f32_gops
        );
    }
}
