//! Runtime cross-check of `cake-audit`'s static alloc-freedom pass.
//!
//! The static pass proves, by call-graph traversal from the
//! `// audit: warm` roots, that no reachable line allocates. Its known
//! holes are name-based: `std` internals that allocate without a
//! deny-listed token, and function-pointer dispatch (`Ukr::call`). This
//! test closes them at runtime: a counting `#[global_allocator]` wraps the
//! system allocator, and after two warmup iterations (workspace growth is
//! declared cold) a steady-state `execute_with_stats_in` call must perform
//! **zero** fresh allocations — for all four dtypes, on a shape with edge
//! tails in every dimension.
//!
//! The claim is made for the `p = 1` inline pool: a size-1 [`ThreadPool`]
//! runs the job on the caller thread with no cross-thread channel traffic
//! (multi-worker pools heap-allocate one channel node per broadcast, which
//! is pool bookkeeping, not GEMM warm-path work).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cake_core::executor::execute_with_stats_in;
use cake_core::pool::ThreadPool;
use cake_core::shape::CbBlockShape;
use cake_core::workspace::GemmWorkspace;
use cake_kernels::select::{portable_kernel, KernelSelect};
use cake_matrix::{init, Bf16, Matrix};

/// Counts every allocation path (`alloc`, `alloc_zeroed`, `realloc`)
/// through the global allocator; frees are not counted — the property
/// under test is "no fresh allocation", not "no traffic".
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged to the system allocator.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged to the system allocator.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded unchanged to the system allocator.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed by one steady-state executor call for dtype `T`.
fn steady_state_allocs<T: KernelSelect>(a: Matrix<T>, b: Matrix<T>) -> u64 {
    let (m, n) = (a.rows(), b.cols());
    // mc/kc/nc chosen so every dimension has a partial edge block AND a
    // partial register tile — the paths most likely to hide an allocation.
    let shape = CbBlockShape::fixed(1, 40, 24, 56);
    let pool = ThreadPool::new(1);
    let ukr = portable_kernel::<T>();
    let mut ws = GemmWorkspace::new();
    let mut c = Matrix::<T::Acc>::zeros(m, n);

    // Two warmup calls: the first grows the workspace (declared
    // `// audit: cold`), the second confirms the shape is steady.
    for _ in 0..2 {
        execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let stats = execute_with_stats_in(
        &a.view(),
        &b.view(),
        &mut c.view_mut(),
        &shape,
        &ukr,
        &pool,
        &mut ws,
    );
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(stats.allocations, 0, "workspace must be steady after warmup");
    delta
}

const M: usize = 93;
const K: usize = 61;
const N: usize = 87;

#[test]
fn warm_path_performs_zero_allocations_f32() {
    let delta =
        steady_state_allocs::<f32>(init::random(M, K, 21), init::random(K, N, 22));
    assert_eq!(delta, 0, "f32 steady-state GEMM allocated {delta} time(s)");
}

#[test]
fn warm_path_performs_zero_allocations_f64() {
    let delta =
        steady_state_allocs::<f64>(init::random(M, K, 23), init::random(K, N, 24));
    assert_eq!(delta, 0, "f64 steady-state GEMM allocated {delta} time(s)");
}

#[test]
fn warm_path_performs_zero_allocations_i8() {
    let delta =
        steady_state_allocs::<i8>(init::random_i8(M, K, 25), init::random_i8(K, N, 26));
    assert_eq!(delta, 0, "i8 steady-state GEMM allocated {delta} time(s)");
}

#[test]
fn warm_path_performs_zero_allocations_bf16() {
    let delta =
        steady_state_allocs::<Bf16>(init::random(M, K, 27), init::random(K, N, 28));
    assert_eq!(delta, 0, "bf16 steady-state GEMM allocated {delta} time(s)");
}

/// The counter itself must observe ordinary allocations — otherwise the
/// four zero-assertions above would pass vacuously.
#[test]
fn counting_allocator_observes_allocations() {
    let before = ALLOCS.load(Ordering::SeqCst);
    let v: Vec<u64> = Vec::with_capacity(64);
    let after = ALLOCS.load(Ordering::SeqCst);
    drop(v);
    assert!(after > before, "Vec::with_capacity(64) must hit the global allocator");
}
