//! Standing verification harness for the CAKE reproduction — the oracle
//! layer that cross-checks what the machine *measures* against what the
//! paper *predicts*.
//!
//! Four pillars, one per module:
//!
//! * [`fuzz`] — a seeded **differential fuzzer**: random GEMM cases
//!   (degenerate 0/1 extents, strided/transposed views, row/col-major C,
//!   f32/f64, integer and real data) run through the CAKE executor, the
//!   GOTO loop nest, and the naive reference on identical inputs, compared
//!   per element with ULP bounds scaled by `K`, and shrunk to a minimal
//!   reproducer on failure.
//! * [`conformance`] — the **model-conformance oracle**: runs the executor
//!   with `traffic-counters` enabled and reconciles the measured element
//!   traffic with `cake_core::traffic` *exactly*, with the closed forms of
//!   `cake_core::model` (Eq. 4: external bandwidth independent of `p`)
//!   within stated tolerance, and with the `cake-sim` packet simulator —
//!   across `p ∈ {1, 2, 4, 8}`, demonstrating CAKE's DRAM traffic is
//!   `p`-invariant while GOTO's bandwidth demand grows linearly.
//! * [`interleave`] — a loom-style **deterministic interleaving harness**
//!   (in-tree, no external deps): a virtual-thread scheduler that drives
//!   the executor's panel-ring protocol (cooperative B packs, rotation
//!   barrier, LRU ring) through exhaustive/bounded interleavings at small
//!   sizes, proving no worker reads a panel before its pack completes and
//!   that snake reversals hit the ring. Seeded mutants (barriers removed,
//!   live-panel eviction) validate that the checker actually detects the
//!   failure modes it claims to.
//! * [`tuned`] — a **tuned-vs-default differential check**: seeded random
//!   problems at all four dtypes run under the closed-form default block
//!   shape and under a sample of the autotuner's candidate grid
//!   (`cake_core::tune::candidate_points`, tier-pinned kernels included),
//!   compared against the naive reference and against each other — int8
//!   exactly at 0 ULP, floats within the fuzzer's K-scaled ULP bounds —
//!   so a shape the tuner might promote can never change the answer.
//!
//! All four are wired into `cakectl verify` and `./ci.sh --verify`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod conformance;
pub mod fuzz;
pub mod interleave;
pub mod tuned;

/// One verification pillar's outcome, for CLI reporting.
#[derive(Debug)]
pub struct PillarOutcome {
    /// Pillar name (`fuzz`, `conformance`, `interleave`, `tuned`).
    pub name: &'static str,
    /// Human-readable summary lines.
    pub lines: Vec<String>,
}

/// Run all three pillars; `Err` carries the first failure's full report.
///
/// `cases` is the differential-fuzzer case count (the CI gate uses 256);
/// `seed` perturbs every generated case (defaults to `CAKE_TEST_SEED`).
pub fn verify_all(cases: u32, seed: Option<u64>) -> Result<Vec<PillarOutcome>, String> {
    let mut out = Vec::new();

    let cfg = fuzz::FuzzConfig {
        cases,
        seed: seed.unwrap_or_else(proptest::test_runner::env_seed),
    };
    let rep = fuzz::run(&cfg).map_err(|f| f.to_string())?;
    out.push(PillarOutcome {
        name: "fuzz",
        lines: rep.summary_lines(),
    });

    let conf = conformance::run()?;
    out.push(PillarOutcome {
        name: "conformance",
        lines: conf.summary_lines(),
    });

    let suite = interleave::run_default_suite()?;
    out.push(PillarOutcome {
        name: "interleave",
        lines: suite.summary_lines(),
    });

    // Tuned-vs-default: a fraction of the fuzz budget (each case runs
    // 4 dtypes x ~6 executor configurations).
    let tuned_cases = (cases / 8).max(4);
    let trep = tuned::run(tuned_cases, seed.unwrap_or_else(proptest::test_runner::env_seed))?;
    out.push(PillarOutcome {
        name: "tuned",
        lines: trep.summary_lines(),
    });

    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn verify_all_passes_at_reduced_case_count() {
        let outcomes = super::verify_all(24, Some(7)).expect("verification suite must pass");
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(!o.lines.is_empty(), "{} produced no summary", o.name);
        }
    }
}
