//! Tuned-vs-default differential check: the autotuner's candidate shapes
//! must never change the answer.
//!
//! The tuning loop (`cake_core::tune::candidate_points` ranked by the
//! simulator, refined by micro-benches) only ever swaps the **block
//! shape and kernel tier** a GEMM runs under — the arithmetic must be
//! unaffected. This pillar fuzzes exactly that claim: for seeded random
//! problems at every dtype it runs the executor under the closed-form
//! default shape (`CakeConfig::tuned_for` + `explain_shape_for`) and
//! under a deterministic sample of the tuner's candidate shapes (each
//! through its candidate's kernel tier when the host has one), then
//! compares every output against the naive reference *and* against the
//! default-shape run. Integer accumulation (int8) is held to 0 ULP;
//! float dtypes to the same K-scaled ULP bounds the differential fuzzer
//! uses. A divergence means a candidate shape exercised an executor
//! edge (clamping, partial tiles, outer-level spills) incorrectly —
//! precisely the class of bug an autotuner would otherwise ship at
//! whatever shape happened to win.

use cake_core::api::CakeConfig;
use cake_core::executor::execute_in;
use cake_core::pool::ThreadPool;
use cake_core::shape::CbBlockShape;
use cake_core::tune::candidate_points;
use cake_core::workspace::GemmWorkspace;
use cake_goto::naive::naive_gemm_views_acc;
use cake_kernels::select::KernelSelect;
use cake_kernels::{best_kernel, tier_kernel};
use cake_matrix::{init, Bf16, Matrix};
use proptest::test_runner::TestRng;

use crate::fuzz::{compare, Mismatch, UlpElement};

/// Candidate shapes exercised per (case, dtype): a deterministic strided
/// sample of the full grid, so the check stays fast while still covering
/// the extremes the sort order puts first and last.
const SHAPES_PER_DTYPE: usize = 5;

/// Statistics from a clean tuned-vs-default run.
#[derive(Debug, Default)]
pub struct TunedReport {
    /// Seeded problem cases checked (each runs all four dtypes).
    pub cases: u32,
    /// Executor runs under tuner candidate shapes (across all dtypes).
    pub tuned_runs: u32,
    /// Candidate runs that dispatched a non-default kernel tier.
    pub tier_pinned_runs: u32,
    /// Worst accepted ULP distance observed.
    pub max_ulps_seen: u64,
}

impl TunedReport {
    /// Human-readable summary for the CLI.
    pub fn summary_lines(&self) -> Vec<String> {
        vec![
            format!(
                "{} cases x 4 dtypes, {} tuned-shape runs ({} tier-pinned), zero divergences",
                self.cases, self.tuned_runs, self.tier_pinned_runs
            ),
            format!(
                "every tuned shape matched the default shape and the naive reference \
                 (int8 at 0 ULP; worst accepted float error {} ULP)",
                self.max_ulps_seen
            ),
        ]
    }
}

fn check_dtype<T>(
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    data_seed: u64,
    report: &mut TunedReport,
) -> Result<(), String>
where
    T: TunedOperand,
    T::Acc: UlpElement,
{
    let a = T::gen(m, k, data_seed);
    let b = T::gen(k, n, data_seed ^ 0xb);
    let (av, bv) = (a.view(), b.view());
    // Integer accumulation (int8 -> i32) admits no rounding: 0 ULP.
    let exact = T::NAME == "int8";

    let mut c_ref = Matrix::<T::Acc>::zeros(m, n);
    naive_gemm_views_acc(&av, &bv, &mut c_ref.view_mut());

    let cfg = CakeConfig::tuned_for(p, CakeConfig::default().llc_bytes);
    let default_shape = cfg.explain_shape_for::<T>(m, k, n).shape;
    let default_ukr = cfg.selected_kernel::<T>();
    let pool = ThreadPool::new(p);
    let mut ws = GemmWorkspace::new();

    let mut c_default = Matrix::<T::Acc>::zeros(m, n);
    execute_in(&av, &bv, &mut c_default.view_mut(), &default_shape, &default_ukr, &pool, &mut ws);
    if let Some(mm) = compare("default", &c_default, &c_ref, k, exact, &mut report.max_ulps_seen) {
        return Err(render(T::NAME, m, k, n, p, &default_shape, &mm, "naive reference"));
    }

    // Deterministic strided sample over the candidate grid.
    let cands = candidate_points(T::NAME, p, m, k, n, cfg.l2_bytes, cfg.llc_bytes, T::BYTES);
    let stride = (cands.len() / SHAPES_PER_DTYPE).max(1);
    for cand in cands.iter().step_by(stride) {
        let (ukr, pinned) = match tier_kernel::<T>(cand.tier) {
            Some(u) => (u, true),
            None => (best_kernel::<T>(), false),
        };
        let shape = CbBlockShape::fixed(p, cand.shape.mc, cand.shape.kc, cand.shape.nc);
        let mut c_tuned = Matrix::<T::Acc>::zeros(m, n);
        execute_in(&av, &bv, &mut c_tuned.view_mut(), &shape, &ukr, &pool, &mut ws);
        report.tuned_runs += 1;
        report.tier_pinned_runs += u32::from(pinned);
        if let Some(mm) = compare("tuned", &c_tuned, &c_ref, k, exact, &mut report.max_ulps_seen) {
            return Err(render(T::NAME, m, k, n, p, &shape, &mm, "naive reference"));
        }
        // Differential against the default-shape run: same bound — both
        // outputs round independently, so their ULP distance is covered
        // by the same K-scaled budget each holds against the reference.
        if let Some(mm) =
            compare("tuned", &c_tuned, &c_default, k, exact, &mut report.max_ulps_seen)
        {
            return Err(render(T::NAME, m, k, n, p, &shape, &mm, "default-shape run"));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // one flat failure-report formatter
fn render(
    dtype: &str,
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    shape: &CbBlockShape,
    mm: &Mismatch,
    oracle: &str,
) -> String {
    format!(
        "tuned-shape check: {dtype} {m}x{k}x{n} p={p} under {shape} diverged from the \
         {oracle} at C[{}][{}]: got {:e}, want {:e} ({} ULP)",
        mm.row, mm.col, mm.got, mm.want, mm.ulps
    )
}

/// Per-dtype operand generation: uniform reals for the float dtypes,
/// full-range bytes for int8 (the generic `init::random::<i8>` collapses
/// to zero, which would make the exact comparison vacuous).
trait TunedOperand: KernelSelect {
    fn gen(rows: usize, cols: usize, seed: u64) -> Matrix<Self>;
}

impl TunedOperand for f32 {
    fn gen(rows: usize, cols: usize, seed: u64) -> Matrix<Self> {
        init::random(rows, cols, seed)
    }
}

impl TunedOperand for f64 {
    fn gen(rows: usize, cols: usize, seed: u64) -> Matrix<Self> {
        init::random(rows, cols, seed)
    }
}

impl TunedOperand for i8 {
    fn gen(rows: usize, cols: usize, seed: u64) -> Matrix<Self> {
        init::random_i8(rows, cols, seed)
    }
}

impl TunedOperand for Bf16 {
    fn gen(rows: usize, cols: usize, seed: u64) -> Matrix<Self> {
        init::random(rows, cols, seed)
    }
}

fn gen_dim(rng: &mut TestRng) -> usize {
    match rng.next_u64() % 8 {
        0 => 1,
        1 => 2,
        _ => 3 + (rng.next_u64() % 45) as usize,
    }
}

/// Run the tuned-vs-default pillar: `cases` seeded problems, each checked
/// at all four dtypes against a sample of the tuner's candidate grid.
pub fn run(cases: u32, seed: u64) -> Result<TunedReport, String> {
    let mut rng = TestRng::for_test_with_seed("cake_verify::tuned", seed);
    let mut report = TunedReport {
        cases,
        ..TunedReport::default()
    };
    for _ in 0..cases {
        let (m, k, n) = (gen_dim(&mut rng), gen_dim(&mut rng), gen_dim(&mut rng));
        let p = 1 + (rng.next_u64() % 2) as usize;
        let data_seed = rng.next_u64() | 1;
        check_dtype::<f32>(m, k, n, p, data_seed, &mut report)?;
        check_dtype::<f64>(m, k, n, p, data_seed, &mut report)?;
        check_dtype::<i8>(m, k, n, p, data_seed, &mut report)?;
        check_dtype::<Bf16>(m, k, n, p, data_seed, &mut report)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_tuned_run_is_clean() {
        let rep = run(6, 3).expect("tuned shapes must match the default");
        assert_eq!(rep.cases, 6);
        assert!(rep.tuned_runs > 0, "no candidate shapes were exercised");
        assert!(!rep.summary_lines().is_empty());
    }

    #[test]
    fn dims_cover_degenerate_and_general() {
        let mut rng = TestRng::for_test_with_seed("cake_verify::tuned", 0);
        let dims: Vec<usize> = (0..64).map(|_| gen_dim(&mut rng)).collect();
        assert!(dims.contains(&1));
        assert!(dims.iter().any(|&d| d > 8));
    }
}
