//! Deterministic interleaving harness for the executor's panel-ring
//! protocol — a loom-style model checker, in-tree and dependency-free.
//!
//! The pipelined executor's concurrency skeleton (see
//! `cake_core::executor`) is small: `p` workers walk the same K-first
//! schedule in lockstep; each block's B panel lives in a ring slot chosen
//! by the shared [`PanelCache`] replay; workers cooperatively pack the
//! *next* block's panel (each owning a contiguous `split_range` run of
//! its slivers) while others may still be computing the current one; a
//! single rotation barrier per block separates "everyone done reading
//! block `i`" from "block `i+1`'s panel is complete". The real barrier is
//! the sense-reversing `cake_core::sync::SpinBarrier`; the model's
//! `Barrier` step has the same contract — nobody advances past episode
//! `e` until all `p` workers arrive at it — which is exactly what sense
//! reversal guarantees (release-on-last-arrival, immediately reusable).
//! Its safety rests on two claims:
//!
//! 1. no worker begins computing from a panel sliver before the pack of
//!    that sliver (for that block's surface) has completed, and
//! 2. no worker packs into a panel another worker is still reading — which
//!    holds because the LRU victim is never the panel live for the
//!    *current* block.
//!
//! This module re-expresses each worker as a short program of atomic steps
//! (`PackB` / `Barrier` / `BeginCompute` / `EndCompute`) over a shared
//! machine state, then runs a DFS over **all** interleavings (deduplicated
//! by state, bounded by `max_states`), flagging any schedule that violates
//! either claim — plus deadlocks. Per-worker A strips are private by
//! construction and are not modeled.
//!
//! Two executor generalizations are modeled directly:
//!
//! * **Parking barrier** ([`BarrierModel::Park`]): a waiting worker may
//!   nondeterministically block (its spin budget expired) instead of
//!   spinning; the releasing arrival must wake it. The DFS covers every
//!   park-vs-last-arrival ordering, which is exactly the race the SC-fence
//!   handshake in `cake_core::sync` exists to close.
//! * **2D worker grid** ([`InterleaveSpec::pn`]): workers in different
//!   column groups compute from disjoint sliver ranges of the same panel,
//!   while B-pack ownership stays 1D across all `p` workers — the
//!   executor's small-block partitioning.
//!
//! Four seeded **mutants** prove the checker has teeth: removing the
//! barriers ([`Mutant::SkipBarriers`]), evicting the live panel on a ring
//! miss ([`Mutant::EvictLive`]), a barrier that fails to reverse its
//! sense so every other episode passes straight through on the stale flag
//! ([`Mutant::StaleSense`]), and a parking barrier whose release misses
//! blocked waiters ([`Mutant::ParkLostWakeup`]) must each produce
//! violations.

use std::collections::HashSet;

use cake_core::panel::{PanelAction, PanelCache};
use cake_kernels::pack::split_range;
use cake_core::schedule::{BlockCoord, BlockGrid, KFirstSchedule, OuterLoop};

/// Protocol mutation injected into the generated programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutant {
    /// The faithful protocol.
    None,
    /// Drop every barrier (prologue and rotation).
    SkipBarriers,
    /// On a ring miss, evict the panel live for the *previous* block
    /// instead of the LRU non-live slot.
    EvictLive,
    /// A barrier that does not reverse its sense: waiters test a stale
    /// flag value and fall straight through every *other* episode (modeled
    /// by dropping the odd-indexed barriers from every program).
    StaleSense,
    /// A parking barrier whose release notify never reaches waiters that
    /// already blocked: a parked worker stays blocked forever (the lost
    /// wakeup the SC fences in `cake_core::sync::SpinBarrier` rule out).
    ParkLostWakeup,
}

/// Barrier semantics used by the interleaving engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierModel {
    /// Pure spin: waiters stay runnable until released.
    Spin,
    /// Waiters may nondeterministically park; the release wakes them.
    Park,
    /// Waiters may park, but the release misses parked waiters (mutant).
    ParkLostWakeup,
}

/// One model-checking scenario.
#[derive(Clone, Copy, Debug)]
pub struct InterleaveSpec {
    /// Worker (virtual thread) count.
    pub p: usize,
    /// Block grid driven through the K-first snake schedule.
    pub grid: BlockGrid,
    /// Outer loop direction of the snake.
    pub outer: OuterLoop,
    /// B-panel slivers per panel (cooperative pack granularity; worker `w`
    /// owns the contiguous `split_range(slivers, p, w)` run, mirroring the
    /// executor).
    pub slivers: usize,
    /// Panel-ring depth (>= 2).
    pub ring: usize,
    /// Column groups of the executor's 2D worker grid: worker `w` computes
    /// only from the sliver range `split_range(slivers, pn, w % pn)` while
    /// pack ownership stays 1D across all `p` workers. `1` models pure
    /// M-strip partitioning (every worker reads the whole panel).
    pub pn: usize,
    /// Model the parking barrier (waiters may block; release must wake).
    pub park: bool,
    /// Protocol mutation, if any.
    pub mutant: Mutant,
    /// State-count bound; exploration past it reports `complete = false`.
    pub max_states: usize,
}

/// Result of exploring one spec's interleaving space.
#[derive(Debug)]
pub struct InterleaveReport {
    /// Distinct machine states visited.
    pub states: usize,
    /// Whether the state space was exhausted within `max_states`.
    pub complete: bool,
    /// Protocol violations found (empty for a correct protocol).
    pub violations: Vec<String>,
    /// Snake reversals served by ring rotation (no repack) in the replay.
    pub rotate_hits: usize,
    /// B-panel packs after the prologue in the replay.
    pub b_packs: usize,
}

/// What one block needs from the ring.
#[derive(Clone, Copy, Debug)]
pub struct BlockInfo {
    /// Ring slot read during compute.
    pub panel: usize,
    /// Surface id expected in that slot.
    pub surface: u16,
    /// Ring slot to pack *for this block* (None: already resident).
    pub pack: Option<usize>,
}

/// One atomic step of a worker program.
///
/// Public so that external analyses (notably `cake-audit`'s phase checker)
/// can feed their own annotation-derived programs through the same DFS via
/// [`explore_programs`] instead of re-implementing the protocol semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Write `surface` into `panel`'s `sliver` (shared-buffer write).
    PackB { panel: u8, sliver: u8, surface: u16 },
    /// Sense-reversing rotation barrier: nobody passes until all arrive.
    Barrier,
    /// Start reading slivers `lo..hi` of `panel`, expecting `surface`
    /// in each (a column group of the 2D grid reads a sub-range; pure
    /// M-strip workers read the whole panel).
    BeginCompute { panel: u8, surface: u16, lo: u8, hi: u8 },
    /// Stop reading `panel`.
    EndCompute { panel: u8 },
}

/// Shared machine state, hashable for DFS deduplication.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MachState {
    /// Per-worker program counter.
    pc: Vec<u16>,
    /// Per-worker "arrived at barrier, waiting" flag.
    at_barrier: Vec<bool>,
    /// Per-worker "blocked on the barrier condvar" flag (parking model).
    parked: Vec<bool>,
    /// `tags[panel][sliver]`: surface id last packed into the sliver.
    tags: Vec<Vec<Option<u16>>>,
    /// Active computes reading each panel.
    readers: Vec<u8>,
}

/// Replay the ring decision sequence for a schedule (the executor computes
/// the identical pure function on every worker). Public so annotation-driven
/// front ends (`cake-audit`) share the same slot-resolution replay.
pub fn ring_decisions(
    coords: &[BlockCoord],
    ring: usize,
    evict_live: bool,
) -> (Vec<BlockInfo>, usize, usize) {
    let mut surfaces: Vec<(usize, usize)> = Vec::new();
    let mut surface_id = |want: (usize, usize)| -> u16 {
        if let Some(i) = surfaces.iter().position(|&s| s == want) {
            return i as u16;
        }
        surfaces.push(want);
        (surfaces.len() - 1) as u16
    };

    let mut info = Vec::with_capacity(coords.len());
    let (mut rotate_hits, mut b_packs) = (0usize, 0usize);

    if evict_live {
        // Local replay: identical to PanelCache except the miss victim is
        // the live panel (the bug the real cache is designed to rule out —
        // PanelCache itself forbids it, so the mutant lives here).
        let mut tags: Vec<Option<(usize, usize)>> = vec![None; ring];
        let mut cur = 0usize;
        for (bi, c) in coords.iter().enumerate() {
            let want = (c.k, c.n);
            let sid = surface_id(want);
            if bi == 0 {
                tags[0] = Some(want);
                info.push(BlockInfo { panel: 0, surface: sid, pack: Some(0) });
                continue;
            }
            if tags[cur] == Some(want) {
                info.push(BlockInfo { panel: cur, surface: sid, pack: None });
            } else if let Some(j) = tags.iter().position(|&t| t == Some(want)) {
                cur = j;
                rotate_hits += 1;
                info.push(BlockInfo { panel: cur, surface: sid, pack: None });
            } else {
                tags[cur] = Some(want); // victim = live panel: the injected bug
                b_packs += 1;
                info.push(BlockInfo { panel: cur, surface: sid, pack: Some(cur) });
            }
        }
    } else {
        let mut cache = PanelCache::new(ring);
        for (bi, c) in coords.iter().enumerate() {
            let want = (c.k, c.n);
            let sid = surface_id(want);
            if bi == 0 {
                cache.seed(want);
                info.push(BlockInfo { panel: cache.cur(), surface: sid, pack: Some(cache.cur()) });
                continue;
            }
            match cache.advance(want) {
                PanelAction::Keep => {
                    info.push(BlockInfo { panel: cache.cur(), surface: sid, pack: None });
                }
                PanelAction::Rotate(j) => {
                    rotate_hits += 1;
                    info.push(BlockInfo { panel: j, surface: sid, pack: None });
                }
                PanelAction::Pack(v) => {
                    b_packs += 1;
                    info.push(BlockInfo { panel: v, surface: sid, pack: Some(v) });
                }
            }
        }
    }
    (info, rotate_hits, b_packs)
}

/// Build each worker's step program, mirroring the executor's loop:
/// prologue pack of block 0's panel + barrier, then per block
/// compute-then-pack-next-then-barrier.
fn build_programs(spec: &InterleaveSpec, info: &[BlockInfo]) -> Vec<Vec<Step>> {
    (0..spec.p)
        .map(|w| {
            let mut prog = Vec::new();
            let owned: Vec<usize> = split_range(spec.slivers, spec.p, w).collect();
            let pack_all = |prog: &mut Vec<Step>, panel: usize, surface: u16| {
                for &t in &owned {
                    prog.push(Step::PackB { panel: panel as u8, sliver: t as u8, surface });
                }
            };
            // Barrier emission under mutation. Every worker sees the same
            // episode index at the same program point, so a dropped episode
            // is dropped consistently — exactly what a stale-sense
            // fall-through looks like to the protocol.
            let mut episode = 0usize;
            let mut barrier = |prog: &mut Vec<Step>| {
                let keep = match spec.mutant {
                    Mutant::SkipBarriers => false,
                    Mutant::StaleSense => episode.is_multiple_of(2),
                    _ => true,
                };
                episode += 1;
                if keep {
                    prog.push(Step::Barrier);
                }
            };

            // 2D column group: this worker computes only from its owned
            // sliver range (the whole panel when pn == 1).
            let reads = split_range(spec.slivers, spec.pn, w % spec.pn);
            if let Some(first) = info.first() {
                pack_all(&mut prog, first.pack.expect("block 0 always packs"), first.surface);
                barrier(&mut prog);
            }
            for (bi, b) in info.iter().enumerate() {
                prog.push(Step::BeginCompute {
                    panel: b.panel as u8,
                    surface: b.surface,
                    lo: reads.start as u8,
                    hi: reads.end as u8,
                });
                prog.push(Step::EndCompute { panel: b.panel as u8 });
                if bi + 1 < info.len() {
                    let next = &info[bi + 1];
                    if let Some(target) = next.pack {
                        pack_all(&mut prog, target, next.surface);
                    }
                    barrier(&mut prog);
                }
            }
            prog
        })
        .collect()
}

/// Execute worker `w`'s next step on a copy of `st`; `Err` is a violation.
fn apply(
    st: &MachState,
    w: usize,
    progs: &[Vec<Step>],
    barrier: BarrierModel,
) -> Result<MachState, String> {
    let mut st = st.clone();
    match progs[w][st.pc[w] as usize] {
        Step::PackB { panel, sliver, surface } => {
            let p = panel as usize;
            if st.readers[p] > 0 {
                return Err(format!(
                    "worker {w} packed surface {surface} into panel {p} (sliver {sliver}) \
                     while {} worker(s) were still computing from it",
                    st.readers[p]
                ));
            }
            st.tags[p][sliver as usize] = Some(surface);
            st.pc[w] += 1;
        }
        Step::Barrier => {
            st.at_barrier[w] = true;
            // A real barrier releases only when all p workers arrive; a
            // finished worker never will (that is a deadlock, and the
            // empty-enabled check below reports it).
            let releasable = (0..progs.len()).all(|v| st.at_barrier[v]);
            if releasable {
                for v in 0..progs.len() {
                    if st.at_barrier[v] {
                        if barrier == BarrierModel::ParkLostWakeup && st.parked[v] {
                            // The release's notify never reaches a waiter
                            // that already blocked: it stays parked forever.
                            continue;
                        }
                        st.at_barrier[v] = false;
                        st.parked[v] = false;
                        st.pc[v] += 1;
                    }
                }
            }
        }
        Step::BeginCompute { panel, surface, lo, hi } => {
            let p = panel as usize;
            for t in lo as usize..hi as usize {
                let tag = st.tags[p][t];
                if tag != Some(surface) {
                    return Err(format!(
                        "worker {w} began computing surface {surface} from panel {p}, \
                         but sliver {t} holds {tag:?} — read before pack completed"
                    ));
                }
            }
            st.readers[p] += 1;
            st.pc[w] += 1;
        }
        Step::EndCompute { panel } => {
            st.readers[panel as usize] -= 1;
            st.pc[w] += 1;
        }
    }
    Ok(st)
}

/// Explore every interleaving of an explicit set of worker programs over a
/// ring of `ring` panels with `slivers` slivers each.
///
/// This is the raw engine behind [`explore`]; it accepts programs built by
/// any front end (the scenario builder here, or `cake-audit`'s
/// annotation-derived programs) and returns the same report, with
/// `rotate_hits`/`b_packs` left at zero (those are replay statistics the
/// caller may not have).
// audit: cold model-checking exploration, test-only tool
pub fn explore_programs(progs: &[Vec<Step>], ring: usize, slivers: usize, max_states: usize) -> InterleaveReport {
    explore_programs_with(progs, ring, slivers, max_states, BarrierModel::Spin)
}

/// [`explore_programs`] with explicit barrier semantics. Under
/// [`BarrierModel::Park`] (and its lost-wakeup mutant) every waiting worker
/// gains a nondeterministic "park" move, so the DFS covers each ordering of
/// spin-budget expiry against the releasing arrival.
pub fn explore_programs_with(
    progs: &[Vec<Step>],
    ring: usize,
    slivers: usize,
    max_states: usize,
    barrier: BarrierModel,
) -> InterleaveReport {
    assert!(!progs.is_empty() && ring >= 1 && slivers >= 1);
    let p = progs.len();
    let initial = MachState {
        pc: vec![0; p],
        at_barrier: vec![false; p],
        parked: vec![false; p],
        tags: vec![vec![None; slivers]; ring],
        readers: vec![0; ring],
    };

    let mut seen: HashSet<MachState> = HashSet::new();
    let mut stack = vec![initial.clone()];
    seen.insert(initial);
    let mut violations: Vec<String> = Vec::new();
    let mut complete = true;

    while let Some(st) = stack.pop() {
        if seen.len() > max_states {
            complete = false;
            break;
        }
        if barrier != BarrierModel::Spin {
            // Parking move: a waiter's spin budget may expire at any time
            // before the release reaches it.
            for w in 0..p {
                if st.at_barrier[w] && !st.parked[w] {
                    let mut next = st.clone();
                    next.parked[w] = true;
                    if seen.insert(next.clone()) {
                        stack.push(next);
                    }
                }
            }
        }
        let enabled: Vec<usize> = (0..p)
            .filter(|&w| (st.pc[w] as usize) < progs[w].len() && !st.at_barrier[w])
            .collect();
        if enabled.is_empty() {
            if (0..p).any(|w| (st.pc[w] as usize) < progs[w].len()) {
                let msg = "deadlock: live workers with no enabled step".to_string();
                if !violations.contains(&msg) {
                    violations.push(msg);
                }
            }
            continue;
        }
        for w in enabled {
            match apply(&st, w, progs, barrier) {
                Ok(next) => {
                    if seen.insert(next.clone()) {
                        stack.push(next);
                    }
                }
                Err(v) => {
                    if violations.len() < 16 && !violations.contains(&v) {
                        violations.push(v);
                    }
                }
            }
        }
    }

    InterleaveReport { states: seen.len(), complete, violations, rotate_hits: 0, b_packs: 0 }
}

/// Explore every interleaving of the spec's worker programs.
pub fn explore(spec: &InterleaveSpec) -> InterleaveReport {
    assert!(spec.p >= 1 && spec.ring >= 2 && spec.slivers >= 1 && spec.pn >= 1);
    let coords: Vec<BlockCoord> = KFirstSchedule::with_outer(spec.grid, spec.outer).collect();
    let (info, rotate_hits, b_packs) =
        ring_decisions(&coords, spec.ring, spec.mutant == Mutant::EvictLive);
    let progs = build_programs(spec, &info);
    let barrier = match spec.mutant {
        Mutant::ParkLostWakeup => BarrierModel::ParkLostWakeup,
        _ if spec.park => BarrierModel::Park,
        _ => BarrierModel::Spin,
    };
    let mut report = explore_programs_with(&progs, spec.ring, spec.slivers, spec.max_states, barrier);
    report.rotate_hits = rotate_hits;
    report.b_packs = b_packs;
    report
}

/// Outcome of the default scenario suite.
#[derive(Debug, Default)]
pub struct SuiteReport {
    /// One line per scenario.
    pub lines: Vec<String>,
}

impl SuiteReport {
    /// Human-readable summary for the CLI.
    pub fn summary_lines(&self) -> Vec<String> {
        self.lines.clone()
    }
}

fn base_spec(p: usize, grid: BlockGrid) -> InterleaveSpec {
    InterleaveSpec {
        p,
        grid,
        outer: OuterLoop::NOuter,
        slivers: p.max(2),
        ring: 2,
        pn: 1,
        park: false,
        mutant: Mutant::None,
        max_states: 400_000,
    }
}

/// The standing scenario suite: the faithful protocol must exhaust its
/// interleaving space violation-free (including a snake-reversal rotate
/// hit), and both mutants must be caught.
pub fn run_default_suite() -> Result<SuiteReport, String> {
    let mut report = SuiteReport::default();

    // Snake reversal over K: (m0: k0,k1), (m1: k1,k0) — the k0 panel must
    // still be resident on the reversal (a Rotate, not a repack).
    let reversal = base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 });
    let r = explore(&reversal);
    if !r.complete || !r.violations.is_empty() {
        return Err(format!(
            "interleave [reversal]: complete={} violations={:?}",
            r.complete, r.violations
        ));
    }
    if r.rotate_hits == 0 {
        return Err("interleave [reversal]: snake reversal never hit the ring".into());
    }
    report.lines.push(format!(
        "p=2 2x2x1 exhausted: {} states, 0 violations, {} ring rotate hit(s)",
        r.states, r.rotate_hits
    ));

    // N-dimension movement at kb > 1: keeps + packs mix.
    let nwalk = base_spec(2, BlockGrid { mb: 1, kb: 2, nb: 2 });
    let r = explore(&nwalk);
    if !r.complete || !r.violations.is_empty() {
        return Err(format!(
            "interleave [n-walk]: complete={} violations={:?}",
            r.complete, r.violations
        ));
    }
    report.lines.push(format!(
        "p=2 1x2x2 exhausted: {} states, 0 violations, {} pack(s) after prologue",
        r.states, r.b_packs
    ));

    // Three workers: wider interleaving space, bounded exploration allowed.
    let wide = InterleaveSpec { max_states: 600_000, ..base_spec(3, BlockGrid { mb: 2, kb: 2, nb: 1 }) };
    let r = explore(&wide);
    if !r.violations.is_empty() {
        return Err(format!("interleave [p=3]: violations={:?}", r.violations));
    }
    report.lines.push(format!(
        "p=3 2x2x1: {} states ({}), 0 violations",
        r.states,
        if r.complete { "exhausted" } else { "bounded" }
    ));

    // Parking barrier: same protocol, but waiters may block on the condvar
    // at any point before the release. Exhausts clean because the release
    // wakes parked waiters (the SC-fence handshake in cake-core's sync.rs).
    let park = InterleaveSpec { park: true, ..reversal };
    let r = explore(&park);
    if !r.complete || !r.violations.is_empty() {
        return Err(format!(
            "interleave [park]: complete={} violations={:?}",
            r.complete, r.violations
        ));
    }
    report
        .lines
        .push(format!("p=2 2x2x1 parking barrier exhausted: {} states, 0 violations", r.states));

    // 2D worker grid: both workers share the row group and read disjoint
    // column halves of every panel; pack ownership stays 1D.
    let grid2d = InterleaveSpec { pn: 2, slivers: 4, ..reversal };
    let r = explore(&grid2d);
    if !r.complete || !r.violations.is_empty() {
        return Err(format!(
            "interleave [2d-grid]: complete={} violations={:?}",
            r.complete, r.violations
        ));
    }
    report
        .lines
        .push(format!("p=2 2x2x1 2D grid (pn=2) exhausted: {} states, 0 violations", r.states));

    // Mutant self-validation: the checker must catch a barrier-free
    // protocol and a live-panel eviction, or its green runs mean nothing.
    let no_barriers = InterleaveSpec { mutant: Mutant::SkipBarriers, ..reversal };
    let r = explore(&no_barriers);
    if r.violations.is_empty() {
        return Err("interleave [mutant]: removing barriers went undetected".into());
    }
    let evict_grid = BlockGrid { mb: 1, kb: 1, nb: 3 };
    let clean = explore(&base_spec(2, evict_grid));
    if !clean.complete || !clean.violations.is_empty() {
        return Err(format!(
            "interleave [evict-baseline]: complete={} violations={:?}",
            clean.complete, clean.violations
        ));
    }
    let evict = InterleaveSpec { mutant: Mutant::EvictLive, ..base_spec(2, evict_grid) };
    let r = explore(&evict);
    if r.violations.is_empty() {
        return Err("interleave [mutant]: evicting the live panel went undetected".into());
    }
    let stale = InterleaveSpec { mutant: Mutant::StaleSense, ..reversal };
    let r = explore(&stale);
    if r.violations.is_empty() {
        return Err("interleave [mutant]: a stale-sense barrier went undetected".into());
    }
    let lost = InterleaveSpec { park: true, mutant: Mutant::ParkLostWakeup, ..reversal };
    let r = explore(&lost);
    if !r.violations.iter().any(|v| v.contains("deadlock")) {
        return Err("interleave [mutant]: a lost park wakeup went undetected".into());
    }
    report.lines.push(
        "mutants caught: SkipBarriers, EvictLive, StaleSense, ParkLostWakeup (baselines clean)"
            .into(),
    );

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_passes() {
        let rep = run_default_suite().expect("interleaving suite must pass");
        assert_eq!(rep.lines.len(), 6);
    }

    #[test]
    fn parking_barrier_is_violation_free_and_exhaustive() {
        let spec = InterleaveSpec { park: true, ..base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 }) };
        let r = explore(&spec);
        assert!(r.complete, "park model must stay exhaustible");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // The park move genuinely enlarges the state space.
        let spin = explore(&base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 }));
        assert!(r.states > spin.states, "park states {} <= spin states {}", r.states, spin.states);
    }

    #[test]
    fn park_lost_wakeup_mutant_deadlocks() {
        let spec = InterleaveSpec {
            park: true,
            mutant: Mutant::ParkLostWakeup,
            ..base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 })
        };
        let r = explore(&spec);
        assert!(
            r.violations.iter().any(|v| v.contains("deadlock")),
            "expected a deadlock from the lost wakeup, got {:?}",
            r.violations
        );
    }

    #[test]
    fn two_d_column_groups_are_violation_free() {
        // pn=2 over 4 slivers: worker 0 reads slivers 0..2, worker 1 reads
        // 2..4, and each packs its 1D-owned half.
        let spec =
            InterleaveSpec { pn: 2, slivers: 4, ..base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 }) };
        let r = explore(&spec);
        assert!(r.complete);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn two_d_grid_still_catches_missing_barriers() {
        // Partial reads must not blind the checker: a barrier-free protocol
        // with column-group ownership is still a read-before-pack race.
        let spec = InterleaveSpec {
            pn: 2,
            slivers: 4,
            mutant: Mutant::SkipBarriers,
            ..base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 })
        };
        let r = explore(&spec);
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("read before pack") || v.contains("still computing")),
            "expected a pack/read race, got {:?}",
            r.violations
        );
    }

    #[test]
    fn faithful_protocol_is_violation_free_and_exhaustive() {
        let r = explore(&base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 }));
        assert!(r.complete, "tiny spec must be exhaustible");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.states > 10, "trivial state space suggests a broken model");
    }

    #[test]
    fn skip_barriers_mutant_is_caught() {
        let spec = InterleaveSpec {
            mutant: Mutant::SkipBarriers,
            ..base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 })
        };
        let r = explore(&spec);
        assert!(
            r.violations.iter().any(|v| v.contains("read before pack")),
            "expected a read-before-pack violation, got {:?}",
            r.violations
        );
    }

    #[test]
    fn evict_live_mutant_is_caught() {
        let spec = InterleaveSpec {
            mutant: Mutant::EvictLive,
            ..base_spec(2, BlockGrid { mb: 1, kb: 1, nb: 3 })
        };
        let r = explore(&spec);
        assert!(
            r.violations.iter().any(|v| v.contains("still computing")),
            "expected a pack-into-live-panel violation, got {:?}",
            r.violations
        );
    }

    #[test]
    fn stale_sense_mutant_is_caught() {
        // Only every other episode synchronizes: a worker can race past a
        // dropped rotation barrier and read a panel sliver mid-pack.
        let spec = InterleaveSpec {
            mutant: Mutant::StaleSense,
            ..base_spec(2, BlockGrid { mb: 2, kb: 2, nb: 1 })
        };
        let r = explore(&spec);
        assert!(
            r.violations.iter().any(|v| v.contains("read before pack")),
            "expected a read-before-pack violation, got {:?}",
            r.violations
        );
    }

    #[test]
    fn oversubscribed_worker_ownership_covers_all_slivers() {
        // p > slivers: trailing workers own nothing but still hit every
        // barrier; the protocol must stay violation-free and complete.
        let spec = InterleaveSpec { slivers: 2, ..base_spec(3, BlockGrid { mb: 2, kb: 2, nb: 1 }) };
        let r = explore(&spec);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn replay_rotate_hits_match_the_real_executor() {
        use cake_core::executor::execute_with_stats_in;
        use cake_core::pool::ThreadPool;
        use cake_core::shape::CbBlockShape;
        use cake_core::workspace::GemmWorkspace;
        use cake_matrix::{init, Matrix};

        // 16x16x8 with block 8x8x8: grid 2x2x1 — same geometry as the
        // reversal spec. The model's replay and the executor's measured
        // panel-cache hits must agree.
        let (m, k, n) = (16usize, 16usize, 8usize);
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);
        let mut c = Matrix::<f32>::zeros(m, n);
        let shape = CbBlockShape::fixed(2, 4, 8, 8);
        let pool = ThreadPool::new(2);
        let ukr = cake_kernels::best_kernel::<f32>();
        let mut ws = GemmWorkspace::new();
        let stats =
            execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);

        let grid = BlockGrid::for_problem(m, k, n, 8, 8, 8);
        // The executor picks its outer loop from (m, n): m > n => MOuter.
        let coords: Vec<BlockCoord> = KFirstSchedule::new(grid, m, n).collect();
        let (_, rotate_hits, _) = ring_decisions(&coords, 2, false);
        assert_eq!(rotate_hits, stats.b_panel_hits, "model replay diverged from executor");
        assert!(rotate_hits >= 1);
    }

    #[test]
    fn deadlock_detection_fires_on_unbalanced_barriers() {
        // Hand-built programs: worker 0 has a barrier, worker 1 does not —
        // worker 0 waits forever once worker 1 finishes.
        let progs = vec![vec![Step::Barrier], vec![]];
        let initial = MachState {
            pc: vec![0; 2],
            at_barrier: vec![false; 2],
            parked: vec![false; 2],
            tags: vec![vec![None; 1]; 2],
            readers: vec![0; 2],
        };
        // Inline mini-DFS over the two-step space.
        let mut stack = vec![initial];
        let mut deadlocked = false;
        while let Some(st) = stack.pop() {
            let enabled: Vec<usize> = (0..2)
                .filter(|&w| (st.pc[w] as usize) < progs[w].len() && !st.at_barrier[w])
                .collect();
            if enabled.is_empty() {
                if (0..2).any(|w| (st.pc[w] as usize) < progs[w].len()) {
                    deadlocked = true;
                }
                continue;
            }
            for w in enabled {
                if let Ok(next) = apply(&st, w, &progs, BarrierModel::Spin) {
                    stack.push(next);
                }
            }
        }
        assert!(deadlocked, "lone barrier must deadlock");
    }
}
