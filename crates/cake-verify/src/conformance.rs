//! Model-conformance oracle: measured traffic == analytic traffic == paper.
//!
//! Three layers, each tying two independently implemented layers of the
//! repo together across `p ∈ {1, 2, 4, 8}`:
//!
//! 1. **Executor vs `traffic.rs`, element-exact.** The pipelined executor
//!    runs with the `traffic-counters` feature and its measured element
//!    counters are reconciled with [`cake_core::traffic::dram_traffic`]
//!    (A, final C) and [`cake_core::traffic::dram_traffic_with_panel_ring`]
//!    (B through the literal panel-ring replay) as `u64` equalities — no
//!    tolerance. The block *grid* is held fixed (`bm = p·mc` constant by
//!    shrinking `mc` as `p` grows), so the schedule and therefore every
//!    counter must be identical across `p`: measured CAKE DRAM traffic is
//!    `p`-invariant.
//! 2. **`model.rs` closed forms.** Under the paper's scaling (`mc`, `kc`,
//!    `alpha` fixed; the block grows with `p`), Eq. 4 external bandwidth is
//!    `p`-invariant while GOTO's grows ~linearly; Eq. 5 local memory is
//!    superlinear in `p`; the derived shape respects the Section 4.3 LRU
//!    rule.
//! 3. **`cake-sim` replay.** The packet simulator's `dram_bytes` for the
//!    same problem equals the analytic tally exactly (its per-block
//!    accounting is the same adjacency rule), and its *average bandwidth*
//!    on an uncapped machine stays flat for CAKE under paper scaling while
//!    GOTO's grows with `p` — the Figure 10a/5a story, reproduced from the
//!    timing engine rather than the closed forms.

use cake_core::executor::execute_with_stats_in;
use cake_core::model::CakeModel;
use cake_core::panel::ring_depth;
use cake_core::pool::ThreadPool;
use cake_core::schedule::{BlockGrid, KFirstSchedule};
use cake_core::shape::CbBlockShape;
use cake_core::traffic::{
    dram_traffic, dram_traffic_with_panel_ring, two_level_traffic,
    two_level_traffic_with_panel_ring, CResidency, TrafficParams,
};
use cake_core::workspace::GemmWorkspace;
use cake_goto::model::GotoModel;
use cake_goto::naive::naive_gemm_views;
use cake_goto::params::GotoParams;
use cake_kernels::portable_kernel;
use cake_matrix::{init, Matrix};
use cake_sim::config::InternalBwCurve;
use cake_sim::engine::{simulate_cake_with_shape, simulate_goto_with_params};
use cake_sim::{CpuConfig, SimParams};

/// Core counts every layer is checked across.
pub const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Outcome of a clean conformance run.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    /// One line per proven property.
    pub lines: Vec<String>,
}

impl ConformanceReport {
    /// Human-readable summary for the CLI.
    pub fn summary_lines(&self) -> Vec<String> {
        self.lines.clone()
    }
}

fn fail(layer: &str, msg: String) -> String {
    format!("conformance [{layer}]: {msg}")
}

/// Layer 1: measured executor counters vs the analytic traffic walk,
/// element-exact, identical across `p` at a fixed block grid.
fn check_measured_traffic(report: &mut ConformanceReport) -> Result<(), String> {
    let (m, k, n) = (48usize, 24usize, 48usize);
    let (bm, bk, bn) = (16usize, 8usize, 16usize);
    let params = TrafficParams { m, k, n, bm, bk, bn };
    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    let adj = dram_traffic(KFirstSchedule::new(grid, m, n), params, CResidency::HoldInLlc);
    let ring = dram_traffic_with_panel_ring(
        KFirstSchedule::new(grid, m, n),
        params,
        CResidency::HoldInLlc,
        ring_depth(grid.kb),
    );
    if ring.b_loads > adj.b_loads {
        return Err(fail(
            "measured",
            format!(
                "panel ring must never fetch more B than adjacency sharing: {} > {}",
                ring.b_loads, adj.b_loads
            ),
        ));
    }

    let a = init::random::<f32>(m, k, 11);
    let b = init::random::<f32>(k, n, 12);
    let mut expected = Matrix::<f32>::zeros(m, n);
    naive_gemm_views(&a.view(), &b.view(), &mut expected.view_mut());
    let ukr = portable_kernel::<f32>();

    let mut measured: Vec<(u64, u64, u64)> = Vec::new();
    for &p in &CORE_COUNTS {
        // Same bm = p * mc for every p: identical grid, schedule, traffic.
        let shape = CbBlockShape::fixed(p, bm / p, bk, bn);
        let pool = ThreadPool::new(p);
        let mut ws = GemmWorkspace::new();
        let mut c = Matrix::<f32>::zeros(m, n);
        let stats =
            execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);

        let tol = cake_matrix::compare::gemm_tolerance::<f32>(k);
        if !cake_matrix::approx_eq(&c, &expected, tol) {
            return Err(fail("measured", format!("p={p}: executor result diverged from naive")));
        }
        if stats.a_elems_loaded != adj.a_loads {
            return Err(fail(
                "measured",
                format!(
                    "p={p}: A elements loaded {} != analytic adjacency {}",
                    stats.a_elems_loaded, adj.a_loads
                ),
            ));
        }
        if stats.b_elems_loaded != ring.b_loads {
            return Err(fail(
                "measured",
                format!(
                    "p={p}: B elements loaded {} != panel-ring replay {}",
                    stats.b_elems_loaded, ring.b_loads
                ),
            ));
        }
        let c_expect = (grid.kb * m * n) as u64;
        if stats.c_elems_updated != c_expect || adj.c_final_writes != (m * n) as u64 {
            return Err(fail(
                "measured",
                format!(
                    "p={p}: C elements updated {} != kb*m*n = {c_expect} \
                     (analytic final writes {})",
                    stats.c_elems_updated, adj.c_final_writes
                ),
            ));
        }
        measured.push((stats.a_elems_loaded, stats.b_elems_loaded, stats.c_elems_updated));
    }
    if measured.windows(2).any(|w| w[0] != w[1]) {
        return Err(fail(
            "measured",
            format!("counters changed with p at a fixed block grid: {measured:?}"),
        ));
    }
    let (ea, eb, ec) = measured[0];
    report.lines.push(format!(
        "measured == analytic, element-exact, p-invariant over p={CORE_COUNTS:?}: \
         A {ea}, B {eb} (ring; adjacency bound {}), C-updates {ec}",
        adj.b_loads
    ));
    Ok(())
}

/// Layer 1b: the same element-exact reconciliation with the **two-level**
/// (MOMMS-style) outer K/N loop enabled. The outer tiling permutes the
/// block schedule and pays partial-C spill round trips on K-tile changes,
/// so the counters differ from the one-level walk — but the executor and
/// `two_level_traffic`/`two_level_traffic_with_panel_ring` must still
/// agree as `u64` equalities at every `p`, and stay `p`-invariant on a
/// fixed grid.
fn check_two_level_traffic(report: &mut ConformanceReport) -> Result<(), String> {
    let (m, k, n) = (48usize, 24usize, 48usize);
    let (bm, bk, bn) = (16usize, 8usize, 16usize);
    let (ko, no) = (2usize, 2usize);
    let params = TrafficParams { m, k, n, bm, bk, bn };
    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    let adj = two_level_traffic(params, ko, no, CResidency::HoldInLlc);
    let ring =
        two_level_traffic_with_panel_ring(params, ko, no, CResidency::HoldInLlc, ring_depth(grid.kb));
    let one_level = dram_traffic(KFirstSchedule::new(grid, m, n), params, CResidency::HoldInLlc);
    if adj.total() < one_level.total() {
        return Err(fail(
            "two-level",
            format!(
                "outer tiling can only add traffic on this grid: {} < {}",
                adj.total(),
                one_level.total()
            ),
        ));
    }

    let a = init::random::<f32>(m, k, 21);
    let b = init::random::<f32>(k, n, 22);
    let mut expected = Matrix::<f32>::zeros(m, n);
    naive_gemm_views(&a.view(), &b.view(), &mut expected.view_mut());
    let ukr = portable_kernel::<f32>();

    let mut measured: Vec<(u64, u64, u64)> = Vec::new();
    for &p in &CORE_COUNTS {
        let shape = CbBlockShape::fixed(p, bm / p, bk, bn).with_outer_tiles(ko, no);
        let pool = ThreadPool::new(p);
        let mut ws = GemmWorkspace::new();
        let mut c = Matrix::<f32>::zeros(m, n);
        let stats =
            execute_with_stats_in(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool, &mut ws);

        let tol = cake_matrix::compare::gemm_tolerance::<f32>(k);
        if !cake_matrix::approx_eq(&c, &expected, tol) {
            return Err(fail(
                "two-level",
                format!("p={p}: two-level executor result diverged from naive"),
            ));
        }
        if stats.a_elems_loaded != adj.a_loads {
            return Err(fail(
                "two-level",
                format!(
                    "p={p}: A elements loaded {} != two-level analytic {}",
                    stats.a_elems_loaded, adj.a_loads
                ),
            ));
        }
        if stats.b_elems_loaded != ring.b_loads {
            return Err(fail(
                "two-level",
                format!(
                    "p={p}: B elements loaded {} != two-level panel-ring replay {}",
                    stats.b_elems_loaded, ring.b_loads
                ),
            ));
        }
        // The outer loop permutes the same block grid, so C still takes
        // exactly kb accumulation passes over every element.
        let c_expect = (grid.kb * m * n) as u64;
        if stats.c_elems_updated != c_expect {
            return Err(fail(
                "two-level",
                format!(
                    "p={p}: C elements updated {} != kb*m*n = {c_expect}",
                    stats.c_elems_updated
                ),
            ));
        }
        measured.push((stats.a_elems_loaded, stats.b_elems_loaded, stats.c_elems_updated));
    }
    if measured.windows(2).any(|w| w[0] != w[1]) {
        return Err(fail(
            "two-level",
            format!("two-level counters changed with p at a fixed block grid: {measured:?}"),
        ));
    }
    let (ea, eb, ec) = measured[0];
    report.lines.push(format!(
        "two-level ({ko}x{no} outer tiles) measured == analytic, element-exact, \
         p-invariant over p={CORE_COUNTS:?}: A {ea}, B {eb}, C-updates {ec} \
         (one-level total floor {})",
        one_level.total()
    ));
    Ok(())
}

/// Layer 2: the closed forms of `model.rs` under the paper's scaling.
fn check_closed_forms(report: &mut ConformanceReport) -> Result<(), String> {
    let cake_bw: Vec<f64> = CORE_COUNTS
        .iter()
        .map(|&p| {
            // Paper scaling: mc, kc, alpha fixed; block grows with p
            // (bm = 8p, nc = alpha * p * mc with alpha = 1).
            CakeModel::new(CbBlockShape::fixed(p, 8, 8, 8 * p), 8, 8, 4, 3.0).ext_bw_gbs()
        })
        .collect();
    for (i, &bw) in cake_bw.iter().enumerate() {
        let rel = (bw - cake_bw[0]).abs() / cake_bw[0];
        if rel > 1e-9 {
            return Err(fail(
                "model",
                format!(
                    "Eq. 4 must be p-invariant: p={} gives {bw} GB/s vs p=1's {} (rel {rel:e})",
                    CORE_COUNTS[i], cake_bw[0]
                ),
            ));
        }
    }

    let goto_bw: Vec<f64> = CORE_COUNTS
        .iter()
        .map(|&p| GotoModel::new(GotoParams::fixed(p, 8, 8, 64), 8, 8, 4, 3.0).ext_bw_gbs())
        .collect();
    if goto_bw.windows(2).any(|w| w[1] <= w[0]) {
        return Err(fail("model", format!("GOTO bandwidth must grow with p: {goto_bw:?}")));
    }
    let goto_growth = goto_bw[3] / goto_bw[0];
    if goto_growth < 4.0 {
        return Err(fail(
            "model",
            format!("GOTO p=8 should need >= 4x the p=1 bandwidth, got {goto_growth:.2}x"),
        ));
    }

    // Eq. 5: local memory superlinear in p (the price of Eq. 4's flatness).
    for &p in &CORE_COUNTS[..3] {
        let mem = |pp: usize| {
            CakeModel::new(CbBlockShape::fixed(pp, 8, 8, 8 * pp), 8, 8, 4, 3.0).local_mem_elems()
        };
        if mem(2 * p) <= 2.0 * mem(p) {
            return Err(fail(
                "model",
                format!("Eq. 5 must be superlinear: mem({}) <= 2*mem({p})", 2 * p),
            ));
        }
    }

    // Section 4.3: the derived shape honors its own LRU sizing rule.
    let derived = CbBlockShape::derive(8, 1.0, 256 * 1024, 20 * 1024 * 1024, 4, 6, 16);
    if !derived.fits_llc_lru(20 * 1024 * 1024, 4) {
        return Err(fail("model", format!("derived shape {derived} violates C + 2(A+B) <= S")));
    }

    report.lines.push(format!(
        "Eq. 4 flat at {:.2} GB/s over p={CORE_COUNTS:?}; GOTO grows {:.2}x by p=8; \
         Eq. 5 superlinear; derived shape fits the Section 4.3 LRU rule",
        cake_bw[0], goto_growth
    ));
    Ok(())
}

/// A machine with effectively infinite DRAM and internal bandwidth, so the
/// simulator's average-bandwidth output reflects pure *demand* rather than
/// a saturated link.
fn uncapped_cpu() -> CpuConfig {
    let mut cpu = CpuConfig::intel_i9_10900k();
    cpu.name = "uncapped".into();
    cpu.dram_bw_gbs = 1.0e6;
    cpu.dram_efficiency = 1.0;
    cpu.internal_bw = InternalBwCurve::Linear { gbs_per_core: 1.0e6 };
    cpu
}

/// Layer 3: the packet simulator agrees with the analytic tally exactly and
/// reproduces flat-vs-growing bandwidth from timing alone.
fn check_simulator(report: &mut ConformanceReport) -> Result<(), String> {
    // Exact replay: same fixed-grid problem as layer 1, real Intel part
    // (write_allocate = false, so a completed C panel costs one write).
    let cpu = CpuConfig::intel_i9_10900k();
    let wa: u64 = if cpu.write_allocate { 2 } else { 1 };
    let (m, k, n) = (48usize, 24usize, 48usize);
    let (bm, bk, bn) = (16usize, 8usize, 16usize);
    let params = TrafficParams { m, k, n, bm, bk, bn };
    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    let adj = dram_traffic(KFirstSchedule::new(grid, m, n), params, CResidency::HoldInLlc);
    let analytic_bytes = (adj.a_loads + adj.b_loads + adj.c_final_writes * wa) * 4;
    for &p in &CORE_COUNTS {
        let sp = SimParams::new(m, k, n, p);
        let rep = simulate_cake_with_shape(&cpu, &sp, &CbBlockShape::fixed(p, bm / p, bk, bn));
        if rep.dram_bytes != analytic_bytes {
            return Err(fail(
                "sim",
                format!(
                    "p={p}: simulator DRAM bytes {} != analytic {analytic_bytes}",
                    rep.dram_bytes
                ),
            ));
        }
    }

    // Demand curves on the uncapped machine: CAKE flat under paper scaling,
    // GOTO growing at fixed blocking.
    let open = uncapped_cpu();
    let (gm, gk, gn) = (384usize, 384usize, 384usize);
    let mut cake_bw = Vec::new();
    let mut goto_bw = Vec::new();
    for &p in &CORE_COUNTS {
        let sp = SimParams::new(gm, gk, gn, p);
        cake_bw.push(
            simulate_cake_with_shape(&open, &sp, &CbBlockShape::fixed(p, 8, 8, 8 * p))
                .avg_dram_bw_gbs,
        );
        goto_bw.push(
            simulate_goto_with_params(&open, &sp, &GotoParams::fixed(p, 64, 64, 512))
                .avg_dram_bw_gbs,
        );
    }
    let cake_ratio = cake_bw[3] / cake_bw[0];
    let goto_ratio = goto_bw[3] / goto_bw[0];
    if cake_ratio > 1.3 {
        return Err(fail(
            "sim",
            format!("CAKE simulated bandwidth should stay flat in p, grew {cake_ratio:.2}x: {cake_bw:?}"),
        ));
    }
    if goto_ratio < 3.0 {
        return Err(fail(
            "sim",
            format!("GOTO simulated bandwidth should grow with p, only {goto_ratio:.2}x: {goto_bw:?}"),
        ));
    }

    report.lines.push(format!(
        "simulator DRAM bytes == analytic ({analytic_bytes} B, p-invariant); \
         uncapped-demand bandwidth p8/p1: CAKE {cake_ratio:.2}x (flat), GOTO {goto_ratio:.2}x"
    ));
    Ok(())
}

/// Run all conformance layers.
pub fn run() -> Result<ConformanceReport, String> {
    let mut report = ConformanceReport::default();
    check_measured_traffic(&mut report)?;
    check_two_level_traffic(&mut report)?;
    check_closed_forms(&mut report)?;
    check_simulator(&mut report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_conformance_suite_passes() {
        let rep = run().expect("conformance oracle must pass");
        assert_eq!(rep.lines.len(), 4);
    }

    #[test]
    fn measured_layer_is_element_exact() {
        let mut rep = ConformanceReport::default();
        check_measured_traffic(&mut rep).unwrap();
        assert!(rep.lines[0].contains("element-exact"));
    }

    #[test]
    fn uncapped_cpu_never_saturates() {
        let cpu = uncapped_cpu();
        assert!(cpu.dram_bw_gbs >= 1.0e6);
    }
}
