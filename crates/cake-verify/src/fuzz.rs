//! Differential GEMM fuzzer: CAKE vs GOTO vs the naive reference.
//!
//! Each seeded case draws a problem (`M/K/N` with degenerate 0/1 extents
//! over-represented), a CB-block/GOTO geometry, a thread count, operand
//! presentation (A transposed, B a strided sub-view, C row- or
//! column-major), an element type (f32/f64), and a data class (uniform
//! reals, or small integers that every correct GEMM must reproduce *bit
//! exactly*). The three engines run on identical inputs and are compared
//! per element with a ULP bound scaled by `K`, falling back to the
//! workspace's relative `gemm_tolerance` bound only where cancellation
//! makes ULP distance meaningless.
//!
//! On top of the three engines, every case also sweeps the CAKE executor
//! over **all kernel tiers available on the host**
//! (`cake_kernels::available_tiers()`: portable always, AVX2 and AVX-512
//! when detected), holding the inputs and block geometry fixed. Each
//! tier's output is held to the same ULP/exact bounds against the naive
//! reference, so the vectorized tiers are cross-checked against each
//! other on every generated case — a divergence reports the concrete
//! microkernel name (e.g. `avx512_f32_14x32`) as the engine.
//!
//! On failure the case is **shrunk**: dimensions halved/decremented,
//! threads dropped to 1, view and layout flags cleared — greedily, while
//! the mismatch persists — so the report carries a minimal reproducer
//! plus the seed (`CAKE_TEST_SEED`) that regenerates it.

use cake_core::executor::execute_in;
use cake_core::pool::ThreadPool;
use cake_core::shape::CbBlockShape;
use cake_core::workspace::GemmWorkspace;
use cake_goto::api::{goto_gemm_views, GotoConfig};
use cake_goto::naive::naive_gemm_views_acc;
use cake_kernels::select::KernelSelect;
use cake_kernels::{available_tiers, best_kernel, portable_kernel, tier_kernel};
use cake_matrix::{init, Bf16, Element, Layout, Matrix};
use proptest::test_runner::TestRng;

/// Elements with a meaningful ULP metric (ordered-integer bit distance).
pub trait UlpElement: Element {
    /// Units-in-the-last-place between `a` and `b` in this type's own
    /// precision; 0 iff bit-equal (or both zeros), `u64::MAX` when either
    /// is non-finite and they differ.
    fn ulp_distance(a: Self, b: Self) -> u64;
}

impl UlpElement for f32 {
    fn ulp_distance(a: Self, b: Self) -> u64 {
        if a == b {
            return 0;
        }
        if !a.is_finite() || !b.is_finite() {
            return u64::MAX;
        }
        // Map the IEEE bit pattern to a monotonically ordered integer.
        let ord = |x: f32| -> i32 {
            let bits = x.to_bits() as i32;
            if bits < 0 {
                i32::MIN - bits
            } else {
                bits
            }
        };
        u64::from(ord(a).abs_diff(ord(b)))
    }
}

impl UlpElement for f64 {
    fn ulp_distance(a: Self, b: Self) -> u64 {
        if a == b {
            return 0;
        }
        if !a.is_finite() || !b.is_finite() {
            return u64::MAX;
        }
        let ord = |x: f64| -> i64 {
            let bits = x.to_bits() as i64;
            if bits < 0 {
                i64::MIN - bits
            } else {
                bits
            }
        };
        ord(a).abs_diff(ord(b))
    }
}

impl UlpElement for i32 {
    /// Integers are their own ordered representation: the "ULP" distance is
    /// the plain absolute difference, and the int8 tier is held to 0.
    fn ulp_distance(a: Self, b: Self) -> u64 {
        (a as i64).abs_diff(b as i64)
    }
}

/// Element type of a fuzz case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scalar {
    /// Single precision.
    F32,
    /// Double precision.
    F64,
    /// int8 operands, i32 accumulation — compared bit-exactly.
    Int8,
    /// bf16 operands, f32 accumulation — K-scaled f32 ULP bounds.
    Bf16,
}

/// How a fuzz case generates operands of one element type, and whether the
/// dtype's accumulation is exact (integer) regardless of the data class.
trait FuzzOperand: Element + Sized {
    /// Integer accumulate: every comparison is at 0 ULP even for
    /// "real-valued" data classes.
    const EXACT: bool = false;
    fn gen(rows: usize, cols: usize, seed: u64, int_data: bool) -> Matrix<Self>;
}

impl FuzzOperand for f32 {
    fn gen(rows: usize, cols: usize, seed: u64, int_data: bool) -> Matrix<Self> {
        if int_data {
            init::random_ints(rows, cols, seed)
        } else {
            init::random(rows, cols, seed)
        }
    }
}

impl FuzzOperand for f64 {
    fn gen(rows: usize, cols: usize, seed: u64, int_data: bool) -> Matrix<Self> {
        if int_data {
            init::random_ints(rows, cols, seed)
        } else {
            init::random(rows, cols, seed)
        }
    }
}

impl FuzzOperand for i8 {
    const EXACT: bool = true;
    /// Always full-range (`init::random::<i8>` collapses to zero): the
    /// int8 tier must be exact on the whole operand domain, including the
    /// `-128` extremes the VNNI bias trick has to compensate for.
    fn gen(rows: usize, cols: usize, seed: u64, _int_data: bool) -> Matrix<Self> {
        init::random_i8(rows, cols, seed)
    }
}

impl FuzzOperand for Bf16 {
    /// Both classes produce exactly-representable bf16 values (rounding
    /// happens at generation, before the engines see the data), so the
    /// naive oracle and the kernels consume identical operands.
    fn gen(rows: usize, cols: usize, seed: u64, int_data: bool) -> Matrix<Self> {
        if int_data {
            init::random_ints(rows, cols, seed)
        } else {
            init::random(rows, cols, seed)
        }
    }
}

/// One generated differential-test case; `Debug` output is the reproducer.
#[derive(Clone, Debug)]
pub struct GemmCase {
    /// Problem extents (0 and 1 included).
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Worker threads for the CAKE executor and GOTO.
    pub p: usize,
    /// CB block: per-core A rows.
    pub mc: usize,
    /// CB block: reduction depth.
    pub kc: usize,
    /// CB block: panel width.
    pub nc: usize,
    /// Present A as the transpose of a `k x m` stored matrix.
    pub a_transposed: bool,
    /// Present B as a strided sub-view of a larger parent.
    pub b_strided: bool,
    /// Column-major output storage.
    pub c_colmajor: bool,
    /// Use the portable microkernel instead of the ISA-best one.
    pub portable: bool,
    /// Small-integer entries: results must match the reference exactly.
    pub int_data: bool,
    /// Element type.
    pub scalar: Scalar,
    /// Seed for the operand data streams.
    pub data_seed: u64,
}

/// First diverging element found for a case.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Which engine diverged from the naive reference.
    pub engine: &'static str,
    /// Output row of the diverging element.
    pub row: usize,
    /// Output column of the diverging element.
    pub col: usize,
    /// The engine's value (as f64).
    pub got: f64,
    /// The reference value (as f64).
    pub want: f64,
    /// ULP distance between them (in the case's own precision).
    pub ulps: u64,
}

/// Fuzzer configuration.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Number of cases to generate and check.
    pub cases: u32,
    /// Stream seed; perturbs every case (0 = the historical default
    /// stream). [`crate::verify_all`] defaults this to `CAKE_TEST_SEED`.
    pub seed: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            seed: proptest::test_runner::env_seed(),
        }
    }
}

/// Statistics from a clean fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases checked.
    pub cases: u32,
    /// Cases with at least one 0/1 extent.
    pub degenerate: u32,
    /// f64 cases.
    pub f64_cases: u32,
    /// int8 cases (always compared at 0 ULP in i32).
    pub int8_cases: u32,
    /// bf16 cases (K-scaled f32 ULP bounds against the f64-accum oracle).
    pub bf16_cases: u32,
    /// Exact-comparison cases (integer data or integer accumulate).
    pub int_cases: u32,
    /// Worst accepted ULP distance observed across all comparisons.
    pub max_ulps_seen: u64,
}

impl FuzzReport {
    /// Human-readable summary for the CLI.
    pub fn summary_lines(&self) -> Vec<String> {
        vec![
            format!(
                "{} cases, zero mismatches ({} degenerate-extent, {} f64, {} int8, {} bf16, {} exact)",
                self.cases, self.degenerate, self.f64_cases, self.int8_cases, self.bf16_cases,
                self.int_cases
            ),
            format!("worst accepted error: {} ULP", self.max_ulps_seen),
        ]
    }
}

/// A mismatch, shrunk to a minimal reproducer.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Seed that regenerates the failing stream.
    pub seed: u64,
    /// Index of the failing case within the stream.
    pub case_index: u32,
    /// The case as originally generated.
    pub original: GemmCase,
    /// The greedily shrunk case that still fails.
    pub minimal: GemmCase,
    /// The divergence observed on the minimal case.
    pub mismatch: Mismatch,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "differential fuzzer: {} diverged from the naive reference at \
             C[{}][{}]: got {:e}, want {:e} ({} ULP)",
            self.mismatch.engine,
            self.mismatch.row,
            self.mismatch.col,
            self.mismatch.got,
            self.mismatch.want,
            self.mismatch.ulps
        )?;
        writeln!(f, "minimal reproducer: {:?}", self.minimal)?;
        writeln!(f, "original case     : {:?}", self.original)?;
        write!(
            f,
            "reproduce with CAKE_TEST_SEED={} (case {} of the stream)",
            self.seed, self.case_index
        )
    }
}

fn gen_dim(rng: &mut TestRng) -> usize {
    // Degenerate extents are the historical bug nests; over-represent them.
    match rng.next_u64() % 16 {
        0 | 1 => 0,
        2 | 3 => 1,
        4 => 2,
        _ => 2 + (rng.next_u64() % 32) as usize,
    }
}

fn gen_case(rng: &mut TestRng) -> GemmCase {
    GemmCase {
        m: gen_dim(rng),
        k: gen_dim(rng),
        n: gen_dim(rng),
        p: 1 + (rng.next_u64() % 3) as usize,
        mc: 2 + (rng.next_u64() % 11) as usize,
        kc: 2 + (rng.next_u64() % 11) as usize,
        nc: 4 + (rng.next_u64() % 17) as usize,
        a_transposed: rng.next_u64() & 1 == 1,
        b_strided: rng.next_u64() & 1 == 1,
        c_colmajor: rng.next_u64() & 1 == 1,
        portable: rng.next_u64() & 1 == 1,
        int_data: rng.next_u64().is_multiple_of(4),
        scalar: match rng.next_u64() % 4 {
            0 => Scalar::F32,
            1 => Scalar::F64,
            2 => Scalar::Int8,
            _ => Scalar::Bf16,
        },
        data_seed: rng.next_u64() | 1,
    }
}


/// Per-element acceptance: exact for integer data; otherwise a ULP bound
/// scaled by the reduction depth, with a relative-error fallback (the
/// workspace-wide `gemm_tolerance`) for catastrophic cancellation, where
/// a tiny absolute error spans astronomically many ULPs.
pub(crate) fn acceptable<T: UlpElement>(got: T, want: T, k: usize, int_data: bool) -> (bool, u64) {
    let ulps = T::ulp_distance(got, want);
    if int_data {
        return (ulps == 0, ulps);
    }
    if ulps <= 16 * (k as u64).max(1) {
        return (true, ulps);
    }
    let (x, y) = (got.to_f64(), want.to_f64());
    if !x.is_finite() || !y.is_finite() {
        return (false, ulps);
    }
    let tol = cake_matrix::compare::gemm_tolerance::<T>(k).to_f64();
    let denom = x.abs().max(y.abs()).max(1.0);
    ((x - y).abs() <= tol * denom, ulps)
}

pub(crate) fn compare<T: UlpElement>(
    engine: &'static str,
    got: &Matrix<T>,
    want: &Matrix<T>,
    k: usize,
    int_data: bool,
    max_ulps: &mut u64,
) -> Option<Mismatch> {
    for i in 0..want.rows() {
        for j in 0..want.cols() {
            let (ok, ulps) = acceptable(got.get(i, j), want.get(i, j), k, int_data);
            if !ok {
                return Some(Mismatch {
                    engine,
                    row: i,
                    col: j,
                    got: got.get(i, j).to_f64(),
                    want: want.get(i, j).to_f64(),
                    ulps,
                });
            }
            *max_ulps = (*max_ulps).max(ulps);
        }
    }
    None
}

fn check_typed<T>(case: &GemmCase, max_ulps: &mut u64) -> Option<Mismatch>
where
    T: FuzzOperand + KernelSelect,
    T::Acc: UlpElement,
{
    let (m, k, n) = (case.m, case.k, case.n);
    // Integer accumulation (int8 -> i32) is exact by construction, so those
    // dtypes are held to 0 ULP on every data class, not just `int_data`.
    let exact = case.int_data || T::EXACT;

    // A: either stored dense (m x k) or stored transposed and viewed.
    let a_store = if case.a_transposed {
        T::gen(k, m, case.data_seed, case.int_data)
    } else {
        T::gen(m, k, case.data_seed, case.int_data)
    };
    let av = if case.a_transposed {
        a_store.view().t()
    } else {
        a_store.view()
    };

    // B: dense, or a strided window of a larger parent.
    let b_store = if case.b_strided {
        T::gen(k + 3, n + 5, case.data_seed ^ 0xb, case.int_data)
    } else {
        T::gen(k, n, case.data_seed ^ 0xb, case.int_data)
    };
    let bv = if case.b_strided {
        b_store.view().sub(2, 4, k, n)
    } else {
        b_store.view()
    };

    // Ground truth from the same views, into the accumulator type.
    let mut c_ref = Matrix::<T::Acc>::zeros(m, n);
    naive_gemm_views_acc(&av, &bv, &mut c_ref.view_mut());

    let layout = if case.c_colmajor {
        Layout::ColMajor
    } else {
        Layout::RowMajor
    };
    let ukr = if case.portable {
        portable_kernel::<T>()
    } else {
        best_kernel::<T>()
    };

    // CAKE: the real pipelined executor with the case's explicit CB shape.
    let shape = CbBlockShape::fixed(case.p, case.mc, case.kc, case.nc);
    let pool = ThreadPool::new(case.p);
    let mut ws = GemmWorkspace::new();
    let mut c_cake = Matrix::<T::Acc>::zeros_with_layout(m, n, layout);
    execute_in(&av, &bv, &mut c_cake.view_mut(), &shape, &ukr, &pool, &mut ws);
    let c_cake = c_cake.to_layout(Layout::RowMajor);
    if let Some(mm) = compare("CAKE", &c_cake, &c_ref, k, exact, max_ulps) {
        return Some(mm);
    }

    // GOTO (loops5): same views, its own blocking derivation.
    let mut goto_cfg = GotoConfig::with_threads(case.p);
    goto_cfg.force_portable_kernel = case.portable;
    let mut c_goto = Matrix::<T::Acc>::zeros_with_layout(m, n, layout);
    goto_gemm_views(&av, &bv, &mut c_goto.view_mut(), &goto_cfg);
    let c_goto = c_goto.to_layout(Layout::RowMajor);
    if let Some(mm) = compare("GOTO", &c_goto, &c_ref, k, exact, max_ulps) {
        return Some(mm);
    }

    // Kernel-tier sweep: the same case through the CAKE executor once per
    // tier the host supports, each held to the same bounds against the
    // reference. This bit-cross-checks AVX-512 vs AVX2 vs portable on
    // every generated geometry (the exact cases compare at 0 ULP, so any
    // tier whose edge handling drops or double-counts an element is
    // caught exactly). Single-threaded: the p-dimension is already
    // exercised by the main CAKE run above. A tier can be available for
    // the base ladder yet have no kernel for a narrow dtype (e.g. AVX-512
    // without VNNI): those tiers are skipped, not failed.
    for tier in available_tiers() {
        let Some(tukr) = tier_kernel::<T>(tier) else {
            continue;
        };
        let pool = ThreadPool::new(1);
        let mut c_tier = Matrix::<T::Acc>::zeros_with_layout(m, n, layout);
        execute_in(&av, &bv, &mut c_tier.view_mut(), &shape, &tukr, &pool, &mut ws);
        let c_tier = c_tier.to_layout(Layout::RowMajor);
        if let Some(mm) = compare(tukr.name(), &c_tier, &c_ref, k, exact, max_ulps) {
            return Some(mm);
        }
    }
    None
}

/// Run one case through all three engines; `Some` on divergence.
pub fn check_case(case: &GemmCase) -> Option<Mismatch> {
    let mut max_ulps = 0u64;
    check_case_tracking(case, &mut max_ulps)
}

fn check_case_tracking(case: &GemmCase, max_ulps: &mut u64) -> Option<Mismatch> {
    match case.scalar {
        Scalar::F32 => check_typed::<f32>(case, max_ulps),
        Scalar::F64 => check_typed::<f64>(case, max_ulps),
        Scalar::Int8 => check_typed::<i8>(case, max_ulps),
        Scalar::Bf16 => check_typed::<Bf16>(case, max_ulps),
    }
}

type DimGet = fn(&GemmCase) -> usize;
type DimSet = fn(&mut GemmCase, usize);

fn shrink_candidates(c: &GemmCase) -> Vec<GemmCase> {
    let mut out = Vec::new();
    let dims: [(DimGet, DimSet); 6] = [
        (|c| c.m, |c, v| c.m = v),
        (|c| c.k, |c, v| c.k = v),
        (|c| c.n, |c, v| c.n = v),
        (|c| c.mc, |c, v| c.mc = v.max(1)),
        (|c| c.kc, |c, v| c.kc = v.max(1)),
        (|c| c.nc, |c, v| c.nc = v.max(1)),
    ];
    for (get, set) in dims {
        let v = get(c);
        if v > 0 {
            for smaller in [v / 2, v - 1] {
                if smaller < v {
                    let mut cand = c.clone();
                    set(&mut cand, smaller);
                    out.push(cand);
                }
            }
        }
    }
    if c.p > 1 {
        let mut cand = c.clone();
        cand.p = 1;
        out.push(cand);
    }
    for flag in 0..4 {
        let mut cand = c.clone();
        let on = match flag {
            0 => std::mem::replace(&mut cand.a_transposed, false),
            1 => std::mem::replace(&mut cand.b_strided, false),
            2 => std::mem::replace(&mut cand.c_colmajor, false),
            _ => std::mem::replace(&mut cand.portable, false),
        };
        if on {
            out.push(cand);
        }
    }
    out
}

/// Greedily shrink a failing case while it keeps failing (bounded re-runs).
pub fn shrink(case: &GemmCase) -> GemmCase {
    let mut cur = case.clone();
    let mut budget = 200usize;
    'outer: loop {
        for cand in shrink_candidates(&cur) {
            if budget == 0 {
                return cur;
            }
            budget -= 1;
            if check_case(&cand).is_some() {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Run the differential fuzzer: `cfg.cases` seeded cases across all three
/// engines. On divergence, returns the shrunk reproducer.
pub fn run(cfg: &FuzzConfig) -> Result<FuzzReport, Box<FuzzFailure>> {
    let mut rng = TestRng::for_test_with_seed("cake_verify::fuzz", cfg.seed);
    let mut report = FuzzReport {
        cases: cfg.cases,
        ..FuzzReport::default()
    };
    for idx in 0..cfg.cases {
        let case = gen_case(&mut rng);
        if case.m.min(case.k).min(case.n) <= 1 {
            report.degenerate += 1;
        }
        match case.scalar {
            Scalar::F64 => report.f64_cases += 1,
            Scalar::Int8 => report.int8_cases += 1,
            Scalar::Bf16 => report.bf16_cases += 1,
            Scalar::F32 => {}
        }
        if case.int_data || case.scalar == Scalar::Int8 {
            report.int_cases += 1;
        }
        if check_case_tracking(&case, &mut report.max_ulps_seen).is_some() {
            let minimal = shrink(&case);
            let mismatch = check_case(&minimal)
                .expect("shrunk case must still fail (shrink re-checks every step)");
            return Err(Box::new(FuzzFailure {
                seed: cfg.seed,
                case_index: idx,
                original: case,
                minimal,
                mismatch,
            }));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(f32::ulp_distance(1.0, 1.0), 0);
        assert_eq!(f32::ulp_distance(0.0, -0.0), 0);
        assert_eq!(f32::ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        // Across zero: -min_denormal to +min_denormal is 2 ULP.
        assert_eq!(f32::ulp_distance(f32::from_bits(1), -f32::from_bits(1)), 2);
        assert_eq!(f32::ulp_distance(f32::NAN, 1.0), u64::MAX);
        assert_eq!(f64::ulp_distance(1.0, 1.0 + f64::EPSILON), 1);
    }

    #[test]
    fn exact_integer_cases_require_zero_ulps() {
        let (ok, ulps) = acceptable(6.0f32, 6.0f32, 10, true);
        assert!(ok && ulps == 0);
        let one_off = f32::from_bits(6.0f32.to_bits() + 1);
        let (ok, _) = acceptable(one_off, 6.0f32, 10, true);
        assert!(!ok, "integer data admits no rounding at all");
    }

    #[test]
    fn real_cases_accept_k_scaled_ulps_but_not_gross_error() {
        let want = 1.0f32;
        let near = f32::from_bits(want.to_bits() + 8);
        assert!(acceptable(near, want, 4, false).0);
        assert!(!acceptable(1.5f32, want, 4, false).0);
    }

    #[test]
    fn generated_stream_is_deterministic_per_seed() {
        let mut r1 = TestRng::for_test_with_seed("cake_verify::fuzz", 5);
        let mut r2 = TestRng::for_test_with_seed("cake_verify::fuzz", 5);
        for _ in 0..10 {
            let (a, b) = (gen_case(&mut r1), gen_case(&mut r2));
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn short_fuzz_run_is_clean() {
        let rep = run(&FuzzConfig { cases: 32, seed: 0 }).expect("no mismatches");
        assert_eq!(rep.cases, 32);
    }

    #[test]
    fn int8_cases_are_exact_across_all_tiers() {
        // Full-range int8 data, every available tier, awkward geometries:
        // the i32 accumulate admits no rounding, so any divergence is a
        // real kernel bug (saturation, bias slip, edge off-by-one).
        for (i, (m, k, n)) in [(17, 23, 19), (1, 64, 1), (33, 4, 48), (16, 16, 16)]
            .into_iter()
            .enumerate()
        {
            let case = GemmCase {
                m,
                k,
                n,
                p: 1 + i % 2,
                mc: 8,
                kc: 8,
                nc: 16,
                a_transposed: i % 2 == 1,
                b_strided: i % 3 == 1,
                c_colmajor: i % 4 == 1,
                portable: false,
                int_data: false,
                scalar: Scalar::Int8,
                data_seed: 0x51 + i as u64,
            };
            assert!(check_case(&case).is_none(), "int8 case {case:?} diverged");
        }
    }

    #[test]
    fn bf16_cases_hold_k_scaled_bounds_across_all_tiers() {
        for (i, (m, k, n)) in [(17, 23, 19), (1, 128, 1), (30, 9, 40)].into_iter().enumerate() {
            let case = GemmCase {
                m,
                k,
                n,
                p: 1 + i % 2,
                mc: 8,
                kc: 8,
                nc: 16,
                a_transposed: i % 2 == 0,
                b_strided: i % 2 == 1,
                c_colmajor: false,
                portable: false,
                int_data: false,
                scalar: Scalar::Bf16,
                data_seed: 0x61 + i as u64,
            };
            assert!(check_case(&case).is_none(), "bf16 case {case:?} diverged");
        }
    }

    #[test]
    fn stream_covers_all_four_scalars() {
        let mut rng = TestRng::for_test_with_seed("cake_verify::fuzz", 0);
        let (mut f32s, mut f64s, mut i8s, mut bf16s) = (0, 0, 0, 0);
        for _ in 0..256 {
            match gen_case(&mut rng).scalar {
                Scalar::F32 => f32s += 1,
                Scalar::F64 => f64s += 1,
                Scalar::Int8 => i8s += 1,
                Scalar::Bf16 => bf16s += 1,
            }
        }
        assert!(
            f32s > 0 && f64s > 0 && i8s > 0 && bf16s > 0,
            "stream must cover every dtype: {f32s}/{f64s}/{i8s}/{bf16s}"
        );
    }

    #[test]
    fn i32_ulp_distance_is_absolute_difference() {
        assert_eq!(i32::ulp_distance(5, 5), 0);
        assert_eq!(i32::ulp_distance(5, 6), 1);
        assert_eq!(i32::ulp_distance(i32::MIN, i32::MAX), u32::MAX as u64);
    }

    #[test]
    fn degenerate_extents_are_covered() {
        let mut rng = TestRng::for_test_with_seed("cake_verify::fuzz", 0);
        let mut any_zero = false;
        let mut any_one = false;
        for _ in 0..256 {
            let c = gen_case(&mut rng);
            any_zero |= c.m == 0 || c.k == 0 || c.n == 0;
            any_one |= c.m == 1 || c.k == 1 || c.n == 1;
        }
        assert!(any_zero && any_one, "stream must include 0 and 1 extents");
    }

    #[test]
    fn shrinker_minimizes_a_synthetic_failure() {
        // Failure predicate stand-in: `check_case` is only consulted via
        // the real engines, so instead shrink a case that "fails" because
        // of a property the candidates preserve — here we just verify the
        // candidate generator proposes strictly simpler cases.
        let case = GemmCase {
            m: 8,
            k: 8,
            n: 8,
            p: 2,
            mc: 4,
            kc: 4,
            nc: 8,
            a_transposed: true,
            b_strided: true,
            c_colmajor: true,
            portable: true,
            int_data: false,
            scalar: Scalar::F32,
            data_seed: 1,
        };
        for cand in shrink_candidates(&case) {
            let simpler = cand.m < case.m
                || cand.k < case.k
                || cand.n < case.n
                || cand.mc < case.mc
                || cand.kc < case.kc
                || cand.nc < case.nc
                || cand.p < case.p
                || (!cand.a_transposed && case.a_transposed)
                || (!cand.b_strided && case.b_strided)
                || (!cand.c_colmajor && case.c_colmajor)
                || (!cand.portable && case.portable);
            assert!(simpler, "candidate {cand:?} is not simpler than {case:?}");
        }
    }
}
