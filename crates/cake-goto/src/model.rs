//! GOTO's external-bandwidth model and exact traffic accounting
//! (paper Section 4.1).
//!
//! The paper derives, for one parallel round (p cores each computing an
//! `mc x nc` C panel from an `mc x kc` A panel and the shared `kc x nc` B
//! panel):
//!
//! ```text
//! T  = mc * nc / (mr * nr)                       [tile-normalized time]
//! IO = p*mc*kc + kc*nc + p*mc*nc                 [A     + B     + C]
//! BW = IO / T = (1 + p + (kc/nc)*p) * mr * nr    [grows ~ p]
//! ```
//!
//! [`GotoModel`] re-derives this in real units (cycles, GB/s) from a
//! sustained per-core MAC rate, directly comparable with
//! [`cake_core::model::CakeModel`]. [`goto_dram_traffic`] walks the actual
//! loop nest and tallies exact element traffic, including the partial-C
//! round trips the closed form averages away.

use cake_core::traffic::Traffic;

use crate::params::GotoParams;

/// CPU-level GOTO resource model.
#[derive(Debug, Clone, Copy)]
pub struct GotoModel {
    /// Blocking parameters (provides `p`, `mc`, `kc`, `nc`).
    pub params: GotoParams,
    /// Kernel register-tile rows.
    pub mr: usize,
    /// Kernel register-tile columns.
    pub nr: usize,
    /// Element size in bytes.
    pub elem_bytes: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Sustained MACs per cycle per core (see `CakeModel::macs_per_cycle`).
    pub macs_per_cycle: f64,
}

impl GotoModel {
    /// Model with the idealized `mr * nr` MACs/cycle rate.
    pub fn new(params: GotoParams, mr: usize, nr: usize, elem_bytes: usize, freq_ghz: f64) -> Self {
        Self::with_mac_rate(params, mr, nr, elem_bytes, freq_ghz, (mr * nr) as f64)
    }

    /// Model with an explicit sustained MAC rate.
    pub fn with_mac_rate(
        params: GotoParams,
        mr: usize,
        nr: usize,
        elem_bytes: usize,
        freq_ghz: f64,
        macs_per_cycle: f64,
    ) -> Self {
        assert!(mr > 0 && nr > 0 && elem_bytes > 0);
        assert!(freq_ghz > 0.0 && macs_per_cycle > 0.0);
        Self {
            params,
            mr,
            nr,
            elem_bytes,
            freq_ghz,
            macs_per_cycle,
        }
    }

    /// Cycles for one parallel round (each core: `mc*kc*nc` MACs).
    pub fn round_compute_cycles(&self) -> f64 {
        let g = &self.params;
        (g.mc * g.kc) as f64 * g.nc as f64 / self.macs_per_cycle
    }

    /// DRAM IO of one round in elements: `p` A panels + one B panel + `p`
    /// C partial panels streamed out (paper's IO expression).
    pub fn round_io_elems(&self) -> f64 {
        let g = &self.params;
        let p = g.p as f64;
        p * (g.mc * g.kc) as f64 + (g.kc * g.nc) as f64 + p * (g.mc * g.nc) as f64
    }

    /// Required external bandwidth in elements per cycle:
    /// `(1 + p + (kc/nc)*p) * macs_per_cycle / mc` — grows linearly in `p`.
    pub fn ext_bw_elems_per_cycle(&self) -> f64 {
        self.round_io_elems() / self.round_compute_cycles()
    }

    /// Required external bandwidth in GB/s.
    pub fn ext_bw_gbs(&self) -> f64 {
        self.ext_bw_elems_per_cycle() * self.elem_bytes as f64 * self.freq_ghz
    }

    /// Peak computation throughput in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.macs_per_cycle * self.params.p as f64 * self.freq_ghz
    }

    /// Achievable throughput in GFLOP/s when DRAM bandwidth caps at
    /// `dram_bw_gbs`: GOTO's compute rate is scaled down once its required
    /// bandwidth exceeds the available bandwidth (the mechanism behind the
    /// ARMPL plateau in Figure 11b).
    pub fn bw_limited_gflops(&self, dram_bw_gbs: f64) -> f64 {
        let need = self.ext_bw_gbs();
        let peak = self.peak_gflops();
        if need <= dram_bw_gbs {
            peak
        } else {
            peak * dram_bw_gbs / need
        }
    }
}

/// Exact DRAM traffic of the GOTO loop nest for an `m x k x n` problem.
///
/// Element counts, edge blocks included:
/// * B: packed once per `(jc, pc)` panel — `kl * nl` each.
/// * A: packed once per `(jc, pc, ic)` — reloaded for every `jc` because
///   the L2 working set has moved on (no inter-`jc` reuse).
/// * C: each `(ic, jc)` panel is written every `pc` step; all but the last
///   are partial writes, and every step after the first must first read
///   the previous partials back.
pub fn goto_dram_traffic(m: usize, k: usize, n: usize, params: &GotoParams) -> Traffic {
    let mut t = Traffic::default();
    if m == 0 || k == 0 || n == 0 {
        return t;
    }
    let (mc, kc, nc) = (params.mc, params.kc, params.nc);
    let kb = k.div_ceil(kc);

    let mut jc = 0;
    while jc < n {
        let nl = nc.min(n - jc);
        for pc_idx in 0..kb {
            let kl = kc.min(k - pc_idx * kc);
            t.b_loads += (kl * nl) as u64;
            let mut ic = 0;
            while ic < m {
                let ml = mc.min(m - ic);
                t.a_loads += (ml * kl) as u64;
                let c_panel = (ml * nl) as u64;
                if pc_idx > 0 {
                    t.c_partial_reads += c_panel;
                }
                if pc_idx + 1 == kb {
                    t.c_final_writes += c_panel;
                } else {
                    t.c_partial_writes += c_panel;
                }
                ic += mc;
            }
        }
        jc += nc;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_core::model::CakeModel;
    use cake_core::shape::CbBlockShape;

    fn model(p: usize) -> GotoModel {
        GotoModel::new(GotoParams::fixed(p, 96, 96, 1024), 6, 16, 4, 3.7)
    }

    #[test]
    fn bandwidth_grows_linearly_with_p() {
        let b1 = model(1).ext_bw_elems_per_cycle();
        let b4 = model(4).ext_bw_elems_per_cycle();
        let b8 = model(8).ext_bw_elems_per_cycle();
        assert!(b4 > b1 && b8 > b4);
        // Slope: adding 4 cores adds 4*(1 + kc/nc)*rate/mc each time.
        let d1 = b4 - b1;
        let d2 = b8 - b4;
        assert!((d2 / d1 - 4.0 / 3.0).abs() < 0.01, "d1={d1} d2={d2}");
    }

    #[test]
    fn closed_form_matches_paper_expression() {
        // BW = (1 + p + p*kc/nc) * rate / mc elements/cycle with rate=mr*nr.
        let m = model(4);
        let g = m.params;
        let expect = (1.0 + 4.0 + 4.0 * g.kc as f64 / g.nc as f64) * 96.0 / g.mc as f64;
        assert!((m.ext_bw_elems_per_cycle() - expect).abs() < 1e-9);
    }

    #[test]
    fn goto_needs_more_bandwidth_than_cake_at_scale() {
        // The paper's core comparison: same kernel, same cache budget —
        // CAKE's requirement is flat, GOTO's crosses it and keeps growing.
        for p in [2, 4, 8, 16] {
            let goto = model(p);
            let shape = CbBlockShape::fixed(p, 96, 96, p * 96);
            let cake = CakeModel::new(shape, 6, 16, 4, 3.7);
            assert!(
                goto.ext_bw_gbs() > cake.ext_bw_gbs(),
                "p={p}: goto {:.1} <= cake {:.1}",
                goto.ext_bw_gbs(),
                cake.ext_bw_gbs()
            );
        }
    }

    #[test]
    fn bw_limited_throughput_plateaus() {
        let dram = 40.0; // GB/s
        let mut last = 0.0;
        let mut saturated = false;
        for p in 1..=16 {
            let g = model(p).bw_limited_gflops(dram);
            assert!(g >= last * 0.999, "throughput must not decrease");
            if model(p).ext_bw_gbs() > dram {
                saturated = true;
            }
            last = g;
        }
        assert!(saturated, "test must exercise the BW-limited regime");
        // Once saturated, throughput is pinned near dram/need * peak: check
        // the plateau: p=16 gains little over p=12.
        let g12 = model(12).bw_limited_gflops(dram);
        let g16 = model(16).bw_limited_gflops(dram);
        assert!(g16 / g12 < 16.0 / 12.0 * 0.9, "expected sub-linear scaling");
    }

    #[test]
    fn traffic_exact_small_case() {
        // m=8, k=8, n=8 with mc=kc=4, nc=8: jc x pc x ic = 1 x 2 x 2 rounds.
        let params = GotoParams::fixed(1, 4, 4, 8);
        let t = goto_dram_traffic(8, 8, 8, &params);
        // B: 2 panels of 4x8 = 64. A: 4 loads of 4x4 = 64.
        assert_eq!(t.b_loads, 64);
        assert_eq!(t.a_loads, 64);
        // C panels 4x8: each of 2 ic strips: pc=0 partial write, pc=1 read
        // + final write.
        assert_eq!(t.c_partial_writes, 2 * 32);
        assert_eq!(t.c_partial_reads, 2 * 32);
        assert_eq!(t.c_final_writes, 2 * 32);
    }

    #[test]
    fn goto_traffic_exceeds_cake_traffic() {
        use cake_core::schedule::{BlockGrid, KFirstSchedule};
        use cake_core::traffic::{dram_traffic, CResidency, TrafficParams};

        let (m, k, n) = (256, 256, 256);
        let goto = goto_dram_traffic(m, k, n, &GotoParams::fixed(4, 32, 32, 128));

        let tp = TrafficParams { m, k, n, bm: 128, bk: 32, bn: 128 };
        let grid = BlockGrid::for_problem(m, k, n, tp.bm, tp.bk, tp.bn);
        let cake = dram_traffic(
            KFirstSchedule::new(grid, m, n),
            tp,
            CResidency::HoldInLlc,
        );
        assert!(
            goto.total() > cake.total(),
            "goto {} <= cake {}",
            goto.total(),
            cake.total()
        );
        // And specifically because of partial-C streaming:
        assert!(goto.c_total() > cake.c_total());
    }

    #[test]
    fn traffic_is_p_invariant_but_bandwidth_demand_grows() {
        // The distinction the paper's Section 4.1 analysis turns on: at a
        // fixed blocking, GOTO moves the same bytes no matter how many
        // cores run it (the loop nest is the same), but it moves them in
        // 1/p the time — so the *bandwidth demand*, not the traffic, is
        // what grows with p. Verify both halves: element-identical traffic
        // across p, strictly growing closed-form bandwidth.
        let (m, k, n) = (96, 96, 96);
        let base = goto_dram_traffic(m, k, n, &GotoParams::fixed(1, 32, 32, 96));
        let mut last_bw = 0.0;
        for p in [1usize, 2, 4, 8] {
            let params = GotoParams::fixed(p, 32, 32, 96);
            assert_eq!(
                goto_dram_traffic(m, k, n, &params),
                base,
                "p={p}: traffic changed with core count at fixed blocking"
            );
            let bw = GotoModel::new(params, 6, 16, 4, 3.7).ext_bw_elems_per_cycle();
            assert!(bw > last_bw, "p={p}: bandwidth demand must grow, {bw} <= {last_bw}");
            last_bw = bw;
        }
    }

    #[test]
    fn zero_problem_has_zero_traffic() {
        let t = goto_dram_traffic(0, 8, 8, &GotoParams::fixed(1, 4, 4, 4));
        assert_eq!(t.total(), 0);
    }
}
