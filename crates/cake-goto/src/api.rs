//! Drop-in GOTO GEMM entry point, mirroring `cake_core::api`.

use cake_core::pool::ThreadPool;
use cake_kernels::select::KernelSelect;
use cake_matrix::{Matrix, MatrixView, MatrixViewMut};

use crate::loops5::execute;
use crate::params::GotoParams;

/// Configuration for a GOTO GEMM call.
#[derive(Debug, Clone)]
pub struct GotoConfig {
    /// Worker threads (`p`). `None` = all available cores.
    pub threads: Option<usize>,
    /// Per-core private (L2) cache size in bytes.
    pub l2_bytes: usize,
    /// Shared last-level cache size in bytes.
    pub llc_bytes: usize,
    /// Force the portable kernel.
    pub force_portable_kernel: bool,
}

impl Default for GotoConfig {
    fn default() -> Self {
        Self {
            threads: None,
            l2_bytes: 256 * 1024,
            llc_bytes: 16 * 1024 * 1024,
            force_portable_kernel: false,
        }
    }
}

impl GotoConfig {
    /// Config pinned to `p` threads.
    pub fn with_threads(p: usize) -> Self {
        Self {
            threads: Some(p),
            ..Self::default()
        }
    }

    /// Resolve the thread count.
    pub fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        })
    }

    /// Resolve blocking parameters for a kernel shape / element size.
    pub fn resolve_params(&self, mr: usize, nr: usize, elem_bytes: usize) -> GotoParams {
        GotoParams::derive(
            self.resolved_threads(),
            self.l2_bytes,
            self.llc_bytes,
            elem_bytes,
            mr,
            nr,
        )
    }
}

/// `C += A * B` with the GOTO algorithm (generic; `C` over `T::Acc`).
pub fn goto_gemm<T: KernelSelect>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T::Acc>,
    cfg: &GotoConfig,
) {
    let (av, bv) = (a.view(), b.view());
    let mut cv = c.view_mut();
    goto_gemm_views(&av, &bv, &mut cv, cfg);
}

/// View-level GOTO GEMM.
pub fn goto_gemm_views<T: KernelSelect>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
    cfg: &GotoConfig,
) {
    if a.rows() == 0 || a.cols() == 0 || b.cols() == 0 {
        return;
    }
    let ukr = if cfg.force_portable_kernel {
        cake_kernels::portable_kernel::<T>()
    } else {
        cake_kernels::best_kernel::<T>()
    };
    let params = cfg.resolve_params(ukr.mr(), ukr.nr(), T::BYTES);
    let pool = ThreadPool::new(params.p);
    execute(a, b, c, &params, &ukr, &pool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_gemm;
    use cake_matrix::compare::assert_gemm_eq;
    use cake_matrix::init;

    #[test]
    fn goto_gemm_matches_naive() {
        let (m, k, n) = (65, 43, 77);
        let a = init::random::<f32>(m, k, 41);
        let b = init::random::<f32>(k, n, 42);
        let mut c = Matrix::<f32>::zeros(m, n);
        let mut expected = Matrix::<f32>::zeros(m, n);
        goto_gemm(&a, &b, &mut c, &GotoConfig::with_threads(2));
        naive_gemm(&a, &b, &mut expected);
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn goto_and_cake_agree() {
        let (m, k, n) = (50, 60, 40);
        let a = init::random::<f32>(m, k, 43);
        let b = init::random::<f32>(k, n, 44);
        let mut c_goto = Matrix::<f32>::zeros(m, n);
        let mut c_cake = Matrix::<f32>::zeros(m, n);
        goto_gemm(&a, &b, &mut c_goto, &GotoConfig::with_threads(2));
        cake_core::api::cake_sgemm(
            &a,
            &b,
            &mut c_cake,
            &cake_core::api::CakeConfig::with_threads(2),
        );
        assert_gemm_eq(&c_goto, &c_cake, k);
    }

    #[test]
    fn f64_and_portable_kernel() {
        let (m, k, n) = (31, 29, 37);
        let a = init::random::<f64>(m, k, 45);
        let b = init::random::<f64>(k, n, 46);
        let mut c = Matrix::<f64>::zeros(m, n);
        let mut expected = Matrix::<f64>::zeros(m, n);
        let cfg = GotoConfig {
            threads: Some(1),
            force_portable_kernel: true,
            ..GotoConfig::default()
        };
        goto_gemm(&a, &b, &mut c, &cfg);
        naive_gemm(&a, &b, &mut expected);
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn zero_dims_noop() {
        let a = Matrix::<f32>::zeros(4, 0);
        let b = Matrix::<f32>::zeros(0, 4);
        let mut c = init::ones::<f32>(4, 4);
        goto_gemm(&a, &b, &mut c, &GotoConfig::default());
        assert_eq!(c.sum_f64(), 16.0);
    }
}
