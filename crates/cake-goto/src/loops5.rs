//! The five-loop GOTO GEMM (paper Figure 5).
//!
//! ```text
//! loop 5: jc over N in steps of nc      // B panel selection
//!   loop 4: pc over K in steps of kc    // pack B(kc x nc) into LLC
//!     loop 3: ic over M in steps of mc  // pack A(mc x kc) into each L2
//!       loop 2: jr over nc in steps of nr
//!         loop 1: ir over mc in steps of mr
//!           microkernel: C(mr x nr) += A_sliver * B_sliver
//! ```
//!
//! Parallelization follows the paper's Section 4.1 analysis: the `ic` loop
//! is split across the `p` cores (GOTO grows the M extent covered per
//! round by using more cores; each core owns an independent `mc x nc` C
//! panel, no inter-core accumulation).
//!
//! The crucial contrast with CAKE: C is touched (read-modified-written)
//! on *every* `pc` iteration — in DRAM terms, partial results stream out
//! and back instead of being held in the LLC. On a real machine that
//! traffic is implicit in writing `C` each round; the simulator and the
//! traffic model in [`crate::model`] account for it explicitly.

use std::sync::Barrier;

use cake_core::pool::ThreadPool;
use cake_core::shared::{OutPtr, SharedBuf};
use cake_kernels::edge::run_tile;
use cake_kernels::pack::{packed_a_size, packed_b_size};
use cake_kernels::Ukr;
use cake_matrix::{Dtype, MatrixView, MatrixViewMut};

use crate::params::GotoParams;

/// Execute `C += A * B` with the GOTO algorithm. `C` is over the
/// accumulator type `T::Acc` (the same `T` for f32/f64, widened for the
/// narrow dtypes), matching the CAKE executor's convention.
///
/// # Panics
/// Panics on dimension mismatch or `pool.size() != params.p`.
// audit: warm
pub fn execute<T: Dtype>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
    params: &GotoParams,
    ukr: &Ukr<T>,
    pool: &ThreadPool,
) {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k, "A is {m}x{k} but B has {} rows", b.rows());
    assert_eq!(c.rows(), m, "C must have {m} rows, has {}", c.rows());
    assert_eq!(c.cols(), n, "C must have {n} cols, has {}", c.cols());
    assert_eq!(
        pool.size(),
        params.p,
        "pool size {} != params.p {}",
        pool.size(),
        params.p
    );
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let p = params.p;
    let (mr, nr) = (ukr.mr(), ukr.nr());
    let (mc, kc, nc) = (params.mc, params.kc, params.nc);

    // Buffers sized for the smaller of the blocking and the problem, so a
    // small GEMM does not pay for an LLC-scale allocation.
    let kc_eff = kc.min(k);
    let nc_eff = nc.min(n.div_ceil(nr) * nr);
    let mc_eff = mc.min(m.div_ceil(mr) * mr);
    // audit: cold pre-loop packing buffer, sized once per call
    let packed_b = SharedBuf::<T>::zeroed(packed_b_size(kc_eff, nc_eff, nr));
    let pa_stride = packed_a_size(mc_eff, kc_eff, mr);
    // audit: cold pre-loop packing buffer, sized once per call
    let packed_a = SharedBuf::<T>::zeroed(pa_stride * p);

    let barrier = Barrier::new(p);
    // SAFETY: pointer valid for the whole call; workers write disjoint rows.
    let out = unsafe { OutPtr::new(c.ptr_at_mut(0, 0)) };
    let (rsc, csc) = (c.row_stride(), c.col_stride());

    let mb = m.div_ceil(mc);

    pool.broadcast(|wid| {
        let mut jc = 0;
        while jc < n {
            let nl = nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kl = kc.min(k - pc);

                // All workers finished the previous panel's compute.
                barrier.wait();

                // Cooperatively pack B(kl x nl) into the shared LLC panel.
                let pb_base = packed_b.base_ptr();
                let nslivers = nl.div_ceil(nr);
                let mut t = wid;
                while t < nslivers {
                    let col0 = jc + t * nr;
                    let live = nr.min(jc + nl - col0);
                    // Mirrors `goto_pb_sliver` in cake-audit.
                    debug_assert!((t + 1) * nr * kl <= packed_b.len());
                    // SAFETY: sliver ranges [t*nr*kl, (t+1)*nr*kl) are
                    // disjoint per t; each t has exactly one owner.
                    let sliver: &mut [T] = unsafe {
                        std::slice::from_raw_parts_mut(pb_base.add(t * nr * kl), nr * kl)
                    };
                    for kk in 0..kl {
                        let dst = &mut sliver[kk * nr..(kk + 1) * nr];
                        // Fast path: row-major B rows copy as slices.
                        if let Some(src) = b.contiguous_row(pc + kk, col0, live) {
                            dst[..live].copy_from_slice(src);
                            dst[live..].fill(T::ZERO);
                        } else {
                            for (j, d) in dst.iter_mut().enumerate() {
                                *d = if j < live {
                                    // SAFETY: pc+kk < k, col0+j < n.
                                    unsafe { b.get_unchecked(pc + kk, col0 + j) }
                                } else {
                                    T::ZERO
                                };
                            }
                        }
                    }
                    t += p;
                }

                barrier.wait();

                // Loop 3: this worker handles ic strips wid, wid+p, ...
                let mut ic_idx = wid;
                while ic_idx < mb {
                    let ic = ic_idx * mc;
                    let ml = mc.min(m - ic);

                    // Pack A(ml x kl) into this worker's private panel.
                    // Mirrors `goto_pa_strip` / `goto_pa_pack` in cake-audit.
                    debug_assert!((wid + 1) * pa_stride <= packed_a.len());
                    debug_assert!(packed_a_size(ml, kl, mr) <= pa_stride);
                    // SAFETY: range [wid*pa_stride, (wid+1)*pa_stride) is
                    // owned exclusively by this worker.
                    let pa: &mut [T] = unsafe {
                        std::slice::from_raw_parts_mut(
                            packed_a.base_ptr().add(wid * pa_stride),
                            pa_stride,
                        )
                    };
                    let a_slivers = ml.div_ceil(mr);
                    for s in 0..a_slivers {
                        let row0 = ic + s * mr;
                        let live = mr.min(ic + ml - row0);
                        let base = s * mr * kl;
                        for kk in 0..kl {
                            let dst = &mut pa[base + kk * mr..base + (kk + 1) * mr];
                            for (i, d) in dst.iter_mut().enumerate() {
                                *d = if i < live {
                                    // SAFETY: row0+i < m, pc+kk < k.
                                    unsafe { a.get_unchecked(row0 + i, pc + kk) }
                                } else {
                                    T::ZERO
                                };
                            }
                        }
                    }
                    let pa_ptr = pa.as_ptr();

                    // Loops 2 & 1: register tiles. GOTO iterates jr outer /
                    // ir inner (B sliver reused across the A panel).
                    for t2 in 0..nslivers {
                        let ncols = nr.min(nl - t2 * nr);
                        let col = jc + t2 * nr;
                        for s in 0..a_slivers {
                            let mrows = mr.min(ml - s * mr);
                            let row = ic + s * mr;
                            // Mirrors `goto_c_tile` in cake-audit.
                            debug_assert!(row + mrows <= m && col + ncols <= n);
                            // SAFETY: packed slivers are full zero-padded
                            // tiles; C tile in bounds; rows disjoint across
                            // workers (distinct ic strips).
                            unsafe {
                                let cptr = out.get().add(row * rsc + col * csc);
                                run_tile(
                                    ukr,
                                    kl,
                                    pa_ptr.add(s * mr * kl),
                                    (pb_base as *const T).add(t2 * nr * kl),
                                    cptr,
                                    rsc,
                                    csc,
                                    mrows,
                                    ncols,
                                );
                            }
                        }
                    }

                    ic_idx += p;
                }

                pc += kc;
            }
            jc += nc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_gemm;
    use cake_kernels::select::best_kernel;
    use cake_matrix::compare::assert_gemm_eq;
    use cake_matrix::{init, Matrix};

    fn run_case(m: usize, k: usize, n: usize, p: usize, mc: usize, kc: usize, nc: usize) {
        let a = init::random::<f32>(m, k, 21);
        let b = init::random::<f32>(k, n, 22);
        let mut c = init::random::<f32>(m, n, 23);
        let mut expected = c.clone();

        let params = GotoParams::fixed(p, mc, kc, nc);
        let pool = ThreadPool::new(p);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &params,
            &best_kernel::<f32>(),
            &pool,
        );
        naive_gemm(&a, &b, &mut expected);
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn single_core_exact_fit() {
        run_case(32, 32, 32, 1, 32, 32, 32);
    }

    #[test]
    fn single_core_many_panels() {
        run_case(70, 50, 90, 1, 16, 16, 32);
    }

    #[test]
    fn multi_core_divisible() {
        run_case(64, 32, 64, 4, 16, 16, 32);
    }

    #[test]
    fn multi_core_ragged() {
        run_case(61, 37, 53, 4, 16, 16, 32);
        run_case(13, 5, 7, 2, 8, 8, 16);
    }

    #[test]
    fn strip_count_less_than_cores() {
        // mb = 2 strips but p = 4: two workers idle, still correct.
        run_case(30, 24, 24, 4, 16, 16, 16);
    }

    #[test]
    fn f64_path() {
        let (m, k, n) = (40, 33, 27);
        let a = init::random::<f64>(m, k, 31);
        let b = init::random::<f64>(k, n, 32);
        let mut c = Matrix::<f64>::zeros(m, n);
        let mut expected = Matrix::<f64>::zeros(m, n);
        let params = GotoParams::fixed(2, 12, 12, 16);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &params,
            &best_kernel::<f64>(),
            &pool,
        );
        naive_gemm(&a, &b, &mut expected);
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn zero_dims_noop() {
        let a = Matrix::<f32>::zeros(4, 0);
        let b = Matrix::<f32>::zeros(0, 4);
        let mut c = init::ones::<f32>(4, 4);
        let params = GotoParams::fixed(1, 8, 8, 8);
        let pool = ThreadPool::new(1);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &params,
            &best_kernel::<f32>(),
            &pool,
        );
        assert_eq!(c.sum_f64(), 16.0);
    }

    #[test]
    #[should_panic(expected = "pool size")]
    fn pool_mismatch_panics() {
        let a = Matrix::<f32>::zeros(4, 4);
        let b = Matrix::<f32>::zeros(4, 4);
        let mut c = Matrix::<f32>::zeros(4, 4);
        let params = GotoParams::fixed(2, 8, 8, 8);
        let pool = ThreadPool::new(1);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &params,
            &best_kernel::<f32>(),
            &pool,
        );
    }
}
