//! GOTO-algorithm GEMM baseline (paper Section 4.1).
//!
//! GOTO (Goto & van de Geijn, "Anatomy of High-Performance Matrix
//! Multiplication") is the algorithm underlying MKL, OpenBLAS, ARMPL and
//! BLIS — the libraries the paper compares CAKE against. The paper models
//! all of them *as* GOTO; this crate implements it from scratch on the same
//! microkernels as `cake-core`, so every difference between the two crates
//! is scheduling and IO policy, exactly the variable the paper studies.
//!
//! Structure:
//!
//! * [`params`] — `mc/kc/nc` blocking derived from cache sizes (square
//!   `mc x kc` A panel per core in L2, `kc x nc` B panel filling the LLC).
//! * [`loops5`] — the classic five-loop nest with packed panels, the
//!   `ic` loop parallelized across cores (GOTO grows the M extent with
//!   `p`; each core computes an independent `mc x nc` C panel).
//! * [`model`] — the external-bandwidth model
//!   `BW = (1 + p + p*kc/nc) * mr * nr` (grows with `p`, the contrast to
//!   CAKE's Eq. 4) and exact DRAM-traffic accounting with streamed partial
//!   C panels.
//! * [`naive`] — the triple-loop reference used by every test in the
//!   workspace.
//! * [`api`] — drop-in `goto_gemm` entry point.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod loops5;
pub mod model;
pub mod naive;
pub mod params;

pub use api::{goto_gemm, GotoConfig};
pub use model::GotoModel;
pub use params::GotoParams;
