//! GOTO blocking parameters (paper Section 4.1, Figure 5).
//!
//! * A square `mc x kc` sub-matrix of `A` resides in each core's L2
//!   (`mc = kc`, `mc * kc <= Size_L2`, with the same factor-2 streaming
//!   headroom used for CAKE in Section 4.3).
//! * A `kc x nc` sub-matrix of `B` resides in the shared LLC and is chosen
//!   to *fill* it ("GOTO uses all of the L3 cache for B", Section 4.4).
//! * `mr x nr` register tiles come from the kernel.

/// GOTO blocking parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GotoParams {
    /// Cores used (each computes an independent `mc x nc` C panel).
    pub p: usize,
    /// A-panel rows per core (square: `mc == kc`).
    pub mc: usize,
    /// Reduction block depth.
    pub kc: usize,
    /// B-panel width (fills the LLC).
    pub nc: usize,
}

impl GotoParams {
    /// Derive parameters from cache sizes.
    ///
    /// # Panics
    /// Panics if `p == 0` or sizes are degenerate.
    pub fn derive(
        p: usize,
        l2_bytes: usize,
        llc_bytes: usize,
        elem_bytes: usize,
        mr: usize,
        nr: usize,
    ) -> Self {
        assert!(p > 0, "need at least one core");
        assert!(elem_bytes > 0 && mr > 0 && nr > 0);
        let s_l2 = l2_bytes / elem_bytes;
        let s_llc = llc_bytes / elem_bytes;

        // Square A panel with double-buffering headroom in L2.
        let mut mc = ((s_l2 / 2) as f64).sqrt().floor() as usize;
        mc = ((mc / mr) * mr).max(mr);
        let kc = mc;

        // B panel fills the LLC (leave the same factor-2 headroom for the
        // next panel to stream in).
        let mut nc = (s_llc / 2) / kc.max(1);
        nc = ((nc / nr) * nr).max(nr);

        Self { p, mc, kc, nc }
    }

    /// Explicit parameters (tests, simulator).
    pub fn fixed(p: usize, mc: usize, kc: usize, nc: usize) -> Self {
        assert!(p > 0 && mc > 0 && kc > 0 && nc > 0);
        Self { p, mc, kc, nc }
    }

    /// M extent processed per parallel round (`p` cores x `mc` rows).
    pub fn m_round(&self) -> usize {
        self.p * self.mc
    }

    /// Elements of one core's packed A panel.
    pub fn a_panel(&self) -> usize {
        self.mc * self.kc
    }

    /// Elements of the shared packed B panel.
    pub fn b_panel(&self) -> usize {
        self.kc * self.nc
    }
}

impl std::fmt::Display for GotoParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GOTO[mc={} kc={} nc={} | p={}]",
            self.mc, self.kc, self.nc, self.p
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: usize = 1024;
    const MIB: usize = 1024 * 1024;

    #[test]
    fn panels_fit_their_cache_levels() {
        let g = GotoParams::derive(10, 256 * KIB, 20 * MIB, 4, 6, 16);
        assert!(g.a_panel() * 4 <= 256 * KIB / 2 + 256 * KIB / 8); // ~half L2
        assert!(g.b_panel() * 4 <= 20 * MIB);
        assert_eq!(g.mc, g.kc, "paper requires square A panels");
        assert_eq!(g.mc % 6, 0);
        assert_eq!(g.nc % 16, 0);
    }

    #[test]
    fn b_panel_dominates_llc() {
        // GOTO dedicates the LLC to B: nc must dwarf kc.
        let g = GotoParams::derive(4, 256 * KIB, 20 * MIB, 4, 6, 16);
        assert!(g.nc > 8 * g.kc, "nc={} kc={}", g.nc, g.kc);
    }

    #[test]
    fn nc_independent_of_core_count() {
        let g1 = GotoParams::derive(1, 256 * KIB, 20 * MIB, 4, 6, 16);
        let g8 = GotoParams::derive(8, 256 * KIB, 20 * MIB, 4, 6, 16);
        assert_eq!(g1.nc, g8.nc);
        assert_eq!(g1.mc, g8.mc);
        assert_eq!(g8.m_round(), 8 * g8.mc);
    }

    #[test]
    fn degenerate_caches_still_runnable() {
        let g = GotoParams::derive(1, 128, 512, 4, 6, 16);
        assert!(g.mc >= 6 && g.nc >= 16);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn zero_cores_rejected() {
        let _ = GotoParams::derive(0, KIB, MIB, 4, 6, 16);
    }
}
