//! Naive triple-loop GEMM reference.
//!
//! Deliberately unblocked and unvectorized beyond what LLVM does on its
//! own: the ground truth every optimized implementation in the workspace is
//! verified against, and the "no blocking at all" end point for the
//! ablation benches.

use cake_matrix::{Dtype, Element, Matrix, MatrixView, MatrixViewMut};

/// `C += A * B`, accumulating in `f64` for maximum reference accuracy.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn naive_gemm<T: Element>(a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T>) {
    let (av, bv) = (a.view(), b.view());
    let mut cv = c.view_mut();
    naive_gemm_views(&av, &bv, &mut cv);
}

/// View-level naive GEMM.
pub fn naive_gemm_views<T: Element>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimensions differ");
    assert_eq!(c.rows(), m, "C row count mismatch");
    assert_eq!(c.cols(), n, "C col count mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a.get(i, kk).to_f64() * b.get(kk, j).to_f64();
            }
            let v = c.get(i, j);
            c.set(i, j, v + T::from_f64(acc));
        }
    }
}

/// Naive GEMM with a widened accumulator-typed `C` (`C += A * B`, `C` over
/// `T::Acc`) — the ground truth for the narrow-dtype tier. Products are
/// summed in `f64` over the widened operands: exact for int8 (every
/// partial sum fits in 53 bits for any practical `K`), and the maximal-
/// accuracy oracle for bf16. For f32/f64 (`Acc = T`) this is identical to
/// [`naive_gemm_views`].
pub fn naive_gemm_views_acc<T: Dtype>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimensions differ");
    assert_eq!(c.rows(), m, "C row count mismatch");
    assert_eq!(c.cols(), n, "C col count mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a.get(i, kk).widen().to_f64() * b.get(kk, j).widen().to_f64();
            }
            let v = c.get(i, j);
            c.set(i, j, v + <T::Acc>::from_f64(acc));
        }
    }
}

/// Cache-friendlier (i, k, j) loop order, single-precision accumulate —
/// used by benches as the "simple but not pessimal" baseline.
pub fn naive_gemm_ikj<T: Element>(a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T>) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimensions differ");
    assert_eq!(c.rows(), m, "C row count mismatch");
    assert_eq!(c.cols(), n, "C col count mismatch");
    for i in 0..m {
        for kk in 0..k {
            let aik = a.get(i, kk);
            for j in 0..n {
                let v = c.get(i, j);
                c.set(i, j, v + aik * b.get(kk, j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_matrix::{compare, init};

    #[test]
    fn identity_times_anything() {
        let i = init::eye::<f32>(5, 5);
        let x = init::random::<f32>(5, 7, 1);
        let mut c = Matrix::<f32>::zeros(5, 7);
        naive_gemm(&i, &x, &mut c);
        assert_eq!(compare::max_abs_diff(&c, &x), 0.0);
    }

    #[test]
    fn known_2x2_product() {
        let a = Matrix::from_rows(2, 2, &[1.0f64, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0f64, 6.0, 7.0, 8.0]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        naive_gemm(&a, &b, &mut c);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn accumulates_into_c() {
        let a = init::ones::<f32>(2, 3);
        let b = init::ones::<f32>(3, 2);
        let mut c = init::ones::<f32>(2, 2);
        naive_gemm(&a, &b, &mut c);
        assert!(c.as_slice().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn ikj_matches_ijk() {
        let a = init::random::<f32>(13, 9, 2);
        let b = init::random::<f32>(9, 11, 3);
        let mut c1 = Matrix::<f32>::zeros(13, 11);
        let mut c2 = Matrix::<f32>::zeros(13, 11);
        naive_gemm(&a, &b, &mut c1);
        naive_gemm_ikj(&a, &b, &mut c2);
        compare::assert_gemm_eq(&c1, &c2, 9);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn rejects_mismatched_inner_dims() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(4, 2);
        let mut c = Matrix::<f32>::zeros(2, 2);
        naive_gemm(&a, &b, &mut c);
    }
}
