//! Kernel/executor panic-freedom pass.
//!
//! From every fn anchored `// audit: hot` (the K-loop hot paths: pack
//! routines, edge-tile execution, microkernel dispatch, the executor
//! compute phase), walk the [`crate::callgraph`] closure and flag every
//! construct that can panic at runtime:
//!
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * `.unwrap()` / `.expect(..)`
//! * non-debug `assert!` / `assert_eq!` / `assert_ne!`
//!   (`debug_assert*` is allowed — compiled out of release kernels)
//! * slice indexing `x[i]` / `x[a..b]`
//!
//! Escapes keep every residual panic site justified in-line:
//! * `// audit: cold <reason>` — the check is a pre-loop precondition or
//!   error path, not inside the K loop;
//! * `// audit: checked <reason>` — an `unwrap`/`expect` dominated by a
//!   guard that makes it infallible (the reason must say which guard);
//! * `// audit: bounds <site> [<site>..]` — indexing covered by a named
//!   [`crate::bounds`] proof; the pass cross-validates that every named
//!   site exists in the live bounds report *and was actually proven*, so
//!   a stale annotation fails the audit rather than silently licensing
//!   the access.

use std::collections::{BTreeSet, VecDeque};

use crate::callgraph::{self, CallGraph, SourceFile};
use crate::scan::{count_word, LexedLine};

/// Panic-capable macros (matched as whole words followed by `!`).
const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Result of the panic-freedom pass.
#[derive(Debug, Default)]
pub struct PanicReport {
    /// Hot roots found (`file:line qual`).
    pub roots: Vec<String>,
    /// Number of fns in the hot closure.
    pub reachable: usize,
    /// Escapes honored (cold + checked + bounds).
    pub escapes: usize,
    /// Violations (non-empty fails the audit).
    pub violations: Vec<String>,
}

impl PanicReport {
    /// `true` when every reachable panic site is escaped/justified.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Find a panic-capable token in a code channel.
fn panic_hit(code: &str) -> Option<String> {
    for m in PANIC_MACROS {
        // Whole word followed by `!` — `debug_assert!` must not match
        // `assert!`, which the word-boundary check guarantees.
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(m) {
            let at = from + rel;
            let before_ok = at == 0
                || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = code[at + m.len()..].chars().next();
            if before_ok && after == Some('!') {
                return Some(format!("{m}!"));
            }
            from = at + 1;
        }
    }
    if code.contains(".unwrap(") {
        return Some(".unwrap()".into());
    }
    if code.contains(".expect(") {
        return Some(".expect(..)".into());
    }
    None
}

/// Does this code channel contain slice indexing? A `[` directly preceded
/// by an identifier char, `]`, or `)` is an index expression; `[T; N]`
/// types, attribute lines, and array literals are not.
fn has_indexing(code: &str) -> bool {
    let t = code.trim_start();
    if t.starts_with("#[") || t.starts_with("#!") {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '[' && i > 0 {
            let p = chars[i - 1];
            if p.is_alphanumeric() || p == '_' || p == ']' || p == ')' {
                return true;
            }
        }
    }
    false
}

/// Bounds-proof site names claimed by `// audit: bounds a b c` comments
/// covering this line.
fn claimed_bounds_sites(lexed: &[LexedLine], li: usize) -> Vec<String> {
    let mut out = Vec::new();
    for c in callgraph::audit_comments_for_line(lexed, li) {
        let Some(p) = c.find("audit:") else { continue };
        let mut words = c[p + 6..].split_whitespace();
        if words.next() == Some("bounds") {
            out.extend(words.map(str::to_string));
        }
    }
    out
}

/// Run the pass over an extracted graph. `proven_sites` is the set of
/// bounds-checker site names that currently hold (method assigned).
pub fn check_graph(g: &CallGraph, proven_sites: &BTreeSet<String>) -> PanicReport {
    let mut report = PanicReport::default();

    let mut queue = VecDeque::new();
    let mut visited = vec![false; g.fns.len()];
    for (i, f) in g.fns.iter().enumerate() {
        if f.anchors.contains("hot") {
            report.roots.push(format!("{}:{} {}", f.file, f.line, f.qual));
            queue.push_back(i);
            visited[i] = true;
        }
    }
    if report.roots.is_empty() {
        report
            .violations
            .push("no `// audit: hot` roots found — the hot closure is vacuous".to_string());
        return report;
    }

    while let Some(idx) = queue.pop_front() {
        report.reachable += 1;
        let fun = &g.fns[idx];
        let Some(lexed) = g.lexed.get(&fun.file) else { continue };
        if let Some((s, e)) = fun.body {
            for li in s..=e.min(lexed.len().saturating_sub(1)) {
                let code = &lexed[li].code;
                let escaped = callgraph::line_escape(lexed, li, "cold")
                    || callgraph::line_escape(lexed, li, "checked");
                if let Some(tok) = panic_hit(code) {
                    // `debug_assert*` never counts; `count_word` keeps
                    // `debug_assert_eq!` from hiding a real `assert!`
                    // on the same line.
                    let only_debug = tok.starts_with("assert")
                        && count_word(code, tok.trim_end_matches('!')) == 0;
                    if !only_debug {
                        if escaped {
                            report.escapes += 1;
                        } else {
                            report.violations.push(format!(
                                "{}:{}: `{}` in hot fn `{}` — move it out of the K loop \
                                 (// audit: cold) or justify the dominating guard (// audit: checked)",
                                fun.file,
                                li + 1,
                                tok,
                                fun.qual
                            ));
                        }
                    }
                }
                if has_indexing(code) {
                    let claimed = claimed_bounds_sites(lexed, li);
                    if !claimed.is_empty() {
                        // Cross-validate every named site against the
                        // live bounds report.
                        let mut all_proven = true;
                        for site in &claimed {
                            if !proven_sites.contains(site) {
                                all_proven = false;
                                report.violations.push(format!(
                                    "{}:{}: `// audit: bounds {site}` names a bounds site that is \
                                     not proven by the current bounds report — stale annotation",
                                    fun.file,
                                    li + 1
                                ));
                            }
                        }
                        if all_proven {
                            report.escapes += 1;
                        }
                    } else if escaped {
                        report.escapes += 1;
                    } else {
                        report.violations.push(format!(
                            "{}:{}: unproven slice indexing in hot fn `{}` — name the covering \
                             proof (// audit: bounds <site>) or justify it (// audit: checked)",
                            fun.file,
                            li + 1,
                            fun.qual
                        ));
                    }
                }
            }
        }
        for call in &fun.calls {
            let li = call.line - 1;
            if li < lexed.len() && callgraph::line_escape(lexed, li, "cold") {
                continue;
            }
            for t in g.resolve(fun, call) {
                if visited[t] || g.fns[t].anchors.contains("cold") {
                    continue;
                }
                visited[t] = true;
                queue.push_back(t);
            }
        }
    }
    report
}

/// Extract the graph from `files` and run the pass.
pub fn check(files: &[SourceFile], proven_sites: &BTreeSet<String>) -> PanicReport {
    check_graph(&callgraph::extract(files), proven_sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, proven: &[&str]) -> PanicReport {
        let sites: BTreeSet<String> = proven.iter().map(|s| s.to_string()).collect();
        check(&[SourceFile { path: "crates/x/src/lib.rs".into(), src: src.into() }], &sites)
    }

    #[test]
    fn clean_hot_fn_passes() {
        let r = run(
            "// audit: hot\n\
             fn kernel(a: &[f32], out: &mut f32) {\n\
                 for v in a.iter() { *out += *v; }\n\
                 debug_assert!(out.is_finite());\n\
             }\n",
            &[],
        );
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn unwrap_and_asserts_are_flagged() {
        for (line, tok) in [
            ("let x = maybe().unwrap();", ".unwrap()"),
            ("let x = maybe().expect(\"set\");", ".expect(..)"),
            ("assert!(k > 0);", "assert!"),
            ("assert_eq!(a, b);", "assert_eq!"),
            ("panic!(\"bad\");", "panic!"),
        ] {
            let r = run(&format!("// audit: hot\nfn kernel() {{ {line} }}\nfn maybe() -> Option<u8> {{ None }}\n"), &[]);
            assert_eq!(r.violations.len(), 1, "{line}: {:?}", r.violations);
            assert!(r.violations[0].contains(tok), "{line}: {:?}", r.violations);
        }
    }

    #[test]
    fn checked_escape_licenses_a_guarded_unwrap() {
        let r = run(
            "// audit: hot\n\
             fn kernel(v: &[u8]) -> u8 {\n\
                 if v.is_empty() { return 0; }\n\
                 // audit: checked guarded by the is_empty early-return above\n\
                 *v.last().unwrap()\n\
             }\n",
            &[],
        );
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.escapes, 1);
    }

    #[test]
    fn indexing_needs_a_proven_bounds_site() {
        let flagged = run("// audit: hot\nfn kernel(v: &[u8], i: usize) -> u8 { v[i] }\n", &[]);
        assert_eq!(flagged.violations.len(), 1, "{:?}", flagged.violations);
        assert!(flagged.violations[0].contains("unproven slice indexing"));

        let proven = run(
            "// audit: hot\n\
             fn kernel(v: &[u8], i: usize) -> u8 {\n\
                 // audit: bounds kernel_read\n\
                 v[i]\n\
             }\n",
            &["kernel_read"],
        );
        assert!(proven.ok(), "{:?}", proven.violations);

        let stale = run(
            "// audit: hot\n\
             fn kernel(v: &[u8], i: usize) -> u8 {\n\
                 // audit: bounds kernel_read\n\
                 v[i]\n\
             }\n",
            &[],
        );
        assert_eq!(stale.violations.len(), 1, "{:?}", stale.violations);
        assert!(stale.violations[0].contains("stale annotation"), "{:?}", stale.violations);
    }

    #[test]
    fn hot_closure_descends_through_helpers_but_not_cold_fns() {
        let r = run(
            "// audit: hot\n\
             fn kernel() { helper(); precondition(); }\n\
             fn helper() { let x = maybe().unwrap(); drop(x); }\n\
             // audit: cold entry validation, outside the K loop\n\
             fn precondition() { assert!(true); }\n\
             fn maybe() -> Option<u8> { None }\n",
            &[],
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains("helper"), "{:?}", r.violations);
    }

    #[test]
    fn attribute_lines_and_array_types_are_not_indexing() {
        let r = run(
            "// audit: hot\n\
             #[inline]\n\
             fn kernel() -> [u8; 4] { let a: [u8; 4] = [0; 4]; a }\n",
            &[],
        );
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn real_hot_paths_are_panic_free() {
        let root = crate::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let files = callgraph::read_tree(&root).expect("read tree");
        let proven: BTreeSet<String> = crate::bounds::check()
            .proofs
            .iter()
            .filter(|p| p.method.is_some())
            .map(|p| p.name.to_string())
            .collect();
        let r = check(&files, &proven);
        assert!(r.ok(), "{}", r.violations.join("\n"));
        assert!(!r.roots.is_empty(), "hot roots must exist in the real tree");
        assert!(r.reachable >= 10, "hot closure too small: {}", r.reachable);
    }

    #[test]
    fn debug_assert_eq_does_not_mask_detection() {
        let r = run(
            "// audit: hot\n\
             fn kernel(a: usize, b: usize) { debug_assert_eq!(a, b); assert_eq!(a, b); }\n",
            &[],
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }
}
