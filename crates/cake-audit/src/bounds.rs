//! Symbolic bounds checker for every raw-pointer offset site in the GEMM
//! data path.
//!
//! Each [`Site`] models one pointer-arithmetic site as an inequality
//! `need <= cap`: `need` is one past the highest element offset the loop
//! nest can touch, `cap` the length of the buffer it indexes. Sites over
//! block-local extents (`ml`, `kl`, `nl`, a worker's tile count, …) are
//! closed over the *whole tuning space* by corner substitution: the
//! constrained variable is replaced by its declared upper bound, justified
//! by a sampled monotonicity check of `need` in that variable. The
//! substituted inequality is then discharged symbolically — structural
//! polynomial equality or a non-negative-coefficient dominance certificate
//! (see [`crate::interval`]) — so the proof covers **all** parameter values,
//! not just sampled ones. Sites whose domain is finite by construction
//! (kernel tile shapes) are discharged by exhaustive enumeration instead.
//!
//! Every proof, however obtained, is additionally re-validated by
//! exhaustive small-extent enumeration, and the constraint lattice the
//! corner substitutions rely on (`split_range` balance, `worker_rows`
//! coverage, sliver-offset formulas, workspace sizing) is checked as a set
//! of [`lemmas`] *against the real functions*, not a re-implementation.

use std::collections::BTreeMap;

use cake_core::executor::worker_rows;
use cake_core::schedule::{worker_grid, BlockGrid, KFirstSchedule, OuterLoop};
use cake_core::workspace::worker_tile_bound;
use cake_kernels::pack::{
    a_sliver_offset, b_sliver_offset, packed_a_size, packed_b_size, split_range,
};

use crate::interval::{
    c, div_ceil_i, dominates, sampled_nondecreasing, symbolically_equal, v, Expr, Iv,
};

/// How a site's inequality was discharged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// `need` and `cap` normalize to the identical polynomial.
    Equality,
    /// `cap - need` has a non-negativity certificate.
    Dominance,
    /// Finite declared domain enumerated in full.
    Exhaustive,
}

impl Method {
    /// Stable lowercase name for the report.
    pub fn name(self) -> &'static str {
        match self {
            Method::Equality => "equality",
            Method::Dominance => "dominance",
            Method::Exhaustive => "exhaustive",
        }
    }
}

/// Predicate over a variable assignment, used to carve a site's domain.
pub type DomainConstraint = fn(&BTreeMap<&'static str, i128>) -> bool;

/// One raw-pointer offset site: `need <= cap` over a constrained domain.
pub struct Site {
    /// Stable identifier used in the report and tests.
    pub name: &'static str,
    /// Where the pointer arithmetic lives.
    pub place: &'static str,
    /// One past the highest element offset touched.
    pub need: Expr,
    /// Element length of the buffer being indexed.
    pub cap: Expr,
    /// Per-variable inclusive ranges for exhaustive validation (and, for
    /// `Method::Exhaustive` sites, the full declared domain).
    pub ranges: Vec<(&'static str, i128, i128)>,
    /// Domain filter tying constrained variables to their bounds.
    pub constraint: Option<DomainConstraint>,
    /// Corner substitutions `var := upper bound` applied to `need` before
    /// the symbolic proof; each is justified by sampled monotonicity.
    pub corner_subst: Vec<(&'static str, Expr)>,
    /// `true` when the ranges enumerate the site's entire domain (so an
    /// exhaustive pass alone is a complete proof).
    pub finite_domain: bool,
}

/// Proof outcome for one site.
#[derive(Clone, Debug)]
pub struct SiteProof {
    /// Site identifier.
    pub name: &'static str,
    /// Source location description.
    pub place: &'static str,
    /// Discharge method, or `None` if the inequality was refuted.
    pub method: Option<Method>,
    /// Counterexample assignment when refuted.
    pub witness: Option<String>,
    /// Assignments enumerated during validation.
    pub checked: usize,
    /// Interval of `need` over the declared ranges.
    pub need_range: (i128, i128),
    /// Interval of `cap` over the declared ranges.
    pub cap_range: (i128, i128),
}

/// Full bounds-checker result.
#[derive(Debug, Default)]
pub struct BoundsReport {
    /// One proof per site.
    pub proofs: Vec<SiteProof>,
    /// Names of the code-linked lemmas that held.
    pub lemmas: Vec<String>,
    /// Lemma failures (empty on a healthy tree).
    pub lemma_failures: Vec<String>,
}

impl BoundsReport {
    /// `true` when every site is proven and every lemma held.
    pub fn ok(&self) -> bool {
        self.lemma_failures.is_empty() && self.proofs.iter().all(|p| p.method.is_some())
    }

    /// Machine-readable JSON proof report.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"sites\": [\n");
        for (i, p) in self.proofs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"place\": \"{}\", \"method\": {}, \
                 \"checked\": {}, \"need\": [{}, {}], \"cap\": [{}, {}]{}}}{}\n",
                p.name,
                p.place,
                match p.method {
                    Some(m) => format!("\"{}\"", m.name()),
                    None => "null".to_string(),
                },
                p.checked,
                p.need_range.0,
                p.need_range.1,
                p.cap_range.0,
                p.cap_range.1,
                match &p.witness {
                    Some(w) => format!(", \"witness\": \"{w}\""),
                    None => String::new(),
                },
                if i + 1 < self.proofs.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"lemmas\": [");
        for (i, l) in self.lemmas.iter().enumerate() {
            s.push_str(&format!("\"{l}\"{}", if i + 1 < self.lemmas.len() { ", " } else { "" }));
        }
        s.push_str(&format!("],\n  \"ok\": {}\n}}\n", self.ok()));
        s
    }
}

fn prod_env(
    ranges: &[(&'static str, i128, i128)],
    mut f: impl FnMut(&BTreeMap<&'static str, i128>),
) {
    let mut env: BTreeMap<&'static str, i128> = ranges.iter().map(|&(n, lo, _)| (n, lo)).collect();
    loop {
        f(&env);
        // Odometer increment over the range list.
        let mut i = 0;
        loop {
            if i == ranges.len() {
                return;
            }
            let (name, lo, hi) = ranges[i];
            let cur = env[&name];
            if cur < hi {
                env.insert(name, cur + 1);
                break;
            }
            env.insert(name, lo);
            i += 1;
        }
    }
}

/// Prove one site. Symbolic discharge first (after corner substitution),
/// exhaustive enumeration as both fallback and cross-validation.
pub fn prove_site(site: &Site) -> SiteProof {
    // Corner substitution: replace each constrained variable in `need` by
    // its upper bound. Sound only if `need` is non-decreasing in that
    // variable, which the sampler validates (refutation => no substitution,
    // the symbolic proof is skipped and exhaustion decides).
    let mut need_c = site.need.clone();
    let mut subst_ok = true;
    for (var, ub) in &site.corner_subst {
        if !sampled_nondecreasing(&site.need, var, &site.ranges, 400, 0x5eed_0001) {
            subst_ok = false;
            break;
        }
        need_c = need_c.subst(var, ub);
    }

    let mut method = None;
    if subst_ok {
        if symbolically_equal(&site.cap, &need_c) {
            method = Some(Method::Equality);
        } else if dominates(&site.cap, &need_c) {
            method = Some(Method::Dominance);
        }
    }

    // Exhaustive validation over the declared ranges (also the fallback
    // proof for finite domains, and the refuter for mutant sites).
    let mut checked = 0usize;
    let mut witness: Option<String> = None;
    prod_env(&site.ranges, |env| {
        if witness.is_some() {
            return;
        }
        if let Some(cst) = site.constraint {
            if !cst(env) {
                return;
            }
        }
        checked += 1;
        let need = site.need.eval(env);
        let cap = site.cap.eval(env);
        if need > cap {
            witness = Some(format!("{env:?} => need {need} > cap {cap}"));
        }
    });

    if witness.is_some() {
        method = None; // a concrete counterexample beats any certificate
    } else if method.is_none() && site.finite_domain {
        method = Some(Method::Exhaustive);
    }

    // Interval ranges of need/cap over the raw (unconstrained) boxes, for
    // the report. Conservative: the true reachable set is a subset.
    let iv_env: BTreeMap<&'static str, Iv> =
        site.ranges.iter().map(|&(n, lo, hi)| (n, Iv::new(lo, hi))).collect();
    let niv = site.need.eval_iv(&iv_env);
    let civ = site.cap.eval_iv(&iv_env);

    SiteProof {
        name: site.name,
        place: site.place,
        method,
        witness,
        checked,
        need_range: (niv.lo, niv.hi),
        cap_range: (civ.lo, civ.hi),
    }
}

/// Sliver-tail `need` for a packed panel: highest offset + 1 written by the
/// last sliver, `(ceil(l/r)-1)*r*kl + (kl-1)*r + (r-1) + 1`.
fn packed_tail(l: &'static str, r: &'static str, kl: &'static str) -> Expr {
    v(l)
        .ceil_div(v(r))
        .minus(c(1))
        .times(v(r))
        .times(v(kl))
        .plus(v(kl).minus(c(1)).times(v(r)))
        .plus(v(r).minus(c(1)))
        .plus(c(1))
}

/// `packed_a_size`/`packed_b_size` as an expression: `ceil(l/r)*r*kc`.
fn packed_size(l: Expr, r: &'static str, kc: Expr) -> Expr {
    l.ceil_div(v(r)).times(v(r)).times(kc)
}

/// The executor's per-worker tile bound under the 2D grid:
/// `worker_tile_bound(T, p) = min(T, ceil(T/p) + p - 1)` with
/// `T = ceil(p*mc / mr)` (cake-core/src/workspace.rs). The runtime's
/// `.max(1)` clamp is vacuous on this domain: `p, mc, mr >= 1` forces
/// `T >= 1`, so both `min` arguments are already `>= 1`.
fn exec_tile_bound() -> Expr {
    let tiles = v("p").times(v("mc")).ceil_div(v("mr"));
    tiles.clone().min_e(tiles.ceil_div(v("p")).plus(v("p")).minus(c(1)))
}

/// The executor workspace A stride:
/// `packed_a_size(worker_tile_bound(T, p)*mr, kc, mr)`
/// (cake-core/src/workspace.rs `prepare`).
fn exec_pa_stride() -> Expr {
    packed_size(exec_tile_bound().times(v("mr")), "mr", v("kc"))
}

/// The goto (loops5) effective blockings: `kc_eff = min(kc, k)`,
/// `nc_eff = min(nc, ceil(n/nr)*nr)`, `mc_eff = min(mc, ceil(m/mr)*mr)`.
fn goto_eff(cv: &'static str, rv: &'static str, dimv: &'static str) -> Expr {
    v(cv).min_e(v(dimv).ceil_div(v(rv)).times(v(rv)))
}

/// The site inventory: every raw-pointer offset site in the pack /
/// microkernel / executor / goto data path.
pub fn sites() -> Vec<Site> {
    let small = |n| (n, 1, 3);
    vec![
        // ---- standalone packing (cake-kernels/src/pack.rs) ----
        Site {
            name: "pack_a_sliver_tail",
            place: "cake-kernels/src/pack.rs: pack_a writes dst[s*mr*kl + col*mr + row]",
            need: packed_tail("ml", "mr", "kl"),
            cap: packed_size(v("ml"), "mr", v("kl")),
            ranges: vec![("ml", 1, 7), ("mr", 1, 4), ("kl", 1, 4)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "pack_b_sliver_tail",
            place: "cake-kernels/src/pack.rs: pack_b writes dst[t*nr*kl + row*nr + col]",
            need: packed_tail("nl", "nr", "kl"),
            cap: packed_size(v("nl"), "nr", v("kl")),
            ranges: vec![("nl", 1, 7), ("nr", 1, 4), ("kl", 1, 4)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        // ---- pipelined executor (cake-core/src/executor.rs) ----
        Site {
            name: "exec_pb_sliver_write",
            place: "cake-core/src/executor.rs: pack_b_coop pb_base.add(t*nr*kl), len nr*kl",
            need: v("nl").ceil_div(v("nr")).times(v("nr")).times(v("kl")),
            cap: packed_size(v("nc"), "nr", v("kc")),
            ranges: vec![("nl", 1, 4), ("nc", 1, 4), ("kl", 1, 3), ("kc", 1, 3), small("nr")],
            constraint: Some(|e| e["nl"] <= e["nc"] && e["kl"] <= e["kc"]),
            corner_subst: vec![("nl", v("nc")), ("kl", v("kc"))],
            finite_domain: false,
        },
        Site {
            name: "exec_pb_sliver_read",
            place: "cake-core/src/executor.rs: compute pb_base.add(t*nr*kl) kernel reads",
            need: v("nl").ceil_div(v("nr")).times(v("nr")).times(v("kl")),
            cap: packed_size(v("nc"), "nr", v("kc")),
            ranges: vec![("nl", 1, 4), ("nc", 1, 4), ("kl", 1, 3), ("kc", 1, 3), small("nr")],
            constraint: Some(|e| e["nl"] <= e["nc"] && e["kl"] <= e["kc"]),
            corner_subst: vec![("nl", v("nc")), ("kl", v("kc"))],
            finite_domain: false,
        },
        Site {
            name: "exec_pa_strip",
            place: "cake-core/src/executor.rs: packed_a.base_ptr().add(wid*pa_stride), len pa_stride",
            need: v("wid").plus(c(1)).times(v("s")),
            cap: v("p").times(v("s")),
            ranges: vec![("wid", 0, 3), ("p", 1, 4), ("s", 1, 5)],
            constraint: Some(|e| e["wid"] < e["p"]),
            corner_subst: vec![("wid", v("p").minus(c(1)))],
            finite_domain: false,
        },
        Site {
            name: "exec_pa_pack",
            place: "cake-core/src/executor.rs: pack_a_own fills a worker strip of pa_stride",
            need: v("tiles").times(v("mr")).times(v("kl")),
            cap: exec_pa_stride(),
            ranges: vec![("tiles", 0, 9), small("mr"), small("mc"), small("kc"), ("kl", 1, 3), small("p")],
            constraint: Some(|e| {
                let t = div_ceil_i(e["p"] * e["mc"], e["mr"]);
                let bound = t.min(div_ceil_i(t, e["p"]) + e["p"] - 1);
                e["tiles"] <= bound && e["kl"] <= e["kc"]
            }),
            corner_subst: vec![("tiles", exec_tile_bound()), ("kl", v("kc"))],
            finite_domain: false,
        },
        Site {
            name: "exec_pa_read",
            place: "cake-core/src/executor.rs: compute pa_ptr.add(s*mr*kl) kernel reads",
            need: v("tiles").times(v("mr")).times(v("kl")),
            cap: exec_pa_stride(),
            ranges: vec![("tiles", 0, 9), small("mr"), small("mc"), small("kc"), ("kl", 1, 3), small("p")],
            constraint: Some(|e| {
                let t = div_ceil_i(e["p"] * e["mc"], e["mr"]);
                let bound = t.min(div_ceil_i(t, e["p"]) + e["p"] - 1);
                e["tiles"] <= bound && e["kl"] <= e["kc"]
            }),
            corner_subst: vec![("tiles", exec_tile_bound()), ("kl", v("kc"))],
            finite_domain: false,
        },
        Site {
            name: "exec_c_tile",
            place: "cake-core/src/executor.rs: out.get().add(row*rsc + col*csc) tile accumulate",
            need: v("rm")
                .minus(c(1))
                .times(v("rsc"))
                .plus(v("cn").minus(c(1)).times(v("csc")))
                .plus(c(1)),
            cap: v("m")
                .minus(c(1))
                .times(v("rsc"))
                .plus(v("n").minus(c(1)).times(v("csc")))
                .plus(c(1)),
            ranges: vec![("rm", 1, 4), ("cn", 1, 4), ("m", 1, 4), ("n", 1, 4), small("rsc"), small("csc")],
            constraint: Some(|e| e["rm"] <= e["m"] && e["cn"] <= e["n"]),
            corner_subst: vec![("rm", v("m")), ("cn", v("n"))],
            finite_domain: false,
        },
        // ---- microkernels (cake-kernels/src/{ukernel,edge}.rs) ----
        Site {
            name: "ukr_a_sliver_read",
            place: "cake-kernels/src/ukernel.rs: generic_ukr a.add(kk*mr + i)",
            need: v("kc").minus(c(1)).times(v("mr")).plus(v("mr").minus(c(1))).plus(c(1)),
            cap: v("kc").times(v("mr")),
            ranges: vec![("kc", 1, 6), ("mr", 1, 6)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "ukr_b_sliver_read",
            place: "cake-kernels/src/ukernel.rs: generic_ukr b.add(kk*nr + j)",
            need: v("kc").minus(c(1)).times(v("nr")).plus(v("nr").minus(c(1))).plus(c(1)),
            cap: v("kc").times(v("nr")),
            ranges: vec![("kc", 1, 6), ("nr", 1, 6)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "edge_scratch_tile",
            place: "cake-kernels/src/edge.rs: run_tile scratch[i*nr + j], scratch len MAX_TILE",
            need: v("mr").times(v("nr")),
            cap: c(cake_kernels::edge::MAX_TILE as i128),
            // The entire declared kernel-shape domain: every selectable
            // kernel fits (mr <= 14, nr <= 32) — where the AVX-512 f32/bf16
            // 14x32 tile saturates MAX_TILE exactly — except the VNNI int8
            // 16x16 tile, admitted through the (mr <= 16, nr <= 16) lobe.
            // Lemma L6 ties this carved box to the real REGISTERED_SHAPES.
            ranges: vec![("mr", 1, 16), ("nr", 1, 32)],
            constraint: Some(|e| e["mr"] <= 14 || e["nr"] <= 16),
            corner_subst: vec![],
            finite_domain: true,
        },
        // ---- AVX-512 microkernels (cake-kernels/src/avx512.rs) ----
        // The tile shapes are compile-time constants (f32: 14x32,
        // f64: 8x16), so `need` closes over kc alone and the inequalities
        // discharge by structural equality: the innermost read is
        // a[(kc-1)*MR + (MR-1)] and b[(kc-1)*NR + (NR-1)], one past which
        // is exactly the kc*MR / kc*NR sliver length the UkrFn contract
        // guarantees.
        Site {
            name: "avx512_f32_a_read",
            place: "cake-kernels/src/avx512.rs: f32 kernel a.add(k*14 + i), i < 14",
            need: v("kc").minus(c(1)).times(c(14)).plus(c(13)).plus(c(1)),
            cap: v("kc").times(c(14)),
            ranges: vec![("kc", 1, 8)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "avx512_f32_b_read",
            place: "cake-kernels/src/avx512.rs: f32 kernel _mm512_loadu_ps(b.add(k*32 + 16))",
            need: v("kc").minus(c(1)).times(c(32)).plus(c(31)).plus(c(1)),
            cap: v("kc").times(c(32)),
            ranges: vec![("kc", 1, 8)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "avx512_f64_a_read",
            place: "cake-kernels/src/avx512.rs: f64 kernel a.add(k*8 + i), i < 8",
            need: v("kc").minus(c(1)).times(c(8)).plus(c(7)).plus(c(1)),
            cap: v("kc").times(c(8)),
            ranges: vec![("kc", 1, 8)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "avx512_f64_b_read",
            place: "cake-kernels/src/avx512.rs: f64 kernel _mm512_loadu_pd(b.add(k*16 + 8))",
            need: v("kc").minus(c(1)).times(c(16)).plus(c(15)).plus(c(1)),
            cap: v("kc").times(c(16)),
            ranges: vec![("kc", 1, 8)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        // The prefetch addresses are clamped `kpf = (k + PF_DIST_K).min(kc-1)`
        // before the pointer add, so the computed pointer never leaves the
        // sliver even on the last K iterations. Prefetch itself cannot
        // fault, but the *pointer arithmetic* must stay in bounds — that
        // is what these sites prove. The AVX2 kernels share the identical
        // clamp (avx2.rs imports PF_DIST_K), so the f32 B case below —
        // the farthest-reaching prefetch, second 16-lane vector — covers
        // the whole family's worst corner.
        Site {
            name: "avx512_prefetch_a",
            place: "cake-kernels/src/avx512.rs: _mm_prefetch(a.add(kpf*14)), kpf <= kc-1",
            need: v("kpf").times(c(14)).plus(c(1)),
            cap: v("kc").times(c(14)),
            ranges: vec![("kpf", 0, 7), ("kc", 1, 8)],
            constraint: Some(|e| e["kpf"] < e["kc"]),
            corner_subst: vec![("kpf", v("kc").minus(c(1)))],
            finite_domain: false,
        },
        Site {
            name: "avx512_prefetch_b_second_vec",
            place: "cake-kernels/src/avx512.rs: _mm_prefetch(b.add(kpf*32 + 16)), kpf <= kc-1",
            need: v("kpf").times(c(32)).plus(c(16)).plus(c(1)),
            cap: v("kc").times(c(32)),
            ranges: vec![("kpf", 0, 7), ("kc", 1, 8)],
            constraint: Some(|e| e["kpf"] < e["kc"]),
            corner_subst: vec![("kpf", v("kc").minus(c(1)))],
            finite_domain: false,
        },
        Site {
            name: "avx512_spill_lanes",
            place: "cake-kernels/src/avx512.rs: strided-C spill, two storeu into lanes[NR]",
            // Both kernels spill a full accumulator row into a stack array
            // before scalar C writes: f32 writes 16+16 floats into
            // [f32; 32], f64 writes 8+8 into [f64; 16]. Constant domain:
            // the second store's one-past-end equals the array length.
            need: c(16).plus(c(16)),
            cap: c(32),
            ranges: vec![],
            constraint: None,
            corner_subst: vec![],
            finite_domain: true,
        },
        // ---- narrow-dtype microkernels (avx512.rs / avx2.rs) ----
        // The VNNI int8 kernel consumes K in groups of four: each group
        // load reads the 64 bytes at byte offset k0*16 (MR = NR = 16, one
        // byte per i8), with the loop guaranteeing k0 + 4 <= kc. The same
        // site covers the A and B loads — identical offset and extent.
        Site {
            name: "avx512_vnni_group_read",
            place: "cake-kernels/src/avx512.rs: vnni i8 64B group load a/b.add(k0*16), k0+4 <= kc",
            need: v("k0").times(c(16)).plus(c(64)),
            cap: v("kc").times(c(16)),
            ranges: vec![("k0", 0, 8), ("kc", 1, 12)],
            constraint: Some(|e| e["k0"] + 4 <= e["kc"]),
            corner_subst: vec![("k0", v("kc").minus(c(4)))],
            finite_domain: false,
        },
        // The K tail is byte-masked to rem*16 live bytes at offset k0*16,
        // with k0 = kc - rem by construction: the masked extent ends at
        // exactly kc*16, the packed sliver length.
        Site {
            name: "avx512_vnni_tail_read",
            place: "cake-kernels/src/avx512.rs: vnni i8 masked tail load, rem*16 bytes at k0*16",
            need: v("k0").plus(v("rem")).times(c(16)),
            cap: v("kc").times(c(16)),
            ranges: vec![("k0", 0, 9), ("rem", 1, 3), ("kc", 1, 12)],
            constraint: Some(|e| e["k0"] + e["rem"] == e["kc"]),
            corner_subst: vec![("k0", v("kc").minus(v("rem")))],
            finite_domain: false,
        },
        // Contiguous-C fast path: a full 16-lane i32 row load/store at
        // c + i*rsc. One past its last lane is i*rsc + 16; the UkrFn
        // contract (csc = 1, i < 16, j < 16) makes 15*rsc + 16 the cap.
        Site {
            name: "avx512_vnni_c_row_vec",
            place: "cake-kernels/src/avx512.rs: vnni i8 C row vector, c.add(i*rsc) 16 lanes",
            need: v("i").times(v("rsc")).plus(c(16)),
            cap: c(15).times(v("rsc")).plus(c(16)),
            ranges: vec![("i", 0, 15), ("rsc", 1, 3)],
            constraint: None,
            corner_subst: vec![("i", c(15))],
            finite_domain: false,
        },
        // The bf16 kernel loads one full 32-element B row per K step
        // (64 bytes at word offset k0*32) and a 14-word-masked A row
        // (offset k0*14), both guarded by k0 < kc.
        Site {
            name: "avx512_bf16_b_row_read",
            place: "cake-kernels/src/avx512.rs: bf16 B row load b.add(k0*32), k0 < kc",
            need: v("k0").plus(c(1)).times(c(32)),
            cap: v("kc").times(c(32)),
            ranges: vec![("k0", 0, 7), ("kc", 1, 8)],
            constraint: Some(|e| e["k0"] < e["kc"]),
            corner_subst: vec![("k0", v("kc").minus(c(1)))],
            finite_domain: false,
        },
        Site {
            name: "avx512_bf16_a_row_read",
            place: "cake-kernels/src/avx512.rs: bf16 A masked row load a.add(k0*14), 14 live words",
            need: v("k0").times(c(14)).plus(c(14)),
            cap: v("kc").times(c(14)),
            ranges: vec![("k0", 0, 7), ("kc", 1, 8)],
            constraint: Some(|e| e["k0"] < e["kc"]),
            corner_subst: vec![("k0", v("kc").minus(c(1)))],
            finite_domain: false,
        },
        // Contiguous-C fast path: two 16-lane f32 vectors per row, the
        // second at row + 16, reaching i*rsc + 32; cap from the contract's
        // (i < 14, j < 32, csc = 1) corner.
        Site {
            name: "avx512_bf16_c_row_pair",
            place: "cake-kernels/src/avx512.rs: bf16 C row pair, loadu_ps(row) + loadu_ps(row+16)",
            need: v("i").times(v("rsc")).plus(c(32)),
            cap: c(13).times(v("rsc")).plus(c(32)),
            ranges: vec![("i", 0, 13), ("rsc", 1, 3)],
            constraint: None,
            corner_subst: vec![("i", c(13))],
            finite_domain: false,
        },
        // AVX2 narrow kernels (i8 4x8 and bf16 4x8) read one 8-element B
        // row per K step (8 bytes / 16 bytes, element offsets identical)
        // and 4 scalar A elements at k*4 + i, i < 4.
        Site {
            name: "avx2_narrow_b_row_read",
            place: "cake-kernels/src/avx2.rs: i8/bf16 B row load b.add(k*8), 8 elements, k < kc",
            need: v("k").times(c(8)).plus(c(8)),
            cap: v("kc").times(c(8)),
            ranges: vec![("k", 0, 7), ("kc", 1, 8)],
            constraint: Some(|e| e["k"] < e["kc"]),
            corner_subst: vec![("k", v("kc").minus(c(1)))],
            finite_domain: false,
        },
        Site {
            name: "avx2_narrow_a_read",
            place: "cake-kernels/src/avx2.rs: i8/bf16 A scalar reads a.add(k*4 + i), i < 4, k < kc",
            need: v("k").times(c(4)).plus(c(4)),
            cap: v("kc").times(c(4)),
            ranges: vec![("k", 0, 7), ("kc", 1, 8)],
            constraint: Some(|e| e["k"] < e["kc"]),
            corner_subst: vec![("k", v("kc").minus(c(1)))],
            finite_domain: false,
        },
        // Contiguous-C fast path: one 8-lane vector per row at c + i*rsc,
        // i < 4 from the 4x8 tile contract.
        Site {
            name: "avx2_narrow_c_row_vec",
            place: "cake-kernels/src/avx2.rs: i8/bf16 C row vector, c.add(i*rsc) 8 lanes",
            need: v("i").times(v("rsc")).plus(c(8)),
            cap: c(3).times(v("rsc")).plus(c(8)),
            ranges: vec![("i", 0, 3), ("rsc", 1, 3)],
            constraint: None,
            corner_subst: vec![("i", c(3))],
            finite_domain: false,
        },
        // ---- goto baseline (cake-goto/src/loops5.rs) ----
        Site {
            name: "goto_pb_sliver",
            place: "cake-goto/src/loops5.rs: pb_base.add(t*nr*kl), len nr*kl",
            need: v("nl").ceil_div(v("nr")).times(v("nr")).times(v("kl")),
            cap: packed_size(goto_eff("nc", "nr", "n"), "nr", v("kc").min_e(v("k"))),
            ranges: vec![
                ("nl", 1, 4),
                small("nr"),
                small("nc"),
                ("n", 1, 4),
                ("kl", 1, 4),
                small("kc"),
                ("k", 1, 4),
            ],
            constraint: Some(|e| {
                let nc_eff = e["nc"].min(div_ceil_i(e["n"], e["nr"]) * e["nr"]);
                let kc_eff = e["kc"].min(e["k"]);
                e["nl"] <= nc_eff.min(e["n"]) && e["kl"] <= kc_eff
            }),
            corner_subst: vec![
                ("nl", goto_eff("nc", "nr", "n").min_e(v("n"))),
                ("kl", v("kc").min_e(v("k"))),
            ],
            finite_domain: false,
        },
        Site {
            name: "goto_pa_pack",
            place: "cake-goto/src/loops5.rs: pack_a into a worker strip of pa_stride",
            need: v("ml").ceil_div(v("mr")).times(v("mr")).times(v("kl")),
            cap: packed_size(goto_eff("mc", "mr", "m"), "mr", v("kc").min_e(v("k"))),
            ranges: vec![
                ("ml", 1, 4),
                small("mr"),
                small("mc"),
                ("m", 1, 4),
                ("kl", 1, 4),
                small("kc"),
                ("k", 1, 4),
            ],
            constraint: Some(|e| {
                let mc_eff = e["mc"].min(div_ceil_i(e["m"], e["mr"]) * e["mr"]);
                let kc_eff = e["kc"].min(e["k"]);
                e["ml"] <= mc_eff.min(e["m"]) && e["kl"] <= kc_eff
            }),
            corner_subst: vec![
                ("ml", goto_eff("mc", "mr", "m").min_e(v("m"))),
                ("kl", v("kc").min_e(v("k"))),
            ],
            finite_domain: false,
        },
        Site {
            name: "goto_pa_strip",
            place: "cake-goto/src/loops5.rs: packed_a.base_ptr().add(wid*pa_stride), len pa_stride",
            need: v("wid").plus(c(1)).times(v("s")),
            cap: v("p").times(v("s")),
            ranges: vec![("wid", 0, 3), ("p", 1, 4), ("s", 1, 5)],
            constraint: Some(|e| e["wid"] < e["p"]),
            corner_subst: vec![("wid", v("p").minus(c(1)))],
            finite_domain: false,
        },
        Site {
            name: "goto_c_tile",
            place: "cake-goto/src/loops5.rs: run_tile C pointer (ir+i)*rsc + (jr+j)*csc",
            need: v("rm")
                .minus(c(1))
                .times(v("rsc"))
                .plus(v("cn").minus(c(1)).times(v("csc")))
                .plus(c(1)),
            cap: v("m")
                .minus(c(1))
                .times(v("rsc"))
                .plus(v("n").minus(c(1)).times(v("csc")))
                .plus(c(1)),
            ranges: vec![("rm", 1, 4), ("cn", 1, 4), ("m", 1, 4), ("n", 1, 4), small("rsc"), small("csc")],
            constraint: Some(|e| e["rm"] <= e["m"] && e["cn"] <= e["n"]),
            corner_subst: vec![("rm", v("m")), ("cn", v("n"))],
            finite_domain: false,
        },
    ]
}

/// Seeded mutant sites: each encodes a classic off-by-one and must be
/// **refuted** with a concrete witness, proving the checker has teeth.
pub fn mutant_sites() -> Vec<Site> {
    vec![
        Site {
            name: "mutant_pack_tail_off_by_one",
            place: "seeded: pack tail writes one element past the panel",
            need: packed_tail("ml", "mr", "kl").plus(c(1)),
            cap: packed_size(v("ml"), "mr", v("kl")),
            ranges: vec![("ml", 1, 7), ("mr", 1, 4), ("kl", 1, 4)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "mutant_strip_unclamped_wid",
            place: "seeded: worker strip indexed with wid <= p (missing wid < p clamp)",
            need: v("wid").plus(c(1)).times(v("s")),
            cap: v("p").times(v("s")),
            ranges: vec![("wid", 0, 4), ("p", 1, 4), ("s", 1, 5)],
            constraint: Some(|e| e["wid"] <= e["p"]),
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "mutant_avx512_b_off_by_one",
            place: "seeded: AVX-512 f32 B load as if the sliver held one extra element",
            // The second 16-lane load issued from b.add(k*32 + 17) instead
            // of +16 — the last lane of the last K iteration reads
            // b[kc*32], one past the packed sliver. Refuted at kc = 1.
            need: v("kc").minus(c(1)).times(c(32)).plus(c(32)).plus(c(1)),
            cap: v("kc").times(c(32)),
            ranges: vec![("kc", 1, 8)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "mutant_vnni_group_guard_slipped",
            place: "seeded: vnni i8 group loop guarded k0+3 <= kc instead of k0+4 <= kc",
            // The 64-byte group load still reads 4 K rows; admitting
            // k0 = kc-3 makes the last group read 16 bytes past the
            // sliver. Refuted at (k0, kc) = (0, 3).
            need: v("k0").times(c(16)).plus(c(64)),
            cap: v("kc").times(c(16)),
            ranges: vec![("k0", 0, 8), ("kc", 1, 12)],
            constraint: Some(|e| e["k0"] + 3 <= e["kc"]),
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "mutant_bf16_tail_reads_pair_row",
            place: "seeded: bf16 odd-K tail loads row k0+1 instead of a zero register",
            // Pairing the final K row with a real load of the next row
            // reads one full 32-word row past the sliver. Refuted at
            // k0 = kc-1.
            need: v("k0").plus(c(2)).times(c(32)),
            cap: v("kc").times(c(32)),
            ranges: vec![("k0", 0, 7), ("kc", 1, 8)],
            constraint: Some(|e| e["k0"] < e["kc"]),
            corner_subst: vec![],
            finite_domain: false,
        },
        Site {
            name: "mutant_sliver_unpadded_buffer",
            place: "seeded: panel sized for nl columns without ceil-to-nr zero padding",
            // The pack tail always writes the zero-padded ceil(nl/nr)*nr*kl
            // region; a buffer sized nl*kl loses the padding columns.
            need: v("nl").ceil_div(v("nr")).times(v("nr")).times(v("kl")),
            cap: v("nl").times(v("kl")),
            ranges: vec![("nl", 1, 7), ("nr", 1, 4), ("kl", 1, 4)],
            constraint: None,
            corner_subst: vec![],
            finite_domain: false,
        },
    ]
}

/// Exhaustive code-linked lemmas: validate, against the *real* workspace
/// functions, every constraint the corner substitutions assumed.
pub fn lemmas() -> (Vec<String>, Vec<String>) {
    let mut held = Vec::new();
    let mut failed = Vec::new();
    let mut check = |name: &str, ok: bool, detail: String| {
        if ok {
            held.push(name.to_string());
        } else {
            failed.push(format!("{name}: {detail}"));
        }
    };

    // L1: split_range produces contiguous, disjoint, covering ranges with
    // every part at most ceil(total/parts) long.
    {
        let mut ok = true;
        let mut detail = String::new();
        'l1: for total in 0usize..=40 {
            for parts in 1usize..=8 {
                let mut next = 0usize;
                for idx in 0..parts {
                    let r = split_range(total, parts, idx);
                    if r.start != next || r.len() > total.div_ceil(parts) {
                        ok = false;
                        detail = format!("total={total} parts={parts} idx={idx} r={r:?}");
                        break 'l1;
                    }
                    next = r.end;
                }
                if next != total {
                    ok = false;
                    detail = format!("total={total} parts={parts}: union ends at {next}");
                    break 'l1;
                }
            }
        }
        check("split_range_balanced_partition", ok, detail);
    }

    // L2: the 2D worker grid tiles every block exactly. worker_grid yields
    // (pm, pn) with pm*pn == p; the worker_rows strips over the pm row
    // groups are disjoint and cover [0, ml); and no strip's tile count
    // exceeds worker_tile_bound(T, p) for the sizing maximum T = ceil(bm/mr)
    // — the bound the exec_pa_pack/exec_pa_read sites substitute as the
    // corner. The bound is also nondecreasing in the block height, so
    // sizing for the largest block covers every partial edge block.
    {
        let mut ok = true;
        let mut detail = String::new();
        'l2: for p in 1usize..=6 {
            for mc in 1usize..=4 {
                for mr in 1usize..=4 {
                    let bm = p * mc;
                    let cap_tiles = worker_tile_bound(bm.div_ceil(mr), p);
                    if cap_tiles > worker_tile_bound((bm + 1).div_ceil(mr), p) {
                        ok = false;
                        detail = format!("bound not monotone at bm={bm} mr={mr} p={p}");
                        break 'l2;
                    }
                    for ml in 0..=bm {
                        let (pm, pn) = worker_grid(p, ml.div_ceil(mr));
                        if pm * pn != p {
                            ok = false;
                            detail = format!("grid {pm}x{pn} != p={p} at ml={ml} mr={mr}");
                            break 'l2;
                        }
                        let mut covered = 0usize;
                        for wm in 0..pm {
                            let Some((row0, rows)) = worker_rows(ml, mr, pm, wm) else {
                                continue;
                            };
                            let tiles = rows.div_ceil(mr);
                            if row0 != covered || row0 + rows > ml || tiles > cap_tiles || rows == 0
                            {
                                ok = false;
                                detail = format!(
                                    "bm={bm} ml={ml} mr={mr} p={p} grid={pm}x{pn} wm={wm}: \
                                     row0={row0} rows={rows} tiles={tiles} cap={cap_tiles}"
                                );
                                break 'l2;
                            }
                            covered = row0 + rows;
                        }
                        if covered != ml {
                            ok = false;
                            detail =
                                format!("bm={bm} ml={ml} mr={mr} p={p}: strips cover {covered}");
                            break 'l2;
                        }
                    }
                }
            }
        }
        check("worker_grid_cover_and_tile_bound", ok, detail);
    }

    // L3: the sliver-offset helpers match the model's linear formulas.
    {
        let mut ok = true;
        let mut detail = String::new();
        'l3: for s in 0usize..=6 {
            for kc in 0usize..=5 {
                for r in 1usize..=5 {
                    if a_sliver_offset(s, kc, r) != s * r * kc {
                        ok = false;
                        detail = format!("a_sliver_offset({s},{kc},{r})");
                        break 'l3;
                    }
                    if b_sliver_offset(s, kc, r) != s * r * kc {
                        ok = false;
                        detail = format!("b_sliver_offset({s},{kc},{r})");
                        break 'l3;
                    }
                }
            }
        }
        check("sliver_offsets_linear", ok, detail);
    }

    // L4: packed_{a,b}_size match the model's ceil(l/r)*r*k (including the
    // zero-extent special case, where both are 0).
    {
        let mut ok = true;
        let mut detail = String::new();
        'l4: for l in 0usize..=8 {
            for kx in 0usize..=5 {
                for r in 1usize..=4 {
                    let model = if l == 0 || kx == 0 { 0 } else { l.div_ceil(r) * r * kx };
                    if packed_a_size(l, kx, r) != model || packed_b_size(kx, l, r) != model {
                        ok = false;
                        detail = format!("l={l} k={kx} r={r}");
                        break 'l4;
                    }
                }
            }
        }
        check("packed_sizes_match_model", ok, detail);
    }

    // L5: exhaustive small-extent executor replay. Walk the real K-first
    // schedule over real block grids and check, for every block and worker,
    // that the packed-A strip demand and the B-panel sliver demand fit the
    // workspace's pa_stride / pb_len (the exact formulas from
    // GemmWorkspace::prepare).
    {
        let mut ok = true;
        let mut detail = String::new();
        let mut replays = 0usize;
        'l5: for &m in &[1usize, 2, 3, 5] {
            for &k in &[1usize, 2, 3, 5] {
                for &n in &[1usize, 2, 3, 5] {
                    for mc in 1usize..=3 {
                        for kc in 1usize..=3 {
                            for nc in 1usize..=3 {
                                for mr in 1usize..=3 {
                                    for nr in 1usize..=3 {
                                        for p in 1usize..=3 {
                                            replays += 1;
                                            let bm = p * mc;
                                            let grid = BlockGrid::for_problem(m, k, n, bm, kc, nc);
                                            let max_tiles =
                                                worker_tile_bound(bm.div_ceil(mr), p);
                                            let pa_stride = packed_a_size(max_tiles * mr, kc, mr);
                                            let pb_len = packed_b_size(kc, nc, nr);
                                            let sched = KFirstSchedule::with_outer(
                                                grid,
                                                if m >= n { OuterLoop::MOuter } else { OuterLoop::NOuter },
                                            );
                                            for cd in sched {
                                                let ml = bm.min(m - cd.m * bm);
                                                let kl = kc.min(k - cd.k * kc);
                                                let nl = nc.min(n - cd.n * nc);
                                                if packed_b_size(kl, nl, nr) > pb_len {
                                                    ok = false;
                                                    detail = format!(
                                                        "B overflow: m={m} k={k} n={n} mc={mc} kc={kc} \
                                                         nc={nc} nr={nr} p={p} block={cd:?}"
                                                    );
                                                    break 'l5;
                                                }
                                                let (pm, pn) =
                                                    worker_grid(p, ml.div_ceil(mr));
                                                for wid in 0..p {
                                                    let Some((_, rows)) =
                                                        worker_rows(ml, mr, pm, wid / pn)
                                                    else {
                                                        continue;
                                                    };
                                                    if packed_a_size(rows, kl, mr) > pa_stride {
                                                        ok = false;
                                                        detail = format!(
                                                            "A overflow: m={m} k={k} n={n} mc={mc} \
                                                             kc={kc} mr={mr} p={p} wid={wid} block={cd:?}"
                                                        );
                                                        break 'l5;
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        check("executor_small_extent_replay", ok, format!("{detail} ({replays} replays)"));
    }

    // L6: every kernel tile shape the crate can ever dispatch — the real
    // REGISTERED_SHAPES registry, detection-independent — fits the edge
    // scratch (MAX_TILE) and lies inside the carved domain the
    // edge_scratch_tile site enumerates: (mr <= 14, nr <= 32) with a
    // (mr <= 16, nr <= 16) lobe for the VNNI int8 tile. A new kernel that
    // outgrows either bound fails here even on hosts that cannot run it.
    {
        let mut ok = true;
        let mut detail = String::new();
        for (name, mr, nr) in cake_kernels::select::REGISTERED_SHAPES {
            if mr * nr > cake_kernels::edge::MAX_TILE {
                ok = false;
                detail = format!("{name}: {mr}x{nr} = {} > MAX_TILE {}", mr * nr, cake_kernels::edge::MAX_TILE);
                break;
            }
            let in_wide = mr <= 14 && nr <= 32;
            let in_tall = mr <= 16 && nr <= 16;
            if mr == 0 || nr == 0 || !(in_wide || in_tall) {
                ok = false;
                detail = format!(
                    "{name}: {mr}x{nr} outside the proven (1..=14, 1..=32) | (1..=16, 1..=16) domain"
                );
                break;
            }
        }
        check("registered_shapes_fit_edge_scratch", ok, detail);
    }

    (held, failed)
}

/// Run the full bounds check: prove every site, validate every lemma, and
/// refute every mutant.
pub fn check() -> BoundsReport {
    let mut report = BoundsReport::default();
    for site in sites() {
        report.proofs.push(prove_site(&site));
    }
    let (held, failed) = lemmas();
    report.lemmas = held;
    report.lemma_failures = failed;

    // Self-check: every seeded mutant must be refuted with a witness.
    for mutant in mutant_sites() {
        let proof = prove_site(&mutant);
        if proof.method.is_some() || proof.witness.is_none() {
            report
                .lemma_failures
                .push(format!("mutant {} was NOT refuted — the checker has no teeth", proof.name));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_site_is_proven() {
        for site in sites() {
            let proof = prove_site(&site);
            assert!(
                proof.method.is_some(),
                "site {} unproven (witness: {:?})",
                proof.name,
                proof.witness
            );
            assert!(proof.checked > 0, "site {} validated zero assignments", proof.name);
        }
    }

    #[test]
    fn symbolic_sites_do_not_fall_back_to_enumeration() {
        // Every infinite-domain site must carry a *symbolic* certificate —
        // otherwise the "whole tuning space" claim silently degrades.
        for site in sites() {
            let proof = prove_site(&site);
            if !site.finite_domain {
                assert!(
                    matches!(proof.method, Some(Method::Equality) | Some(Method::Dominance)),
                    "site {} proved only by enumeration: {:?}",
                    proof.name,
                    proof.method
                );
            }
        }
    }

    #[test]
    fn mutants_are_refuted_with_witnesses() {
        for mutant in mutant_sites() {
            let proof = prove_site(&mutant);
            assert!(proof.method.is_none(), "mutant {} was proven!", proof.name);
            assert!(proof.witness.is_some(), "mutant {} refuted without witness", proof.name);
        }
    }

    #[test]
    fn lemmas_hold_against_real_code() {
        let (held, failed) = lemmas();
        assert!(failed.is_empty(), "{failed:?}");
        assert_eq!(held.len(), 6);
    }

    #[test]
    fn full_check_is_green_and_serializes() {
        let report = check();
        assert!(report.ok(), "{:?}", report.lemma_failures);
        let json = report.to_json();
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("exec_pa_pack"));
    }
}
