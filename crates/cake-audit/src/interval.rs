//! Symbolic index arithmetic for the bounds prover.
//!
//! The pack/microkernel offset sites all reduce to inequalities of the form
//! `need <= cap` over the tuning variables `(mr, nr, mc, kc, nc, m, k, n, p)`,
//! built from `+`, `-`, `*`, `ceil-div`, and `min`. This module provides:
//!
//! * an expression AST ([`Expr`]) with substitution and concrete evaluation,
//! * a **polynomial normal form** ([`Poly`]) over opaque atoms
//!   (variables, irreducible `ceil(a/b)`, irreducible `min(a,b)`) with the
//!   rewrite rules that make the workspace's sizing formulas collapse:
//!   `ceil(x*d / d) -> x` (exact division) and
//!   `ceil(min(a,b)/d) -> min(ceil(a/d), ceil(b/d))`,
//! * sound dominance checking ([`dominates`]): `cap - need` is proven
//!   non-negative either because every coefficient is `>= 0`, or after
//!   replacing a `min`/`ceil` atom in a negative monomial by one of its
//!   (pointwise larger) arguments,
//! * interval evaluation ([`Expr::eval_iv`]) for the machine-readable
//!   report's offset ranges, and
//! * a deterministic xorshift sampler used to validate monotonicity claims
//!   that justify corner substitution of constrained variables.
//!
//! Domain convention: every variable is a non-negative size, and every
//! divisor is `>= 1`. The symbolic rules are only applied where they are
//! sound under that convention; the bounds module re-validates each proof
//! numerically on sampled and exhaustively enumerated small assignments.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Ceiling division for the non-negative domain.
#[inline]
pub fn div_ceil_i(a: i128, b: i128) -> i128 {
    assert!(a >= 0 && b > 0, "div_ceil domain violation: {a}/{b}");
    (a + b - 1).div_euclid(b)
}

/// Symbolic index expression over named size variables.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Const(i128),
    /// Named tuning/shape variable (non-negative by convention).
    Var(&'static str),
    /// `a + b`.
    Add(Rc<Expr>, Rc<Expr>),
    /// `a - b`.
    Sub(Rc<Expr>, Rc<Expr>),
    /// `a * b`.
    Mul(Rc<Expr>, Rc<Expr>),
    /// `ceil(a / b)`; `b >= 1` on the domain.
    DivCeil(Rc<Expr>, Rc<Expr>),
    /// `min(a, b)`.
    Min(Rc<Expr>, Rc<Expr>),
}

/// Shorthand constructor for a variable.
pub fn v(name: &'static str) -> Expr {
    Expr::Var(name)
}

/// Shorthand constructor for a literal.
pub fn c(k: i128) -> Expr {
    Expr::Const(k)
}

impl Expr {
    /// `self + o`.
    pub fn plus(self, o: Expr) -> Expr {
        Expr::Add(Rc::new(self), Rc::new(o))
    }

    /// `self - o`.
    pub fn minus(self, o: Expr) -> Expr {
        Expr::Sub(Rc::new(self), Rc::new(o))
    }

    /// `self * o`.
    pub fn times(self, o: Expr) -> Expr {
        Expr::Mul(Rc::new(self), Rc::new(o))
    }

    /// `ceil(self / o)`.
    pub fn ceil_div(self, o: Expr) -> Expr {
        Expr::DivCeil(Rc::new(self), Rc::new(o))
    }

    /// `min(self, o)`.
    pub fn min_e(self, o: Expr) -> Expr {
        Expr::Min(Rc::new(self), Rc::new(o))
    }

    /// Evaluate under a full assignment; panics on unbound variables or
    /// non-positive divisors (domain violations, not proof failures).
    pub fn eval(&self, env: &BTreeMap<&'static str, i128>) -> i128 {
        match self {
            Expr::Const(k) => *k,
            Expr::Var(x) => *env
                .get(x)
                .unwrap_or_else(|| panic!("unbound variable {x} in bounds model")),
            Expr::Add(a, b) => a.eval(env) + b.eval(env),
            Expr::Sub(a, b) => a.eval(env) - b.eval(env),
            Expr::Mul(a, b) => a.eval(env) * b.eval(env),
            Expr::DivCeil(a, b) => div_ceil_i(a.eval(env), b.eval(env)),
            Expr::Min(a, b) => a.eval(env).min(b.eval(env)),
        }
    }

    /// Interval evaluation: a conservative `[lo, hi]` range of the value over
    /// per-variable ranges (exact for the monotone operators used here).
    pub fn eval_iv(&self, env: &BTreeMap<&'static str, Iv>) -> Iv {
        match self {
            Expr::Const(k) => Iv::point(*k),
            Expr::Var(x) => *env
                .get(x)
                .unwrap_or_else(|| panic!("unbound variable {x} in bounds model")),
            Expr::Add(a, b) => a.eval_iv(env).add(b.eval_iv(env)),
            Expr::Sub(a, b) => a.eval_iv(env).sub(b.eval_iv(env)),
            Expr::Mul(a, b) => a.eval_iv(env).mul(b.eval_iv(env)),
            Expr::DivCeil(a, b) => a.eval_iv(env).div_ceil_iv(b.eval_iv(env)),
            Expr::Min(a, b) => a.eval_iv(env).min_iv(b.eval_iv(env)),
        }
    }

    /// Replace every occurrence of `var` by `with`.
    pub fn subst(&self, var: &str, with: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(x) => {
                if *x == var {
                    with.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Add(a, b) => Expr::Add(Rc::new(a.subst(var, with)), Rc::new(b.subst(var, with))),
            Expr::Sub(a, b) => Expr::Sub(Rc::new(a.subst(var, with)), Rc::new(b.subst(var, with))),
            Expr::Mul(a, b) => Expr::Mul(Rc::new(a.subst(var, with)), Rc::new(b.subst(var, with))),
            Expr::DivCeil(a, b) => {
                Expr::DivCeil(Rc::new(a.subst(var, with)), Rc::new(b.subst(var, with)))
            }
            Expr::Min(a, b) => Expr::Min(Rc::new(a.subst(var, with)), Rc::new(b.subst(var, with))),
        }
    }

    /// Collect the free variables.
    pub fn vars(&self, out: &mut BTreeSet<&'static str>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(x) => {
                out.insert(x);
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::DivCeil(a, b)
            | Expr::Min(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

/// Closed integer interval `[lo, hi]` over the non-negative domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Iv {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Iv {
    /// The interval `[x, x]`.
    pub fn point(x: i128) -> Iv {
        Iv { lo: x, hi: x }
    }

    /// The interval `[lo, hi]` (asserts `lo <= hi`).
    pub fn new(lo: i128, hi: i128) -> Iv {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Iv { lo, hi }
    }

    fn add(self, o: Iv) -> Iv {
        Iv { lo: self.lo + o.lo, hi: self.hi + o.hi }
    }

    fn sub(self, o: Iv) -> Iv {
        Iv { lo: self.lo - o.hi, hi: self.hi - o.lo }
    }

    fn mul(self, o: Iv) -> Iv {
        let cs = [self.lo * o.lo, self.lo * o.hi, self.hi * o.lo, self.hi * o.hi];
        Iv { lo: *cs.iter().min().unwrap(), hi: *cs.iter().max().unwrap() }
    }

    fn div_ceil_iv(self, o: Iv) -> Iv {
        // Sizes only: dividend >= 0, divisor >= 1 (domain convention).
        assert!(self.lo >= 0 && o.lo >= 1, "div_ceil interval domain violation");
        Iv { lo: div_ceil_i(self.lo, o.hi), hi: div_ceil_i(self.hi, o.lo) }
    }

    fn min_iv(self, o: Iv) -> Iv {
        Iv { lo: self.lo.min(o.lo), hi: self.hi.min(o.hi) }
    }
}

/// Irreducible sub-expression appearing as a polynomial "indeterminate".
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Atom {
    /// A named variable.
    Var(&'static str),
    /// `ceil(a / b)` that resisted every rewrite.
    DivCeil(Poly, Poly),
    /// `min(a, b)` with neither side provably dominant; arguments are stored
    /// in canonical (sorted) order so `min(a,b) == min(b,a)` structurally.
    Min(Poly, Poly),
}

/// A monomial: a sorted multiset of atoms (empty = the constant monomial).
pub type Mono = Vec<Atom>;

/// Multivariate polynomial over [`Atom`]s with `i128` coefficients, in
/// canonical form (sorted monomials, no zero coefficients).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Poly(pub BTreeMap<Mono, i128>);

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly(BTreeMap::new())
    }

    /// A constant polynomial.
    pub fn constant(k: i128) -> Poly {
        let mut m = BTreeMap::new();
        if k != 0 {
            m.insert(Vec::new(), k);
        }
        Poly(m)
    }

    /// A single atom with coefficient 1.
    pub fn atom(a: Atom) -> Poly {
        let mut m = BTreeMap::new();
        m.insert(vec![a], 1);
        Poly(m)
    }

    /// `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.0.is_empty()
    }

    /// `Some(k)` if this is the constant polynomial `k`.
    pub fn as_const(&self) -> Option<i128> {
        match self.0.len() {
            0 => Some(0),
            1 => self.0.get(&Vec::new() as &Mono).copied(),
            _ => None,
        }
    }

    fn insert(&mut self, mono: Mono, coeff: i128) {
        if coeff == 0 {
            return;
        }
        let slot = self.0.entry(mono).or_insert(0);
        *slot += coeff;
        if *slot == 0 {
            // Re-fetch to remove: entry API gave us a &mut, key still known.
            self.0.retain(|_, c| *c != 0);
        }
    }

    /// `self + o`.
    pub fn add(&self, o: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &o.0 {
            out.insert(m.clone(), *c);
        }
        out
    }

    /// `-self`.
    pub fn neg(&self) -> Poly {
        Poly(self.0.iter().map(|(m, c)| (m.clone(), -c)).collect())
    }

    /// `self - o`.
    pub fn sub(&self, o: &Poly) -> Poly {
        self.add(&o.neg())
    }

    /// `self * o`.
    pub fn mul(&self, o: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m1, c1) in &self.0 {
            for (m2, c2) in &o.0 {
                let mut mono = m1.clone();
                mono.extend(m2.iter().cloned());
                mono.sort();
                out.insert(mono, c1 * c2);
            }
        }
        out
    }

    /// Exact division by a single-monomial divisor: `Some(q)` with
    /// `q * divisor == self`, or `None` if any monomial is not divisible.
    fn div_exact_mono(&self, dmono: &Mono, dcoeff: i128) -> Option<Poly> {
        let mut out = Poly::zero();
        for (m, cfe) in &self.0 {
            if cfe % dcoeff != 0 {
                return None;
            }
            let mut rest = m.clone();
            for a in dmono {
                let pos = rest.iter().position(|x| x == a)?;
                rest.remove(pos);
            }
            out.insert(rest, cfe / dcoeff);
        }
        Some(out)
    }

    /// `true` if every coefficient is non-negative — which, together with the
    /// domain convention (atoms evaluate to non-negative values), proves the
    /// polynomial is non-negative everywhere on the domain.
    pub fn coeffs_nonneg(&self) -> bool {
        self.0.values().all(|&c| c >= 0)
    }
}

/// `ceil(a / b)` in normal form, applying the rewrite rules.
pub fn divceil_poly(a: &Poly, b: &Poly) -> Poly {
    if a.is_zero() {
        return Poly::zero();
    }
    if b.as_const() == Some(1) {
        return a.clone();
    }
    if let (Some(ka), Some(kb)) = (a.as_const(), b.as_const()) {
        if kb >= 1 && ka >= 0 {
            return Poly::constant(div_ceil_i(ka, kb));
        }
    }
    // Exact division: a == q*b term-wise => ceil(a/b) == q (b >= 1 on the
    // domain, and the quotient is an integer polynomial). Only attempted for
    // single-monomial divisors, which covers `x*d/d` and `X*nr/nr`.
    if b.0.len() == 1 {
        let (dm, dc) = b.0.iter().next().unwrap();
        if *dc >= 1 {
            if let Some(q) = a.div_exact_mono(dm, *dc) {
                return q;
            }
        }
    }
    // Distribute over min: ceil is non-decreasing, so
    // ceil(min(x,y)/b) == min(ceil(x/b), ceil(y/b)).
    if a.0.len() == 1 {
        let (m, cfe) = a.0.iter().next().unwrap();
        if *cfe == 1 && m.len() == 1 {
            if let Atom::Min(x, y) = &m[0] {
                return min_poly(&divceil_poly(x, b), &divceil_poly(y, b));
            }
        }
    }
    Poly::atom(Atom::DivCeil(a.clone(), b.clone()))
}

/// `min(a, b)` in normal form: folds constants, discharges one side when the
/// difference has all-non-negative coefficients, and canonicalizes order.
pub fn min_poly(a: &Poly, b: &Poly) -> Poly {
    if a == b {
        return a.clone();
    }
    if let (Some(ka), Some(kb)) = (a.as_const(), b.as_const()) {
        return Poly::constant(ka.min(kb));
    }
    if a.sub(b).coeffs_nonneg() {
        return b.clone(); // a >= b pointwise on the domain
    }
    if b.sub(a).coeffs_nonneg() {
        return a.clone();
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    Poly::atom(Atom::Min(x.clone(), y.clone()))
}

/// Rewrite an expression into polynomial normal form.
pub fn normalize(e: &Expr) -> Poly {
    match e {
        Expr::Const(k) => Poly::constant(*k),
        Expr::Var(x) => Poly::atom(Atom::Var(x)),
        Expr::Add(a, b) => normalize(a).add(&normalize(b)),
        Expr::Sub(a, b) => normalize(a).sub(&normalize(b)),
        Expr::Mul(a, b) => normalize(a).mul(&normalize(b)),
        Expr::DivCeil(a, b) => divceil_poly(&normalize(a), &normalize(b)),
        Expr::Min(a, b) => min_poly(&normalize(a), &normalize(b)),
    }
}

/// Prove `p >= 0` on the domain. Besides the all-coefficients-non-negative
/// certificate, negative monomials containing a `min`/`ceil` atom may have
/// that atom replaced by a pointwise **upper bound** (`min(x,y) <= x|y`;
/// `ceil(x/d) <= x` for `x >= 0`, `d >= 1`), which only *shrinks* the
/// polynomial's value — so a certificate for the rewritten polynomial is a
/// certificate for the original. Bounded branching depth keeps this total.
pub fn prove_nonneg(p: &Poly, depth: usize) -> bool {
    if p.coeffs_nonneg() {
        return true;
    }
    if depth == 0 {
        return false;
    }
    for (mono, &coeff) in &p.0 {
        if coeff >= 0 {
            continue;
        }
        for (i, atom) in mono.iter().enumerate() {
            let uppers: Vec<Poly> = match atom {
                Atom::Min(x, y) => vec![x.clone(), y.clone()],
                Atom::DivCeil(x, _) => vec![x.clone()],
                Atom::Var(_) => continue,
            };
            for upper in uppers {
                let mut rest = mono.clone();
                rest.remove(i);
                let mut rest_poly = Poly::zero();
                rest_poly.insert(rest, coeff);
                // p2 = p - coeff*mono + coeff*upper*rest  (<= p pointwise).
                let mut without = p.clone();
                without.insert(mono.clone(), -coeff);
                let p2 = without.add(&upper.mul(&rest_poly));
                if prove_nonneg(&p2, depth - 1) {
                    return true;
                }
            }
        }
    }
    false
}

/// Prove `need <= cap` on the whole domain (symbolic certificate only).
pub fn dominates(cap: &Expr, need: &Expr) -> bool {
    prove_nonneg(&normalize(cap).sub(&normalize(need)), 6)
}

/// `true` if `need` and `cap` normalize to the identical polynomial.
pub fn symbolically_equal(cap: &Expr, need: &Expr) -> bool {
    normalize(cap).sub(&normalize(need)).is_zero()
}

/// Deterministic xorshift64 PRNG for sampling-based validation.
#[derive(Clone)]
pub struct XorShift64(pub u64);

impl XorShift64 {
    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `[lo, hi]` inclusive.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// Validate by sampling that `expr` is non-decreasing in `var` over the given
/// per-variable ranges — the side condition justifying corner substitution
/// (replacing a constrained variable by its upper bound in `need`).
pub fn sampled_nondecreasing(
    expr: &Expr,
    var: &'static str,
    ranges: &[(&'static str, i128, i128)],
    samples: usize,
    seed: u64,
) -> bool {
    let mut rng = XorShift64(seed | 1);
    let (_, lo, hi) = *ranges
        .iter()
        .find(|(n, _, _)| *n == var)
        .unwrap_or_else(|| panic!("no range declared for {var}"));
    for _ in 0..samples {
        let mut env: BTreeMap<&'static str, i128> = BTreeMap::new();
        for &(name, rlo, rhi) in ranges {
            env.insert(name, rng.in_range(rlo, rhi));
        }
        if hi <= lo {
            continue;
        }
        let x = rng.in_range(lo, hi - 1);
        let dx = rng.in_range(1, hi - x);
        env.insert(var, x);
        let at_x = expr.eval(&env);
        env.insert(var, x + dx);
        let at_xdx = expr.eval(&env);
        if at_xdx < at_x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&'static str, i128)]) -> BTreeMap<&'static str, i128> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn eval_matches_hand_arithmetic() {
        // ceil(7/2)*2*3 = 24; min(24, 20) = 20
        let e = v("x").ceil_div(c(2)).times(c(2)).times(v("y")).min_e(c(20));
        assert_eq!(e.eval(&env(&[("x", 7), ("y", 3)])), 20);
    }

    #[test]
    fn exact_division_rewrite_fires() {
        // ceil(x*d/d) == x symbolically, even for a symbolic divisor.
        let e = v("x").times(v("d")).ceil_div(v("d"));
        assert!(symbolically_equal(&e, &v("x")));
    }

    #[test]
    fn min_distributes_through_divceil() {
        // ceil(min(a,b)/d) == min(ceil(a/d), ceil(b/d))
        let lhs = v("a").min_e(v("b")).ceil_div(v("d"));
        let rhs = v("a").ceil_div(v("d")).min_e(v("b").ceil_div(v("d")));
        assert!(symbolically_equal(&lhs, &rhs));
    }

    #[test]
    fn packed_tail_telescopes_to_full_size() {
        // (ceil(ml/mr)-1)*mr*kl + (kl-1)*mr + (mr-1) + 1 == ceil(ml/mr)*mr*kl
        let slivers = v("ml").ceil_div(v("mr"));
        let need = slivers
            .clone()
            .minus(c(1))
            .times(v("mr"))
            .times(v("kl"))
            .plus(v("kl").minus(c(1)).times(v("mr")))
            .plus(v("mr").minus(c(1)))
            .plus(c(1));
        let cap = slivers.times(v("mr")).times(v("kl"));
        assert!(symbolically_equal(&cap, &need));
    }

    #[test]
    fn min_dominance_via_branching() {
        // min(x,y)*z <= x*z needs the negative-monomial min-replacement.
        let need = v("x").min_e(v("y")).times(v("z"));
        let cap = v("x").times(v("z"));
        assert!(dominates(&cap, &need));
        assert!(!dominates(&need, &cap));
    }

    #[test]
    fn dominance_rejects_false_claims() {
        assert!(!dominates(&v("x"), &v("x").plus(c(1))));
        assert!(!dominates(&v("x").times(c(2)), &v("x").times(c(3))));
    }

    #[test]
    fn interval_eval_brackets_concrete_eval() {
        let e = v("x").ceil_div(v("d")).times(v("d")).min_e(v("y").plus(c(3)));
        let ranges = [("x", 1, 9), ("d", 1, 4), ("y", 0, 5)];
        let iv_env: BTreeMap<&'static str, Iv> =
            ranges.iter().map(|&(n, lo, hi)| (n, Iv::new(lo, hi))).collect();
        let iv = e.eval_iv(&iv_env);
        let mut rng = XorShift64(7);
        for _ in 0..200 {
            let mut cenv = BTreeMap::new();
            for &(n, lo, hi) in &ranges {
                cenv.insert(n, rng.in_range(lo, hi));
            }
            let got = e.eval(&cenv);
            assert!(iv.lo <= got && got <= iv.hi, "{got} outside {iv:?}");
        }
    }

    #[test]
    fn monotonicity_sampler_accepts_and_rejects() {
        let ranges = [("x", 0, 40), ("d", 1, 8)];
        let inc = v("x").ceil_div(v("d")).times(v("d"));
        assert!(sampled_nondecreasing(&inc, "x", &ranges, 300, 11));
        let dec = c(100).minus(v("x"));
        assert!(!sampled_nondecreasing(&dec, "x", &ranges, 300, 11));
    }
}
