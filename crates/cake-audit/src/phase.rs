//! Phase/dominance checker for the executor's shared-buffer protocol.
//!
//! The pipelined executor (cake-core/src/executor.rs) annotates each
//! protocol-relevant statement with a machine-readable comment:
//!
//! ```text
//! // audit: step prologue pack_b slot=first
//! // audit: step block compute slot=cur
//! // audit: step block pack_b slot=next cond=ring-miss
//! // audit: step block barrier cond=has-next
//! ```
//!
//! This module parses those annotations *in source order*, validates the
//! protocol skeleton structurally (every shared-buffer write phase-separated
//! from cross-worker reads by a barrier), then compiles the annotations into
//! per-worker step programs — resolving ring slots with the **same**
//! [`cake_verify::interleave::ring_decisions`] replay the dynamic checker
//! uses — and exhausts every interleaving through
//! [`cake_verify::interleave::explore_programs`]. A missing barrier
//! annotation, a pack aimed at the live slot (`slot=cur`), or a reordered
//! phase all surface as concrete protocol violations.
//!
//! The sense-reversing barrier itself is axiomatized by the model's
//! `Barrier` step; the four code facts that justify the axiom
//! (sense reversal, AcqRel arrival, Release publish, Acquire spin) are
//! pinned by `// audit: fact <name>` annotations in cake-core/src/sync.rs,
//! each checked against the adjacent line of code.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use cake_core::schedule::{BlockCoord, BlockGrid, KFirstSchedule, OuterLoop};
use cake_kernels::pack::split_range;
use cake_verify::interleave::{explore_programs, ring_decisions, BlockInfo, Step};

/// One parsed `// audit: step ...` annotation.
#[derive(Clone, Debug)]
pub struct StepAnn {
    /// 1-based source line of the annotation.
    pub line: usize,
    /// `prologue` or `block`.
    pub phase: String,
    /// `pack_b`, `pack_a`, `compute`, or `barrier`.
    pub op: String,
    /// `key=value` attributes (`slot=`, `cond=`).
    pub attrs: BTreeMap<String, String>,
}

/// Result of the phase check.
#[derive(Debug, Default)]
pub struct PhaseReport {
    /// One line per explored scenario.
    pub scenarios: Vec<String>,
    /// Structural, fact, or interleaving violations.
    pub violations: Vec<String>,
}

impl PhaseReport {
    /// `true` when the protocol passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Extract `// audit: step ...` annotations in source order.
pub fn parse_step_annotations(src: &str) -> Vec<StepAnn> {
    let mut out = Vec::new();
    for (li, line) in src.lines().enumerate() {
        let Some(pos) = line.find("// audit: step ") else { continue };
        let rest = &line[pos + "// audit: step ".len()..];
        let mut words = rest.split_whitespace();
        let (Some(phase), Some(op)) = (words.next(), words.next()) else { continue };
        let mut attrs = BTreeMap::new();
        for w in words {
            if let Some((k, vv)) = w.split_once('=') {
                attrs.insert(k.to_string(), vv.to_string());
            }
        }
        out.push(StepAnn { line: li + 1, phase: phase.to_string(), op: op.to_string(), attrs });
    }
    out
}

/// The barrier code facts required in sync.rs: annotation name and the
/// pattern the adjacent code line must contain.
const SYNC_FACTS: &[(&str, &str)] = &[
    ("sense-reversal", "= !"),
    ("arrive-acqrel", "fetch_add(1, Ordering::AcqRel)"),
    ("publish-release", "Ordering::Release"),
    ("spin-acquire", "load(Ordering::Acquire)"),
    ("counter-reset-relaxed", "store(0, Ordering::Relaxed)"),
    ("park-advertise-seqcst", "fence(Ordering::SeqCst)"),
    ("leader-fence-seqcst", "fence(Ordering::SeqCst)"),
];

/// Check the `// audit: fact <name>` annotations in sync.rs: each required
/// fact must be present exactly once and sit directly above a code line
/// matching its pattern.
fn check_sync_facts(sync_src: &str, violations: &mut Vec<String>) {
    let lines: Vec<&str> = sync_src.lines().collect();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (li, line) in lines.iter().enumerate() {
        let Some(pos) = line.find("// audit: fact ") else { continue };
        let name = line[pos + "// audit: fact ".len()..].trim().to_string();
        let Some(&(_, pattern)) = SYNC_FACTS.iter().find(|(n, _)| *n == name) else {
            violations.push(format!("sync.rs:{}: unknown barrier fact `{name}`", li + 1));
            continue;
        };
        *seen.entry(name.clone()).or_insert(0) += 1;
        // The fact must describe the immediately following code (allowing
        // blank/comment lines between).
        let mut matched = false;
        for follow in lines.iter().skip(li + 1).take(3) {
            let t = follow.trim();
            if t.is_empty() || t.starts_with("//") {
                continue;
            }
            matched = t.contains(pattern);
            break;
        }
        if !matched {
            violations.push(format!(
                "sync.rs:{}: fact `{name}` not backed by code matching `{pattern}`",
                li + 1
            ));
        }
    }
    for (name, _) in SYNC_FACTS {
        match seen.get(*name) {
            None => violations.push(format!(
                "sync.rs: missing barrier fact `{name}` — the barrier axiom is unjustified"
            )),
            Some(1) => {}
            Some(k) => violations.push(format!("sync.rs: barrier fact `{name}` annotated {k} times")),
        }
    }
}

/// Structural validation of the executor's step annotations: both phases
/// present, every cross-worker B-panel write separated from reads by a
/// barrier of the right position, the live slot never a pack target.
fn check_structure(anns: &[StepAnn], violations: &mut Vec<String>) {
    let pro: Vec<&StepAnn> = anns.iter().filter(|a| a.phase == "prologue").collect();
    let blk: Vec<&StepAnn> = anns.iter().filter(|a| a.phase == "block").collect();
    for a in anns {
        if a.phase != "prologue" && a.phase != "block" {
            violations.push(format!("executor.rs:{}: unknown phase `{}`", a.line, a.phase));
        }
    }

    let pos = |steps: &[&StepAnn], op: &str| steps.iter().position(|a| a.op == op);
    match (pos(&pro, "pack_b"), pos(&pro, "barrier")) {
        (Some(pb), Some(bar)) => {
            if bar < pb {
                violations.push(
                    "executor.rs: prologue barrier precedes the prologue pack_b — \
                     block 0 could be computed from an unpacked panel"
                        .to_string(),
                );
            }
        }
        (None, _) => violations.push("executor.rs: missing `prologue pack_b` annotation".into()),
        (_, None) => violations.push(
            "executor.rs: missing `prologue barrier` annotation — the prologue pack \
             is not separated from block 0's reads"
                .to_string(),
        ),
    }

    let compute = pos(&blk, "compute");
    if compute.is_none() {
        violations.push("executor.rs: missing `block compute` annotation".into());
    }
    match pos(&blk, "barrier") {
        None => violations.push(
            "executor.rs: missing `block barrier` annotation — the next-panel pack \
             is not separated from the next block's reads"
                .to_string(),
        ),
        Some(bar) => {
            if let Some(pb) = pos(&blk, "pack_b") {
                if bar < pb {
                    violations.push(
                        "executor.rs: block barrier precedes the next-panel pack_b".to_string(),
                    );
                }
                if let Some(cp) = compute {
                    if pb < cp {
                        violations.push(
                            "executor.rs: next-panel pack_b precedes the current compute"
                                .to_string(),
                        );
                    }
                }
            }
        }
    }
}

/// Compile the annotations into per-worker programs for one schedule replay
/// and exhaust the interleavings.
fn explore_annotations(
    anns: &[StepAnn],
    info: &[BlockInfo],
    p: usize,
    slivers: usize,
    ring: usize,
    max_states: usize,
) -> cake_verify::interleave::InterleaveReport {
    let resolve = |slot: Option<&String>, bi: usize, target: Option<usize>| -> Option<usize> {
        match slot.map(String::as_str) {
            // The faithful executor packs into the replay's chosen victim.
            None | Some("first") | Some("next") => target,
            // Mutant semantics: aim at the slot live for the current block.
            Some("cur") => Some(info[bi].panel),
            Some(_) => target,
        }
    };

    let progs: Vec<Vec<Step>> = (0..p)
        .map(|w| {
            let owned: Vec<usize> = split_range(slivers, p, w).collect();
            let mut prog = Vec::new();
            let pack_all = |prog: &mut Vec<Step>, panel: usize, surface: u16| {
                for &t in &owned {
                    prog.push(Step::PackB { panel: panel as u8, sliver: t as u8, surface });
                }
            };
            for a in anns.iter().filter(|a| a.phase == "prologue") {
                match a.op.as_str() {
                    "pack_b" => {
                        if let Some(target) = resolve(a.attrs.get("slot"), 0, info[0].pack) {
                            pack_all(&mut prog, target, info[0].surface);
                        }
                    }
                    "barrier" => prog.push(Step::Barrier),
                    _ => {} // pack_a is worker-private: not a shared-buffer step
                }
            }
            for (bi, b) in info.iter().enumerate() {
                for a in anns.iter().filter(|a| a.phase == "block") {
                    match a.op.as_str() {
                        "compute" => {
                            // Annotation programs model the pure M-strip
                            // view: every worker reads the whole panel
                            // (the strongest read-before-pack check).
                            prog.push(Step::BeginCompute {
                                panel: b.panel as u8,
                                surface: b.surface,
                                lo: 0,
                                hi: slivers as u8,
                            });
                            prog.push(Step::EndCompute { panel: b.panel as u8 });
                        }
                        "pack_b" if bi + 1 < info.len() => {
                            let next = &info[bi + 1];
                            // cond=ring-miss: the executor only packs when
                            // the replay demands it.
                            if next.pack.is_some() {
                                if let Some(target) = resolve(a.attrs.get("slot"), bi, next.pack) {
                                    pack_all(&mut prog, target, next.surface);
                                }
                            }
                        }
                        "barrier" if bi + 1 < info.len() => prog.push(Step::Barrier),
                        _ => {}
                    }
                }
            }
            prog
        })
        .collect();

    explore_programs(&progs, ring, slivers, max_states)
}

/// Run the full phase check against the two source strings (separated out so
/// tests can feed doctored sources).
pub fn check_with_sources(executor_src: &str, sync_src: &str) -> PhaseReport {
    let mut report = PhaseReport::default();
    let anns = parse_step_annotations(executor_src);
    if anns.is_empty() {
        report
            .violations
            .push("executor.rs: no `// audit: step` annotations found — protocol unmodeled".into());
        return report;
    }
    check_structure(&anns, &mut report.violations);
    check_sync_facts(sync_src, &mut report.violations);

    // Model-check the annotated protocol over the standing scenarios, with
    // slot resolution shared with cake-verify's replay.
    let scenarios: [(usize, BlockGrid, usize); 3] = [
        (2, BlockGrid { mb: 2, kb: 2, nb: 1 }, 400_000),
        (2, BlockGrid { mb: 1, kb: 2, nb: 2 }, 400_000),
        (3, BlockGrid { mb: 2, kb: 2, nb: 1 }, 600_000),
    ];
    for (p, grid, max_states) in scenarios {
        let ring = 2;
        let slivers = p.max(2);
        let coords: Vec<BlockCoord> = KFirstSchedule::with_outer(grid, OuterLoop::NOuter).collect();
        let (info, _, _) = ring_decisions(&coords, ring, false);
        let r = explore_annotations(&anns, &info, p, slivers, ring, max_states);
        for vi in &r.violations {
            report
                .violations
                .push(format!("p={p} {}x{}x{}: {vi}", grid.mb, grid.kb, grid.nb));
        }
        if p == 2 && !r.complete {
            report.violations.push(format!(
                "p={p} {}x{}x{}: state space not exhausted within {max_states}",
                grid.mb, grid.kb, grid.nb
            ));
        }
        report.scenarios.push(format!(
            "p={p} {}x{}x{}: {} states ({}), {} violation(s)",
            grid.mb,
            grid.kb,
            grid.nb,
            r.states,
            if r.complete { "exhausted" } else { "bounded" },
            r.violations.len()
        ));
    }
    report
}

/// Phase-check the real tree rooted at `root`.
pub fn check(root: &Path) -> io::Result<PhaseReport> {
    let executor = fs::read_to_string(root.join("crates/cake-core/src/executor.rs"))?;
    let sync = fs::read_to_string(root.join("crates/cake-core/src/sync.rs"))?;
    Ok(check_with_sources(&executor, &sync))
}

/// Doctor a source string for mutant self-checks: drop every line whose
/// text contains `needle`.
pub fn drop_lines(src: &str, needle: &str) -> String {
    src.lines().filter(|l| !l.contains(needle)).map(|l| format!("{l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A faithful miniature of the executor's annotation set.
    pub const FAITHFUL_EXECUTOR: &str = "\
        // audit: step prologue pack_b slot=first\n\
        // audit: step prologue pack_a\n\
        // audit: step prologue barrier\n\
        // audit: step block compute slot=cur\n\
        // audit: step block pack_b slot=next cond=ring-miss\n\
        // audit: step block pack_a cond=!share_a\n\
        // audit: step block barrier cond=has-next\n";

    /// A faithful miniature of sync.rs's fact set.
    pub const FAITHFUL_SYNC: &str = "\
        // audit: fact sense-reversal\n\
        ws.sense = !my_sense;\n\
        // audit: fact arrive-acqrel\n\
        if self.arrived.0.fetch_add(1, Ordering::AcqRel) + 1 == self.p {\n\
        // audit: fact counter-reset-relaxed\n\
        self.arrived.0.store(0, Ordering::Relaxed);\n\
        // audit: fact publish-release\n\
        self.sense.0.store(my_sense, Ordering::Release);\n\
        // audit: fact spin-acquire\n\
        while self.sense.0.load(Ordering::Acquire) != my_sense {\n\
        // audit: fact park-advertise-seqcst\n\
        fence(Ordering::SeqCst);\n\
        // audit: fact leader-fence-seqcst\n\
        fence(Ordering::SeqCst);\n";

    #[test]
    fn faithful_annotations_pass() {
        let r = check_with_sources(FAITHFUL_EXECUTOR, FAITHFUL_SYNC);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.scenarios.len(), 3);
    }

    #[test]
    fn missing_block_barrier_annotation_is_caught() {
        let doctored = drop_lines(FAITHFUL_EXECUTOR, "block barrier");
        let r = check_with_sources(&doctored, FAITHFUL_SYNC);
        assert!(
            r.violations.iter().any(|v| v.contains("missing `block barrier`")),
            "{:?}",
            r.violations
        );
        // The model agrees: without the rotation barrier the pack races
        // the readers.
        assert!(
            r.violations.iter().any(|v| v.contains("read before pack") || v.contains("still computing")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn missing_prologue_barrier_annotation_is_caught() {
        let doctored = drop_lines(FAITHFUL_EXECUTOR, "prologue barrier");
        let r = check_with_sources(&doctored, FAITHFUL_SYNC);
        assert!(!r.ok());
    }

    #[test]
    fn pack_into_live_slot_is_caught_by_the_model() {
        let doctored = FAITHFUL_EXECUTOR.replace("pack_b slot=next", "pack_b slot=cur");
        let r = check_with_sources(&doctored, FAITHFUL_SYNC);
        assert!(
            r.violations.iter().any(|v| v.contains("still computing")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn missing_sync_fact_is_caught() {
        let doctored = drop_lines(FAITHFUL_SYNC, "fact publish-release");
        let r = check_with_sources(FAITHFUL_EXECUTOR, &doctored);
        assert!(
            r.violations.iter().any(|v| v.contains("missing barrier fact `publish-release`")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn fact_with_wrong_adjacent_code_is_caught() {
        let doctored = FAITHFUL_SYNC.replace("Ordering::Release", "Ordering::Relaxed");
        let r = check_with_sources(FAITHFUL_EXECUTOR, &doctored);
        assert!(
            r.violations.iter().any(|v| v.contains("not backed by code")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn unannotated_executor_is_rejected() {
        let r = check_with_sources("fn main() {}\n", FAITHFUL_SYNC);
        assert!(!r.ok());
    }
}
