//! Atomics-ordering checker for the barrier/pool protocol.
//!
//! Extracts every atomic load/store/RMW/fence in the workspace's
//! non-test sources together with its `Ordering`, then checks the
//! inventory against the **declared happens-before protocol** of the
//! sense-reversing barrier (cake-core/src/sync.rs):
//!
//! * `sense` — the release edge: every store `Release`, every load
//!   `Acquire`, and the two must both exist (a Release store with no
//!   Acquire observer, or vice versa, is a broken pairing);
//! * `arrived` — arrivals are `AcqRel` RMWs (each arrival publishes the
//!   worker's writes and the leader's arrival acquires them all); the
//!   leader's counter reset may be `Relaxed` *only* under the
//!   `counter-reset-relaxed` fact anchor that argues why;
//! * `parked` — the Dekker half of the park handshake: every access
//!   `SeqCst`, fences `SeqCst` and each pinned by a named
//!   `// audit: fact` anchor (the SC-order argument lives in the module
//!   docs; the anchor keeps code and argument from drifting apart);
//! * everything else (stats counters, traffic tallies) must be
//!   `Relaxed`-only — a stronger ordering on a non-protocol atomic means
//!   either an undeclared protocol or cargo-culted synchronization.
//!
//! The static spec is then **cross-validated against cake-verify's
//! interleave step machine**: the happens-before edge the `sense`
//! Release/Acquire pairing provides is exactly the model's `Barrier`
//! step, so the machine must (a) find the faithful barrier program
//! race-free, (b) exhibit a race when the edge is removed (what a
//! `Relaxed` demotion would do), and (c) catch the lost wakeup that the
//! `parked` SeqCst fences exclude (via the `ParkLostWakeup` barrier
//! model). A model that cannot show the failure modes would make the
//! ordering rules unfalsifiable, so that too fails the audit.
//!
//! Extraction is line-based on the lexer's code channel (strings and
//! comments never match) and assumes the workspace style of one atomic
//! op per line with its `Ordering::` argument on the same line — ops
//! without an `Ordering::` token on the line (e.g. `slice.swap(i, j)`)
//! are not atomic ops and are ignored.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{self, SourceFile};
use crate::scan::{lex, LexedLine};
use cake_verify::interleave::{explore_programs, explore_programs_with, BarrierModel, Step};

/// Method names that make a line an atomic operation when followed by an
/// `Ordering::` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One extracted atomic operation (or fence).
#[derive(Clone, Debug)]
pub struct AtomicOp {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Field name of the atomic (`sense`, `arrived`, `pack_total`, ...);
    /// `<fence>` for fences.
    pub receiver: String,
    /// `load` / `store` / `fetch_add` / ... / `fence`.
    pub op: String,
    /// First `Ordering::` argument on the line.
    pub ordering: String,
    /// `// audit: fact <name>` anchors covering the line.
    pub facts: Vec<String>,
}

impl AtomicOp {
    /// `true` for read-modify-write operations.
    fn is_rmw(&self) -> bool {
        matches!(
            self.op.as_str(),
            "swap"
                | "fetch_add"
                | "fetch_sub"
                | "fetch_and"
                | "fetch_or"
                | "fetch_xor"
                | "fetch_max"
                | "fetch_min"
                | "compare_exchange"
                | "compare_exchange_weak"
        )
    }
}

/// Operation class a protocol rule constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Plain `store`.
    Store,
    /// Plain `load`.
    Load,
    /// Any read-modify-write.
    Rmw,
}

/// One rule of the declared happens-before protocol.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolRule {
    /// Atomic field name the rule constrains.
    pub atomic: &'static str,
    /// Which operations it applies to.
    pub class: OpClass,
    /// The required ordering.
    pub ordering: &'static str,
    /// Fact anchor that must cover the line (Relaxed-on-protocol needs a
    /// recorded argument).
    pub fact: Option<&'static str>,
}

/// The barrier protocol: which orderings each protocol atomic may use.
/// An operation class with no rule here (e.g. a `load` of `arrived`) is a
/// protocol violation outright — the spec is exhaustive by design.
pub const PROTOCOL: &[ProtocolRule] = &[
    ProtocolRule { atomic: "sense", class: OpClass::Store, ordering: "Release", fact: None },
    ProtocolRule { atomic: "sense", class: OpClass::Load, ordering: "Acquire", fact: None },
    ProtocolRule { atomic: "arrived", class: OpClass::Rmw, ordering: "AcqRel", fact: None },
    ProtocolRule {
        atomic: "arrived",
        class: OpClass::Store,
        ordering: "Relaxed",
        fact: Some("counter-reset-relaxed"),
    },
    ProtocolRule { atomic: "parked", class: OpClass::Rmw, ordering: "SeqCst", fact: None },
    ProtocolRule { atomic: "parked", class: OpClass::Load, ordering: "SeqCst", fact: None },
];

/// Result of the atomics pass.
#[derive(Debug, Default)]
pub struct AtomicsReport {
    /// Rendered inventory (`file:line receiver.op Ordering`).
    pub ops: Vec<String>,
    /// Per-protocol-atomic summaries.
    pub protocol: Vec<String>,
    /// Model cross-validation scenario lines.
    pub scenarios: Vec<String>,
    /// Violations (non-empty fails the audit).
    pub violations: Vec<String>,
}

impl AtomicsReport {
    /// `true` when the inventory matches the protocol and the model
    /// confirms both the guarantee and its failure modes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Extract the atomic-field name left of the `.` at `dot`: walk back over
/// the receiver path (`self.arrived.0`) and return the last non-numeric,
/// non-`self` segment.
fn receiver_name(code: &str, dot: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = dot;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..dot]
        .split('.')
        .rfind(|s| !s.is_empty() && *s != "self" && !s.chars().all(|c| c.is_ascii_digit()))
        .unwrap_or("?")
        .to_string()
}

/// First `Ordering::<word>` at or after `from` on the code channel.
fn ordering_after(code: &str, from: usize) -> Option<String> {
    let pos = code[from..].find("Ordering::")? + from + "Ordering::".len();
    let word: String =
        code[pos..].chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    (!word.is_empty()).then_some(word)
}

/// `// audit: fact <name>` anchors covering line `li`.
fn facts_for_line(lexed: &[LexedLine], li: usize) -> Vec<String> {
    let mut out = Vec::new();
    for c in callgraph::audit_comments_for_line(lexed, li) {
        let Some(p) = c.find("audit:") else { continue };
        let mut words = c[p + 6..].split_whitespace();
        if words.next() == Some("fact") {
            if let Some(name) = words.next() {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Extract every atomic op and fence from the non-test regions of `files`
/// (pre-filtered to [`callgraph::graph_files`] by the caller or here).
pub fn extract_ops(files: &[SourceFile]) -> Vec<AtomicOp> {
    let mut out = Vec::new();
    for f in files {
        if !callgraph::in_graph(&f.path) {
            continue;
        }
        let lexed = lex(&f.src);
        let mut depth: i64 = 0;
        // Depth at which a `#[cfg(test)] mod` opened; lines inside are
        // skipped (test atomics deliberately use blunt SeqCst).
        let mut skip_above: Option<i64> = None;
        let mut pending_test_attr = false;
        for (li, ll) in lexed.iter().enumerate() {
            let code = ll.code.as_str();
            let trimmed = code.trim();
            if trimmed.contains("#[cfg(test)]") {
                pending_test_attr = true;
            }
            let is_mod = trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ");
            if skip_above.is_none() && pending_test_attr && is_mod && trimmed.contains('{') {
                skip_above = Some(depth);
            }
            if !trimmed.is_empty() && !trimmed.starts_with("#[") && !trimmed.starts_with("#!") && !is_mod
            {
                pending_test_attr = false;
            }

            if skip_above.is_none() {
                for m in ATOMIC_METHODS {
                    let needle = format!(".{m}(");
                    let mut from = 0usize;
                    while let Some(rel) = code[from..].find(&needle) {
                        let at = from + rel;
                        if let Some(ordering) = ordering_after(code, at + needle.len()) {
                            out.push(AtomicOp {
                                file: f.path.clone(),
                                line: li + 1,
                                receiver: receiver_name(code, at),
                                op: (*m).to_string(),
                                ordering,
                                facts: facts_for_line(&lexed, li),
                            });
                        }
                        from = at + needle.len();
                    }
                }
                let mut from = 0usize;
                while let Some(rel) = code[from..].find("fence(") {
                    let at = from + rel;
                    let boundary = at == 0
                        || !code[..at]
                            .chars()
                            .next_back()
                            .is_some_and(|c| c.is_alphanumeric() || c == '_');
                    if boundary {
                        if let Some(ordering) = ordering_after(code, at) {
                            out.push(AtomicOp {
                                file: f.path.clone(),
                                line: li + 1,
                                receiver: "<fence>".to_string(),
                                op: "fence".to_string(),
                                ordering,
                                facts: facts_for_line(&lexed, li),
                            });
                        }
                    }
                    from = at + "fence(".len();
                }
            }

            for ch in code.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if skip_above.is_some_and(|d| depth <= d) {
                            skip_above = None;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// Check an extracted inventory against [`PROTOCOL`].
pub fn check_ops(ops: &[AtomicOp], report: &mut AtomicsReport) {
    let protocol_atomics: BTreeSet<&str> = PROTOCOL.iter().map(|r| r.atomic).collect();
    let mut by_receiver: BTreeMap<&str, Vec<&AtomicOp>> = BTreeMap::new();
    for op in ops {
        report
            .ops
            .push(format!("{}:{} {}.{} {}", op.file, op.line, op.receiver, op.op, op.ordering));
        by_receiver.entry(op.receiver.as_str()).or_default().push(op);
    }

    // Protocol atomics: every op must match an explicit rule.
    for name in &protocol_atomics {
        let Some(ops) = by_receiver.get(*name) else {
            report.violations.push(format!(
                "protocol atomic `{name}` never seen — the declared protocol has drifted \
                 from the sources"
            ));
            continue;
        };
        for op in ops {
            let class = if op.is_rmw() {
                OpClass::Rmw
            } else if op.op == "store" {
                OpClass::Store
            } else {
                OpClass::Load
            };
            let Some(rule) =
                PROTOCOL.iter().find(|r| r.atomic == *name && r.class == class)
            else {
                report.violations.push(format!(
                    "{}:{}: `{name}.{}` has no rule in the declared protocol — extend the \
                     spec or remove the operation",
                    op.file, op.line, op.op
                ));
                continue;
            };
            if op.ordering != rule.ordering {
                report.violations.push(format!(
                    "{}:{}: `{name}.{}` uses Ordering::{} but the protocol requires {} — \
                     a demoted ordering breaks the barrier's happens-before contract",
                    op.file, op.line, op.op, op.ordering, rule.ordering
                ));
            }
            if op.ordering == "Relaxed" && !op.facts.iter().any(|f| Some(f.as_str()) == rule.fact)
            {
                report.violations.push(format!(
                    "{}:{}: Relaxed on protocol atomic `{name}` without the justifying \
                     `// audit: fact {}` anchor",
                    op.file,
                    op.line,
                    rule.fact.unwrap_or("<name>")
                ));
            }
        }
        report.protocol.push(format!("{name}: {} op(s) match the declared rules", ops.len()));
    }

    // Pairing: a Release store needs an Acquire observer and vice versa.
    for (name, ops) in &by_receiver {
        if *name == "<fence>" {
            continue;
        }
        let rel_store = ops.iter().any(|o| o.op == "store" && o.ordering == "Release");
        let acq_load =
            ops.iter().any(|o| o.op == "load" && matches!(o.ordering.as_str(), "Acquire" | "SeqCst"));
        let publishes = ops.iter().any(|o| {
            matches!(o.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
                && (o.op == "store" || o.is_rmw())
        });
        if rel_store && !acq_load {
            report.violations.push(format!(
                "`{name}`: Release store with no Acquire load on the same atomic — \
                 the release publishes to nobody"
            ));
        }
        if acq_load && !publishes {
            report.violations.push(format!(
                "`{name}`: Acquire load with no Release/AcqRel publisher on the same atomic"
            ));
        }
    }

    // Fences: SeqCst only, each pinned by a fact anchor.
    for op in ops.iter().filter(|o| o.op == "fence") {
        if op.ordering != "SeqCst" {
            report.violations.push(format!(
                "{}:{}: fence(Ordering::{}) — the park handshake's Dekker argument needs \
                 SeqCst fences",
                op.file, op.line, op.ordering
            ));
        }
        if op.facts.is_empty() {
            report.violations.push(format!(
                "{}:{}: fence without a `// audit: fact` anchor naming its SC argument",
                op.file, op.line
            ));
        }
    }

    // Non-protocol atomics must be Relaxed-only: anything stronger is an
    // undeclared protocol.
    for (name, ops) in &by_receiver {
        if protocol_atomics.contains(*name) || *name == "<fence>" {
            continue;
        }
        for op in ops.iter() {
            if op.ordering != "Relaxed" {
                report.violations.push(format!(
                    "{}:{}: non-protocol atomic `{name}` uses Ordering::{} — stats and \
                     counters are Relaxed by contract; declare a protocol rule if this \
                     atomic now synchronizes",
                    op.file, op.line, op.ordering
                ));
            }
        }
    }
}

/// Cross-validate the static ordering rules against the interleave step
/// machine: the model must confirm the guarantee *and* exhibit the failure
/// mode each rule excludes.
pub fn model_cross_check(report: &mut AtomicsReport) {
    let program = |with_barrier: bool| -> Vec<Vec<Step>> {
        (0..2u8)
            .map(|w| {
                let mut prog = vec![Step::PackB { panel: 0, sliver: w, surface: 1 }];
                if with_barrier {
                    prog.push(Step::Barrier);
                }
                prog.push(Step::BeginCompute { panel: 0, surface: 1, lo: 0, hi: 2 });
                prog.push(Step::EndCompute { panel: 0 });
                prog
            })
            .collect()
    };

    // (a) With the edge (sense Release store -> Acquire load, modeled as
    // the Barrier step) the cooperative pack/compute program is race-free.
    let kept = explore_programs(&program(true), 1, 2, 100_000);
    if !kept.violations.is_empty() {
        report.violations.push(format!(
            "model: the faithful barrier program races: {}",
            kept.violations[0]
        ));
    }
    report.scenarios.push(format!(
        "release-acquire edge kept: {} states, {} violation(s)",
        kept.states,
        kept.violations.len()
    ));

    // (b) Without it (what a Relaxed demotion of `sense` would permit) the
    // model must find the read-before-pack race — otherwise the ordering
    // rules are unfalsifiable and a green check means nothing.
    let dropped = explore_programs(&program(false), 1, 2, 100_000);
    if dropped.violations.is_empty() {
        report.violations.push(
            "model: removing the release-acquire edge exhibits no race — the step machine \
             cannot falsify the ordering rules"
                .to_string(),
        );
    }
    report.scenarios.push(format!(
        "release-acquire edge dropped: {} states, {} violation(s)",
        dropped.states,
        dropped.violations.len()
    ));

    // (c) The park handshake: parking waiters are woken under the faithful
    // model, and the lost-wakeup mutant (what losing the `parked` SeqCst
    // fence pairing would permit) must deadlock.
    let parked = explore_programs_with(&program(true), 1, 2, 100_000, BarrierModel::Park);
    if !parked.violations.is_empty() {
        report.violations.push(format!(
            "model: the park-mode barrier program fails: {}",
            parked.violations[0]
        ));
    }
    let lost = explore_programs_with(&program(true), 1, 2, 100_000, BarrierModel::ParkLostWakeup);
    if !lost.violations.iter().any(|v| v.contains("deadlock")) {
        report.violations.push(
            "model: the lost-wakeup mutant does not deadlock — the step machine cannot \
             falsify the park-fence rules"
                .to_string(),
        );
    }
    report.scenarios.push(format!(
        "park handshake: faithful {} violation(s), lost-wakeup mutant {} (deadlock expected)",
        parked.violations.len(),
        lost.violations.len()
    ));
}

/// Run the full pass over `files`.
pub fn check(files: &[SourceFile]) -> AtomicsReport {
    let mut report = AtomicsReport::default();
    let ops = extract_ops(files);
    check_ops(&ops, &mut report);
    model_cross_check(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A faithful miniature of sync.rs's atomics.
    const FAITHFUL: &str = "\
        fn wait(&self) {\n\
            if self.arrived.0.fetch_add(1, Ordering::AcqRel) + 1 == self.p {\n\
                // audit: fact counter-reset-relaxed\n\
                self.arrived.0.store(0, Ordering::Relaxed);\n\
                self.sense.0.store(my_sense, Ordering::Release);\n\
            }\n\
            while self.sense.0.load(Ordering::Acquire) != my_sense {}\n\
            self.parked.fetch_add(1, Ordering::SeqCst);\n\
            // audit: fact park-advertise-seqcst\n\
            fence(Ordering::SeqCst);\n\
            self.parked.load(Ordering::SeqCst);\n\
            self.parked.fetch_sub(1, Ordering::SeqCst);\n\
            stats.fetch_add(1, Ordering::Relaxed);\n\
        }\n";

    fn run_src(src: &str) -> AtomicsReport {
        check(&[SourceFile { path: "crates/x/src/sync.rs".into(), src: src.into() }])
    }

    #[test]
    fn faithful_protocol_passes() {
        let r = run_src(FAITHFUL);
        assert!(r.ok(), "{:?}", r.violations);
        assert!(r.ops.len() >= 8, "{:?}", r.ops);
        assert_eq!(r.scenarios.len(), 3);
    }

    #[test]
    fn acqrel_demotion_is_caught() {
        let r = run_src(&FAITHFUL.replace("Ordering::AcqRel", "Ordering::Relaxed"));
        assert!(
            r.violations.iter().any(|v| v.contains("requires AcqRel")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn release_demotion_breaks_both_rule_and_pairing() {
        let r = run_src(&FAITHFUL.replace("Ordering::Release", "Ordering::Relaxed"));
        assert!(
            r.violations.iter().any(|v| v.contains("requires Release")),
            "{:?}",
            r.violations
        );
        assert!(
            r.violations.iter().any(|v| v.contains("no Release/AcqRel publisher")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn relaxed_reset_needs_its_fact_anchor() {
        let r = run_src(&FAITHFUL.replace("// audit: fact counter-reset-relaxed\n", ""));
        assert!(
            r.violations.iter().any(|v| v.contains("counter-reset-relaxed")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn seqcst_park_demotion_and_unfenced_fence_are_caught() {
        let demoted = run_src(&FAITHFUL.replace(
            ".fetch_add(1, Ordering::SeqCst)",
            ".fetch_add(1, Ordering::Relaxed)",
        ));
        assert!(
            demoted.violations.iter().any(|v| v.contains("requires SeqCst")),
            "{:?}",
            demoted.violations
        );

        let unfenced = run_src(&FAITHFUL.replace("// audit: fact park-advertise-seqcst\n", ""));
        assert!(
            unfenced.violations.iter().any(|v| v.contains("fence without")),
            "{:?}",
            unfenced.violations
        );

        let weak = run_src(&FAITHFUL.replace("fence(Ordering::SeqCst)", "fence(Ordering::Release)"));
        assert!(
            weak.violations.iter().any(|v| v.contains("SeqCst fences")),
            "{:?}",
            weak.violations
        );
    }

    #[test]
    fn strong_ordering_on_a_stats_counter_is_flagged() {
        let r = run_src(&FAITHFUL.replace(
            "stats.fetch_add(1, Ordering::Relaxed)",
            "stats.fetch_add(1, Ordering::SeqCst)",
        ));
        assert!(
            r.violations.iter().any(|v| v.contains("non-protocol atomic `stats`")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn missing_protocol_atomic_is_spec_drift() {
        let r = run_src("fn f() { x.store(1, Ordering::Relaxed); }\n");
        assert!(
            r.violations.iter().any(|v| v.contains("`sense` never seen")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn test_module_atomics_are_ignored() {
        let src = format!(
            "{FAITHFUL}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ pre.fetch_add(1, Ordering::SeqCst); }}\n}}\n"
        );
        let r = run_src(&src);
        assert!(r.ok(), "{:?}", r.violations);
        assert!(!r.ops.iter().any(|o| o.contains("pre.")), "{:?}", r.ops);
    }

    #[test]
    fn non_atomic_swap_without_ordering_is_ignored() {
        let src = format!("{FAITHFUL}\nfn s(v: &mut [u8]) {{ v.swap(0, 1); }}\n");
        let r = run_src(&src);
        assert!(r.ok(), "{:?}", r.violations);
        assert!(!r.ops.iter().any(|o| o.contains("v.swap")), "{:?}", r.ops);
    }

    #[test]
    fn receiver_names_strip_self_and_tuple_fields() {
        assert_eq!(receiver_name("self.arrived.0", "self.arrived.0".len()), "arrived");
        assert_eq!(receiver_name("pack_total", "pack_total".len()), "pack_total");
        assert_eq!(receiver_name("b.sense.0", "b.sense.0".len()), "sense");
    }

    #[test]
    fn real_sync_sources_satisfy_the_protocol() {
        let root = crate::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let files = callgraph::read_tree(&root).expect("read tree");
        let r = check(&files);
        assert!(r.ok(), "{:?}", r.violations);
        // The whole barrier inventory: arrive, reset, publish, 2 spins,
        // 3 parked ops, 2 fences, plus Relaxed stats.
        assert!(r.ops.len() >= 10, "{:?}", r.ops);
    }
}
