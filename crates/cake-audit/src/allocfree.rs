//! Static warm-path allocation-freedom pass.
//!
//! From every fn anchored `// audit: warm` (executor run loop, pack
//! routines, microkernels, the cake-dnn forward/quant GEMM paths), walk
//! the [`crate::callgraph`] closure and prove that no reachable line uses
//! an allocation-capable construct. This turns the runtime
//! `ExecStats.allocations == 0` counter — which only covers the shapes we
//! happen to run — into a for-all-shapes static guarantee, the property
//! ROADMAP item 1 (`cake-serve`) needs before a serving layer can sit on
//! the warm path.
//!
//! Escape hatches are explicit and auditable:
//! * fn-level `// audit: cold` — the fn is setup/error-path code by
//!   contract (e.g. `GemmWorkspace::prepare`'s guarded growth, staging
//!   helpers in cake-dnn); traversal does not descend into it;
//! * line-level `// audit: cold <reason>` — the allocation (or the call
//!   leading to one) on that line cannot run on the warm path, with the
//!   reason recorded next to the code.
//!
//! Known holes of the name-based analysis, covered by the runtime
//! counting-allocator cross-check in `cake-verify/tests/warm_alloc.rs`:
//! `std` internals that allocate without a deny-listed token (channel
//! `send` heap-allocates a node — the p=1 inline pool path is the one the
//! zero-alloc claim is made for), and function-pointer dispatch
//! (`Ukr::call`) whose targets are raw-pointer microkernels.

use std::collections::{BTreeMap, VecDeque};

use crate::callgraph::{self, CallGraph, SourceFile};

/// Allocation-capable constructs. Method patterns (leading `.`) match
/// verbatim; word patterns additionally require a non-identifier char
/// before the match (so `buf.push(` matches `.push(` but `unpushed` never
/// matches).
pub const DENY: &[&str] = &[
    ".push(",
    ".push_str(",
    ".extend(",
    ".reserve(",
    ".reserve_exact(",
    ".collect(",
    ".collect::<",
    ".to_vec(",
    ".to_string(",
    ".to_owned(",
    "with_capacity",
    "Box::new",
    "Arc::new",
    "Rc::new",
    "String::from",
    "format!",
    "vec!",
    "alloc::alloc",
    "alloc_zeroed",
];

/// Does this code channel hit a deny pattern? Returns the pattern.
fn deny_hit(code: &str) -> Option<&'static str> {
    for pat in DENY {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(pat) {
            let at = from + rel;
            let boundary_ok = if pat.starts_with('.') {
                true
            } else {
                at == 0
                    || !code[..at]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
            };
            if boundary_ok {
                return Some(pat);
            }
            from = at + 1;
        }
    }
    None
}

/// Result of the alloc-freedom pass.
#[derive(Debug, Default)]
pub struct AllocReport {
    /// Warm roots found (`file:line qual`).
    pub roots: Vec<String>,
    /// Number of fns in the warm closure.
    pub reachable: usize,
    /// Cold fn-level cutoffs taken during traversal.
    pub cold_fn_skips: usize,
    /// Line-level cold escapes honored.
    pub cold_line_escapes: usize,
    /// Violations (non-empty fails the audit).
    pub violations: Vec<String>,
}

impl AllocReport {
    /// `true` when the warm closure is allocation-free.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Render a short root->..->fn chain for a violation message.
fn chain(g: &CallGraph, parents: &BTreeMap<usize, usize>, mut idx: usize) -> String {
    let mut names = vec![g.fns[idx].qual.clone()];
    while let Some(&p) = parents.get(&idx) {
        names.push(g.fns[p].qual.clone());
        idx = p;
    }
    names.reverse();
    names.join(" -> ")
}

/// Run the pass over an extracted graph.
pub fn check_graph(g: &CallGraph) -> AllocReport {
    let mut report = AllocReport::default();

    let mut queue = VecDeque::new();
    let mut visited = vec![false; g.fns.len()];
    let mut parents: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        if f.anchors.contains("warm") {
            report.roots.push(format!("{}:{} {}", f.file, f.line, f.qual));
            if f.anchors.contains("cold") {
                report
                    .violations
                    .push(format!("{}:{}: `{}` is anchored both warm and cold", f.file, f.line, f.qual));
            }
            queue.push_back(i);
            visited[i] = true;
        }
    }
    if report.roots.is_empty() {
        report
            .violations
            .push("no `// audit: warm` roots found — the warm closure is vacuous".to_string());
        return report;
    }

    while let Some(idx) = queue.pop_front() {
        report.reachable += 1;
        let fun = &g.fns[idx];
        let Some(lexed) = g.lexed.get(&fun.file) else { continue };
        if let Some((s, e)) = fun.body {
            for li in s..=e.min(lexed.len().saturating_sub(1)) {
                if let Some(pat) = deny_hit(&lexed[li].code) {
                    if callgraph::line_escape(lexed, li, "cold") {
                        report.cold_line_escapes += 1;
                    } else {
                        report.violations.push(format!(
                            "{}:{}: allocation-capable `{}` on the warm path (in `{}`, reached via {})",
                            fun.file,
                            li + 1,
                            pat,
                            fun.qual,
                            chain(g, &parents, idx)
                        ));
                    }
                }
            }
        }
        for call in &fun.calls {
            let li = call.line - 1;
            if li < lexed.len() && callgraph::line_escape(lexed, li, "cold") {
                report.cold_line_escapes += 1;
                continue;
            }
            for t in g.resolve(fun, call) {
                if visited[t] {
                    continue;
                }
                if g.fns[t].anchors.contains("cold") {
                    report.cold_fn_skips += 1;
                    continue;
                }
                visited[t] = true;
                parents.insert(t, idx);
                queue.push_back(t);
            }
        }
    }
    report
}

/// Extract the graph from `files` (pre-filtered to [`callgraph::graph_files`])
/// and run the pass.
pub fn check(files: &[SourceFile]) -> AllocReport {
    check_graph(&callgraph::extract(files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> AllocReport {
        check(&[SourceFile { path: "crates/x/src/lib.rs".into(), src: src.into() }])
    }

    #[test]
    fn clean_warm_closure_passes() {
        let r = run(
            "// audit: warm\n\
             fn hot_loop(buf: &mut [f32]) { inner(buf); }\n\
             fn inner(buf: &mut [f32]) { for v in buf.iter_mut() { *v += 1.0; } }\n",
        );
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.reachable, 2);
    }

    #[test]
    fn reachable_allocation_is_flagged_with_a_chain() {
        let r = run(
            "// audit: warm\n\
             fn hot_loop() { helper(); }\n\
             fn helper() { stage(); }\n\
             fn stage() { let mut v = Vec::new(); v.push(1); }\n",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains(".push("), "{:?}", r.violations);
        assert!(r.violations[0].contains("hot_loop -> helper -> stage"), "{:?}", r.violations);
    }

    #[test]
    fn cold_fn_anchor_cuts_traversal() {
        let r = run(
            "// audit: warm\n\
             fn hot_loop() { prepare(); }\n\
             // audit: cold guarded growth, no-op after warmup\n\
             fn prepare() { let mut v = Vec::with_capacity(4); v.push(1); }\n",
        );
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.cold_fn_skips, 1);
    }

    #[test]
    fn cold_line_escape_exempts_the_call_site() {
        let r = run(
            "// audit: warm\n\
             fn forward() {\n\
                 // audit: cold output tensor, allocated per layer by contract\n\
                 let y = make_output();\n\
                 use_output(y);\n\
             }\n\
             fn make_output() -> usize { let v = vec![0u8; 4]; v.len() }\n\
             fn use_output(_y: usize) {}\n",
        );
        assert!(r.ok(), "{:?}", r.violations);
        assert!(r.cold_line_escapes >= 1);
    }

    #[test]
    fn direct_denied_tokens_in_a_warm_body_are_flagged() {
        for (src_line, pat) in [
            ("let s = format!(\"x{}\", 1);", "format!"),
            ("let b = Box::new(3usize);", "Box::new"),
            ("let v = data.to_vec();", ".to_vec("),
            ("let v: Vec<u32> = it.collect();", ".collect("),
            ("let mut v = Vec::with_capacity(8);", "with_capacity"),
        ] {
            let r = run(&format!("// audit: warm\nfn hot(data: &[u32]) {{ {src_line} }}\n"));
            assert_eq!(r.violations.len(), 1, "{src_line}: {:?}", r.violations);
            assert!(r.violations[0].contains(pat), "{src_line}: {:?}", r.violations);
        }
    }

    #[test]
    fn word_boundaries_prevent_false_positives() {
        let r = run(
            "// audit: warm\n\
             fn hot(unpushed_vec_count: usize) -> usize { unpushed_vec_count + 1 }\n",
        );
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn no_roots_is_a_vacuity_violation() {
        let r = run("fn plain() { let v = vec![1]; drop(v); }\n");
        assert!(!r.ok());
        assert!(r.violations[0].contains("vacuous"));
    }

    #[test]
    fn real_warm_paths_are_allocation_free() {
        let root = crate::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let files = callgraph::read_tree(&root).expect("read tree");
        let r = check(&files);
        assert!(r.ok(), "{}", r.violations.join("\n"));
        assert!(!r.roots.is_empty(), "warm roots must exist in the real tree");
        assert!(r.reachable >= 10, "warm closure too small: {}", r.reachable);
        // The anchored entry points of every crate with a warm path: the
        // CAKE executor, the GOTO comparison loop, and the dnn forward /
        // quantized-forward paths.
        for want in
            ["execute_with_stats_in", "loops5.rs", "Conv2d::forward", "quant_gemm_requant"]
        {
            assert!(
                r.roots.iter().any(|root| root.contains(want)),
                "expected a warm root matching {want}; roots: {:?}",
                r.roots
            );
        }
    }

    #[test]
    fn macro_generated_fns_participate() {
        let r = run(
            "macro_rules! make {\n\
                 ($name:ident) => { pub fn $name() { let mut v = Vec::new(); v.push(1); } };\n\
             }\n\
             make!(gen_alloc);\n\
             // audit: warm\n\
             fn hot() { gen_alloc(); }\n",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].contains(".push("), "{:?}", r.violations);
    }
}
