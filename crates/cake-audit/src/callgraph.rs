//! Lightweight whole-workspace call-graph extractor.
//!
//! Built on the [`crate::scan`] lexer: every `.rs` file under the crate
//! `src/` trees is lexed into code/comment channels, then a token walk
//! recovers function definitions (qualified by their `impl` type), the
//! `// audit:` anchors attached to them, and every call site inside their
//! bodies. The graph is deliberately *name-based and conservative*:
//!
//! * a qualified call `Type::name(..)` resolves to the matching
//!   `impl Type { fn name }` when one exists; a miss on a concrete type
//!   name is treated as external or compiler-derived (no edge, so
//!   `Vec::new` does not alias every in-tree `fn new`), while
//!   module-qualified (`sys::pin`) and generic-param (`T::best`) calls
//!   fall back to every `name`;
//! * a method or bare call `x.name(..)` / `name(..)` resolves to **every**
//!   workspace fn of that name (trait dispatch is over-approximated by
//!   resolving to all same-named impls);
//! * a call whose name matches no definition but is passed as an argument
//!   to a top-level macro invocation resolves to every `$`-templated fn
//!   defined inside `macro_rules!` bodies (macro-generated fns stay
//!   visible to the dataflow passes).
//!
//! Over-approximation is the right failure mode for the consumers
//! ([`crate::allocfree`], [`crate::panicfree`]): reaching too many fns can
//! only produce a violation that an explicit `// audit: cold` anchor then
//! documents away; it can never hide one. Known holes (calls through `std`
//! such as `mpsc::Sender::send`, and function-pointer dispatch like
//! `Ukr::call`) are documented in DESIGN.md §13 and covered by the runtime
//! counting-allocator cross-check in cake-verify.
//!
//! `#[cfg(test)] mod` bodies are skipped entirely, and the vendored
//! `crates/proptest` tree plus bench/example/integration-test scaffolding
//! are excluded from the graph (see [`graph_files`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scan::{lex, LexedLine};

/// One workspace source file, path workspace-relative with `/` separators.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// Full file contents.
    pub src: String,
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read every `.rs` file under `root` (skipping `target/` and dot dirs)
/// into memory, sorted by path.
pub fn read_tree(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|cp| cp.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&f)?;
        out.push(SourceFile { path: rel, src });
    }
    Ok(out)
}

/// Does this path participate in the call graph? Crate `src/` trees only:
/// the vendored third-party `crates/proptest` is excluded (its internals
/// are not ours to anchor), as are benches, examples, and integration
/// tests (never reachable from a warm/hot production root).
pub fn in_graph(path: &str) -> bool {
    path.starts_with("crates/")
        && !path.starts_with("crates/proptest/")
        && path.split('/').nth(2) == Some("src")
}

/// Filter a file set down to the call-graph participants.
pub fn graph_files(files: &[SourceFile]) -> Vec<SourceFile> {
    files.iter().filter(|f| in_graph(&f.path)).cloned().collect()
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line.
    pub line: usize,
    /// Callee name (`push`, `pack_b_into`, `format!` for macros).
    pub name: String,
    /// Last path segment before the name for qualified calls
    /// (`SpinBarrier` in `SpinBarrier::new(..)`), `None` for bare and
    /// method calls.
    pub qual: Option<String>,
    /// The call path is rooted at `std::` / `core::` / `alloc::`
    /// (`std::array::from_fn`): never resolves to a workspace fn.
    pub std_root: bool,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Bare name (`$name` for macro-templated fns).
    pub name: String,
    /// `Type::name` inside an `impl Type`, else the bare name.
    pub qual: String,
    /// Anchor tokens (`warm` / `hot` / `cold`) from `// audit:` comments
    /// on or immediately above the definition.
    pub anchors: BTreeSet<String>,
    /// 0-based inclusive body line range (`None` for bodyless trait
    /// method declarations).
    pub body: Option<(usize, usize)>,
    /// Calls inside the body, in source order.
    pub calls: Vec<CallSite>,
    /// Defined inside a `macro_rules!` body (name is a `$` placeholder).
    pub is_template: bool,
}

/// The extracted whole-workspace graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every extracted fn.
    pub fns: Vec<FnDef>,
    /// Name -> indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `Type::name` -> indices into `fns`.
    pub by_qual: BTreeMap<String, Vec<usize>>,
    /// Indices of `$`-templated fns (defined inside `macro_rules!`).
    pub templates: Vec<usize>,
    /// Identifier tokens passed to top-level macro invocations — the
    /// names macro-generated fns can take.
    pub macro_arg_names: BTreeSet<String>,
    /// Lexed lines per file, for the passes' line-level escape checks.
    pub lexed: BTreeMap<String, Vec<LexedLine>>,
    /// Crate directory names covered (`cake-core`, ...).
    pub crates: BTreeSet<String>,
    /// Source-derived crate dependencies, transitively closed: crate dir
    /// name -> the crate dirs its sources may call into (itself included).
    /// Derived from `cake_<name>` path references in each crate's code
    /// channel, so it tracks the real `use`/path structure, not a table
    /// that could drift.
    pub deps: BTreeMap<String, BTreeSet<String>>,
}

/// Crate directory name of a workspace-relative path
/// (`crates/cake-core/src/sync.rs` -> `cake-core`).
pub fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/").and_then(|p| p.split('/').next())
}

impl CallGraph {
    /// `true` when `caller`'s crate may call into `callee`'s crate: same
    /// crate, or a (transitive) source-level dependency. Unknown crates
    /// fall back to "allowed" — over-approximation stays the failure mode.
    fn crate_allowed(&self, caller: &FnDef, callee: &FnDef) -> bool {
        let (Some(from), Some(to)) = (crate_of(&caller.file), crate_of(&callee.file)) else {
            return true;
        };
        if from == to {
            return true;
        }
        self.deps.get(from).is_none_or(|d| d.contains(to))
    }

    /// Resolve a call site in `caller` to candidate definitions
    /// (conservative: possibly many, possibly none for std/external
    /// calls). Name-collision candidates in crates the caller's crate
    /// does not depend on are dropped — `cake-core` code can never call
    /// into `cake-dnn`, so a bare `.push(..)` in the executor must not
    /// alias `Sequential::push`.
    pub fn resolve(&self, caller: &FnDef, call: &CallSite) -> Vec<usize> {
        if call.std_root {
            return Vec::new();
        }
        let allowed = |v: &[usize]| -> Vec<usize> {
            v.iter().copied().filter(|&t| self.crate_allowed(caller, &self.fns[t])).collect()
        };
        if let Some(q) = &call.qual {
            if let Some(v) = self.by_qual.get(&format!("{q}::{}", call.name)) {
                return allowed(v);
            }
            // A miss on a concrete type name means an external or
            // compiler-derived fn (`Vec::new`, `Instant::now`, a derived
            // `ExecStats::default`): falling back to the bare name would
            // wire `Vec::new` to every in-tree `fn new`. Module paths
            // (`sys::pin`) and generic params (`T::best`) keep the
            // conservative bare-name fallback — their callees really are
            // in-tree fns the qualifier cannot name directly.
            let module_path = q.chars().next().is_some_and(|c| c.is_lowercase() || c == '_');
            let generic_param = q.len() <= 2 && q.chars().all(|c| c.is_ascii_uppercase());
            if !module_path && !generic_param {
                return Vec::new();
            }
        }
        if let Some(v) = self.by_name.get(&call.name) {
            return allowed(v);
        }
        if self.macro_arg_names.contains(&call.name) {
            return allowed(&self.templates);
        }
        Vec::new()
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Punct(char),
    /// `::`
    PathSep,
}

struct Token {
    line: usize, // 0-based
    tok: Tok,
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn tokenize(lines: &[LexedLine]) -> Vec<Token> {
    let mut toks = Vec::new();
    for (li, info) in lines.iter().enumerate() {
        let chars: Vec<char> = info.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if is_word_char(c) || (c == '$' && chars.get(i + 1).is_some_and(|&n| is_word_char(n))) {
                let mut w = String::new();
                if c == '$' {
                    w.push('$');
                    i += 1;
                }
                while i < chars.len() && is_word_char(chars[i]) {
                    w.push(chars[i]);
                    i += 1;
                }
                toks.push(Token { line: li, tok: Tok::Word(w) });
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                toks.push(Token { line: li, tok: Tok::PathSep });
                i += 2;
            } else {
                toks.push(Token { line: li, tok: Tok::Punct(c) });
                i += 1;
            }
        }
    }
    toks
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "fn", "in", "as", "where", "impl", "dyn", "use", "pub", "mod", "struct", "enum",
    "union", "trait", "unsafe", "extern", "const", "static", "type", "crate", "super", "self",
    "Self",
];

/// All `audit:` comments covering a (0-based) line: a comment on the line
/// itself plus any contiguous pure-comment lines directly above.
pub fn audit_comments_for_line(lexed: &[LexedLine], li: usize) -> Vec<String> {
    let mut out = Vec::new();
    if lexed[li].comment.contains("audit:") {
        out.push(lexed[li].comment.clone());
    }
    let mut cur = li;
    while let Some(prev) = cur.checked_sub(1) {
        let info = &lexed[prev];
        if !info.code.trim().is_empty() {
            break;
        }
        if info.comment.is_empty() {
            break; // blank line ends the covering block
        }
        if info.comment.contains("audit:") {
            out.push(info.comment.clone());
        }
        cur = prev;
    }
    out
}

/// Is this line covered by a `// audit: <keyword> ..` escape of the given
/// kind (`cold`, `checked`, ...)?
pub fn line_escape(lexed: &[LexedLine], li: usize, keyword: &str) -> bool {
    audit_comments_for_line(lexed, li).iter().any(|c| {
        c.find("audit:")
            .map(|p| c[p + 6..].split_whitespace().next() == Some(keyword))
            .unwrap_or(false)
    })
}

/// Parse `// audit: <tok> <tok> ...` anchor tokens out of a comment.
/// Only the leading `warm` / `hot` / `cold` keywords count; trailing text
/// is a human-readable reason.
fn anchor_tokens(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let Some(pos) = comment.find("audit:") else { return out };
    for word in comment[pos + 6..].split_whitespace() {
        match word {
            "warm" | "hot" | "cold" => out.push(word.to_string()),
            _ => break,
        }
    }
    out
}

/// Anchors on the definition line or the contiguous comment/attr block
/// immediately above it.
fn anchors_for(lines: &[LexedLine], def_line: usize) -> BTreeSet<String> {
    let mut anchors: BTreeSet<String> = anchor_tokens(&lines[def_line].comment).into_iter().collect();
    let mut cur = def_line;
    while let Some(prev) = cur.checked_sub(1) {
        let info = &lines[prev];
        let code = info.code.trim();
        let is_annotation_line = code.is_empty() || code.starts_with("#[") || code.starts_with("#!");
        if !is_annotation_line {
            break;
        }
        anchors.extend(anchor_tokens(&info.comment));
        if code.is_empty() && info.comment.is_empty() {
            break; // blank line ends the block
        }
        cur = prev;
    }
    anchors
}

/// Extract the impl'd type name from the header tokens between `impl` and
/// the opening `{`: the last identifier at angle-bracket depth zero before
/// any `where` clause (`impl<T: Dtype> Layer for Conv2d` -> `Conv2d`).
fn impl_type_name(toks: &[Token], mut i: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') if angle == 0 => break,
            Tok::Punct(';') if angle == 0 => break,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Word(w) if angle == 0 => {
                if w == "where" {
                    break;
                }
                if w != "for" {
                    last = Some(w.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    last
}

#[derive(Debug)]
enum Ctx {
    /// `impl Type { .. }` — fns inside are qualified.
    Impl(String),
    /// A fn body — calls attach to `fns[idx]`.
    Fn(usize),
    /// `macro_rules! { .. }` — fns inside are templates.
    MacroRules,
    /// `#[cfg(test)] mod { .. }` — skipped entirely.
    TestMod,
    /// Top-level macro invocation `name!( .. )` — words are collected as
    /// possible macro-generated fn names.
    MacroInvocation,
}

/// Extract the call graph from a set of source files. Non-participants
/// (vendored proptest, benches, examples, integration tests — see
/// [`in_graph`]) are filtered out here, so callers may pass a raw
/// [`read_tree`] file set.
pub fn extract(files: &[SourceFile]) -> CallGraph {
    let mut g = CallGraph::default();
    for f in files {
        if !in_graph(&f.path) {
            continue;
        }
        if let Some(krate) = crate_of(&f.path) {
            g.crates.insert(krate.to_string());
        }
        let lines = lex(&f.src);
        if let Some(from) = crate_of(&f.path) {
            let entry = g.deps.entry(from.to_string()).or_default();
            entry.insert(from.to_string());
            for l in &lines {
                collect_crate_refs(&l.code, entry);
            }
        }
        let toks = tokenize(&lines);
        extract_file(&f.path, &lines, &toks, &mut g);
        g.lexed.insert(f.path.clone(), lines);
    }
    close_deps(&mut g.deps);
    for (i, fun) in g.fns.iter().enumerate() {
        g.by_name.entry(fun.name.clone()).or_default().push(i);
        g.by_qual.entry(fun.qual.clone()).or_default().push(i);
        if fun.is_template {
            g.templates.push(i);
        }
    }
    g
}

/// Collect `cake_<name>` crate path references from a code channel
/// (mapped to crate dir names: `cake_kernels` -> `cake-kernels`).
fn collect_crate_refs(code: &str, out: &mut BTreeSet<String>) {
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("cake_") {
        let at = from + rel;
        let before_ok =
            at == 0 || !code[..at].chars().next_back().is_some_and(is_word_char);
        let end = code[at..]
            .find(|c: char| !is_word_char(c))
            .map_or(code.len(), |e| at + e);
        if before_ok && end > at + "cake_".len() {
            out.insert(code[at..end].replace('_', "-"));
        }
        from = end.max(at + 1);
    }
}

/// Transitively close the crate dependency edges (a crate may call into
/// anything its dependencies may call into).
fn close_deps(deps: &mut BTreeMap<String, BTreeSet<String>>) {
    loop {
        let mut changed = false;
        let keys: Vec<String> = deps.keys().cloned().collect();
        for c in &keys {
            let reach: Vec<String> = deps[c].iter().cloned().collect();
            let mut add = BTreeSet::new();
            for d in &reach {
                if let Some(dd) = deps.get(d) {
                    add.extend(dd.iter().filter(|x| !deps[c].contains(*x)).cloned());
                }
            }
            if !add.is_empty() {
                deps.get_mut(c).expect("key exists").extend(add);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

fn extract_file(path: &str, lines: &[LexedLine], toks: &[Token], g: &mut CallGraph) {
    // Stack of (brace depth at which the region opened, context).
    let mut stack: Vec<(usize, Ctx)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;

    let in_skip = |stack: &[(usize, Ctx)]| {
        stack.iter().any(|(_, c)| matches!(c, Ctx::TestMod))
    };
    let in_macro_rules = |stack: &[(usize, Ctx)]| {
        stack.iter().any(|(_, c)| matches!(c, Ctx::MacroRules))
    };

    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while let Some((d, ctx)) = stack.last() {
                    if *d > depth {
                        if let Ctx::Fn(idx) = ctx {
                            // This `}` closes the fn body: record its end.
                            if let Some((s, _)) = g.fns[*idx].body {
                                g.fns[*idx].body = Some((s, line));
                            }
                        }
                        stack.pop();
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            Tok::Word(w) if w == "impl" && !in_skip(&stack) => {
                let ty = impl_type_name(toks, i + 1);
                // Register the context at the depth its `{` will open.
                if let Some(ty) = ty {
                    stack.push((depth + 1, Ctx::Impl(ty)));
                }
                i += 1;
            }
            Tok::Word(w) if w == "macro_rules" => {
                stack.push((depth + 1, Ctx::MacroRules));
                i += 1;
            }
            Tok::Word(w) if w == "mod" => {
                // `#[cfg(test)]` within the two lines above (or on the
                // same line) marks an inline test module to skip. `mod x;`
                // declarations have no body and push nothing.
                let has_body = matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('{')));
                let lo = line.saturating_sub(2);
                let cfg_test = (lo..=line).any(|li| lines[li].code.contains("cfg(test)"));
                if cfg_test && has_body {
                    stack.push((depth + 1, Ctx::TestMod));
                }
                i += 1;
            }
            Tok::Word(w) if w == "fn" && !in_skip(&stack) => {
                let Some(Token { tok: Tok::Word(name), .. }) = toks.get(i + 1) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                let impl_ty = stack.iter().rev().find_map(|(_, c)| match c {
                    Ctx::Impl(t) => Some(t.clone()),
                    _ => None,
                });
                let qual = match &impl_ty {
                    Some(t) => format!("{t}::{name}"),
                    None => name.clone(),
                };
                let def = FnDef {
                    file: path.to_string(),
                    line: line + 1,
                    name,
                    qual,
                    anchors: anchors_for(lines, line),
                    body: None,
                    calls: Vec::new(),
                    is_template: in_macro_rules(&stack),
                };
                // Find the body `{` (or `;` for a bodyless declaration).
                let mut j = i + 2;
                let mut has_body = false;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Punct('{') => {
                            has_body = true;
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => j += 1,
                    }
                }
                let idx = g.fns.len();
                g.fns.push(def);
                if has_body {
                    g.fns[idx].body = Some((toks[j].line, toks[j].line));
                    stack.push((depth + 1, Ctx::Fn(idx)));
                    depth += 1; // consume the `{`
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Word(w) if !in_skip(&stack) => {
                // Macro invocation or call?
                let word = w.clone();
                let fn_idx = stack.iter().rev().find_map(|(_, c)| match c {
                    Ctx::Fn(idx) => Some(*idx),
                    _ => None,
                });
                let next = toks.get(i + 1).map(|t| &t.tok);
                if matches!(next, Some(Tok::Punct('!'))) {
                    let open = toks.get(i + 2).map(|t| &t.tok);
                    let is_invocation = matches!(
                        open,
                        Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{'))
                    );
                    if is_invocation && word != "macro_rules" {
                        match fn_idx {
                            Some(idx) => g.fns[idx]
                                .calls
                                .push(CallSite {
                                    line: line + 1,
                                    name: format!("{word}!"),
                                    qual: None,
                                    std_root: false,
                                }),
                            None => {
                                // Top-level macro invocation: harvest word
                                // args as candidate generated-fn names.
                                if matches!(open, Some(Tok::Punct('{'))) {
                                    stack.push((depth + 1, Ctx::MacroInvocation));
                                } else {
                                    let close = match open {
                                        Some(Tok::Punct('(')) => ')',
                                        _ => ']',
                                    };
                                    let mut k = i + 3;
                                    let mut nest = 0i32;
                                    while k < toks.len() {
                                        match &toks[k].tok {
                                            Tok::Punct(c) if *c == close && nest == 0 => break,
                                            Tok::Punct('(') | Tok::Punct('[') => nest += 1,
                                            Tok::Punct(')') | Tok::Punct(']') => nest -= 1,
                                            Tok::Word(a) if !KEYWORDS.contains(&a.as_str()) => {
                                                g.macro_arg_names.insert(a.clone());
                                            }
                                            _ => {}
                                        }
                                        k += 1;
                                    }
                                }
                            }
                        }
                    }
                    i += 2;
                    continue;
                }
                // Collect words inside a top-level macro invocation body.
                if fn_idx.is_none()
                    && stack.iter().any(|(_, c)| matches!(c, Ctx::MacroInvocation))
                    && !KEYWORDS.contains(&word.as_str())
                {
                    g.macro_arg_names.insert(word.clone());
                }
                if let Some(idx) = fn_idx {
                    if !KEYWORDS.contains(&word.as_str()) {
                        // Skip an optional turbofish `::<..>` after the name.
                        let mut j = i + 1;
                        if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::PathSep))
                            && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('<')))
                        {
                            let mut angle = 0i32;
                            j += 1;
                            while j < toks.len() {
                                match toks[j].tok {
                                    Tok::Punct('<') => angle += 1,
                                    Tok::Punct('>') => {
                                        angle -= 1;
                                        if angle == 0 {
                                            j += 1;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                        }
                        if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
                            // Qualified path? `Seg::name(` — the token
                            // before the name is `::` preceded by a word.
                            // `Self::name(` resolves via the enclosing
                            // impl type. The walk back to the path root
                            // spots `std::` / `core::` / `alloc::` paths
                            // (`std::array::from_fn`), which must never
                            // alias a same-named workspace fn.
                            let mut qual = None;
                            let mut std_root = false;
                            if i >= 2 && matches!(toks[i - 1].tok, Tok::PathSep) {
                                qual = match &toks[i - 2].tok {
                                    Tok::Word(q) if q == "Self" => {
                                        stack.iter().rev().find_map(|(_, c)| match c {
                                            Ctx::Impl(t) => Some(t.clone()),
                                            _ => None,
                                        })
                                    }
                                    Tok::Word(q) => Some(q.clone()),
                                    _ => None,
                                };
                                let mut r = i - 2;
                                while r >= 2
                                    && matches!(toks[r - 1].tok, Tok::PathSep)
                                    && matches!(toks[r - 2].tok, Tok::Word(_))
                                {
                                    r -= 2;
                                }
                                if let Tok::Word(root) = &toks[r].tok {
                                    std_root =
                                        matches!(root.as_str(), "std" | "core" | "alloc");
                                }
                            }
                            g.fns[idx].calls.push(CallSite {
                                line: line + 1,
                                name: word,
                                qual,
                                std_root,
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // A fn body whose closing `}` was never seen (truncated source) keeps
    // its `(start, start)` single-line span — the conservative minimum.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> CallGraph {
        extract(&[SourceFile { path: "crates/x/src/lib.rs".into(), src: src.into() }])
    }

    fn find<'g>(g: &'g CallGraph, qual: &str) -> &'g FnDef {
        g.fns.iter().find(|f| f.qual == qual).unwrap_or_else(|| {
            panic!("no fn {qual}; have {:?}", g.fns.iter().map(|f| &f.qual).collect::<Vec<_>>())
        })
    }

    #[test]
    fn extracts_free_and_impl_fns_with_calls() {
        let g = graph_of(
            "fn helper(x: usize) -> usize { x + 1 }\n\
             struct Foo;\n\
             impl Foo {\n\
                 fn run(&self) -> usize { helper(2) + self.aux() }\n\
                 fn aux(&self) -> usize { 3 }\n\
             }\n",
        );
        assert_eq!(g.fns.len(), 3);
        let run = find(&g, "Foo::run");
        let names: Vec<&str> = run.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["helper", "aux"]);
        assert_eq!(g.resolve(run, &run.calls[0]), &[0]);
    }

    #[test]
    fn qualified_calls_resolve_to_the_impl() {
        let g = graph_of(
            "struct A;\nstruct B;\n\
             impl A { fn go() {} }\n\
             impl B { fn go() {} }\n\
             fn main2() { A::go(); }\n",
        );
        let m = find(&g, "main2");
        assert_eq!(m.calls.len(), 1);
        assert_eq!(m.calls[0].qual.as_deref(), Some("A"));
        let targets = g.resolve(m, &m.calls[0]);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].qual, "A::go");
    }

    #[test]
    fn external_type_qualified_miss_resolves_to_nothing() {
        // `Vec::new()` must not alias every in-tree `fn new`, and a
        // derived `Stats::default()` must not alias every `fn default`.
        let g = graph_of(
            "struct Ring;\n\
             impl Ring { fn new() -> Self { Ring } }\n\
             fn warm() { let v: Vec<u8> = Vec::new(); drop(v); }\n",
        );
        let w = find(&g, "warm");
        let vec_new = w.calls.iter().find(|c| c.name == "new").unwrap();
        assert_eq!(vec_new.qual.as_deref(), Some("Vec"));
        assert!(g.resolve(w, vec_new).is_empty(), "Vec::new must not resolve in-tree");
    }

    #[test]
    fn std_rooted_paths_never_resolve_in_tree() {
        // `std::array::from_fn` has a lowercase `array` qualifier, but the
        // path root marks it external — it must not alias `Grid::from_fn`.
        let g = graph_of(
            "struct Grid;\n\
             impl Grid { fn from_fn() -> Grid { Grid } }\n\
             fn warm() { let a: [u8; 4] = std::array::from_fn(|i| i as u8); drop(a); }\n",
        );
        let w = find(&g, "warm");
        let c = w.calls.iter().find(|c| c.name == "from_fn").unwrap();
        assert!(c.std_root);
        assert!(g.resolve(w, c).is_empty(), "std:: path must not resolve in-tree");
    }

    #[test]
    fn module_and_generic_qualifiers_keep_the_bare_name_fallback() {
        let g = graph_of(
            "mod sys { pub fn pin(_c: usize) {} }\n\
             fn best() {}\n\
             fn drive() { sys::pin(0); }\n\
             fn select2() { T::best(); }\n",
        );
        let d = find(&g, "drive");
        let pin = d.calls.iter().find(|c| c.name == "pin").unwrap();
        assert_eq!(pin.qual.as_deref(), Some("sys"));
        assert_eq!(g.resolve(d, pin).len(), 1, "module-qualified call must resolve");
        let s = find(&g, "select2");
        let best = s.calls.iter().find(|c| c.name == "best").unwrap();
        assert_eq!(best.qual.as_deref(), Some("T"));
        assert_eq!(g.resolve(s, best).len(), 1, "generic-param call must resolve");
    }

    #[test]
    fn trait_method_dispatch_resolves_to_every_impl() {
        let g = graph_of(
            "trait Layer { fn forward(&self) -> usize; }\n\
             struct A;\nstruct B;\n\
             impl Layer for A { fn forward(&self) -> usize { 1 } }\n\
             impl Layer for B { fn forward(&self) -> usize { 2 } }\n\
             fn drive(l: &dyn Layer) -> usize { l.forward() }\n",
        );
        let d = find(&g, "drive");
        assert_eq!(d.calls.len(), 1);
        let targets: Vec<&str> =
            g.resolve(d, &d.calls[0]).iter().map(|&i| g.fns[i].qual.as_str()).collect();
        // Conservative: the decl and both impls.
        assert!(targets.contains(&"A::forward"), "{targets:?}");
        assert!(targets.contains(&"B::forward"), "{targets:?}");
    }

    #[test]
    fn target_feature_fn_boundaries_are_extracted() {
        let g = graph_of(
            "fn ukr_avx2(k: usize) { unsafe { ukr_avx2_impl(k) } }\n\
             /// # Safety\n/// avx2 must be available.\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn ukr_avx2_impl(_k: usize) { }\n",
        );
        let outer = find(&g, "ukr_avx2");
        let targets = g.resolve(outer, &outer.calls[0]);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.fns[targets[0]].name, "ukr_avx2_impl");
    }

    #[test]
    fn macro_generated_fns_stay_visible() {
        let g = graph_of(
            "macro_rules! make {\n\
                 ($name:ident) => {\n\
                     pub fn $name() -> Vec<u8> { Vec::with_capacity(9) }\n\
                 };\n\
             }\n\
             make!(gen_fn);\n\
             fn caller() { gen_fn(); }\n",
        );
        let tpl = find(&g, "$name");
        assert!(tpl.is_template);
        assert!(g.macro_arg_names.contains("gen_fn"));
        let c = find(&g, "caller");
        let gen_call = c.calls.iter().find(|cl| cl.name == "gen_fn").expect("call extracted");
        let targets = g.resolve(c, gen_call);
        assert_eq!(targets.len(), 1, "unknown names invoked via a macro resolve to templates");
        assert_eq!(g.fns[targets[0]].name, "$name");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let g = graph_of(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn fake() { super::real(); }\n\
             }\n",
        );
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
    }

    #[test]
    fn anchors_attach_through_attr_blocks() {
        let g = graph_of(
            "// audit: warm hot\n\
             #[inline]\n\
             fn kernel() {}\n\
             // audit: cold pool setup, runs once\n\
             fn setup() {}\n\
             fn plain() {}\n",
        );
        assert_eq!(find(&g, "kernel").anchors, ["hot", "warm"].iter().map(|s| s.to_string()).collect());
        assert_eq!(find(&g, "setup").anchors, std::iter::once("cold".to_string()).collect());
        assert!(find(&g, "plain").anchors.is_empty());
    }

    #[test]
    fn bodies_span_to_the_matching_brace() {
        let g = graph_of(
            "fn outer() {\n\
                 let x = vec![1];\n\
                 if x.len() > 0 {\n\
                     helper();\n\
                 }\n\
             }\n\
             fn helper() {}\n",
        );
        let o = find(&g, "outer");
        let (s, e) = o.body.expect("body");
        assert_eq!((s, e), (0, 5));
        assert!(o.calls.iter().any(|c| c.name == "helper"));
        assert!(o.calls.iter().any(|c| c.name == "vec!"));
    }

    #[test]
    fn methods_and_macros_in_strings_do_not_count() {
        let g = graph_of(
            "fn f() -> &'static str { \"format!(no) and push(no)\" }\n",
        );
        assert!(find(&g, "f").calls.is_empty());
    }

    #[test]
    fn proptest_and_test_scaffolding_are_excluded() {
        assert!(in_graph("crates/cake-core/src/executor.rs"));
        assert!(!in_graph("crates/proptest/src/lib.rs"));
        assert!(!in_graph("crates/cake-bench/benches/kernels.rs"));
        assert!(!in_graph("crates/cake-verify/tests/warm_alloc.rs"));
        assert!(!in_graph("xtask/src/main.rs"));
    }

    /// Drift meta-test: the workspace manifest declares `members =
    /// ["crates/*"]`, so every directory under `crates/` with a
    /// `Cargo.toml` is a workspace member. Each one must show up in the
    /// extracted graph's crate set — if a future PR adds a crate that the
    /// in_graph() filter silently skips, the dataflow passes would report
    /// PASS while never having looked at it. The vendored third-party
    /// `proptest` is the single deliberate exclusion.
    #[test]
    fn every_workspace_crate_is_scanned() {
        let root = crate::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let mut members = BTreeSet::new();
        for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            if entry.path().join("Cargo.toml").is_file() && name != "proptest" {
                members.insert(name);
            }
        }
        assert!(!members.is_empty(), "no workspace members found under crates/");

        let files = read_tree(&root).expect("read workspace tree");
        let g = extract(&graph_files(&files));
        let missing: Vec<&String> = members.difference(&g.crates).collect();
        assert!(
            missing.is_empty(),
            "workspace crates never scanned by the call-graph extractor: \
             {missing:?} — extend in_graph() or anchor the new crate"
        );
    }
}
