//! Unsafe auditor: lexes every `.rs` file in the workspace, inventories
//! `unsafe` sites, enforces `// SAFETY:` annotations, confines unsafe to an
//! allowlist, and ratchets per-file counts against a committed
//! `unsafe-ratchet.toml` (counts may fall, never silently rise).
//!
//! The scanner is a real little lexer, not a regex: it tracks line and
//! nested block comments, ordinary/byte/raw string literals with escapes,
//! and the char-literal-versus-lifetime ambiguity, so `"unsafe"` inside a
//! string or a doc example never counts and `// SAFETY:` inside a string
//! never annotates.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Committed ratchet file name, at the workspace root.
pub const RATCHET_FILE: &str = "unsafe-ratchet.toml";

/// Flavor of an `unsafe` occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteKind {
    /// `unsafe { ... }` block.
    Block,
    /// `unsafe fn` (declaration or pointer type).
    Fn,
    /// `unsafe impl`.
    Impl,
    /// `unsafe trait`.
    Trait,
    /// `unsafe extern` block or ABI.
    Extern,
}

impl SiteKind {
    fn name(self) -> &'static str {
        match self {
            SiteKind::Block => "block",
            SiteKind::Fn => "fn",
            SiteKind::Impl => "impl",
            SiteKind::Trait => "trait",
            SiteKind::Extern => "extern",
        }
    }
}

/// One `unsafe` occurrence in a file.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// 1-based source line.
    pub line: usize,
    /// Site flavor.
    pub kind: SiteKind,
    /// Whether a SAFETY comment (or `# Safety` doc section) covers it.
    pub annotated: bool,
}

/// All `unsafe` sites found in one file.
#[derive(Clone, Debug)]
pub struct FileScan {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Sites in source order.
    pub sites: Vec<UnsafeSite>,
    /// 1-based lines of `transmute` calls (ratcheted like unsafe counts).
    pub transmutes: Vec<usize>,
    /// 1-based lines of `static mut` items (forbidden workspace-wide
    /// unless the path is explicitly allowlisted in the ratchet).
    pub static_muts: Vec<usize>,
}

/// One source line split into its code and comment channels by the lexer.
/// String-literal contents are blanked from `code`, so token searches over
/// `code` never match inside literals, and `comment` never contains code.
#[derive(Default, Clone, Debug)]
pub struct LexedLine {
    /// Code with comments and literal contents blanked out.
    pub code: String,
    /// Comment text on the line (line + block comments).
    pub comment: String,
}

/// Lex `src` into per-line code/comment channels.
///
/// This is the shared front end for every textual pass in this crate: the
/// unsafe scanner, the call-graph extractor, and the alloc/panic/atomics
/// dataflow passes all consume these channels instead of raw source, so
/// they inherit the same string/comment/char-literal discipline.
pub fn lex(src: &str) -> Vec<LexedLine> {
    enum Mode {
        Code,
        Line,
        Block(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<LexedLine> = vec![LexedLine::default()];
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let ch = chars[i];
        if ch == '\n' {
            if matches!(mode, Mode::Line) {
                mode = Mode::Code;
            }
            lines.push(LexedLine::default());
            i += 1;
            continue;
        }
        let cur = lines.len() - 1;
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if ch == '/' && next == Some('/') {
                    mode = Mode::Line;
                    i += 2;
                } else if ch == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if ch == '"' {
                    mode = Mode::Str;
                    lines[cur].code.push(' ');
                    i += 1;
                } else if ch == 'r' && matches!(next, Some('"') | Some('#')) {
                    // Possible raw string r"..." / r#"..."# (b-prefixed raw
                    // strings reach here via the same 'r'). Count hashes.
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        mode = Mode::RawStr(hashes);
                        lines[cur].code.push(' ');
                        i = j + 1;
                    } else {
                        lines[cur].code.push(ch);
                        i += 1;
                    }
                } else if ch == '\'' {
                    // Char literal vs lifetime: a backslash or a
                    // closing-quote two ahead means char literal.
                    if next == Some('\\') {
                        mode = Mode::Char;
                        lines[cur].code.push(' ');
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        lines[cur].code.push(' ');
                        i += 3; // 'x'
                    } else {
                        lines[cur].code.push(ch); // lifetime tick
                        i += 1;
                    }
                } else {
                    lines[cur].code.push(ch);
                    i += 1;
                }
            }
            Mode::Line => {
                lines[cur].comment.push(ch);
                i += 1;
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if ch == '*' && next == Some('/') {
                    mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                    i += 2;
                } else if ch == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    lines[cur].comment.push(ch);
                    i += 1;
                }
            }
            Mode::Str => {
                if ch == '\\' {
                    // An escaped newline is a string continuation: the
                    // physical line still ends here, and dropping it would
                    // shift every later line number in the file.
                    if chars.get(i + 1) == Some(&'\n') {
                        lines.push(LexedLine::default());
                    }
                    i += 2;
                } else {
                    if ch == '"' {
                        mode = Mode::Code;
                    }
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if ch == '"' {
                    let closed = (0..hashes).all(|h| chars.get(i + 1 + h) == Some(&'#'));
                    if closed {
                        mode = Mode::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::Char => {
                if ch == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        lines.push(LexedLine::default());
                    }
                    i += 2;
                } else {
                    if ch == '\'' {
                        mode = Mode::Code;
                    }
                    i += 1;
                }
            }
        }
    }
    lines
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// First code token at or after `(line, col)`, skipping whitespace.
fn next_token(lines: &[LexedLine], mut line: usize, mut col: usize) -> Option<String> {
    while line < lines.len() {
        let code: Vec<char> = lines[line].code.chars().collect();
        while col < code.len() && code[col].is_whitespace() {
            col += 1;
        }
        if col < code.len() {
            let ch = code[col];
            if is_word_char(ch) {
                let mut word = String::new();
                while col < code.len() && is_word_char(code[col]) {
                    word.push(code[col]);
                    col += 1;
                }
                return Some(word);
            }
            return Some(ch.to_string());
        }
        line += 1;
        col = 0;
    }
    None
}

fn has_safety(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    lower.contains("safety")
}

/// A line that carries no code except possibly an attribute — the kind of
/// line a doc/attr block above an `unsafe fn` is made of.
fn is_doc_or_attr_line(info: &LexedLine) -> bool {
    let t = info.code.trim();
    t.is_empty() || t.starts_with("#[") || t.starts_with("#!")
}

/// Is the site at `line` (0-based) covered by a SAFETY annotation?
fn annotated(lines: &[LexedLine], line: usize, kind: SiteKind) -> bool {
    if has_safety(&lines[line].comment) {
        return true;
    }
    // Nearby preceding comments (covers `// SAFETY: ...` one to a few lines
    // above, possibly separated by a guard assert or an attribute).
    for back in 1..=6 {
        let Some(prev) = line.checked_sub(back) else { break };
        if has_safety(&lines[prev].comment) {
            return true;
        }
    }
    // For declarations, a `/// # Safety` section anywhere in the contiguous
    // doc/attribute block above also counts.
    if matches!(kind, SiteKind::Fn | SiteKind::Trait) {
        let mut cur = line;
        for _ in 0..40 {
            let Some(prev) = cur.checked_sub(1) else { break };
            if !is_doc_or_attr_line(&lines[prev]) {
                break;
            }
            if has_safety(&lines[prev].comment) {
                return true;
            }
            cur = prev;
        }
    }
    false
}

/// Count whole-word occurrences of `word` in a code channel.
pub fn count_word(code: &str, word: &str) -> usize {
    let chars: Vec<char> = code.chars().collect();
    let w: Vec<char> = word.chars().collect();
    let mut n = 0usize;
    let mut col = 0usize;
    while col + w.len() <= chars.len() {
        let before_ok = col == 0 || !is_word_char(chars[col - 1]);
        let after_ok = chars.get(col + w.len()).is_none_or(|&c| !is_word_char(c));
        if before_ok && after_ok && chars[col..col + w.len()] == w[..] {
            n += 1;
            col += w.len();
        } else {
            col += 1;
        }
    }
    n
}

/// Scan one source string (the path is only a label).
pub fn scan_source(path: &str, src: &str) -> FileScan {
    let lines = lex(src);
    let mut sites = Vec::new();
    let mut transmutes = Vec::new();
    let mut static_muts = Vec::new();
    for (li, info) in lines.iter().enumerate() {
        let code: Vec<char> = info.code.chars().collect();
        let mut col = 0usize;
        while col + 6 <= code.len() {
            let word: String = code[col..col + 6].iter().collect();
            let before_ok = col == 0 || !is_word_char(code[col - 1]);
            let after_ok = code.get(col + 6).is_none_or(|&c| !is_word_char(c));
            if word == "unsafe" && before_ok && after_ok {
                let kind = match next_token(&lines, li, col + 6).as_deref() {
                    Some("fn") => SiteKind::Fn,
                    Some("impl") => SiteKind::Impl,
                    Some("trait") => SiteKind::Trait,
                    Some("extern") => SiteKind::Extern,
                    _ => SiteKind::Block,
                };
                sites.push(UnsafeSite { line: li + 1, kind, annotated: annotated(&lines, li, kind) });
                col += 6;
            } else {
                col += 1;
            }
        }
        for _ in 0..count_word(&info.code, "transmute") {
            transmutes.push(li + 1);
        }
        // `static mut FOO` — a whole-word `static` (not the `'static`
        // lifetime) whose next token is `mut`. `&'static mut T` must not
        // count; a `static mut` item must.
        let mut col = 0usize;
        while col + 6 <= code.len() {
            let word: String = code[col..col + 6].iter().collect();
            let before_ok = col == 0 || (!is_word_char(code[col - 1]) && code[col - 1] != '\'');
            let after_ok = code.get(col + 6).is_none_or(|&c| !is_word_char(c));
            if word == "static"
                && before_ok
                && after_ok
                && next_token(&lines, li, col + 6).as_deref() == Some("mut")
            {
                static_muts.push(li + 1);
                col += 6;
            } else {
                col += 1;
            }
        }
    }
    FileScan { path: path.to_string(), sites, transmutes, static_muts }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every `.rs` file under `root` (skipping `target/` and dot dirs).
/// Paths in the result are `root`-relative with `/` separators, sorted.
pub fn scan_tree(root: &Path) -> io::Result<Vec<FileScan>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut scans = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .components()
            .map(|cp| cp.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&f)?;
        scans.push(scan_source(&rel, &src));
    }
    Ok(scans)
}

/// Parsed `unsafe-ratchet.toml`.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Files allowed to contain unsafe at all.
    pub allow: BTreeSet<String>,
    /// Committed per-file site counts.
    pub counts: BTreeMap<String, usize>,
    /// Committed per-file `transmute` call counts (may fall, never rise).
    pub transmutes: BTreeMap<String, usize>,
    /// Files allowed to contain `static mut` at all (the workspace has
    /// none; any entry here must be a deliberate, blessed exception).
    pub static_mut_allow: BTreeSet<String>,
}

/// Parse the minimal TOML subset the ratchet uses (`[allow]` /
/// `[static_mut]` with a string array, `[counts]` / `[transmute]` with
/// `"path" = N` entries).
pub fn parse_ratchet(text: &str) -> Result<Ratchet, String> {
    let mut r = Ratchet::default();
    let mut section = "";
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = match line {
                "[allow]" => "allow",
                "[counts]" => "counts",
                "[transmute]" => "transmute",
                "[static_mut]" => "static_mut",
                other => return Err(format!("line {}: unknown section {other}", ln + 1)),
            };
            continue;
        }
        match section {
            "allow" | "static_mut" => {
                // `paths = [`, `"...",`, `]` — harvest quoted strings.
                let set = if section == "allow" { &mut r.allow } else { &mut r.static_mut_allow };
                let mut rest = line;
                while let Some(start) = rest.find('"') {
                    let Some(len) = rest[start + 1..].find('"') else {
                        return Err(format!("line {}: unterminated string", ln + 1));
                    };
                    set.insert(rest[start + 1..start + 1 + len].to_string());
                    rest = &rest[start + 2 + len..];
                }
            }
            "counts" | "transmute" => {
                let Some((key, val)) = line.split_once('=') else {
                    return Err(format!("line {}: expected `\"path\" = N`", ln + 1));
                };
                let map = if section == "counts" { &mut r.counts } else { &mut r.transmutes };
                let key = key.trim().trim_matches('"').to_string();
                let val: usize = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {}: bad count {val}", ln + 1))?;
                map.insert(key, val);
            }
            _ => return Err(format!("line {}: entry outside any section", ln + 1)),
        }
    }
    Ok(r)
}

/// Render the ratchet file for the current tree (`--bless`).
pub fn render_ratchet(scans: &[FileScan]) -> String {
    let mut s = String::from(
        "# Unsafe ratchet: per-file `unsafe` site counts, committed so CI can\n\
         # detect any new unsafe. Counts may only fall; to bless a change run\n\
         # `cakectl audit --bless` and commit the result.\n\
         #\n\
         # [transmute] ratchets `transmute` calls the same way, and\n\
         # [static_mut] allowlists files permitted to declare `static mut`\n\
         # (none today — new `static mut` is forbidden workspace-wide).\n\n[allow]\npaths = [\n",
    );
    for f in scans.iter().filter(|f| !f.sites.is_empty()) {
        s.push_str(&format!("  \"{}\",\n", f.path));
    }
    s.push_str("]\n\n[counts]\n");
    for f in scans.iter().filter(|f| !f.sites.is_empty()) {
        s.push_str(&format!("\"{}\" = {}\n", f.path, f.sites.len()));
    }
    s.push_str("\n[transmute]\n");
    for f in scans.iter().filter(|f| !f.transmutes.is_empty()) {
        s.push_str(&format!("\"{}\" = {}\n", f.path, f.transmutes.len()));
    }
    s.push_str("\n[static_mut]\npaths = [\n");
    for f in scans.iter().filter(|f| !f.static_muts.is_empty()) {
        s.push_str(&format!("  \"{}\",\n", f.path));
    }
    s.push_str("]\n");
    s
}

/// Result of the full unsafe audit.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Files containing unsafe, in path order.
    pub files: Vec<FileScan>,
    /// Total unsafe sites.
    pub total_sites: usize,
    /// Policy violations (non-empty fails the audit).
    pub violations: Vec<String>,
    /// Benign observations (count decreases, stale ratchet entries).
    pub notes: Vec<String>,
}

/// Check scans against the committed ratchet.
pub fn audit_scans(scans: &[FileScan], ratchet_text: Option<&str>) -> ScanReport {
    let mut report = ScanReport::default();
    let ratchet = match ratchet_text {
        None => {
            report
                .violations
                .push(format!("missing {RATCHET_FILE} — run `cakectl audit --bless` and commit it"));
            Ratchet::default()
        }
        Some(text) => match parse_ratchet(text) {
            Ok(r) => r,
            Err(e) => {
                report.violations.push(format!("unparsable {RATCHET_FILE}: {e}"));
                Ratchet::default()
            }
        },
    };

    let have_ratchet = ratchet_text.is_some();
    for scan in scans {
        // Transmute ratchet and static-mut ban are independent of the
        // unsafe-site inventory (a `static mut` needs no `unsafe` token).
        if have_ratchet && !scan.transmutes.is_empty() {
            match ratchet.transmutes.get(&scan.path) {
                None => report.violations.push(format!(
                    "{}: {} transmute call(s) with no ratcheted count — bless deliberately",
                    scan.path,
                    scan.transmutes.len()
                )),
                Some(&committed) if scan.transmutes.len() > committed => {
                    report.violations.push(format!(
                        "{}: transmute count rose {} -> {} — new transmutes must be blessed",
                        scan.path,
                        committed,
                        scan.transmutes.len()
                    ));
                }
                Some(&committed) if scan.transmutes.len() < committed => {
                    report.notes.push(format!(
                        "{}: transmute count fell {} -> {} (re-bless to tighten the ratchet)",
                        scan.path,
                        committed,
                        scan.transmutes.len()
                    ));
                }
                Some(_) => {}
            }
        }
        if !scan.static_muts.is_empty() && !ratchet.static_mut_allow.contains(&scan.path) {
            for &line in &scan.static_muts {
                report.violations.push(format!(
                    "{}:{}: `static mut` is forbidden workspace-wide (use an atomic or \
                     interior mutability; allowlist in [static_mut] only as a last resort)",
                    scan.path, line
                ));
            }
        }
        if scan.sites.is_empty() {
            continue;
        }
        report.total_sites += scan.sites.len();
        for site in &scan.sites {
            if !site.annotated {
                report.violations.push(format!(
                    "{}:{}: unsafe {} without a SAFETY comment",
                    scan.path,
                    site.line,
                    site.kind.name()
                ));
            }
        }
        if have_ratchet {
            if !ratchet.allow.contains(&scan.path) {
                report.violations.push(format!(
                    "{}: unsafe outside the allowlist ({} site(s)) — bless deliberately",
                    scan.path,
                    scan.sites.len()
                ));
            }
            match ratchet.counts.get(&scan.path) {
                None => report
                    .violations
                    .push(format!("{}: no ratcheted count committed", scan.path)),
                Some(&committed) if scan.sites.len() > committed => {
                    report.violations.push(format!(
                        "{}: unsafe count rose {} -> {} — new unsafe must be blessed",
                        scan.path,
                        committed,
                        scan.sites.len()
                    ));
                }
                Some(&committed) if scan.sites.len() < committed => {
                    report.notes.push(format!(
                        "{}: unsafe count fell {} -> {} (re-bless to tighten the ratchet)",
                        scan.path,
                        committed,
                        scan.sites.len()
                    ));
                }
                Some(_) => {}
            }
        }
        report.files.push(scan.clone());
    }
    for path in ratchet.counts.keys() {
        if !scans.iter().any(|sc| &sc.path == path && !sc.sites.is_empty()) {
            report
                .notes
                .push(format!("{path}: ratchet entry is stale (file clean or gone) — re-bless"));
        }
    }
    for path in ratchet.transmutes.keys() {
        if !scans.iter().any(|sc| &sc.path == path && !sc.transmutes.is_empty()) {
            report
                .notes
                .push(format!("{path}: transmute ratchet entry is stale (file clean or gone) — re-bless"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANNOTATED: &str = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}

/// Reads a byte.
///
/// # Safety
/// `p` must be valid for reads.
#[inline]
pub unsafe fn g(p: *const u8) -> u8 {
    // SAFETY: forwarded from caller.
    unsafe { *p }
}

// SAFETY: no shared state.
unsafe impl Send for S {}
"#;

    #[test]
    fn annotated_sources_scan_clean() {
        let scan = scan_source("a.rs", ANNOTATED);
        assert_eq!(scan.sites.len(), 4, "{:?}", scan.sites);
        assert!(scan.sites.iter().all(|s| s.annotated), "{:?}", scan.sites);
        let kinds: Vec<SiteKind> = scan.sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, [SiteKind::Block, SiteKind::Fn, SiteKind::Block, SiteKind::Impl]);
    }

    #[test]
    fn uncommented_unsafe_is_flagged() {
        let scan = scan_source("b.rs", "fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert_eq!(scan.sites.len(), 1);
        assert!(!scan.sites[0].annotated);
        let report = audit_scans(&[scan], Some("[allow]\npaths = [\"b.rs\"]\n[counts]\n\"b.rs\" = 1\n"));
        assert!(report.violations.iter().any(|v| v.contains("without a SAFETY")));
    }

    #[test]
    fn strings_comments_chars_and_lifetimes_do_not_confuse_the_lexer() {
        let src = r##"
// unsafe in a line comment
/* unsafe in a /* nested */ block comment */
fn f<'a>(x: &'a str) -> &'a str { x }
const S: &str = "unsafe { not_code() } // SAFETY: fake";
const R: &str = r#"unsafe"#;
const C: char = '"';
const D: char = '\'';
"##;
        let scan = scan_source("c.rs", src);
        assert!(scan.sites.is_empty(), "{:?}", scan.sites);
    }

    #[test]
    fn string_continuation_escapes_keep_physical_line_numbers() {
        // A backslash-newline inside a string literal continues the
        // literal but still ends the physical line; every downstream
        // pass reports `lexed index + 1` as the file line, so the lexer
        // must emit one entry per physical line.
        let src = "let s = \"a \\\n     b\";\nfn after() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.len(), src.lines().count() + 1, "one entry per line plus trailing");
        assert!(lexed[2].code.contains("fn after"), "{:?}", lexed[2].code);
    }

    #[test]
    fn safety_inside_a_string_does_not_annotate() {
        let src = "fn f(p: *const u8) -> u8 {\n    let _m = \"SAFETY: lies\";\n    unsafe { *p }\n}\n";
        let scan = scan_source("d.rs", src);
        assert_eq!(scan.sites.len(), 1);
        assert!(!scan.sites[0].annotated);
    }

    #[test]
    fn ratchet_round_trips_and_detects_rises() {
        let scan = scan_source("e.rs", "// SAFETY: x\nunsafe fn a() {}\n// SAFETY: y\nunsafe fn b() {}\n");
        let blessed = render_ratchet(std::slice::from_ref(&scan));
        let clean = audit_scans(std::slice::from_ref(&scan), Some(&blessed));
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);

        let mut grown = scan;
        grown.sites.push(UnsafeSite { line: 99, kind: SiteKind::Block, annotated: true });
        let report = audit_scans(&[grown], Some(&blessed));
        assert!(report.violations.iter().any(|vi| vi.contains("rose 2 -> 3")), "{:?}", report.violations);
    }

    #[test]
    fn count_decreases_are_notes_not_violations() {
        let two = scan_source("f.rs", "// SAFETY: x\nunsafe fn a() {}\n// SAFETY: y\nunsafe fn b() {}\n");
        let blessed = render_ratchet(&[two]);
        let one = scan_source("f.rs", "// SAFETY: x\nunsafe fn a() {}\n");
        let report = audit_scans(&[one], Some(&blessed));
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.notes.iter().any(|n| n.contains("fell 2 -> 1")));
    }

    #[test]
    fn files_outside_allowlist_are_violations() {
        let scan = scan_source("sneaky.rs", "// SAFETY: x\nunsafe fn a() {}\n");
        let report = audit_scans(&[scan], Some("[allow]\npaths = []\n[counts]\n"));
        assert!(report.violations.iter().any(|v| v.contains("outside the allowlist")));
    }

    #[test]
    fn missing_ratchet_is_a_violation() {
        let report = audit_scans(&[], None);
        assert!(report.violations.iter().any(|v| v.contains("missing")));
    }

    #[test]
    fn transmute_count_is_ratcheted() {
        let src = "// SAFETY: bit pattern is valid for both types.\n\
                   unsafe fn f(x: u32) -> f32 { unsafe { core::mem::transmute(x) } }\n";
        let scan = scan_source("t.rs", src);
        assert_eq!(scan.transmutes, vec![2]);
        let blessed = render_ratchet(std::slice::from_ref(&scan));
        assert!(blessed.contains("[transmute]\n\"t.rs\" = 1"), "{blessed}");
        let clean = audit_scans(std::slice::from_ref(&scan), Some(&blessed));
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);

        let two = scan_source(
            "t.rs",
            &format!("{src}// SAFETY: same.\nunsafe fn g(x: u32) -> f32 {{ unsafe {{ core::mem::transmute(x) }} }}\n"),
        );
        let report = audit_scans(&[two], Some(&blessed));
        assert!(
            report.violations.iter().any(|v| v.contains("transmute count rose 1 -> 2")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn unratcheted_transmute_is_a_violation() {
        let scan = scan_source(
            "t.rs",
            "// SAFETY: ok.\nunsafe fn f(x: u32) -> f32 { unsafe { core::mem::transmute(x) } }\n",
        );
        let report =
            audit_scans(&[scan], Some("[allow]\npaths = [\"t.rs\"]\n[counts]\n\"t.rs\" = 2\n"));
        assert!(
            report.violations.iter().any(|v| v.contains("no ratcheted count")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn static_mut_is_forbidden_unless_allowlisted() {
        let scan = scan_source("s.rs", "static mut COUNTER: u32 = 0;\n");
        assert_eq!(scan.static_muts, vec![1]);
        let report =
            audit_scans(std::slice::from_ref(&scan), Some("[allow]\npaths = []\n[counts]\n"));
        assert!(
            report.violations.iter().any(|v| v.contains("`static mut` is forbidden")),
            "{:?}",
            report.violations
        );
        let allowed = audit_scans(
            &[scan],
            Some("[allow]\npaths = []\n[counts]\n[static_mut]\npaths = [\"s.rs\"]\n"),
        );
        assert!(allowed.violations.is_empty(), "{:?}", allowed.violations);
    }

    #[test]
    fn static_lifetime_references_are_not_static_mut() {
        let scan = scan_source(
            "l.rs",
            "fn f(x: &'static mut u32) -> &'static u32 { &*x }\nstatic OK: u32 = 0;\n",
        );
        assert!(scan.static_muts.is_empty(), "{:?}", scan.static_muts);
    }
}
