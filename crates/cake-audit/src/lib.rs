//! cake-audit: in-tree, dependency-free static analysis for the CAKE
//! workspace.
//!
//! Three analyses, wired into `cakectl audit` and `./ci.sh --audit`:
//!
//! 1. **Unsafe auditor** ([`scan`]): lexes every `.rs` file, inventories
//!    `unsafe` sites, enforces `// SAFETY:` annotations, confines unsafe to
//!    the allowlist in the committed `unsafe-ratchet.toml`, and ratchets
//!    per-file counts (they may fall, never silently rise).
//! 2. **Symbolic bounds checker** ([`bounds`]): models every pack /
//!    microkernel / executor / goto raw-pointer offset site as
//!    `need <= cap` over the tuning variables and proves it for the whole
//!    tuning space (polynomial equality or dominance certificates, plus
//!    exhaustive small-extent model checking), emitting a machine-readable
//!    proof report.
//! 3. **Phase/dominance checker** ([`phase`]): derives the executor's
//!    shared-buffer protocol from `// audit: step` annotations in
//!    `executor.rs` and `// audit: fact` annotations in `sync.rs`, then
//!    exhausts every interleaving through cake-verify's step machine.
//!
//! Every run also executes a **self-check**: seeded mutants of each class
//! (off-by-one tail, missing barrier annotation, uncommented unsafe) must
//! be caught, or the audit fails — a green audit from a toothless checker
//! is worse than no audit.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bounds;
pub mod interval;
pub mod phase;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Audit invocation parameters.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Workspace root (the directory holding the workspace `Cargo.toml`).
    pub root: PathBuf,
    /// Regenerate `unsafe-ratchet.toml` from the current tree before
    /// checking against it.
    pub bless: bool,
}

/// Aggregated audit result.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Unsafe auditor result.
    pub scan: scan::ScanReport,
    /// Bounds prover result.
    pub bounds: bounds::BoundsReport,
    /// Phase checker result.
    pub phase: phase::PhaseReport,
    /// Self-check failures (seeded mutants that were *not* caught).
    pub self_check: Vec<String>,
    /// Whether a fresh ratchet was written this run.
    pub blessed: bool,
}

impl AuditOutcome {
    /// `true` when all three analyses and the self-check passed.
    pub fn ok(&self) -> bool {
        self.scan.violations.is_empty()
            && self.bounds.ok()
            && self.phase.ok()
            && self.self_check.is_empty()
    }

    /// Human-readable report for the CLI.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "unsafe: {} site(s) across {} file(s), {} violation(s){}",
            self.scan.total_sites,
            self.scan.files.len(),
            self.scan.violations.len(),
            if self.blessed { " [ratchet re-blessed]" } else { "" }
        ));
        for vi in &self.scan.violations {
            out.push(format!("  VIOLATION {vi}"));
        }
        for note in &self.scan.notes {
            out.push(format!("  note: {note}"));
        }
        let proven = self.bounds.proofs.iter().filter(|p| p.method.is_some()).count();
        out.push(format!(
            "bounds: {proven}/{} offset sites proven, {} code lemma(s) held",
            self.bounds.proofs.len(),
            self.bounds.lemmas.len()
        ));
        for p in &self.bounds.proofs {
            match p.method {
                Some(m) => out.push(format!(
                    "  {} [{}] checked {} assignment(s): {}",
                    p.name,
                    m.name(),
                    p.checked,
                    p.place
                )),
                None => out.push(format!(
                    "  VIOLATION {} unproven: {}",
                    p.name,
                    p.witness.as_deref().unwrap_or("no witness")
                )),
            }
        }
        for f in &self.bounds.lemma_failures {
            out.push(format!("  VIOLATION lemma: {f}"));
        }
        out.push(format!(
            "phase: {} scenario(s) explored, {} violation(s)",
            self.phase.scenarios.len(),
            self.phase.violations.len()
        ));
        for s in &self.phase.scenarios {
            out.push(format!("  {s}"));
        }
        for vi in &self.phase.violations {
            out.push(format!("  VIOLATION {vi}"));
        }
        if self.self_check.is_empty() {
            out.push("self-check: all seeded mutant classes caught".to_string());
        } else {
            for f in &self.self_check {
                out.push(format!("self-check VIOLATION: {f}"));
            }
        }
        out.push(format!("audit: {}", if self.ok() { "PASS" } else { "FAIL" }));
        out
    }
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` declaring `[workspace]` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Seeded mutants of the *real* sources: each class must be caught by its
/// analysis or the returned list names the toothless checker.
fn self_check(executor_src: &str, sync_src: &str) -> Vec<String> {
    let mut failures = Vec::new();

    // Class 1 — uncommented unsafe: strip every SAFETY token from the real
    // executor source; the scanner must flag at least one site.
    let stripped = executor_src.replace("SAFETY", "NOTE").replace("Safety", "Note");
    let mutant = scan::scan_source("executor-mutant.rs", &stripped);
    if !mutant.sites.iter().any(|s| !s.annotated) {
        failures.push("scan: stripping all SAFETY comments from executor.rs went undetected".into());
    }

    // Class 2 — off-by-one offsets: every seeded bounds mutant must be
    // refuted with a concrete witness.
    for m in bounds::mutant_sites() {
        let proof = bounds::prove_site(&m);
        if proof.method.is_some() || proof.witness.is_none() {
            failures.push(format!("bounds: mutant {} was not refuted", m.name));
        }
    }

    // Class 3 — missing barrier annotation (and the live-slot aliasing
    // variant): doctored real sources must produce violations.
    let no_barrier = phase::drop_lines(executor_src, "audit: step block barrier");
    if phase::check_with_sources(&no_barrier, sync_src).ok() {
        failures.push("phase: dropping the block-barrier annotation went undetected".into());
    }
    let live_slot = executor_src.replace("pack_b slot=next", "pack_b slot=cur");
    if phase::check_with_sources(&live_slot, sync_src).ok() {
        failures.push("phase: packing into the live ring slot went undetected".into());
    }
    let no_fact = phase::drop_lines(sync_src, "audit: fact");
    if phase::check_with_sources(executor_src, &no_fact).ok() {
        failures.push("phase: dropping the sync.rs barrier facts went undetected".into());
    }

    failures
}

/// Run the full audit over the tree rooted at `cfg.root`.
pub fn run(cfg: &AuditConfig) -> io::Result<AuditOutcome> {
    let scans = scan::scan_tree(&cfg.root)?;

    let ratchet_path = cfg.root.join(scan::RATCHET_FILE);
    let mut blessed = false;
    if cfg.bless {
        fs::write(&ratchet_path, scan::render_ratchet(&scans))?;
        blessed = true;
    }
    let ratchet_text = fs::read_to_string(&ratchet_path).ok();
    let scan_report = scan::audit_scans(&scans, ratchet_text.as_deref());

    let bounds_report = bounds::check();

    let executor_src = fs::read_to_string(cfg.root.join("crates/cake-core/src/executor.rs"))?;
    let sync_src = fs::read_to_string(cfg.root.join("crates/cake-core/src/sync.rs"))?;
    let phase_report = phase::check_with_sources(&executor_src, &sync_src);

    let self_check = self_check(&executor_src, &sync_src);

    Ok(AuditOutcome { scan: scan_report, bounds: bounds_report, phase: phase_report, self_check, blessed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
    }

    #[test]
    fn full_audit_passes_on_this_tree() {
        let outcome = run(&AuditConfig { root: repo_root(), bless: false }).expect("audit runs");
        assert!(outcome.ok(), "audit failed:\n{}", outcome.summary_lines().join("\n"));
        assert!(outcome.scan.total_sites > 0, "the workspace certainly contains unsafe");
        assert!(outcome.bounds.proofs.len() >= 12);
    }

    #[test]
    fn self_check_catches_all_mutant_classes_on_real_sources() {
        let root = repo_root();
        let executor =
            fs::read_to_string(root.join("crates/cake-core/src/executor.rs")).unwrap();
        let sync = fs::read_to_string(root.join("crates/cake-core/src/sync.rs")).unwrap();
        assert!(self_check(&executor, &sync).is_empty());
    }
}
