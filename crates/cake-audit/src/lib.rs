//! cake-audit: in-tree, dependency-free static analysis for the CAKE
//! workspace.
//!
//! Six analyses, wired into `cakectl audit` and `./ci.sh --audit`:
//!
//! 1. **Unsafe auditor** ([`scan`]): lexes every `.rs` file, inventories
//!    `unsafe` sites, enforces `// SAFETY:` annotations, confines unsafe to
//!    the allowlist in the committed `unsafe-ratchet.toml`, ratchets
//!    per-file unsafe and `transmute` counts (they may fall, never silently
//!    rise), and forbids `static mut` workspace-wide.
//! 2. **Symbolic bounds checker** ([`bounds`]): models every pack /
//!    microkernel / executor / goto raw-pointer offset site as
//!    `need <= cap` over the tuning variables and proves it for the whole
//!    tuning space (polynomial equality or dominance certificates, plus
//!    exhaustive small-extent model checking), emitting a machine-readable
//!    proof report.
//! 3. **Phase/dominance checker** ([`phase`]): derives the executor's
//!    shared-buffer protocol from `// audit: step` annotations in
//!    `executor.rs` and `// audit: fact` annotations in `sync.rs`, then
//!    exhausts every interleaving through cake-verify's step machine.
//! 4. **Alloc-freedom** ([`allocfree`]): from every `// audit: warm` root,
//!    walks the whole-workspace call graph ([`callgraph`]) and proves no
//!    reachable line allocates, except through declared `// audit: cold`
//!    escapes.
//! 5. **Panic-freedom** ([`panicfree`]): from every `// audit: hot` root,
//!    flags panics, unwraps, non-debug asserts, and slice indexing not
//!    covered by a [`bounds`] proof or a justified escape.
//! 6. **Atomics ordering** ([`atomics`]): inventories every atomic op with
//!    its `Ordering`, checks the inventory against the declared
//!    happens-before protocol, and cross-validates the protocol against
//!    cake-verify's interleave step machine.
//!
//! Every run also executes a **self-check**: seeded mutants of each class
//! (off-by-one tail, missing barrier annotation, uncommented unsafe,
//! warm-path allocation, hot-path unwrap, ordering demotion) must be
//! caught, or the audit fails — a green audit from a toothless checker is
//! worse than no audit.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod allocfree;
pub mod atomics;
pub mod bounds;
pub mod callgraph;
pub mod interval;
pub mod panicfree;
pub mod phase;
pub mod scan;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use callgraph::SourceFile;

/// Which passes to run. `cakectl audit` exposes one flag per field; the
/// self-check only seeds mutants for enabled passes.
#[derive(Debug, Clone, Copy)]
pub struct PassSelection {
    /// Unsafe auditor + ratchet.
    pub scan: bool,
    /// Symbolic bounds prover.
    pub bounds: bool,
    /// Phase/dominance checker.
    pub phase: bool,
    /// Warm-path alloc-freedom.
    pub alloc: bool,
    /// Hot-path panic-freedom.
    pub panic: bool,
    /// Atomics-ordering checker.
    pub atomics: bool,
}

impl Default for PassSelection {
    fn default() -> Self {
        Self::all()
    }
}

impl PassSelection {
    /// Every pass enabled (the default for CI).
    pub fn all() -> Self {
        Self { scan: true, bounds: true, phase: true, alloc: true, panic: true, atomics: true }
    }

    /// No pass enabled — the starting point for `--only-<pass>` flags.
    pub fn none() -> Self {
        Self {
            scan: false,
            bounds: false,
            phase: false,
            alloc: false,
            panic: false,
            atomics: false,
        }
    }

    /// Is at least one pass enabled?
    pub fn any(&self) -> bool {
        self.scan || self.bounds || self.phase || self.alloc || self.panic || self.atomics
    }
}

/// Audit invocation parameters.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Workspace root (the directory holding the workspace `Cargo.toml`).
    pub root: PathBuf,
    /// Regenerate `unsafe-ratchet.toml` from the current tree before
    /// checking against it.
    pub bless: bool,
    /// Which passes to run (default: all).
    pub passes: PassSelection,
}

/// Aggregated audit result. A `None` report means the pass was not
/// selected for this run.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Unsafe auditor result.
    pub scan: Option<scan::ScanReport>,
    /// Bounds prover result.
    pub bounds: Option<bounds::BoundsReport>,
    /// Phase checker result.
    pub phase: Option<phase::PhaseReport>,
    /// Alloc-freedom result.
    pub alloc: Option<allocfree::AllocReport>,
    /// Panic-freedom result.
    pub panic: Option<panicfree::PanicReport>,
    /// Atomics-ordering result.
    pub atomics: Option<atomics::AtomicsReport>,
    /// Self-check failures (seeded mutants that were *not* caught).
    pub self_check: Vec<String>,
    /// Whether a fresh ratchet was written this run.
    pub blessed: bool,
}

/// Escape `s` for embedding in a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", quoted.join(","))
}

impl AuditOutcome {
    /// `true` when every selected analysis and the self-check passed.
    pub fn ok(&self) -> bool {
        self.scan.as_ref().is_none_or(|r| r.violations.is_empty())
            && self.bounds.as_ref().is_none_or(|r| r.ok())
            && self.phase.as_ref().is_none_or(|r| r.ok())
            && self.alloc.as_ref().is_none_or(|r| r.ok())
            && self.panic.as_ref().is_none_or(|r| r.ok())
            && self.atomics.as_ref().is_none_or(|r| r.ok())
            && self.self_check.is_empty()
    }

    /// Human-readable report for the CLI: one `PASS`/`FAIL` verdict line
    /// per pass (with `VIOLATION` detail lines under failures) and a final
    /// aggregate verdict.
    pub fn summary_lines(&self) -> Vec<String> {
        fn verdict(ok: bool) -> &'static str {
            if ok {
                "PASS"
            } else {
                "FAIL"
            }
        }
        let mut out = Vec::new();
        match &self.scan {
            None => out.push("scan: SKIPPED".to_string()),
            Some(r) => {
                out.push(format!(
                    "scan: {} — {} unsafe site(s) across {} file(s), {} violation(s){}",
                    verdict(r.violations.is_empty()),
                    r.total_sites,
                    r.files.len(),
                    r.violations.len(),
                    if self.blessed { " [ratchet re-blessed]" } else { "" }
                ));
                for vi in &r.violations {
                    out.push(format!("  VIOLATION {vi}"));
                }
                for note in &r.notes {
                    out.push(format!("  note: {note}"));
                }
            }
        }
        match &self.bounds {
            None => out.push("bounds: SKIPPED".to_string()),
            Some(r) => {
                let proven = r.proofs.iter().filter(|p| p.method.is_some()).count();
                out.push(format!(
                    "bounds: {} — {proven}/{} offset sites proven, {} code lemma(s) held",
                    verdict(r.ok()),
                    r.proofs.len(),
                    r.lemmas.len()
                ));
                for p in &r.proofs {
                    match p.method {
                        Some(m) => out.push(format!(
                            "  {} [{}] checked {} assignment(s): {}",
                            p.name,
                            m.name(),
                            p.checked,
                            p.place
                        )),
                        None => out.push(format!(
                            "  VIOLATION {} unproven: {}",
                            p.name,
                            p.witness.as_deref().unwrap_or("no witness")
                        )),
                    }
                }
                for f in &r.lemma_failures {
                    out.push(format!("  VIOLATION lemma: {f}"));
                }
            }
        }
        match &self.phase {
            None => out.push("phase: SKIPPED".to_string()),
            Some(r) => {
                out.push(format!(
                    "phase: {} — {} scenario(s) explored, {} violation(s)",
                    verdict(r.ok()),
                    r.scenarios.len(),
                    r.violations.len()
                ));
                for s in &r.scenarios {
                    out.push(format!("  {s}"));
                }
                for vi in &r.violations {
                    out.push(format!("  VIOLATION {vi}"));
                }
            }
        }
        match &self.alloc {
            None => out.push("alloc: SKIPPED".to_string()),
            Some(r) => {
                out.push(format!(
                    "alloc: {} — {} warm root(s), {} fn(s) reachable, {} cold fn cutoff(s), \
                     {} cold line escape(s), {} violation(s)",
                    verdict(r.ok()),
                    r.roots.len(),
                    r.reachable,
                    r.cold_fn_skips,
                    r.cold_line_escapes,
                    r.violations.len()
                ));
                for vi in &r.violations {
                    out.push(format!("  VIOLATION {vi}"));
                }
            }
        }
        match &self.panic {
            None => out.push("panic: SKIPPED".to_string()),
            Some(r) => {
                out.push(format!(
                    "panic: {} — {} hot root(s), {} fn(s) reachable, {} escape(s) honored, \
                     {} violation(s)",
                    verdict(r.ok()),
                    r.roots.len(),
                    r.reachable,
                    r.escapes,
                    r.violations.len()
                ));
                for vi in &r.violations {
                    out.push(format!("  VIOLATION {vi}"));
                }
            }
        }
        match &self.atomics {
            None => out.push("atomics: SKIPPED".to_string()),
            Some(r) => {
                out.push(format!(
                    "atomics: {} — {} atomic op(s) inventoried, {} protocol rule(s), \
                     {} model scenario(s), {} violation(s)",
                    verdict(r.ok()),
                    r.ops.len(),
                    r.protocol.len(),
                    r.scenarios.len(),
                    r.violations.len()
                ));
                for s in &r.scenarios {
                    out.push(format!("  {s}"));
                }
                for vi in &r.violations {
                    out.push(format!("  VIOLATION {vi}"));
                }
            }
        }
        if self.self_check.is_empty() {
            out.push("self-check: PASS — all seeded mutant classes caught".to_string());
        } else {
            out.push(format!("self-check: FAIL — {} mutant(s) escaped", self.self_check.len()));
            for f in &self.self_check {
                out.push(format!("  VIOLATION self-check: {f}"));
            }
        }
        out.push(format!("audit: {}", if self.ok() { "PASS" } else { "FAIL" }));
        out
    }

    /// Machine-readable report (`target/cake-audit/audit.json`). Skipped
    /// passes render as `null`.
    pub fn to_json(&self) -> String {
        let scan = match &self.scan {
            None => "null".to_string(),
            Some(r) => format!(
                "{{\"ok\":{},\"sites\":{},\"files\":{},\"violations\":{}}}",
                r.violations.is_empty(),
                r.total_sites,
                r.files.len(),
                json_list(&r.violations)
            ),
        };
        let bounds = match &self.bounds {
            None => "null".to_string(),
            Some(r) => {
                let proven = r.proofs.iter().filter(|p| p.method.is_some()).count();
                format!(
                    "{{\"ok\":{},\"proven\":{proven},\"total\":{},\"lemmas\":{}}}",
                    r.ok(),
                    r.proofs.len(),
                    r.lemmas.len()
                )
            }
        };
        let phase = match &self.phase {
            None => "null".to_string(),
            Some(r) => format!(
                "{{\"ok\":{},\"scenarios\":{},\"violations\":{}}}",
                r.ok(),
                r.scenarios.len(),
                json_list(&r.violations)
            ),
        };
        let alloc = match &self.alloc {
            None => "null".to_string(),
            Some(r) => format!(
                "{{\"ok\":{},\"roots\":{},\"reachable\":{},\"cold_fn_skips\":{},\
                 \"cold_line_escapes\":{},\"violations\":{}}}",
                r.ok(),
                json_list(&r.roots),
                r.reachable,
                r.cold_fn_skips,
                r.cold_line_escapes,
                json_list(&r.violations)
            ),
        };
        let panic = match &self.panic {
            None => "null".to_string(),
            Some(r) => format!(
                "{{\"ok\":{},\"roots\":{},\"reachable\":{},\"escapes\":{},\"violations\":{}}}",
                r.ok(),
                json_list(&r.roots),
                r.reachable,
                r.escapes,
                json_list(&r.violations)
            ),
        };
        let atomics = match &self.atomics {
            None => "null".to_string(),
            Some(r) => format!(
                "{{\"ok\":{},\"ops\":{},\"protocol\":{},\"scenarios\":{},\"violations\":{}}}",
                r.ok(),
                json_list(&r.ops),
                json_list(&r.protocol),
                json_list(&r.scenarios),
                json_list(&r.violations)
            ),
        };
        format!(
            "{{\n  \"ok\": {},\n  \"blessed\": {},\n  \"scan\": {scan},\n  \"bounds\": {bounds},\n  \
             \"phase\": {phase},\n  \"alloc\": {alloc},\n  \"panic\": {panic},\n  \
             \"atomics\": {atomics},\n  \"self_check\": {}\n}}\n",
            self.ok(),
            self.blessed,
            json_list(&self.self_check)
        )
    }
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` declaring `[workspace]` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Swap the source of `path` in a copy of `files` (self-check helper).
fn with_mutated(files: &[SourceFile], path: &str, src: String) -> Vec<SourceFile> {
    files
        .iter()
        .map(|f| {
            if f.path == path {
                SourceFile { path: f.path.clone(), src: src.clone() }
            } else {
                f.clone()
            }
        })
        .collect()
}

/// Seeded mutants of the *real* sources: each class must be caught by its
/// analysis or the returned list names the toothless checker. Only classes
/// whose pass is enabled in `passes` are seeded.
fn self_check(
    files: &[SourceFile],
    executor_src: &str,
    sync_src: &str,
    proven_sites: &BTreeSet<String>,
    passes: &PassSelection,
) -> Vec<String> {
    let mut failures = Vec::new();

    // Class 1 — uncommented unsafe: strip every SAFETY token from the real
    // executor source; the scanner must flag at least one site.
    if passes.scan {
        let stripped = executor_src.replace("SAFETY", "NOTE").replace("Safety", "Note");
        let mutant = scan::scan_source("executor-mutant.rs", &stripped);
        if !mutant.sites.iter().any(|s| !s.annotated) {
            failures
                .push("scan: stripping all SAFETY comments from executor.rs went undetected".into());
        }
    }

    // Class 2 — off-by-one offsets: every seeded bounds mutant must be
    // refuted with a concrete witness.
    if passes.bounds {
        for m in bounds::mutant_sites() {
            let proof = bounds::prove_site(&m);
            if proof.method.is_some() || proof.witness.is_none() {
                failures.push(format!("bounds: mutant {} was not refuted", m.name));
            }
        }
    }

    // Class 3 — missing barrier annotation (and the live-slot aliasing
    // variant): doctored real sources must produce violations.
    if passes.phase {
        let no_barrier = phase::drop_lines(executor_src, "audit: step block barrier");
        if phase::check_with_sources(&no_barrier, sync_src).ok() {
            failures.push("phase: dropping the block-barrier annotation went undetected".into());
        }
        let live_slot = executor_src.replace("pack_b slot=next", "pack_b slot=cur");
        if phase::check_with_sources(&live_slot, sync_src).ok() {
            failures.push("phase: packing into the live ring slot went undetected".into());
        }
        let no_fact = phase::drop_lines(sync_src, "audit: fact");
        if phase::check_with_sources(executor_src, &no_fact).ok() {
            failures.push("phase: dropping the sync.rs barrier facts went undetected".into());
        }
    }

    // Class 4 — warm-path allocation: inject a `Vec::push` into the block
    // compute step of the real executor; alloc-freedom must flag it.
    if passes.alloc {
        let marker = "// audit: step block compute";
        if !executor_src.contains(marker) {
            failures.push("alloc: block-compute step marker missing from executor.rs".into());
        } else {
            let line = executor_src
                .lines()
                .find(|l| l.contains(marker))
                .expect("marker line exists");
            let doctored = executor_src
                .replacen(line, &format!("{line}\nprobe_buf.push(0);"), 1);
            let mutated =
                with_mutated(files, "crates/cake-core/src/executor.rs", doctored);
            if allocfree::check(&mutated).ok() {
                failures
                    .push("alloc: a Vec::push seeded into the block compute step went undetected"
                        .into());
            }
        }
    }

    // Class 5 — hot-path unwrap: inject an `.unwrap()` into the real
    // pack_a fast path; panic-freedom must flag it.
    if passes.panic {
        let pack_src = files
            .iter()
            .find(|f| f.path == "crates/cake-kernels/src/pack.rs")
            .map(|f| f.src.clone());
        match pack_src {
            None => failures.push("panic: crates/cake-kernels/src/pack.rs not in the file set".into()),
            Some(src) => {
                let marker = "if src.row_stride() == 1 {";
                if !src.contains(marker) {
                    failures.push("panic: pack_a fast-path marker missing from pack.rs".into());
                } else {
                    let doctored = src.replacen(
                        marker,
                        &format!("{marker}\nlet _ = dst.first().unwrap();"),
                        1,
                    );
                    let mutated =
                        with_mutated(files, "crates/cake-kernels/src/pack.rs", doctored);
                    if panicfree::check(&mutated, proven_sites).ok() {
                        failures.push(
                            "panic: an unwrap seeded into the pack_a fast path went undetected"
                                .into(),
                        );
                    }
                }
            }
        }
    }

    // Class 6 — ordering demotion: demote the barrier's AcqRel arrival to
    // Relaxed in the real sync.rs; the atomics checker must flag it.
    if passes.atomics {
        if !sync_src.contains("AcqRel") {
            failures.push("atomics: no AcqRel op in sync.rs to demote".into());
        } else {
            let doctored = sync_src.replace("AcqRel", "Relaxed");
            let mutated = with_mutated(files, "crates/cake-core/src/sync.rs", doctored);
            if atomics::check(&mutated).ok() {
                failures.push(
                    "atomics: demoting the barrier arrival AcqRel to Relaxed went undetected"
                        .into(),
                );
            }
        }
    }

    failures
}

/// Run the selected audit passes over the tree rooted at `cfg.root`.
pub fn run(cfg: &AuditConfig) -> io::Result<AuditOutcome> {
    let passes = &cfg.passes;
    let files = callgraph::read_tree(&cfg.root)?;

    let mut blessed = false;
    let scan_report = if passes.scan {
        let scans = scan::scan_tree(&cfg.root)?;
        let ratchet_path = cfg.root.join(scan::RATCHET_FILE);
        if cfg.bless {
            fs::write(&ratchet_path, scan::render_ratchet(&scans))?;
            blessed = true;
        }
        let ratchet_text = fs::read_to_string(&ratchet_path).ok();
        Some(scan::audit_scans(&scans, ratchet_text.as_deref()))
    } else {
        None
    };

    // The bounds report always runs when the panic pass needs it — its
    // proven-site names are what `// audit: bounds <site>` escapes cite.
    let bounds_report =
        if passes.bounds || passes.panic { Some(bounds::check()) } else { None };
    let proven_sites: BTreeSet<String> = bounds_report
        .as_ref()
        .map(|r| {
            r.proofs
                .iter()
                .filter(|p| p.method.is_some())
                .map(|p| p.name.to_string())
                .collect()
        })
        .unwrap_or_default();

    let executor_src = fs::read_to_string(cfg.root.join("crates/cake-core/src/executor.rs"))?;
    let sync_src = fs::read_to_string(cfg.root.join("crates/cake-core/src/sync.rs"))?;
    let phase_report = if passes.phase {
        Some(phase::check_with_sources(&executor_src, &sync_src))
    } else {
        None
    };

    let alloc_report = if passes.alloc { Some(allocfree::check(&files)) } else { None };
    let panic_report =
        if passes.panic { Some(panicfree::check(&files, &proven_sites)) } else { None };
    let atomics_report = if passes.atomics { Some(atomics::check(&files)) } else { None };

    let self_check = self_check(&files, &executor_src, &sync_src, &proven_sites, passes);

    Ok(AuditOutcome {
        scan: scan_report,
        bounds: if passes.bounds { bounds_report } else { None },
        phase: phase_report,
        alloc: alloc_report,
        panic: panic_report,
        atomics: atomics_report,
        self_check,
        blessed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
    }

    #[test]
    fn full_audit_passes_on_this_tree() {
        let outcome =
            run(&AuditConfig { root: repo_root(), bless: false, passes: PassSelection::all() })
                .expect("audit runs");
        assert!(outcome.ok(), "audit failed:\n{}", outcome.summary_lines().join("\n"));
        let scan = outcome.scan.as_ref().expect("scan selected");
        assert!(scan.total_sites > 0, "the workspace certainly contains unsafe");
        assert!(outcome.bounds.as_ref().expect("bounds selected").proofs.len() >= 12);
        assert!(!outcome.alloc.as_ref().expect("alloc selected").roots.is_empty());
        assert!(!outcome.panic.as_ref().expect("panic selected").roots.is_empty());
        assert!(!outcome.atomics.as_ref().expect("atomics selected").ops.is_empty());
    }

    #[test]
    fn pass_selection_skips_unselected_passes() {
        let mut passes = PassSelection::none();
        passes.scan = true;
        let outcome =
            run(&AuditConfig { root: repo_root(), bless: false, passes }).expect("audit runs");
        assert!(outcome.scan.is_some());
        assert!(outcome.bounds.is_none());
        assert!(outcome.phase.is_none());
        assert!(outcome.alloc.is_none());
        assert!(outcome.panic.is_none());
        assert!(outcome.atomics.is_none());
        let lines = outcome.summary_lines();
        assert!(lines.iter().any(|l| l == "bounds: SKIPPED"), "{lines:?}");
        assert!(lines.iter().any(|l| l.starts_with("scan: PASS")), "{lines:?}");
    }

    #[test]
    fn self_check_catches_all_mutant_classes_on_real_sources() {
        let root = repo_root();
        let files = callgraph::read_tree(&root).unwrap();
        let executor =
            fs::read_to_string(root.join("crates/cake-core/src/executor.rs")).unwrap();
        let sync = fs::read_to_string(root.join("crates/cake-core/src/sync.rs")).unwrap();
        let proven: BTreeSet<String> = bounds::check()
            .proofs
            .iter()
            .filter(|p| p.method.is_some())
            .map(|p| p.name.to_string())
            .collect();
        let failures = self_check(&files, &executor, &sync, &proven, &PassSelection::all());
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn audit_json_is_emitted_for_all_passes() {
        let outcome =
            run(&AuditConfig { root: repo_root(), bless: false, passes: PassSelection::all() })
                .expect("audit runs");
        let json = outcome.to_json();
        for key in ["\"ok\"", "\"scan\"", "\"bounds\"", "\"phase\"", "\"alloc\"", "\"panic\"", "\"atomics\"", "\"self_check\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains(": null"), "no pass should be skipped here: {json}");
    }
}
