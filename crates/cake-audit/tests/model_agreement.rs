//! The bounds checker's interval model vs the real packing routines.
//!
//! The symbolic sites in `cake_audit::bounds` claim that the packing loops
//! touch exactly the element range `[0, need)` of their destination. This
//! test pins that claim to the actual code with a sentinel-fill instrument:
//! fill an oversized destination with NaN, run the real `pack_a`/`pack_b`,
//! and require that *every* index below the model's `need` was written
//! (zero padding included) and *no* index at or above it was — on random
//! draws of the extents, via the in-tree proptest shim. If a pack loop ever
//! drifts from the model (an off-by-one tail, a sliver stride change), the
//! agreement breaks here even though the symbolic proof still "passes" on
//! the stale model.

use std::collections::BTreeMap;

use cake_audit::bounds::sites;
use cake_audit::interval::Expr;
use cake_kernels::pack::{pack_a, pack_b, packed_a_size, packed_b_size};
use cake_matrix::init;
use proptest::prelude::*;

/// Slack elements appended past the model's `cap` so an overrun lands on a
/// still-sentinel index instead of out-of-bounds UB.
const PAD: usize = 64;

fn site_exprs(name: &str) -> (Expr, Expr) {
    let site = sites()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("site {name} missing"));
    (site.need, site.cap)
}

fn eval(e: &Expr, env: &[(&'static str, i128)]) -> usize {
    let env: BTreeMap<&'static str, i128> = env.iter().copied().collect();
    usize::try_from(e.eval(&env)).expect("model offsets are non-negative")
}

/// Fill `len + PAD` with NaN, run `fill`, and check the touched prefix is
/// exactly `[0, need)`.
fn check_touched(need: usize, len: usize, fill: impl FnOnce(&mut [f32])) {
    assert!(need <= len, "model must bound its own capacity");
    let mut dst = vec![f32::NAN; len + PAD];
    fill(&mut dst[..len]);
    for (i, x) in dst.iter().enumerate() {
        if i < need {
            assert!(!x.is_nan(), "index {i} < need {need} left unwritten");
        } else {
            assert!(x.is_nan(), "index {i} >= need {need} was written");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `pack_a` touches exactly `[0, need)` of its destination, where
    /// `need` is the `pack_a_sliver_tail` site's model expression.
    #[test]
    fn pack_a_matches_interval_model(
        ml in 1usize..40,
        kl in 1usize..24,
        mr in 1usize..12,
        seed in 0u64..1024,
    ) {
        let (need_e, cap_e) = site_exprs("pack_a_sliver_tail");
        let env = [("ml", ml as i128), ("mr", mr as i128), ("kl", kl as i128)];
        let need = eval(&need_e, &env);
        let cap = eval(&cap_e, &env);
        prop_assert_eq!(cap, packed_a_size(ml, kl, mr), "model cap vs real sizing");
        let a = init::random::<f32>(ml, kl, seed);
        check_touched(need, cap, |dst| pack_a(&a.view(), dst, mr));
    }

    /// `pack_b` touches exactly `[0, need)` of its destination, where
    /// `need` is the `pack_b_sliver_tail` site's model expression.
    #[test]
    fn pack_b_matches_interval_model(
        nl in 1usize..40,
        kl in 1usize..24,
        nr in 1usize..12,
        seed in 0u64..1024,
    ) {
        let (need_e, cap_e) = site_exprs("pack_b_sliver_tail");
        let env = [("nl", nl as i128), ("nr", nr as i128), ("kl", kl as i128)];
        let need = eval(&need_e, &env);
        let cap = eval(&cap_e, &env);
        prop_assert_eq!(cap, packed_b_size(kl, nl, nr), "model cap vs real sizing");
        let b = init::random::<f32>(kl, nl, seed);
        check_touched(need, cap, |dst| pack_b(&b.view(), dst, nr));
    }
}

/// The instrument itself has teeth: an off-by-one `need` in either
/// direction must fail the sentinel check.
#[test]
fn sentinel_instrument_detects_model_drift() {
    let (need_e, _) = site_exprs("pack_a_sliver_tail");
    let env = [("ml", 5i128), ("mr", 4i128), ("kl", 3i128)];
    let need = eval(&need_e, &env);
    let len = packed_a_size(5, 3, 4);
    let run = |claimed: usize| {
        std::panic::catch_unwind(|| {
            let a = init::random::<f32>(5, 3, 7);
            check_touched(claimed, len, |dst| pack_a(&a.view(), dst, 4));
        })
    };
    assert!(run(need).is_ok(), "true need must agree");
    assert!(run(need - 1).is_err(), "understated need must be caught");
    assert!(run(need + 1).is_err(), "overstated need must be caught");
}
