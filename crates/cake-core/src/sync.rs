//! Lock-free synchronization primitives for the CB-block pipeline.
//!
//! The executor pays exactly one barrier per CB block (see
//! [`crate::executor`]), so the barrier *is* the pipeline's residual
//! synchronization cost. `std::sync::Barrier` parks every waiter in the
//! kernel — a futex round-trip of microseconds per block, which at small
//! block counts rivals the packing it synchronizes. BLIS-style GEMM
//! runtimes (GotoBLAS, BLIS) instead spin on a shared flag in user space;
//! [`SpinBarrier`] is that primitive:
//!
//! * **Sense-reversing.** One shared `sense` flag plus a per-waiter local
//!   sense ([`WaiterSense`]). Arriving workers flip their local sense and
//!   spin until the shared flag matches it; the last arrival resets the
//!   count and publishes the flipped flag, releasing everyone. Because
//!   consecutive episodes wait on *opposite* flag values, the barrier is
//!   immediately reusable — a straggler from episode `i` can never be
//!   confused with an early arrival at episode `i + 1`.
//! * **Spin-then-yield.** Waiters spin with [`std::hint::spin_loop`] for a
//!   bounded burst, then fall back to [`std::thread::yield_now`]. On a
//!   machine with a core per worker the release is observed within tens of
//!   nanoseconds and the yield path never runs; oversubscribed (more
//!   workers than cores — CI containers, co-tenant machines), the yield
//!   donates the timeslice so the stragglers can run, guaranteeing
//!   progress instead of livelock.
//! * **Cache-line padded.** The arrival counter and the sense flag live on
//!   separate (128-byte) lines so the release store is not invalidated by
//!   late arrivals hammering the counter.
//!
//! The memory-ordering contract matches `std::sync::Barrier`: every write
//! sequenced before a [`SpinBarrier::wait`] happens-before everything
//! sequenced after the corresponding `wait` on every other worker
//! (arrivals `AcqRel` on the counter; the release publishes with
//! `Release`, waiters observe with `Acquire`).
//!
//! The `cake-verify` interleaving checker models this exact protocol
//! (arrive, last-arrival sense flip, release) and proves the executor's
//! pack/compute steps stay data-race-free under it; the `SkipBarriers`
//! and `StaleSense` mutants there demonstrate the checker would catch a
//! barrier that releases early or fails to reverse its sense.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Pad-and-align wrapper keeping one value per 128-byte line (two 64-byte
/// lines: adjacent-line prefetchers pull pairs, so 64 is not enough).
#[repr(align(128))]
struct CachePadded<T>(T);

/// Spin iterations before the waiter starts yielding its timeslice. Large
/// enough to cover the skew of healthy same-speed workers, small enough
/// that an oversubscribed waiter donates the CPU within ~a microsecond.
/// Under Miri every spin iteration is interpreted, so the burst is cut to
/// almost nothing and waiters go straight to yielding.
const SPIN_LIMIT: u32 = if cfg!(miri) { 4 } else { 4096 };

/// A reusable sense-reversing spin barrier for exactly `p` participants.
pub struct SpinBarrier {
    /// Workers arrived at the current episode.
    arrived: CachePadded<AtomicUsize>,
    /// The shared sense; flips once per episode when the last worker
    /// arrives.
    sense: CachePadded<AtomicBool>,
    p: usize,
}

/// Per-participant barrier state: which sense value the *next* episode
/// will release on. Obtain one per worker via [`SpinBarrier::waiter`] and
/// pass it to every [`SpinBarrier::wait`] call from that worker.
#[derive(Debug, Clone, Copy)]
pub struct WaiterSense {
    sense: bool,
}

impl SpinBarrier {
    /// A barrier for `p` participants.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "barrier needs at least one participant");
        Self {
            arrived: CachePadded(AtomicUsize::new(0)),
            sense: CachePadded(AtomicBool::new(false)),
            p,
        }
    }

    /// Participant count.
    pub fn participants(&self) -> usize {
        self.p
    }

    /// Fresh per-worker state. Every participant must create its own
    /// before its first [`wait`](Self::wait) and reuse it across episodes.
    pub fn waiter(&self) -> WaiterSense {
        // The shared flag starts `false`, so the first episode releases on
        // `true`.
        WaiterSense { sense: true }
    }

    /// Block (spinning, then yielding) until all `p` participants arrive.
    ///
    /// Establishes the same happens-before edges as
    /// `std::sync::Barrier::wait`. Returns `true` on exactly one
    /// participant per episode (the last arrival — the "leader").
    #[inline]
    pub fn wait(&self, ws: &mut WaiterSense) -> bool {
        let my_sense = ws.sense;
        // audit: fact sense-reversal
        ws.sense = !my_sense;
        // AcqRel: the arrival both publishes this worker's prior writes and
        // (for the leader) acquires every other worker's.
        // audit: fact arrive-acqrel
        if self.arrived.0.fetch_add(1, Ordering::AcqRel) + 1 == self.p {
            // Leader: reset for the next episode *before* the release store
            // so a released worker's next arrival finds a clean counter.
            self.arrived.0.store(0, Ordering::Relaxed);
            // audit: fact publish-release
            self.sense.0.store(my_sense, Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        // audit: fact spin-acquire
        while self.sense.0.load(Ordering::Acquire) != my_sense {
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                // Oversubscribed: the releasing worker may not even be
                // scheduled. Donate the timeslice instead of burning it.
                std::thread::yield_now();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_participant_returns_immediately_as_leader() {
        let b = SpinBarrier::new(1);
        let mut ws = b.waiter();
        for _ in 0..100 {
            assert!(b.wait(&mut ws), "sole participant is always the leader");
        }
    }

    #[test]
    fn barrier_separates_phases_across_threads() {
        let p = 4;
        let b = SpinBarrier::new(p);
        let pre = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..p {
                s.spawn(|| {
                    let mut ws = b.waiter();
                    pre.fetch_add(1, Ordering::SeqCst);
                    b.wait(&mut ws);
                    if pre.load(Ordering::SeqCst) != p {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        let p = 3;
        let rounds = 200;
        let b = SpinBarrier::new(p);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..p {
                s.spawn(|| {
                    let mut ws = b.waiter();
                    for _ in 0..rounds {
                        if b.wait(&mut ws) {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), rounds);
    }

    #[test]
    fn reuse_across_episodes_never_tears() {
        // A worker racing into episode i+1 while stragglers sit in episode
        // i is the classic non-sense-reversing bug; phase counts catch it.
        let p = 4;
        let rounds = 500;
        let b = SpinBarrier::new(p);
        let phase = AtomicUsize::new(0);
        let bad = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..p {
                s.spawn(|| {
                    let mut ws = b.waiter();
                    for r in 0..rounds {
                        phase.fetch_add(1, Ordering::SeqCst);
                        b.wait(&mut ws);
                        // Between the two waits every worker of round r has
                        // incremented and none of round r+1 has.
                        if phase.load(Ordering::SeqCst) != (r + 1) * p {
                            bad.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait(&mut ws);
                    }
                });
            }
        });
        assert_eq!(bad.load(Ordering::SeqCst), 0);
        assert_eq!(phase.load(Ordering::SeqCst), rounds * p);
    }

    /// The satellite oversubscription guarantee: with twice as many
    /// workers as cores every episode's release depends on threads the
    /// scheduler has parked, so a pure spin would crawl (or livelock on a
    /// single-core box); the yield fallback must keep the pipeline moving.
    #[test]
    fn oversubscribed_pool_makes_progress_through_many_episodes() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let p = (2 * cores).max(4);
        let pool = ThreadPool::new(p);
        let b = SpinBarrier::new(p);
        let rounds = 100;
        let phase = AtomicUsize::new(0);
        let bad = AtomicUsize::new(0);
        pool.broadcast(|_| {
            let mut ws = b.waiter();
            for r in 0..rounds {
                phase.fetch_add(1, Ordering::SeqCst);
                b.wait(&mut ws);
                if phase.load(Ordering::SeqCst) != (r + 1) * p {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
                b.wait(&mut ws);
            }
        });
        assert_eq!(bad.load(Ordering::SeqCst), 0);
        assert_eq!(phase.load(Ordering::SeqCst), rounds * p);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SpinBarrier::new(0);
    }
}
