//! Lock-free synchronization primitives for the CB-block pipeline.
//!
//! The executor pays exactly one barrier per CB block (see
//! [`crate::executor`]), so the barrier *is* the pipeline's residual
//! synchronization cost. `std::sync::Barrier` parks every waiter in the
//! kernel — a futex round-trip of microseconds per block, which at small
//! block counts rivals the packing it synchronizes. BLIS-style GEMM
//! runtimes (GotoBLAS, BLIS) instead spin on a shared flag in user space;
//! [`SpinBarrier`] is that primitive:
//!
//! * **Sense-reversing.** One shared `sense` flag plus a per-waiter local
//!   sense ([`WaiterSense`]). Arriving workers flip their local sense and
//!   spin until the shared flag matches it; the last arrival resets the
//!   count and publishes the flipped flag, releasing everyone. Because
//!   consecutive episodes wait on *opposite* flag values, the barrier is
//!   immediately reusable — a straggler from episode `i` can never be
//!   confused with an early arrival at episode `i + 1`.
//! * **Spin, then yield, then park.** Waiters spin with
//!   [`std::hint::spin_loop`] for a bounded burst, fall back to
//!   [`std::thread::yield_now`] for a bounded number of donated
//!   timeslices, and finally *park* on a `Condvar` until the release. On a
//!   machine with a core per worker the release is observed within tens of
//!   nanoseconds and neither fallback runs; oversubscribed (more workers
//!   than cores — CI containers, co-tenant machines), the yield phase
//!   keeps latency low while the scheduler rotates stragglers in, and the
//!   park phase stops the barrier from burning whole timeslices per
//!   episode when yielding alone is not converging. [`BarrierMode`] only
//!   tunes the phase budgets: [`BarrierMode::Spin`] (the default) trusts
//!   the host and escalates late; [`BarrierMode::Park`] — auto-selected by
//!   the executor when effective `p` exceeds the available cores — goes to
//!   sleep almost immediately.
//!
//!   The park handshake is the classic two-flag protocol: a waiter
//!   advertises itself in `parked` (SeqCst RMW), fences, and re-checks the
//!   sense under the condvar's mutex before sleeping; the leader publishes
//!   the sense, fences, and only then reads `parked` — acquiring the same
//!   mutex before `notify_all`. In the SC order either the leader's read
//!   observes the waiter (and the mutex/notify pair wakes it), or the
//!   waiter's re-check observes the published sense (and it never sleeps).
//!   A lost wakeup would require both loads to miss both stores across the
//!   paired SeqCst fences, which sequential consistency forbids. The
//!   `ParkLostWakeup` mutant in `cake-verify`'s interleaving checker
//!   demonstrates the deadlock a leader that skips parked waiters would
//!   cause — and that the checker catches it.
//! * **Cache-line padded.** The arrival counter and the sense flag live on
//!   separate (128-byte) lines so the release store is not invalidated by
//!   late arrivals hammering the counter.
//!
//! The memory-ordering contract matches `std::sync::Barrier`: every write
//! sequenced before a [`SpinBarrier::wait`] happens-before everything
//! sequenced after the corresponding `wait` on every other worker
//! (arrivals `AcqRel` on the counter; the release publishes with
//! `Release`, waiters observe with `Acquire`).
//!
//! The `cake-verify` interleaving checker models this exact protocol
//! (arrive, last-arrival sense flip, release) and proves the executor's
//! pack/compute steps stay data-race-free under it; the `SkipBarriers`
//! and `StaleSense` mutants there demonstrate the checker would catch a
//! barrier that releases early or fails to reverse its sense.

use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Pad-and-align wrapper keeping one value per 128-byte line (two 64-byte
/// lines: adjacent-line prefetchers pull pairs, so 64 is not enough).
#[repr(align(128))]
struct CachePadded<T>(T);

/// Spin iterations before the waiter starts yielding its timeslice. Large
/// enough to cover the skew of healthy same-speed workers, small enough
/// that an oversubscribed waiter donates the CPU within ~a microsecond.
/// Under Miri every spin iteration is interpreted, so the burst is cut to
/// almost nothing and waiters go straight to yielding.
const SPIN_LIMIT: u32 = if cfg!(miri) { 4 } else { 4096 };

/// Yielded timeslices before a [`BarrierMode::Spin`] waiter concludes the
/// release is not converging (the leader is descheduled, or the pool is
/// oversubscribed after all) and escalates to parking. Each yield is a
/// full donated timeslice, so this threshold is generous for healthy
/// hosts yet bounds the worst-case burn to well under a scheduling
/// quantum's worth of yields.
const YIELD_LIMIT: u32 = if cfg!(miri) { 2 } else { 64 };

/// How eagerly a waiter escalates through spin → yield → park.
///
/// The *protocol* (sense reversal, arrival counting, release publication)
/// is identical in both modes — only the phase budgets differ — so every
/// correctness property proven for the barrier holds regardless of mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BarrierMode {
    /// Full spin burst, bounded yields, park only as a last resort. Right
    /// when each worker has a core: the release is observed while
    /// spinning and the fallbacks never run.
    #[default]
    Spin,
    /// Minimal spin, a single yield, then park on the condvar. Right when
    /// workers outnumber available cores: a spinning waiter would only
    /// steal the timeslice the releasing worker needs.
    Park,
}

impl BarrierMode {
    /// Mode for `p` workers on a host exposing `cores`: park as soon as
    /// the workers cannot all run concurrently.
    pub fn auto(p: usize, cores: usize) -> Self {
        if p > cores {
            BarrierMode::Park
        } else {
            BarrierMode::Spin
        }
    }

    /// `(spin, yield)` budgets before parking.
    fn budgets(self) -> (u32, u32) {
        match self {
            BarrierMode::Spin => (SPIN_LIMIT, YIELD_LIMIT),
            BarrierMode::Park => (if cfg!(miri) { 2 } else { 64 }, 1),
        }
    }

    /// Stable lowercase name for stats output and bench JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            BarrierMode::Spin => "spin",
            BarrierMode::Park => "park",
        }
    }
}

impl std::fmt::Display for BarrierMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A reusable sense-reversing spin barrier for exactly `p` participants.
pub struct SpinBarrier {
    /// Workers arrived at the current episode.
    arrived: CachePadded<AtomicUsize>,
    /// The shared sense; flips once per episode when the last worker
    /// arrives.
    sense: CachePadded<AtomicBool>,
    p: usize,
    mode: BarrierMode,
    /// Waiters that have advertised an intent to sleep on `cvar`. Written
    /// with SeqCst RMWs and read by the leader after a SeqCst fence — the
    /// Dekker half that makes the skip-notify fast path sound.
    parked: AtomicUsize,
    /// Guards the sense re-check before sleeping; the leader acquires it
    /// between publishing the sense and notifying, so a waiter is either
    /// not yet asleep (and re-checks successfully) or already on the
    /// condvar (and receives the notify).
    park_lock: Mutex<()>,
    park_cvar: Condvar,
}

/// Per-participant barrier state: which sense value the *next* episode
/// will release on. Obtain one per worker via [`SpinBarrier::waiter`] and
/// pass it to every [`SpinBarrier::wait`] call from that worker.
#[derive(Debug, Clone, Copy)]
pub struct WaiterSense {
    sense: bool,
}

impl SpinBarrier {
    /// A barrier for `p` participants.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        Self::with_mode(p, BarrierMode::Spin)
    }

    /// A barrier for `p` participants with an explicit escalation mode —
    /// typically [`BarrierMode::auto`] of the worker count and the host's
    /// available cores.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn with_mode(p: usize, mode: BarrierMode) -> Self {
        // audit: cold constructor precondition, once per barrier construction
        assert!(p > 0, "barrier needs at least one participant");
        Self {
            arrived: CachePadded(AtomicUsize::new(0)),
            sense: CachePadded(AtomicBool::new(false)),
            p,
            mode,
            parked: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            park_cvar: Condvar::new(),
        }
    }

    /// Participant count.
    pub fn participants(&self) -> usize {
        self.p
    }

    /// The escalation mode this barrier was built with.
    pub fn mode(&self) -> BarrierMode {
        self.mode
    }

    /// Fresh per-worker state. Every participant must create its own
    /// before its first [`wait`](Self::wait) and reuse it across episodes.
    pub fn waiter(&self) -> WaiterSense {
        // The shared flag starts `false`, so the first episode releases on
        // `true`.
        WaiterSense { sense: true }
    }

    /// Block (spinning, then yielding, then parking) until all `p`
    /// participants arrive.
    ///
    /// Establishes the same happens-before edges as
    /// `std::sync::Barrier::wait`. Returns `true` on exactly one
    /// participant per episode (the last arrival — the "leader").
    #[inline]
    pub fn wait(&self, ws: &mut WaiterSense) -> bool {
        let my_sense = ws.sense;
        // audit: fact sense-reversal
        ws.sense = !my_sense;
        // AcqRel: the arrival both publishes this worker's prior writes and
        // (for the leader) acquires every other worker's.
        // audit: fact arrive-acqrel
        if self.arrived.0.fetch_add(1, Ordering::AcqRel) + 1 == self.p {
            // Leader: reset for the next episode *before* the release store
            // so a released worker's next arrival finds a clean counter.
            // Relaxed is enough: the reset is ordered before the Release
            // publish below, and no waiter reads the counter until its own
            // next AcqRel arrival (which acquires the publish).
            // audit: fact counter-reset-relaxed
            self.arrived.0.store(0, Ordering::Relaxed);
            // audit: fact publish-release
            self.sense.0.store(my_sense, Ordering::Release);
            self.wake_parked();
            return true;
        }
        let (spin_budget, yield_budget) = self.mode.budgets();
        let (mut spins, mut yields) = (0u32, 0u32);
        // audit: fact spin-acquire
        while self.sense.0.load(Ordering::Acquire) != my_sense {
            if spins < spin_budget {
                spins += 1;
                std::hint::spin_loop();
            } else if yields < yield_budget {
                // Oversubscribed: the releasing worker may not even be
                // scheduled. Donate the timeslice instead of burning it.
                yields += 1;
                std::thread::yield_now();
            } else {
                // Yielding is not converging (or the mode says not to
                // bother): sleep until the leader's release.
                self.park_until(my_sense);
                break;
            }
        }
        false
    }

    /// Sleep on the condvar until the shared sense equals `my_sense`.
    ///
    /// Pairs with [`wake_parked`](Self::wake_parked); see the module docs
    /// for the SC-fence argument that rules out a lost wakeup.
    #[cold]
    fn park_until(&self, my_sense: bool) {
        // Advertise before the final sense check: the SeqCst RMW + fence
        // order this advert before the re-check in the SC total order.
        self.parked.fetch_add(1, Ordering::SeqCst);
        // audit: fact park-advertise-seqcst
        fence(Ordering::SeqCst);
        {
            let mut guard = self
                .park_lock
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            while self.sense.0.load(Ordering::Acquire) != my_sense {
                guard = self
                    .park_cvar
                    .wait(guard)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Leader-side half of the park handshake, called after the release
    /// store. Reads `parked` behind a SeqCst fence so that a waiter whose
    /// advert this read misses is guaranteed to observe the already
    /// published sense in its own fenced re-check and never sleep.
    #[cold]
    fn wake_parked(&self) {
        // audit: fact leader-fence-seqcst
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders this notify after any waiter that won
            // the lock first has reached `Condvar::wait` (which releases
            // the lock only once the waiter is queued).
            drop(
                self.park_lock
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            );
            self.park_cvar.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_participant_returns_immediately_as_leader() {
        let b = SpinBarrier::new(1);
        let mut ws = b.waiter();
        for _ in 0..100 {
            assert!(b.wait(&mut ws), "sole participant is always the leader");
        }
    }

    #[test]
    fn barrier_separates_phases_across_threads() {
        let p = 4;
        let b = SpinBarrier::new(p);
        let pre = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..p {
                s.spawn(|| {
                    let mut ws = b.waiter();
                    pre.fetch_add(1, Ordering::SeqCst);
                    b.wait(&mut ws);
                    if pre.load(Ordering::SeqCst) != p {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        let p = 3;
        let rounds = 200;
        let b = SpinBarrier::new(p);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..p {
                s.spawn(|| {
                    let mut ws = b.waiter();
                    for _ in 0..rounds {
                        if b.wait(&mut ws) {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), rounds);
    }

    #[test]
    fn reuse_across_episodes_never_tears() {
        // A worker racing into episode i+1 while stragglers sit in episode
        // i is the classic non-sense-reversing bug; phase counts catch it.
        let p = 4;
        let rounds = 500;
        let b = SpinBarrier::new(p);
        let phase = AtomicUsize::new(0);
        let bad = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..p {
                s.spawn(|| {
                    let mut ws = b.waiter();
                    for r in 0..rounds {
                        phase.fetch_add(1, Ordering::SeqCst);
                        b.wait(&mut ws);
                        // Between the two waits every worker of round r has
                        // incremented and none of round r+1 has.
                        if phase.load(Ordering::SeqCst) != (r + 1) * p {
                            bad.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait(&mut ws);
                    }
                });
            }
        });
        assert_eq!(bad.load(Ordering::SeqCst), 0);
        assert_eq!(phase.load(Ordering::SeqCst), rounds * p);
    }

    /// The satellite oversubscription guarantee: with twice as many
    /// workers as cores every episode's release depends on threads the
    /// scheduler has parked, so a pure spin would crawl (or livelock on a
    /// single-core box); the yield fallback must keep the pipeline moving.
    #[test]
    fn oversubscribed_pool_makes_progress_through_many_episodes() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let p = (2 * cores).max(4);
        let pool = ThreadPool::new(p);
        let b = SpinBarrier::new(p);
        let rounds = 100;
        let phase = AtomicUsize::new(0);
        let bad = AtomicUsize::new(0);
        pool.broadcast(|_| {
            let mut ws = b.waiter();
            for r in 0..rounds {
                phase.fetch_add(1, Ordering::SeqCst);
                b.wait(&mut ws);
                if phase.load(Ordering::SeqCst) != (r + 1) * p {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
                b.wait(&mut ws);
            }
        });
        assert_eq!(bad.load(Ordering::SeqCst), 0);
        assert_eq!(phase.load(Ordering::SeqCst), rounds * p);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SpinBarrier::new(0);
    }

    #[test]
    fn auto_mode_parks_exactly_when_oversubscribed() {
        assert_eq!(BarrierMode::auto(2, 1), BarrierMode::Park);
        assert_eq!(BarrierMode::auto(8, 4), BarrierMode::Park);
        assert_eq!(BarrierMode::auto(2, 2), BarrierMode::Spin);
        assert_eq!(BarrierMode::auto(1, 1), BarrierMode::Spin);
        assert_eq!(BarrierMode::auto(4, 16), BarrierMode::Spin);
        assert_eq!(SpinBarrier::new(2).mode(), BarrierMode::Spin);
        assert_eq!(
            SpinBarrier::with_mode(2, BarrierMode::Park).mode(),
            BarrierMode::Park
        );
        assert_eq!(BarrierMode::Park.as_str(), "park");
        assert_eq!(BarrierMode::Spin.to_string(), "spin");
    }

    /// The park-mode analogue of the oversubscription test: every episode's
    /// release must wake parked waiters (the `ParkLostWakeup` mutant in
    /// cake-verify is exactly a leader that fails to), and the phase
    /// separation guarantee is mode-independent.
    #[test]
    fn park_mode_makes_progress_when_oversubscribed() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let p = (2 * cores).max(4);
        let pool = ThreadPool::new(p);
        let b = SpinBarrier::with_mode(p, BarrierMode::Park);
        let rounds = 100;
        let phase = AtomicUsize::new(0);
        let bad = AtomicUsize::new(0);
        pool.broadcast(|_| {
            let mut ws = b.waiter();
            for r in 0..rounds {
                phase.fetch_add(1, Ordering::SeqCst);
                b.wait(&mut ws);
                if phase.load(Ordering::SeqCst) != (r + 1) * p {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
                b.wait(&mut ws);
            }
        });
        assert_eq!(bad.load(Ordering::SeqCst), 0);
        assert_eq!(phase.load(Ordering::SeqCst), rounds * p);
    }

    /// Force the full spin -> yield -> park escalation: the leader arrives
    /// long after the waiter's budgets expire, so the waiter is genuinely
    /// asleep on the condvar and must be woken — twice, to prove the
    /// handshake is reusable across episodes.
    #[test]
    #[cfg_attr(miri, ignore = "relies on wall-clock sleep to force parking")]
    fn parked_waiter_is_woken_by_late_leader() {
        let b = SpinBarrier::with_mode(2, BarrierMode::Park);
        let woken = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut ws = b.waiter();
                for _ in 0..2 {
                    b.wait(&mut ws);
                    woken.fetch_add(1, Ordering::SeqCst);
                }
            });
            let mut ws = b.waiter();
            for episode in 1..=2 {
                // Far beyond Park's one yield: the waiter is parked by now.
                std::thread::sleep(std::time::Duration::from_millis(50));
                assert_eq!(woken.load(Ordering::SeqCst), episode - 1);
                b.wait(&mut ws);
                while woken.load(Ordering::SeqCst) < episode {
                    std::hint::spin_loop();
                }
            }
        });
        assert_eq!(woken.load(Ordering::SeqCst), 2);
    }
}
