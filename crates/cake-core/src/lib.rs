//! CAKE — constant-bandwidth-block matrix multiplication (SC '21).
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`shape`] — analytical CB-block shaping and sizing (Section 3): given
//!   `p` cores, cache sizes, and a DRAM-bandwidth factor `alpha`, derive the
//!   `p*mc x kc x alpha*p*mc` block that keeps external bandwidth constant.
//! * [`model`] — the closed-form resource model (Equations 1–6): local
//!   memory footprint, minimum external bandwidth, and internal bandwidth
//!   for both the abstract machine and the CPU instantiation.
//! * [`schedule`] — the K-first snake block schedule (Section 2.2,
//!   Algorithm 2) with inter-block surface-sharing annotations.
//! * [`traffic`] — exact DRAM traffic accounting for an arbitrary block
//!   schedule, used by tests, the ablation benches, and the simulator.
//! * [`pool`] — a persistent worker pool with static core-to-strip
//!   assignment (CAKE pins one `A` region per core) and optional
//!   core-affinity pinning.
//! * [`sync`] — the cache-padded sense-reversing [`sync::SpinBarrier`]
//!   (spin → yield → park, mode-selected per [`sync::BarrierMode`]) that
//!   replaces the kernel futex barrier on the executor's hot path.
//! * [`topology`] — host-core detection and effective-`p` clamping, so the
//!   requested `p` shapes blocks while the spawned worker count never
//!   exceeds what the host can actually run.
//! * [`executor`] — the multithreaded, software-pipelined CB-block GEMM
//!   engine (double-buffered B panels, balanced M-strip partitioning, one
//!   rotation barrier per block).
//! * [`panel`] — the deterministic LRU B-panel ring state machine, public
//!   so verifiers can replay exactly what the executor runs.
//! * [`workspace`] — reusable packed-operand buffers so repeated GEMMs are
//!   allocation-free after warmup.
//! * [`api`] — drop-in entry points [`api::cake_sgemm`] / [`api::cake_dgemm`].
//! * [`tune`] — `alpha` selection from available DRAM bandwidth (Section 3.2).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
mod counters;
pub mod executor;
pub mod model;
pub mod panel;
pub mod pool;
pub mod schedule;
pub mod shared;
pub mod shape;
pub mod sync;
pub mod topology;
pub mod traffic;
pub mod tune;
pub mod workspace;

pub use api::{cake_dgemm, cake_gemm, cake_sgemm, CakeConfig};
pub use executor::ExecStats;
pub use model::CakeModel;
pub use panel::{ring_depth, PanelAction, PanelCache};
pub use schedule::{BlockCoord, BlockGrid, Dim, KFirstSchedule, SnakeSchedule};
pub use shape::CbBlockShape;
pub use sync::{BarrierMode, SpinBarrier};
pub use tune::{
    candidate_points, candidate_shapes, AlphaSource, TuneCandidate, TuneDecision, TuneTable,
    TunedEntry,
};
pub use workspace::GemmWorkspace;
