//! `alpha` selection from available DRAM bandwidth (paper Section 3.2).
//!
//! The external-bandwidth factor is `R = BW_available / BW_unit`, where
//! `BW_unit` is the bandwidth that one "side" of the CB block demands at
//! `alpha -> infinity` (the irreducible A-surface stream). Section 3.2 shows
//! the minimum-bandwidth constraint `BW_ext >= BW_min` is satisfied exactly
//! when `alpha >= 1 / (R - 1)`; `alpha = 1` suffices whenever `R >= 2`.

use crate::model::alpha_min_for_bw_factor;
use crate::shape::CbBlockShape;
use crate::sync::BarrierMode;

/// Upper bound on auto-selected `alpha`: beyond this the partial-C panel
/// dwarfs any realistic LLC and compute time per block grows without
/// benefit.
pub const ALPHA_CAP: f64 = 16.0;

/// Irreducible per-block external bandwidth unit in GB/s: the A-surface
/// stream rate `macs_per_cycle / mc * elem_bytes * freq_ghz` (the paper's
/// `k` tiles/cycle converted to CPU units).
pub fn bw_unit_gbs(mc: usize, macs_per_cycle: f64, elem_bytes: usize, freq_ghz: f64) -> f64 {
    assert!(mc > 0);
    macs_per_cycle / mc as f64 * elem_bytes as f64 * freq_ghz
}

/// Select the smallest `alpha >= 1` whose CB block fits the available DRAM
/// bandwidth, clamped to [`ALPHA_CAP`].
///
/// Returns `ALPHA_CAP` when the bandwidth is at or below the irreducible
/// unit (`R <= 1`): the block is made as IO-light as allowed and the
/// computation will necessarily be bandwidth-bound.
pub fn select_alpha(
    dram_bw_gbs: f64,
    mc: usize,
    macs_per_cycle: f64,
    elem_bytes: usize,
    freq_ghz: f64,
) -> f64 {
    assert!(dram_bw_gbs > 0.0, "DRAM bandwidth must be positive");
    let unit = bw_unit_gbs(mc, macs_per_cycle, elem_bytes, freq_ghz);
    let r = dram_bw_gbs / unit;
    if r <= 1.0 + 1e-9 {
        return ALPHA_CAP;
    }
    alpha_min_for_bw_factor(r).min(ALPHA_CAP)
}

/// Convenience: required DRAM bandwidth (GB/s) of a shape under a given
/// kernel rate — used to sanity-check a selected `alpha`.
pub fn required_bw_gbs(
    shape: &CbBlockShape,
    macs_per_cycle: f64,
    elem_bytes: usize,
    freq_ghz: f64,
) -> f64 {
    let alpha = shape.alpha();
    (alpha + 1.0) / alpha * bw_unit_gbs(shape.mc, macs_per_cycle, elem_bytes, freq_ghz)
}

/// Largest `alpha` whose CB block still satisfies the Section 4.3 LRU rule
/// for an LLC of `llc_elems` elements with `mc` fixed (the L2-bound
/// regime): solves `alpha*p^2*mc^2 + 2*(p*mc^2 + alpha*p*mc^2) <= S`.
///
/// Used as the default when no DRAM-bandwidth hint is available: widening
/// the block can only *reduce* external bandwidth demand (Eq. 2), and the
/// spare LLC capacity is otherwise idle. Clamped to `[1, ALPHA_CAP]`.
pub fn alpha_fill_llc(p: usize, mc: usize, llc_elems: usize) -> f64 {
    assert!(p > 0 && mc > 0);
    let s = llc_elems as f64;
    let (pf, mcf) = (p as f64, (mc * mc) as f64);
    let denom = pf * pf * mcf + 2.0 * pf * mcf; // alpha-proportional terms
    let fixed = 2.0 * pf * mcf; // the A surface's double-buffer share
    if denom <= 0.0 {
        return 1.0;
    }
    ((s - fixed) / denom).clamp(1.0, ALPHA_CAP)
}

/// Where the tuner's `alpha` came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaSource {
    /// `CakeConfig::alpha` was set explicitly by the caller.
    Explicit,
    /// Derived from the DRAM-bandwidth hint via [`select_alpha`]
    /// (Section 3.2: `alpha >= 1 / (R - 1)`).
    BandwidthModel,
    /// No hint: widened to fill the spare LLC via [`alpha_fill_llc`]
    /// (a wider block only lowers the Eq. 2 bandwidth demand).
    LlcFill,
    /// `CakeConfig::fixed_shape` carried a shape from the autotune cache
    /// ([`TuneTable`]); the analytic derivation was bypassed.
    Autotuned,
}

impl AlphaSource {
    /// One-line rationale for `--explain` output.
    pub fn describe(self) -> &'static str {
        match self {
            AlphaSource::Explicit => "explicit config",
            AlphaSource::BandwidthModel => {
                "Section 3.2 bandwidth model (alpha >= 1/(R-1))"
            }
            AlphaSource::LlcFill => {
                "LLC fill (no DRAM bandwidth hint; spare LLC only lowers Eq. 2 demand)"
            }
            AlphaSource::Autotuned => {
                "autotune cache (shape measured faster than the closed form on this host)"
            }
        }
    }
}

/// The full record of one shape-tuning decision — every input the tuner
/// consulted and every intermediate bound, so a regression in shaping is
/// diagnosable from `cakectl gemm --explain` without a debugger.
///
/// Produced by `CakeConfig::explain_shape`; `resolve_shape` is the same
/// computation keeping only [`shape`](Self::shape).
#[derive(Debug, Clone)]
pub struct TuneDecision {
    /// The p the caller asked for — drives the block geometry and the
    /// analytic model.
    pub requested_p: usize,
    /// Workers that will actually be spawned
    /// ([`crate::topology::effective_p`]).
    pub effective_p: usize,
    /// Cores available to this process when the decision was made.
    pub host_cores: usize,
    /// Rotation-barrier strategy [`BarrierMode::auto`] will select for the
    /// effective worker count on this host.
    pub barrier_mode: BarrierMode,
    /// The chosen aspect factor.
    pub alpha: f64,
    /// Why that `alpha`.
    pub alpha_source: AlphaSource,
    /// Raw `mc` upper bound from the per-core L2 (elements, before
    /// kernel-tile rounding).
    pub mc_l2: usize,
    /// Raw `mc` upper bound from the Section 4.3 LLC LRU rule.
    pub mc_llc: usize,
    /// The cache-derived shape before any problem clamping.
    pub analytic: CbBlockShape,
    /// The final shape after clamping to the problem extents.
    pub shape: CbBlockShape,
    /// Whether the final shape satisfies `C + 2(A + B) <= S` for the
    /// configured LLC.
    pub lru_ok: bool,
    /// Name of the microkernel whose `(mr, nr)` the block geometry was
    /// derived from (e.g. `"avx512_f32_14x32"`; empty when the caller
    /// passed raw tile dims rather than a selected kernel).
    pub kernel: &'static str,
}

impl TuneDecision {
    /// Multi-line human-readable explanation (the `--explain` body).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let clamp = if self.effective_p < self.requested_p {
            " (clamped: oversubscribing burns timeslices at every barrier)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "p: requested {} on {} host core(s) -> effective {}{}",
            self.requested_p, self.host_cores, self.effective_p, clamp
        );
        let why_mode = match self.barrier_mode {
            BarrierMode::Spin => "every worker has a core; spin observes the release in ~ns",
            BarrierMode::Park => "workers exceed cores; park instead of spin-thrashing",
        };
        let _ = writeln!(out, "barrier: {} ({})", self.barrier_mode, why_mode);
        if !self.kernel.is_empty() {
            let _ = writeln!(out, "kernel: {} (tile dims drive mc/nc rounding)", self.kernel);
        }
        let _ = writeln!(
            out,
            "alpha: {:.2} via {}",
            self.alpha,
            self.alpha_source.describe()
        );
        let binding = if self.mc_llc <= self.mc_l2 {
            "LLC-LRU binds"
        } else {
            "L2 binds"
        };
        let _ = writeln!(
            out,
            "mc bounds: L2 <= {} elems, LLC-LRU <= {} elems -> {} -> analytic mc = {}",
            self.mc_l2, self.mc_llc, binding, self.analytic.mc
        );
        if self.shape != self.analytic {
            let _ = writeln!(
                out,
                "problem clamp: {} -> {}",
                self.analytic, self.shape
            );
        }
        let _ = writeln!(
            out,
            "shape: {} mc={} kc={} nc={}; LRU fit C+2(A+B) <= S: {}",
            self.shape,
            self.shape.mc,
            self.shape.kc,
            self.shape.nc,
            if self.lru_ok { "ok" } else { "EXCEEDED" }
        );
        out
    }
}

impl std::fmt::Display for TuneDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// How well the pipelined executor hid packing IO under compute, from a
/// call's measured [`ExecStats`](crate::executor::ExecStats) phase timings.
///
/// Returns the fraction of pack time that overlaps compute under the
/// constant-bandwidth assumption that both phases stream at their measured
/// rates: `1.0` when packing fits entirely under compute
/// (`pack_ns <= compute_ns`, the regime the CB block shape is chosen for),
/// degrading toward `compute/pack` when the call is pack-bound. An idle
/// call (both zero) reports `1.0` — nothing needed hiding.
pub fn overlap_efficiency(pack_ns: u64, compute_ns: u64) -> f64 {
    if pack_ns == 0 {
        return 1.0;
    }
    if pack_ns <= compute_ns {
        1.0
    } else {
        compute_ns as f64 / pack_ns as f64
    }
}

// ---------------------------------------------------------------------------
// Autotune candidate generation and the persistent shape×dtype table.
//
// The closed form above picks one shape per (cache geometry, kernel tile);
// the autotuner instead *enumerates* a deterministic candidate set per
// kernel tier, has cake-sim score it on a host-shaped CpuConfig, optionally
// refines the leaders with on-host micro-bench runs (cake-bench), and
// persists winners keyed by (m, k, n, dtype, p) so later runs pay a single
// cold table load. Everything here is cold-path: tuning happens before the
// first GEMM, never inside one.
// ---------------------------------------------------------------------------

/// One autotune candidate: a CB block shape plus the kernel tier whose
/// register tile `(mr, nr)` the shape is aligned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneCandidate {
    /// Kernel tier the shape targets.
    pub tier: cake_kernels::KernelTier,
    /// Register-tile rows of that tier's primary kernel for the dtype.
    pub mr: usize,
    /// Register-tile cols of that tier's primary kernel for the dtype.
    pub nr: usize,
    /// The candidate block shape (one-level; `mc % mr == 0`,
    /// `nc % nr == 0`, LRU-feasible for the given LLC).
    pub shape: CbBlockShape,
}

/// Deterministic candidate `(mc, kc, nc)` grid for one kernel tile
/// `(mr, nr)`: `mc` sweeps kernel-aligned fractions/multiples of the
/// closed-form `mc`, `kc` sweeps `{mc, 2mc, 4mc, 256, 512}` (the closed
/// form pins `kc = mc`; a deeper `kc` amortizes packing and C-update
/// overhead per block at the cost of a fatter A panel), and `nc` sweeps
/// `alpha in {1, 2, 4}` widths plus the LLC-fill width. Every returned
/// shape is clamped to the problem extents, satisfies the Section 4.3 LRU
/// rule for `llc_bytes`, and has `mc % mr == 0`, `nc % nr == 0`. Sorted
/// and deduplicated, capped at [`CANDIDATE_CAP`] — a pure function of its
/// arguments, so tuning is reproducible.
#[allow(clippy::too_many_arguments)]
pub fn candidate_shapes(
    p: usize,
    mr: usize,
    nr: usize,
    l2_bytes: usize,
    llc_bytes: usize,
    elem_bytes: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<CbBlockShape> {
    assert!(p > 0 && mr > 0 && nr > 0, "p, mr, nr must be positive");
    assert!(m > 0 && k > 0 && n > 0, "problem extents must be positive");
    let base = CbBlockShape::derive(p, 1.0, l2_bytes, llc_bytes, elem_bytes, mr, nr);
    let mc0 = base.mc;
    // Keep every worker busy on small M, as the api-layer clamp does.
    let strip = m.div_ceil(p).div_ceil(mr).max(1) * mr;
    let mut mcs: Vec<usize> = [mr, mc0 / 2, mc0, mc0 * 3 / 2, mc0 * 2]
        .iter()
        .map(|&c| {
            let c = (c / mr).max(1) * mr;
            CbBlockShape::balance_mc(m, p, c.min(strip).max(mr), mr)
        })
        .collect();
    mcs.sort_unstable();
    mcs.dedup();

    let n_cap = n.div_ceil(nr).max(1) * nr;
    let llc_elems = llc_bytes / elem_bytes.max(1);
    let mut out: Vec<CbBlockShape> = Vec::new();
    for &mc in &mcs {
        for kc_raw in [mc, 2 * mc, 4 * mc, 256, 512] {
            let kc = kc_raw.min(k.max(1)).max(1);
            // alpha sweeps plus the LLC-fill width for this (mc, kc).
            let fill = alpha_fill_llc(p, mc, llc_elems);
            let mut ncs = [
                p * mc,
                2 * p * mc,
                4 * p * mc,
                ((fill * (p * mc) as f64) as usize).max(nr),
            ];
            ncs.sort_unstable();
            for nc_raw in ncs {
                let nc = nc_raw.div_ceil(nr).max(1) * nr;
                let nc = nc.min(n_cap).max(nr);
                let shape = CbBlockShape::fixed(p, mc, kc, nc);
                if shape.fits_llc_lru(llc_bytes, elem_bytes) {
                    out.push(shape);
                }
            }
        }
    }
    // The closed-form (LLC-fill) default always competes, so the tuned
    // winner can never be worse than the analytic choice in-simulator.
    let alpha = alpha_fill_llc(p, mc0.max(1), llc_elems);
    let analytic = CbBlockShape::derive(p, alpha, l2_bytes, llc_bytes, elem_bytes, mr, nr);
    let clamped = crate::api::clamp_shape_to_problem(analytic, m, k, n, mr, nr);
    if clamped.fits_llc_lru(llc_bytes, elem_bytes) {
        out.push(clamped);
    }
    out.sort_unstable_by_key(|s| (s.mc, s.kc, s.nc));
    out.dedup();
    out.truncate(CANDIDATE_CAP);
    out
}

/// Upper bound on candidates per kernel tier, keeping a full tune run
/// (candidates × simulator) in the tens-of-milliseconds range.
pub const CANDIDATE_CAP: usize = 64;

/// [`candidate_shapes`] across every registered kernel tier for `dtype`
/// (`"f32"`/`"f64"`/`"int8"`/`"bf16"`), tile dims from
/// [`cake_kernels::registered_tile`]. Tiers the *host* cannot run are still
/// generated — the simulator can score them and the micro-bench refiner
/// filters by actual dispatchability.
#[allow(clippy::too_many_arguments)] // mirrors candidate_shapes' problem+host signature
pub fn candidate_points(
    dtype: &str,
    p: usize,
    m: usize,
    k: usize,
    n: usize,
    l2_bytes: usize,
    llc_bytes: usize,
    elem_bytes: usize,
) -> Vec<TuneCandidate> {
    let mut out = Vec::new();
    for tier in cake_kernels::KernelTier::ALL {
        let Some((mr, nr)) = cake_kernels::registered_tile(tier, dtype) else {
            continue;
        };
        for shape in candidate_shapes(p, mr, nr, l2_bytes, llc_bytes, elem_bytes, m, k, n) {
            out.push(TuneCandidate { tier, mr, nr, shape });
        }
    }
    out
}

/// One persisted autotune winner: the key `(m, k, n, dtype, p)` plus the
/// winning `(mc, kc, nc, tier)` and the throughput that won it.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedEntry {
    /// Problem rows.
    pub m: usize,
    /// Problem depth.
    pub k: usize,
    /// Problem cols.
    pub n: usize,
    /// Element dtype name (`"f32"`/`"f64"`/`"int8"`/`"bf16"`).
    pub dtype: String,
    /// Worker count the shape was tuned for.
    pub p: usize,
    /// Winning per-core block rows.
    pub mc: usize,
    /// Winning block depth.
    pub kc: usize,
    /// Winning block cols.
    pub nc: usize,
    /// Winning kernel tier name ([`cake_kernels::KernelTier::name`]).
    pub tier: String,
    /// Measured (or simulated, when micro-bench was skipped) GFLOP/s.
    pub gflops: f64,
}

impl TunedEntry {
    /// The entry's block shape.
    pub fn shape(&self) -> CbBlockShape {
        CbBlockShape::fixed(self.p.max(1), self.mc, self.kc, self.nc)
    }
}

/// The shape×dtype-keyed autotune table, persisted as flat JSON at
/// [`TuneTable::default_path`] so one process's tuning pays off in the
/// next. Format (hand-rolled; the workspace carries no serde):
///
/// ```json
/// {
///   "version": 1,
///   "entries": [
///     {"m": 256, "k": 256, "n": 256, "dtype": "f32", "p": 1,
///      "mc": 96, "kc": 256, "nc": 512, "tier": "avx2", "gflops": 42.5}
///   ]
/// }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneTable {
    /// All persisted winners, one per unique `(m, k, n, dtype, p)`.
    pub entries: Vec<TunedEntry>,
}

/// On-disk format version of [`TuneTable`]; bump on layout change (old
/// files then parse to `None` and re-tune instead of mis-resolving).
pub const TUNE_TABLE_VERSION: usize = 1;

impl TuneTable {
    /// The winner for `(m, k, n, dtype, p)`, if one was recorded.
    pub fn lookup(&self, m: usize, k: usize, n: usize, dtype: &str, p: usize) -> Option<&TunedEntry> {
        self.entries
            .iter()
            .find(|e| e.m == m && e.k == k && e.n == n && e.p == p && e.dtype == dtype)
    }

    /// Insert `entry`, replacing any prior winner for the same key.
    pub fn insert(&mut self, entry: TunedEntry) {
        if let Some(e) = self.entries.iter_mut().find(|e| {
            e.m == entry.m && e.k == entry.k && e.n == entry.n && e.p == entry.p && e.dtype == entry.dtype
        }) {
            *e = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Cache file location: `$CAKE_TUNE_CACHE` when set, else
    /// `target/cake-tune.json` under the current directory.
    pub fn default_path() -> std::path::PathBuf {
        match std::env::var_os("CAKE_TUNE_CACHE") {
            Some(p) if !p.is_empty() => std::path::PathBuf::from(p),
            _ => std::path::PathBuf::from("target/cake-tune.json"),
        }
    }

    /// Load from `path`; `None` when the file is missing, unreadable, or
    /// from a different format version (callers fall back to the closed
    /// form — a stale cache can never break a GEMM).
    pub fn load(path: &std::path::Path) -> Option<TuneTable> {
        // audit: cold one file read per process, before any GEMM runs
        Self::from_json(&std::fs::read_to_string(path).ok()?)
    }

    /// [`load`](Self::load) from [`default_path`](Self::default_path).
    pub fn load_default() -> Option<TuneTable> {
        Self::load(&Self::default_path())
    }

    /// Persist to `path`, creating parent directories as needed.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Render the documented flat-JSON format.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{{\n  \"version\": {TUNE_TABLE_VERSION},\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"dtype\": \"{}\", \"p\": {}, \
                 \"mc\": {}, \"kc\": {}, \"nc\": {}, \"tier\": \"{}\", \"gflops\": {:.3}}}{sep}",
                e.m, e.k, e.n, e.dtype, e.p, e.mc, e.kc, e.nc, e.tier, e.gflops
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse the [`to_json`](Self::to_json) format. Tolerant scanner over
    /// flat objects; `None` on any malformed field or version mismatch.
    pub fn from_json(text: &str) -> Option<TuneTable> {
        if json_usize(text, "version")? != TUNE_TABLE_VERSION {
            return None;
        }
        let mut rest = &text[text.find("\"entries\"")?..];
        rest = &rest[rest.find('[')? + 1..];
        let mut entries = Vec::new();
        while let Some(ob) = rest.find('{') {
            let cb = ob + rest[ob..].find('}')?;
            let obj = &rest[ob + 1..cb];
            entries.push(TunedEntry {
                m: json_usize(obj, "m")?,
                k: json_usize(obj, "k")?,
                n: json_usize(obj, "n")?,
                dtype: json_str(obj, "dtype")?,
                p: json_usize(obj, "p")?,
                mc: json_usize(obj, "mc")?,
                kc: json_usize(obj, "kc")?,
                nc: json_usize(obj, "nc")?,
                tier: json_str(obj, "tier")?,
                gflops: json_f64(obj, "gflops")?,
            });
            rest = &rest[cb + 1..];
        }
        Some(TuneTable { entries })
    }
}

fn json_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let rest = obj[obj.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find([',', '}', ']', '\n'])
        .unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_usize(obj: &str, key: &str) -> Option<usize> {
    json_field(obj, key)?.parse().ok()
}

fn json_f64(obj: &str, key: &str) -> Option<f64> {
    json_field(obj, key)?.parse().ok()
}

fn json_str(obj: &str, key: &str) -> Option<String> {
    let v = json_field(obj, key)?;
    Some(v.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MC: usize = 96;
    const RATE: f64 = 96.0; // idealized 6x16 kernel
    const F32: usize = 4;
    const GHZ: f64 = 3.7;

    #[test]
    fn ample_bandwidth_gives_alpha_one() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        let alpha = select_alpha(10.0 * unit, MC, RATE, F32, GHZ);
        assert_eq!(alpha, 1.0);
    }

    #[test]
    fn threshold_at_r_equals_two() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        // R = 2 exactly: alpha = 1/(2-1) = 1.
        assert!((select_alpha(2.0 * unit, MC, RATE, F32, GHZ) - 1.0).abs() < 1e-9);
        // R = 1.5: alpha = 2.
        assert!((select_alpha(1.5 * unit, MC, RATE, F32, GHZ) - 2.0).abs() < 1e-9);
        // R = 1.1: alpha = 10.
        assert!((select_alpha(1.1 * unit, MC, RATE, F32, GHZ) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn starved_bandwidth_hits_cap() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        assert_eq!(select_alpha(0.5 * unit, MC, RATE, F32, GHZ), ALPHA_CAP);
        assert_eq!(select_alpha(1.0 * unit, MC, RATE, F32, GHZ), ALPHA_CAP);
        // Just above the cap threshold R = 1 + 1/16.
        let r_cap = 1.0 + 1.0 / ALPHA_CAP;
        let alpha = select_alpha(r_cap * unit * 0.999, MC, RATE, F32, GHZ);
        assert_eq!(alpha, ALPHA_CAP);
    }

    #[test]
    fn selected_alpha_meets_requirement() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        for r in [1.2, 1.5, 2.0, 3.0, 8.0] {
            let avail = r * unit;
            let alpha = select_alpha(avail, MC, RATE, F32, GHZ);
            let shape = crate::shape::CbBlockShape::fixed(
                4,
                MC,
                MC,
                ((alpha * (4 * MC) as f64).round() as usize).max(1),
            );
            let need = required_bw_gbs(&shape, RATE, F32, GHZ);
            assert!(
                need <= avail * 1.02,
                "r={r}: required {need:.2} > available {avail:.2} (alpha={alpha})"
            );
        }
    }

    #[test]
    fn unit_scales_inversely_with_mc() {
        let u1 = bw_unit_gbs(96, RATE, F32, GHZ);
        let u2 = bw_unit_gbs(192, RATE, F32, GHZ);
        assert!((u1 / u2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_fill_uses_spare_llc() {
        // Big LLC, one core: alpha should hit the cap.
        assert_eq!(alpha_fill_llc(1, 96, 4 * 1024 * 1024), ALPHA_CAP);
        // Tight LLC: clamped to 1.
        assert_eq!(alpha_fill_llc(8, 96, 100), 1.0);
        // Mid-range: the filled block must satisfy the LRU rule.
        let p = 4;
        let mc = 96;
        let s = 2_000_000;
        let alpha = alpha_fill_llc(p, mc, s);
        let shape = crate::shape::CbBlockShape::fixed(
            p, mc, mc, ((alpha * (p * mc) as f64) as usize).max(1));
        assert!(shape.c_surface() + 2 * (shape.a_surface() + shape.b_surface()) <= s + p * mc * mc,
            "filled shape barely exceeds budget: alpha={alpha}");
        assert!(alpha > 1.0 && alpha < ALPHA_CAP);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = select_alpha(0.0, MC, RATE, F32, GHZ);
    }

    #[test]
    fn tune_decision_render_mentions_every_input() {
        let d = TuneDecision {
            requested_p: 8,
            effective_p: 1,
            host_cores: 1,
            barrier_mode: BarrierMode::Spin,
            alpha: 1.0,
            alpha_source: AlphaSource::LlcFill,
            mc_l2: 181,
            mc_llc: 97,
            analytic: crate::shape::CbBlockShape::fixed(8, 96, 96, 768),
            shape: crate::shape::CbBlockShape::fixed(8, 12, 12, 96),
            lru_ok: true,
            kernel: "avx512_f32_14x32",
        };
        let r = d.render();
        for needle in [
            "requested 8",
            "effective 1",
            "clamped",
            "spin",
            "kernel: avx512_f32_14x32",
            "LLC fill",
            "LLC-LRU <= 97",
            "problem clamp",
            "LRU fit",
        ] {
            assert!(r.contains(needle), "render missing {needle:?}:\n{r}");
        }
        assert!(d.to_string().contains("alpha: 1.00"));
        // Unclamped decision drops the clamp notes.
        let d2 = TuneDecision {
            effective_p: 8,
            host_cores: 8,
            shape: d.analytic,
            barrier_mode: BarrierMode::Park,
            alpha_source: AlphaSource::Explicit,
            ..d
        };
        let r2 = d2.render();
        assert!(!r2.contains("clamped"));
        assert!(!r2.contains("problem clamp"));
        assert!(r2.contains("park"));
        assert!(r2.contains("explicit config"));
    }

    #[test]
    fn overlap_efficiency_regimes() {
        assert_eq!(overlap_efficiency(0, 0), 1.0); // idle call
        assert_eq!(overlap_efficiency(0, 100), 1.0); // all packs skipped
        assert_eq!(overlap_efficiency(50, 100), 1.0); // fully hidden
        assert_eq!(overlap_efficiency(100, 100), 1.0); // boundary
        assert!((overlap_efficiency(200, 100) - 0.5).abs() < 1e-12); // pack-bound
        assert_eq!(overlap_efficiency(100, 0), 0.0); // nothing to hide under
    }
}

#[cfg(test)]
mod autotune_tests {
    use super::*;
    use proptest::prelude::*;

    const L2: usize = 256 * 1024;
    const LLC: usize = 16 * 1024 * 1024;

    #[test]
    fn candidates_explore_beyond_the_closed_form() {
        let cands = candidate_shapes(2, 6, 16, L2, LLC, 4, 512, 512, 512);
        assert!(cands.len() >= 8, "grid too small: {}", cands.len());
        assert!(cands.len() <= CANDIDATE_CAP);
        // The kc != mc lever the closed form never pulls must be present.
        assert!(cands.iter().any(|s| s.kc > s.mc), "no deep-kc candidates");
        // Sorted and deduplicated.
        let mut sorted = cands.clone();
        sorted.sort_unstable_by_key(|s| (s.mc, s.kc, s.nc));
        sorted.dedup();
        assert_eq!(cands, sorted);
    }

    #[test]
    fn candidate_points_cover_all_tiers() {
        for dtype in ["f32", "f64", "int8", "bf16"] {
            let pts = candidate_points(dtype, 1, 256, 256, 256, L2, LLC, 4);
            for tier in cake_kernels::KernelTier::ALL {
                assert!(
                    pts.iter().any(|c| c.tier == tier),
                    "{dtype}: no candidates for {}",
                    tier.name()
                );
            }
        }
        assert!(candidate_points("f16", 1, 64, 64, 64, L2, LLC, 4).is_empty());
    }

    #[test]
    fn tune_table_json_round_trips() {
        let mut t = TuneTable::default();
        t.insert(TunedEntry {
            m: 256, k: 256, n: 256, dtype: "f32".into(), p: 1,
            mc: 96, kc: 256, nc: 512, tier: "avx2".into(), gflops: 42.5,
        });
        t.insert(TunedEntry {
            m: 384, k: 256, n: 512, dtype: "int8".into(), p: 4,
            mc: 48, kc: 96, nc: 768, tier: "portable".into(), gflops: 7.125,
        });
        let back = TuneTable::from_json(&t.to_json()).expect("round trip");
        assert_eq!(back, t);
        // Replacement by key, lookup hit and miss.
        let mut t2 = back.clone();
        t2.insert(TunedEntry { gflops: 50.0, ..t.entries[0].clone() });
        assert_eq!(t2.entries.len(), 2);
        assert_eq!(t2.lookup(256, 256, 256, "f32", 1).unwrap().gflops, 50.0);
        assert!(t2.lookup(256, 256, 256, "f64", 1).is_none());
        assert!(t2.lookup(256, 256, 257, "f32", 1).is_none());
        // Empty table round-trips too.
        assert_eq!(TuneTable::from_json(&TuneTable::default().to_json()).unwrap(), TuneTable::default());
    }

    #[test]
    fn tune_table_rejects_garbage_and_wrong_version() {
        assert!(TuneTable::from_json("").is_none());
        assert!(TuneTable::from_json("not json at all").is_none());
        assert!(TuneTable::from_json("{\"version\": 99, \"entries\": []}").is_none());
        // A truncated entry object fails cleanly rather than panicking.
        assert!(TuneTable::from_json("{\"version\": 1, \"entries\": [{\"m\": 4").is_none());
    }

    #[test]
    fn tune_table_save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("cake-tune-test");
        let path = dir.join("cake-tune.json");
        let mut t = TuneTable::default();
        t.insert(TunedEntry {
            m: 64, k: 64, n: 64, dtype: "bf16".into(), p: 2,
            mc: 8, kc: 64, nc: 64, tier: "avx512".into(), gflops: 1.0,
        });
        t.save(&path).expect("save");
        assert_eq!(TuneTable::load(&path).expect("load"), t);
        assert!(TuneTable::load(&dir.join("missing.json")).is_none());
        let _ = std::fs::remove_file(&path);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// ISSUE satellite: every autotuned candidate satisfies the LRU
        /// rule and kernel-tile divisibility for its tier, and the
        /// generator is deterministic.
        #[test]
        fn candidates_are_feasible_aligned_and_deterministic(
            p in 1usize..5,
            mkn in 0usize..4,
            dt in 0usize..4,
        ) {
            let (m, k, n) = [(64, 64, 64), (256, 128, 512), (512, 512, 512), (96, 1024, 96)][mkn];
            let dtype = ["f32", "f64", "int8", "bf16"][dt];
            let elem = [4usize, 8, 1, 2][dt];
            let pts = candidate_points(dtype, p, m, k, n, L2, LLC, elem);
            prop_assert!(!pts.is_empty());
            for c in &pts {
                prop_assert_eq!(c.shape.p, p);
                prop_assert!(c.shape.fits_llc_lru(LLC, elem),
                    "{} violates LRU: {}", c.tier.name(), c.shape);
                prop_assert_eq!(c.shape.mc % c.mr, 0, "mc {} not {}-aligned", c.shape.mc, c.mr);
                prop_assert_eq!(c.shape.nc % c.nr, 0, "nc {} not {}-aligned", c.shape.nc, c.nr);
                prop_assert!(c.shape.kc >= 1 && c.shape.kc <= k);
            }
            let again = candidate_points(dtype, p, m, k, n, L2, LLC, elem);
            prop_assert_eq!(pts, again, "candidate generation must be deterministic");
        }
    }
}
