//! `alpha` selection from available DRAM bandwidth (paper Section 3.2).
//!
//! The external-bandwidth factor is `R = BW_available / BW_unit`, where
//! `BW_unit` is the bandwidth that one "side" of the CB block demands at
//! `alpha -> infinity` (the irreducible A-surface stream). Section 3.2 shows
//! the minimum-bandwidth constraint `BW_ext >= BW_min` is satisfied exactly
//! when `alpha >= 1 / (R - 1)`; `alpha = 1` suffices whenever `R >= 2`.

use crate::model::alpha_min_for_bw_factor;
use crate::shape::CbBlockShape;
use crate::sync::BarrierMode;

/// Upper bound on auto-selected `alpha`: beyond this the partial-C panel
/// dwarfs any realistic LLC and compute time per block grows without
/// benefit.
pub const ALPHA_CAP: f64 = 16.0;

/// Irreducible per-block external bandwidth unit in GB/s: the A-surface
/// stream rate `macs_per_cycle / mc * elem_bytes * freq_ghz` (the paper's
/// `k` tiles/cycle converted to CPU units).
pub fn bw_unit_gbs(mc: usize, macs_per_cycle: f64, elem_bytes: usize, freq_ghz: f64) -> f64 {
    assert!(mc > 0);
    macs_per_cycle / mc as f64 * elem_bytes as f64 * freq_ghz
}

/// Select the smallest `alpha >= 1` whose CB block fits the available DRAM
/// bandwidth, clamped to [`ALPHA_CAP`].
///
/// Returns `ALPHA_CAP` when the bandwidth is at or below the irreducible
/// unit (`R <= 1`): the block is made as IO-light as allowed and the
/// computation will necessarily be bandwidth-bound.
pub fn select_alpha(
    dram_bw_gbs: f64,
    mc: usize,
    macs_per_cycle: f64,
    elem_bytes: usize,
    freq_ghz: f64,
) -> f64 {
    assert!(dram_bw_gbs > 0.0, "DRAM bandwidth must be positive");
    let unit = bw_unit_gbs(mc, macs_per_cycle, elem_bytes, freq_ghz);
    let r = dram_bw_gbs / unit;
    if r <= 1.0 + 1e-9 {
        return ALPHA_CAP;
    }
    alpha_min_for_bw_factor(r).min(ALPHA_CAP)
}

/// Convenience: required DRAM bandwidth (GB/s) of a shape under a given
/// kernel rate — used to sanity-check a selected `alpha`.
pub fn required_bw_gbs(
    shape: &CbBlockShape,
    macs_per_cycle: f64,
    elem_bytes: usize,
    freq_ghz: f64,
) -> f64 {
    let alpha = shape.alpha();
    (alpha + 1.0) / alpha * bw_unit_gbs(shape.mc, macs_per_cycle, elem_bytes, freq_ghz)
}

/// Largest `alpha` whose CB block still satisfies the Section 4.3 LRU rule
/// for an LLC of `llc_elems` elements with `mc` fixed (the L2-bound
/// regime): solves `alpha*p^2*mc^2 + 2*(p*mc^2 + alpha*p*mc^2) <= S`.
///
/// Used as the default when no DRAM-bandwidth hint is available: widening
/// the block can only *reduce* external bandwidth demand (Eq. 2), and the
/// spare LLC capacity is otherwise idle. Clamped to `[1, ALPHA_CAP]`.
pub fn alpha_fill_llc(p: usize, mc: usize, llc_elems: usize) -> f64 {
    assert!(p > 0 && mc > 0);
    let s = llc_elems as f64;
    let (pf, mcf) = (p as f64, (mc * mc) as f64);
    let denom = pf * pf * mcf + 2.0 * pf * mcf; // alpha-proportional terms
    let fixed = 2.0 * pf * mcf; // the A surface's double-buffer share
    if denom <= 0.0 {
        return 1.0;
    }
    ((s - fixed) / denom).clamp(1.0, ALPHA_CAP)
}

/// Where the tuner's `alpha` came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaSource {
    /// `CakeConfig::alpha` was set explicitly by the caller.
    Explicit,
    /// Derived from the DRAM-bandwidth hint via [`select_alpha`]
    /// (Section 3.2: `alpha >= 1 / (R - 1)`).
    BandwidthModel,
    /// No hint: widened to fill the spare LLC via [`alpha_fill_llc`]
    /// (a wider block only lowers the Eq. 2 bandwidth demand).
    LlcFill,
}

impl AlphaSource {
    /// One-line rationale for `--explain` output.
    pub fn describe(self) -> &'static str {
        match self {
            AlphaSource::Explicit => "explicit config",
            AlphaSource::BandwidthModel => {
                "Section 3.2 bandwidth model (alpha >= 1/(R-1))"
            }
            AlphaSource::LlcFill => {
                "LLC fill (no DRAM bandwidth hint; spare LLC only lowers Eq. 2 demand)"
            }
        }
    }
}

/// The full record of one shape-tuning decision — every input the tuner
/// consulted and every intermediate bound, so a regression in shaping is
/// diagnosable from `cakectl gemm --explain` without a debugger.
///
/// Produced by `CakeConfig::explain_shape`; `resolve_shape` is the same
/// computation keeping only [`shape`](Self::shape).
#[derive(Debug, Clone)]
pub struct TuneDecision {
    /// The p the caller asked for — drives the block geometry and the
    /// analytic model.
    pub requested_p: usize,
    /// Workers that will actually be spawned
    /// ([`crate::topology::effective_p`]).
    pub effective_p: usize,
    /// Cores available to this process when the decision was made.
    pub host_cores: usize,
    /// Rotation-barrier strategy [`BarrierMode::auto`] will select for the
    /// effective worker count on this host.
    pub barrier_mode: BarrierMode,
    /// The chosen aspect factor.
    pub alpha: f64,
    /// Why that `alpha`.
    pub alpha_source: AlphaSource,
    /// Raw `mc` upper bound from the per-core L2 (elements, before
    /// kernel-tile rounding).
    pub mc_l2: usize,
    /// Raw `mc` upper bound from the Section 4.3 LLC LRU rule.
    pub mc_llc: usize,
    /// The cache-derived shape before any problem clamping.
    pub analytic: CbBlockShape,
    /// The final shape after clamping to the problem extents.
    pub shape: CbBlockShape,
    /// Whether the final shape satisfies `C + 2(A + B) <= S` for the
    /// configured LLC.
    pub lru_ok: bool,
    /// Name of the microkernel whose `(mr, nr)` the block geometry was
    /// derived from (e.g. `"avx512_f32_14x32"`; empty when the caller
    /// passed raw tile dims rather than a selected kernel).
    pub kernel: &'static str,
}

impl TuneDecision {
    /// Multi-line human-readable explanation (the `--explain` body).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let clamp = if self.effective_p < self.requested_p {
            " (clamped: oversubscribing burns timeslices at every barrier)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "p: requested {} on {} host core(s) -> effective {}{}",
            self.requested_p, self.host_cores, self.effective_p, clamp
        );
        let why_mode = match self.barrier_mode {
            BarrierMode::Spin => "every worker has a core; spin observes the release in ~ns",
            BarrierMode::Park => "workers exceed cores; park instead of spin-thrashing",
        };
        let _ = writeln!(out, "barrier: {} ({})", self.barrier_mode, why_mode);
        if !self.kernel.is_empty() {
            let _ = writeln!(out, "kernel: {} (tile dims drive mc/nc rounding)", self.kernel);
        }
        let _ = writeln!(
            out,
            "alpha: {:.2} via {}",
            self.alpha,
            self.alpha_source.describe()
        );
        let binding = if self.mc_llc <= self.mc_l2 {
            "LLC-LRU binds"
        } else {
            "L2 binds"
        };
        let _ = writeln!(
            out,
            "mc bounds: L2 <= {} elems, LLC-LRU <= {} elems -> {} -> analytic mc = {}",
            self.mc_l2, self.mc_llc, binding, self.analytic.mc
        );
        if self.shape != self.analytic {
            let _ = writeln!(
                out,
                "problem clamp: {} -> {}",
                self.analytic, self.shape
            );
        }
        let _ = writeln!(
            out,
            "shape: {} mc={} kc={} nc={}; LRU fit C+2(A+B) <= S: {}",
            self.shape,
            self.shape.mc,
            self.shape.kc,
            self.shape.nc,
            if self.lru_ok { "ok" } else { "EXCEEDED" }
        );
        out
    }
}

impl std::fmt::Display for TuneDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// How well the pipelined executor hid packing IO under compute, from a
/// call's measured [`ExecStats`](crate::executor::ExecStats) phase timings.
///
/// Returns the fraction of pack time that overlaps compute under the
/// constant-bandwidth assumption that both phases stream at their measured
/// rates: `1.0` when packing fits entirely under compute
/// (`pack_ns <= compute_ns`, the regime the CB block shape is chosen for),
/// degrading toward `compute/pack` when the call is pack-bound. An idle
/// call (both zero) reports `1.0` — nothing needed hiding.
pub fn overlap_efficiency(pack_ns: u64, compute_ns: u64) -> f64 {
    if pack_ns == 0 {
        return 1.0;
    }
    if pack_ns <= compute_ns {
        1.0
    } else {
        compute_ns as f64 / pack_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MC: usize = 96;
    const RATE: f64 = 96.0; // idealized 6x16 kernel
    const F32: usize = 4;
    const GHZ: f64 = 3.7;

    #[test]
    fn ample_bandwidth_gives_alpha_one() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        let alpha = select_alpha(10.0 * unit, MC, RATE, F32, GHZ);
        assert_eq!(alpha, 1.0);
    }

    #[test]
    fn threshold_at_r_equals_two() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        // R = 2 exactly: alpha = 1/(2-1) = 1.
        assert!((select_alpha(2.0 * unit, MC, RATE, F32, GHZ) - 1.0).abs() < 1e-9);
        // R = 1.5: alpha = 2.
        assert!((select_alpha(1.5 * unit, MC, RATE, F32, GHZ) - 2.0).abs() < 1e-9);
        // R = 1.1: alpha = 10.
        assert!((select_alpha(1.1 * unit, MC, RATE, F32, GHZ) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn starved_bandwidth_hits_cap() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        assert_eq!(select_alpha(0.5 * unit, MC, RATE, F32, GHZ), ALPHA_CAP);
        assert_eq!(select_alpha(1.0 * unit, MC, RATE, F32, GHZ), ALPHA_CAP);
        // Just above the cap threshold R = 1 + 1/16.
        let r_cap = 1.0 + 1.0 / ALPHA_CAP;
        let alpha = select_alpha(r_cap * unit * 0.999, MC, RATE, F32, GHZ);
        assert_eq!(alpha, ALPHA_CAP);
    }

    #[test]
    fn selected_alpha_meets_requirement() {
        let unit = bw_unit_gbs(MC, RATE, F32, GHZ);
        for r in [1.2, 1.5, 2.0, 3.0, 8.0] {
            let avail = r * unit;
            let alpha = select_alpha(avail, MC, RATE, F32, GHZ);
            let shape = crate::shape::CbBlockShape::fixed(
                4,
                MC,
                MC,
                ((alpha * (4 * MC) as f64).round() as usize).max(1),
            );
            let need = required_bw_gbs(&shape, RATE, F32, GHZ);
            assert!(
                need <= avail * 1.02,
                "r={r}: required {need:.2} > available {avail:.2} (alpha={alpha})"
            );
        }
    }

    #[test]
    fn unit_scales_inversely_with_mc() {
        let u1 = bw_unit_gbs(96, RATE, F32, GHZ);
        let u2 = bw_unit_gbs(192, RATE, F32, GHZ);
        assert!((u1 / u2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_fill_uses_spare_llc() {
        // Big LLC, one core: alpha should hit the cap.
        assert_eq!(alpha_fill_llc(1, 96, 4 * 1024 * 1024), ALPHA_CAP);
        // Tight LLC: clamped to 1.
        assert_eq!(alpha_fill_llc(8, 96, 100), 1.0);
        // Mid-range: the filled block must satisfy the LRU rule.
        let p = 4;
        let mc = 96;
        let s = 2_000_000;
        let alpha = alpha_fill_llc(p, mc, s);
        let shape = crate::shape::CbBlockShape::fixed(
            p, mc, mc, ((alpha * (p * mc) as f64) as usize).max(1));
        assert!(shape.c_surface() + 2 * (shape.a_surface() + shape.b_surface()) <= s + p * mc * mc,
            "filled shape barely exceeds budget: alpha={alpha}");
        assert!(alpha > 1.0 && alpha < ALPHA_CAP);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = select_alpha(0.0, MC, RATE, F32, GHZ);
    }

    #[test]
    fn tune_decision_render_mentions_every_input() {
        let d = TuneDecision {
            requested_p: 8,
            effective_p: 1,
            host_cores: 1,
            barrier_mode: BarrierMode::Spin,
            alpha: 1.0,
            alpha_source: AlphaSource::LlcFill,
            mc_l2: 181,
            mc_llc: 97,
            analytic: crate::shape::CbBlockShape::fixed(8, 96, 96, 768),
            shape: crate::shape::CbBlockShape::fixed(8, 12, 12, 96),
            lru_ok: true,
            kernel: "avx512_f32_14x32",
        };
        let r = d.render();
        for needle in [
            "requested 8",
            "effective 1",
            "clamped",
            "spin",
            "kernel: avx512_f32_14x32",
            "LLC fill",
            "LLC-LRU <= 97",
            "problem clamp",
            "LRU fit",
        ] {
            assert!(r.contains(needle), "render missing {needle:?}:\n{r}");
        }
        assert!(d.to_string().contains("alpha: 1.00"));
        // Unclamped decision drops the clamp notes.
        let d2 = TuneDecision {
            effective_p: 8,
            host_cores: 8,
            shape: d.analytic,
            barrier_mode: BarrierMode::Park,
            alpha_source: AlphaSource::Explicit,
            ..d
        };
        let r2 = d2.render();
        assert!(!r2.contains("clamped"));
        assert!(!r2.contains("problem clamp"));
        assert!(r2.contains("park"));
        assert!(r2.contains("explicit config"));
    }

    #[test]
    fn overlap_efficiency_regimes() {
        assert_eq!(overlap_efficiency(0, 0), 1.0); // idle call
        assert_eq!(overlap_efficiency(0, 100), 1.0); // all packs skipped
        assert_eq!(overlap_efficiency(50, 100), 1.0); // fully hidden
        assert_eq!(overlap_efficiency(100, 100), 1.0); // boundary
        assert!((overlap_efficiency(200, 100) - 0.5).abs() < 1e-12); // pack-bound
        assert_eq!(overlap_efficiency(100, 0), 0.0); // nothing to hide under
    }
}
