//! A persistent broadcast worker pool.
//!
//! CAKE's parallelization is a *static* partition: core `c` always owns the
//! `c`-th `mc`-row strip of the current CB block (one `A` sub-matrix per
//! core, paper Section 3). There is no work stealing; every block is a
//! broadcast of the same closure to all workers, each picking its strip by
//! worker index. This pool implements exactly that primitive:
//! [`ThreadPool::broadcast`] runs `f(worker_id)` on every worker and blocks
//! until all complete, propagating panics.
//!
//! Workers are long-lived so repeated GEMM calls (e.g. a DNN forward pass)
//! pay thread-spawn cost once. Because the strip assignment is static, the
//! pool optionally pins worker `i` to core `i % cores`
//! ([`ThreadPool::pinned`], Linux `sched_setaffinity`, no-op elsewhere):
//! an unpinned worker migrating between blocks drags its L2-resident A
//! strip across cores, which is exactly the traffic CAKE's partition is
//! designed to avoid.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Opt-in worker-to-core affinity pinning.
///
/// CAKE's partition is static — worker `c` always owns strip `c` — so its
/// L2-resident A strip is only warm if the worker stays on one core.
/// Without pinning, the OS scheduler is free to migrate workers between
/// barrier episodes, turning every migration into a full strip refetch.
/// On Linux, [`pin_current_thread`] binds the calling thread to one core
/// via a raw `sched_setaffinity` syscall binding (the build container has
/// no `libc` crate; `std` already links the platform libc, so a direct
/// `extern "C"` declaration suffices). Elsewhere it is a no-op returning
/// `false`.
pub mod affinity {
    // Miri has no sched_* shims — under it the module is compiled out and
    // pinning degrades to the portable no-op path.
    #[cfg(all(target_os = "linux", not(miri)))]
    mod sys {
        // Mirrors <sched.h>: cpu_set_t is a fixed bitmask; 16 u64 words
        // cover 1024 CPUs, the glibc default CPU_SETSIZE.
        const MASK_WORDS: usize = 16;

        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
            fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
        }

        pub fn pin(core: usize) -> bool {
            if core >= MASK_WORDS * 64 {
                return false;
            }
            let mut mask = [0u64; MASK_WORDS];
            mask[core / 64] |= 1u64 << (core % 64);
            // SAFETY: pid 0 = the calling thread; the mask is a live, fully
            // initialized MASK_WORDS*8-byte buffer matching cpusetsize.
            unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
        }

        pub fn allowed_cores() -> Option<usize> {
            let mut mask = [0u64; MASK_WORDS];
            // SAFETY: pid 0 = the calling thread; the kernel writes at most
            // cpusetsize bytes into the live mask buffer.
            let rc =
                unsafe { sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) };
            (rc == 0).then(|| mask.iter().map(|w| w.count_ones() as usize).sum())
        }
    }

    /// Pin the calling thread to `core` (mod the machine's core count is
    /// the *caller's* job). Returns `true` on success, `false` when
    /// unsupported or rejected by the OS.
    pub fn pin_current_thread(core: usize) -> bool {
        #[cfg(all(target_os = "linux", not(miri)))]
        {
            sys::pin(core)
        }
        #[cfg(not(all(target_os = "linux", not(miri))))]
        {
            let _ = core;
            false
        }
    }

    /// Number of cores the calling thread may currently run on (`None`
    /// when the platform cannot report it). After a successful pin this
    /// is exactly 1.
    pub fn allowed_cores() -> Option<usize> {
        #[cfg(all(target_os = "linux", not(miri)))]
        {
            sys::allowed_cores()
        }
        #[cfg(not(all(target_os = "linux", not(miri))))]
        {
            None
        }
    }

    /// Cores available to this process (the pin target space).
    pub fn available_cores() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Type-erased pointer to a caller-owned `Fn(usize) + Sync` job.
///
/// The pointee is only dereferenced between `broadcast` sending it and the
/// worker acknowledging completion, and `broadcast` blocks until every
/// acknowledgement arrives — so the pointee outlives every dereference.
/// Erasure uses a data pointer plus a monomorphized call shim rather than a
/// `dyn` pointer, sidestepping trait-object lifetime defaults.
#[derive(Clone, Copy)]
struct JobPtr {
    data: *const (),
    // SAFETY: callers of `call` must pass the matching `data` while the
    // pointee is still alive (broadcast's blocking protocol guarantees it).
    call: unsafe fn(*const (), usize),
}
// SAFETY: the raw pointer is only used under the blocking protocol above,
// and the pointee is `Sync` (enforced by `broadcast`'s bound).
unsafe impl Send for JobPtr {}

unsafe fn call_shim<F: Fn(usize) + Sync>(data: *const (), id: usize) {
    // SAFETY: `data` was created from a live `&F` in `broadcast`, which
    // blocks until this call completes.
    unsafe { (*(data as *const F))(id) }
}

enum Msg {
    Run(JobPtr),
    Exit,
}

/// A fixed-size pool of worker threads supporting blocking broadcasts.
pub struct ThreadPool {
    txs: Vec<Sender<Msg>>,
    // `mpsc::Receiver` is `!Sync`; the mutex restores `ThreadPool: Sync` so
    // a pool can be shared behind `&` (e.g. a `CakeGemm` context). Only the
    // broadcasting thread ever locks it, so there is no contention.
    done_rx: Mutex<Receiver<Result<(), String>>>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
    pinned: bool,
}

impl ThreadPool {
    /// Spawn a pool of `size` workers with no core affinity.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        Self::with_affinity(size, false)
    }

    /// Spawn a pool of `size` workers, pinning worker `i` to core
    /// `i % available_cores`. Pinning is best-effort: on non-Linux
    /// platforms (or if the OS rejects the mask) workers run unpinned and
    /// [`is_pinned`](Self::is_pinned) reports `false`.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn pinned(size: usize) -> Self {
        Self::with_affinity(size, true)
    }

    /// [`new`](Self::new) or [`pinned`](Self::pinned) by flag — for callers
    /// that thread a `pin_cores` config bit through.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn with_affinity(size: usize, pin: bool) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let (done_tx, done_rx) = channel::<Result<(), String>>();
        let mut txs = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        let cores = affinity::available_cores();
        // A single-worker pool runs jobs inline on the caller; spawning a
        // thread would only add latency to small GEMMs. The caller's
        // affinity is its own business, so a size-1 pool never pins.
        let spawn_count = if size == 1 { 0 } else { size };
        let (pin_tx, pin_rx) = channel::<bool>();
        for id in 0..spawn_count {
            let (tx, rx) = channel::<Msg>();
            let done = done_tx.clone();
            let pin_done = pin_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cake-worker-{id}"))
                .spawn(move || {
                    let ok = pin && affinity::pin_current_thread(id % cores);
                    let _ = pin_done.send(ok);
                    worker_loop(id, rx, done)
                })
                .expect("failed to spawn worker thread");
            txs.push(tx);
            handles.push(handle);
        }
        drop(pin_tx);
        // Collect each worker's pin outcome so `is_pinned` is truthful by
        // the time `new` returns (the pin runs before the worker's loop).
        let pinned = spawn_count > 0 && pin && pin_rx.iter().take(spawn_count).all(|ok| ok);
        Self {
            txs,
            done_rx: Mutex::new(done_rx),
            handles,
            size,
            pinned,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// `true` when every worker thread was successfully pinned to a core.
    /// Always `false` for size-1 pools (inline execution) and on
    /// platforms without affinity support.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Run `f(worker_id)` on every worker; return when all have finished.
    ///
    /// # Panics
    /// Re-panics on the calling thread if any worker job panicked (with the
    /// collected messages).
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        // Single-worker fast path: run inline, no cross-thread traffic.
        if self.size == 1 {
            f(0);
            return;
        }
        let job = JobPtr {
            data: &f as *const F as *const (),
            call: call_shim::<F>,
        };
        for tx in &self.txs {
            // audit: cold send fails only when a worker thread has died,
            // which a healthy pool never does before Drop — error path
            tx.send(Msg::Run(job)).expect("worker channel closed unexpectedly");
        }
        let mut errors = Vec::new();
        {
            // A previous broadcast may have poisoned the mutex by panicking
            // (propagating a worker panic) with the lock held; the receiver
            // itself is still valid, so recover it.
            let done_rx = self
                .done_rx
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for _ in 0..self.size {
                // audit: checked recv fails only if every worker dropped
                // the done sender, which only happens at pool Drop
                match done_rx.recv().expect("done channel closed") {
                    Ok(()) => {}
                    // audit: cold worker-panic collection, error path only
                    Err(e) => errors.push(e),
                }
            }
        }
        // `f` is only dropped after every worker acknowledged: safe.
        if !errors.is_empty() {
            // audit: cold worker-panic propagation, error path only
            panic!("{} worker(s) panicked: {}", errors.len(), errors.join("; "));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Msg::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(id: usize, rx: Receiver<Msg>, done: Sender<Result<(), String>>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Exit => break,
            Msg::Run(job) => {
                // SAFETY: `broadcast` keeps the job alive until we ack below.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, id) }));
                let report = result.map_err(|e| {
                    e.downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| format!("worker {id} panicked"))
                });
                if done.send(report).is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.broadcast(|id| {
            hits[id].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = ThreadPool::new(1);
        let main_thread = std::thread::current().id();
        // Inline execution implies no cross-thread hop; record whether the
        // job observed the caller's thread id.
        let captured = std::sync::atomic::AtomicU64::new(0);
        pool.broadcast(|id| {
            assert_eq!(id, 0);
            let same = std::thread::current().id() == main_thread;
            captured.store(u64::from(same), Ordering::SeqCst);
        });
        assert_eq!(captured.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_is_reusable_across_broadcasts() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn workers_can_synchronize_with_a_barrier() {
        let p = 4;
        let pool = ThreadPool::new(p);
        let barrier = Barrier::new(p);
        let pre = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        pool.broadcast(|_| {
            pre.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // After the barrier, every worker must observe all p pre-counts.
            if pre.load(Ordering::SeqCst) != p {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|id| {
                if id == 1 {
                    panic!("injected failure");
                }
            });
        }));
        let err = result.expect_err("broadcast should propagate panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected failure"), "got: {msg}");
        // Pool survives a panicked job.
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn unpinned_pool_reports_unpinned() {
        assert!(!ThreadPool::new(4).is_pinned());
        // Size-1 pools run inline on the caller and never pin.
        assert!(!ThreadPool::pinned(1).is_pinned());
    }

    #[test]
    fn pinned_pool_executes_and_constrains_workers() {
        let pool = ThreadPool::pinned(2);
        let total = AtomicUsize::new(0);
        let over_constrained = AtomicUsize::new(0);
        pool.broadcast(|_| {
            total.fetch_add(1, Ordering::SeqCst);
            if pool.is_pinned() {
                // A pinned worker may run on exactly one core.
                if affinity::allowed_cores() != Some(1) {
                    over_constrained.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 2);
        assert_eq!(over_constrained.load(Ordering::SeqCst), 0);
        #[cfg(all(target_os = "linux", not(miri)))]
        assert!(pool.is_pinned(), "Linux must support sched_setaffinity");
    }

    #[cfg(all(target_os = "linux", not(miri)))]
    #[test]
    fn affinity_pin_round_trips_on_a_scratch_thread() {
        std::thread::spawn(|| {
            assert!(affinity::pin_current_thread(0));
            assert_eq!(affinity::allowed_cores(), Some(1));
        })
        .join()
        .unwrap();
    }
}
