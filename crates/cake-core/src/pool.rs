//! A persistent broadcast worker pool.
//!
//! CAKE's parallelization is a *static* partition: core `c` always owns the
//! `c`-th `mc`-row strip of the current CB block (one `A` sub-matrix per
//! core, paper Section 3). There is no work stealing; every block is a
//! broadcast of the same closure to all workers, each picking its strip by
//! worker index. This pool implements exactly that primitive:
//! [`ThreadPool::broadcast`] runs `f(worker_id)` on every worker and blocks
//! until all complete, propagating panics.
//!
//! Workers are long-lived so repeated GEMM calls (e.g. a DNN forward pass)
//! pay thread-spawn cost once.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Type-erased pointer to a caller-owned `Fn(usize) + Sync` job.
///
/// The pointee is only dereferenced between `broadcast` sending it and the
/// worker acknowledging completion, and `broadcast` blocks until every
/// acknowledgement arrives — so the pointee outlives every dereference.
/// Erasure uses a data pointer plus a monomorphized call shim rather than a
/// `dyn` pointer, sidestepping trait-object lifetime defaults.
#[derive(Clone, Copy)]
struct JobPtr {
    data: *const (),
    call: unsafe fn(*const (), usize),
}
// SAFETY: the raw pointer is only used under the blocking protocol above,
// and the pointee is `Sync` (enforced by `broadcast`'s bound).
unsafe impl Send for JobPtr {}

unsafe fn call_shim<F: Fn(usize) + Sync>(data: *const (), id: usize) {
    // SAFETY: `data` was created from a live `&F` in `broadcast`, which
    // blocks until this call completes.
    unsafe { (*(data as *const F))(id) }
}

enum Msg {
    Run(JobPtr),
    Exit,
}

/// A fixed-size pool of worker threads supporting blocking broadcasts.
pub struct ThreadPool {
    txs: Vec<Sender<Msg>>,
    // `mpsc::Receiver` is `!Sync`; the mutex restores `ThreadPool: Sync` so
    // a pool can be shared behind `&` (e.g. a `CakeGemm` context). Only the
    // broadcasting thread ever locks it, so there is no contention.
    done_rx: Mutex<Receiver<Result<(), String>>>,
    handles: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Spawn a pool of `size` workers.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let (done_tx, done_rx) = channel::<Result<(), String>>();
        let mut txs = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        // A single-worker pool runs jobs inline on the caller; spawning a
        // thread would only add latency to small GEMMs.
        let spawn_count = if size == 1 { 0 } else { size };
        for id in 0..spawn_count {
            let (tx, rx) = channel::<Msg>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cake-worker-{id}"))
                .spawn(move || worker_loop(id, rx, done))
                .expect("failed to spawn worker thread");
            txs.push(tx);
            handles.push(handle);
        }
        Self {
            txs,
            done_rx: Mutex::new(done_rx),
            handles,
            size,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f(worker_id)` on every worker; return when all have finished.
    ///
    /// # Panics
    /// Re-panics on the calling thread if any worker job panicked (with the
    /// collected messages).
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        // Single-worker fast path: run inline, no cross-thread traffic.
        if self.size == 1 {
            f(0);
            return;
        }
        let job = JobPtr {
            data: &f as *const F as *const (),
            call: call_shim::<F>,
        };
        for tx in &self.txs {
            tx.send(Msg::Run(job))
                .expect("worker channel closed unexpectedly");
        }
        let mut errors = Vec::new();
        {
            // A previous broadcast may have poisoned the mutex by panicking
            // (propagating a worker panic) with the lock held; the receiver
            // itself is still valid, so recover it.
            let done_rx = self
                .done_rx
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for _ in 0..self.size {
                match done_rx.recv().expect("done channel closed") {
                    Ok(()) => {}
                    Err(e) => errors.push(e),
                }
            }
        }
        // `f` is only dropped after every worker acknowledged: safe.
        if !errors.is_empty() {
            panic!("{} worker(s) panicked: {}", errors.len(), errors.join("; "));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Msg::Exit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(id: usize, rx: Receiver<Msg>, done: Sender<Result<(), String>>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Exit => break,
            Msg::Run(job) => {
                // SAFETY: `broadcast` keeps the job alive until we ack below.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, id) }));
                let report = result.map_err(|e| {
                    e.downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| format!("worker {id} panicked"))
                });
                if done.send(report).is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn broadcast_runs_every_worker_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.broadcast(|id| {
            hits[id].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = ThreadPool::new(1);
        let main_thread = std::thread::current().id();
        // Inline execution implies no cross-thread hop; record whether the
        // job observed the caller's thread id.
        let captured = std::sync::atomic::AtomicU64::new(0);
        pool.broadcast(|id| {
            assert_eq!(id, 0);
            let same = std::thread::current().id() == main_thread;
            captured.store(u64::from(same), Ordering::SeqCst);
        });
        assert_eq!(captured.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_is_reusable_across_broadcasts() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn workers_can_synchronize_with_a_barrier() {
        let p = 4;
        let pool = ThreadPool::new(p);
        let barrier = Barrier::new(p);
        let pre = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        pool.broadcast(|_| {
            pre.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // After the barrier, every worker must observe all p pre-counts.
            if pre.load(Ordering::SeqCst) != p {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|id| {
                if id == 1 {
                    panic!("injected failure");
                }
            });
        }));
        let err = result.expect_err("broadcast should propagate panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected failure"), "got: {msg}");
        // Pool survives a panicked job.
        let ok = AtomicUsize::new(0);
        pool.broadcast(|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_rejected() {
        let _ = ThreadPool::new(0);
    }
}
