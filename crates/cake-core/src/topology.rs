//! Host-topology detection and effective-parallelism clamping.
//!
//! CAKE's block *shaping* is a function of the requested core count `p`
//! (paper Section 3: `m = p·k`, `n = α·p·k`), but actually *running* more
//! workers than the host exposes cores is pure oversubscription: every
//! rotation barrier then waits on threads the scheduler has parked, and
//! the measured "scaling" curve is an artifact of timeslice donation, not
//! of the algorithm (see the committed single-core `BENCH_gemm.json`
//! history, where p = 8 ran at 0.05× of p = 1).
//!
//! This module separates the two roles of `p`:
//!
//! * **Requested p** keeps driving the analytic model, the traffic math,
//!   and the CB-block geometry — those are statements about the schedule,
//!   valid at any worker count.
//! * **Effective p** ([`effective_p`]) is the worker count actually
//!   spawned, clamped to the cores this *process* may run on. The
//!   affinity mask (`sched_getaffinity`) is consulted first — a container
//!   or `taskset` cgroup often grants fewer cores than the machine has —
//!   falling back to `std::thread::available_parallelism`.
//!
//! The clamp decision is surfaced in [`crate::executor::ExecStats`]
//! (`requested_workers` vs `workers`, plus `host_cores`) and printed by
//! `cakectl gemm --stats` / `--explain`, so a sweep that silently ran at
//! `effective_p = 1` is always distinguishable from a real scaling run.

use std::sync::OnceLock;

use crate::pool::affinity;

/// Cores available to this process: the scheduler-affinity mask size when
/// the platform reports one, else `available_parallelism`, else 1. Probed
/// once and cached — topology does not change under us mid-run, and the
/// executor consults this on every call.
pub fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(probe_cores)
}

/// Uncached probe behind [`available_cores`]; exposed for tests.
pub fn probe_cores() -> usize {
    affinity::allowed_cores()
        .filter(|&n| n > 0)
        .unwrap_or_else(affinity::available_cores)
        .max(1)
}

/// Clamp a requested worker count to the host: `min(requested, cores)`,
/// never below 1. The CB-block shape derived for `requested` stays valid —
/// the executor partitions any block across any worker count — but the
/// spawned pool stops burning timeslices on workers that can never run
/// concurrently.
pub fn effective_p(requested: usize) -> usize {
    requested.clamp(1, available_cores())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_at_least_one_core() {
        assert!(probe_cores() >= 1);
        assert_eq!(available_cores(), available_cores(), "cache is stable");
    }

    #[test]
    fn effective_p_clamps_to_host_and_floor() {
        let cores = available_cores();
        assert_eq!(effective_p(0), 1, "zero requests still get one worker");
        assert_eq!(effective_p(1), 1);
        assert_eq!(effective_p(cores), cores);
        assert_eq!(effective_p(cores + 7), cores, "oversubscription is clamped");
        assert_eq!(effective_p(usize::MAX), cores);
    }

    #[test]
    fn affinity_mask_agrees_with_probe_when_reported() {
        if let Some(allowed) = affinity::allowed_cores() {
            assert_eq!(probe_cores(), allowed.max(1));
        }
    }
}
