//! Exact DRAM traffic accounting for block schedules.
//!
//! Walks a block schedule and counts external-memory element transfers
//! under the paper's reuse rules:
//!
//! * An **A surface** is fetched unless the previous block had the same
//!   `(m, k)` coordinates (the LLC keeps the previous block's inputs —
//!   that is what the factor 2 in the Section 4.3 sizing rule buys).
//! * A **B surface** is fetched unless the previous block had the same
//!   `(k, n)`.
//! * The **C surface** policy is configurable:
//!   - [`CResidency::HoldInLlc`] (CAKE): the partial panel for the current
//!     `(m, n)` stays in local memory. Leaving an `(m, n)` before its
//!     reduction completes spills it (write now + read on return); a
//!     completed panel is written exactly once. The K-first schedule never
//!     spills.
//!   - [`CResidency::StreamToDram`] (GOTO-style): every block visit reads
//!     the partial panel from DRAM (except the first visit) and writes it
//!     back (paper Section 4.1: partial results of C are streamed to DRAM).
//!
//! Edge blocks at the matrix boundary are accounted with their true
//! (smaller) surface sizes.

use std::collections::HashMap;

use crate::panel::{PanelAction, PanelCache};
use crate::schedule::BlockCoord;

/// Problem and block extents needed to size surfaces.
#[derive(Debug, Clone, Copy)]
pub struct TrafficParams {
    /// Full problem extents.
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Column extent.
    pub n: usize,
    /// Block extent along M.
    pub bm: usize,
    /// Block extent along K.
    pub bk: usize,
    /// Block extent along N.
    pub bn: usize,
}

impl TrafficParams {
    fn m_len(&self, mi: usize) -> usize {
        self.bm.min(self.m - mi * self.bm)
    }
    fn k_len(&self, ki: usize) -> usize {
        self.bk.min(self.k - ki * self.bk)
    }
    fn n_len(&self, ni: usize) -> usize {
        self.bn.min(self.n - ni * self.bn)
    }
    fn kb(&self) -> usize {
        if self.k == 0 { 0 } else { self.k.div_ceil(self.bk) }
    }
}

/// What happens to partial C panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CResidency {
    /// Partial panels held in local memory until complete (CAKE).
    HoldInLlc,
    /// Partial panels streamed to/from DRAM every visit (GOTO).
    StreamToDram,
}

/// DRAM traffic tally, in elements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Elements of A fetched from DRAM.
    pub a_loads: u64,
    /// Elements of B fetched from DRAM.
    pub b_loads: u64,
    /// Elements of completed C written to DRAM (exactly `M * N` when the
    /// whole product is computed).
    pub c_final_writes: u64,
    /// Elements of *partial* C written to DRAM (spills / streaming).
    pub c_partial_writes: u64,
    /// Elements of partial C read back from DRAM.
    pub c_partial_reads: u64,
}

impl Traffic {
    /// Total elements moved between DRAM and local memory.
    pub fn total(&self) -> u64 {
        self.a_loads + self.b_loads + self.c_final_writes + self.c_partial_writes + self.c_partial_reads
    }

    /// Total bytes for a uniform element size (`T::Acc = T` dtypes).
    pub fn total_bytes(&self, elem_bytes: usize) -> u64 {
        self.total() * elem_bytes as u64
    }

    /// Operand (A + B) bytes at the given element size.
    pub fn input_bytes(&self, elem_bytes: usize) -> u64 {
        (self.a_loads + self.b_loads) * elem_bytes as u64
    }

    /// Total bytes with distinct operand and accumulator element sizes:
    /// A/B surfaces move at `elem_bytes`, every C surface at `acc_bytes` —
    /// the narrow-dtype tier streams i8/bf16 inputs but i32/f32 outputs.
    pub fn total_bytes_split(&self, elem_bytes: usize, acc_bytes: usize) -> u64 {
        self.input_bytes(elem_bytes) + self.c_total() * acc_bytes as u64
    }

    /// Typed-byte total for dtype `T`: operands at `size_of::<T>()`, C at
    /// `size_of::<T::Acc>()`. Equals [`Traffic::total_bytes`] whenever
    /// `T::Acc = T`.
    pub fn total_bytes_for<T: cake_matrix::Dtype>(&self) -> u64 {
        self.total_bytes_split(std::mem::size_of::<T>(), std::mem::size_of::<T::Acc>())
    }

    /// All C-related traffic.
    pub fn c_total(&self) -> u64 {
        self.c_final_writes + self.c_partial_writes + self.c_partial_reads
    }
}

/// Walk `schedule` and tally DRAM traffic under the given C policy.
pub fn dram_traffic(
    schedule: impl IntoIterator<Item = BlockCoord>,
    params: TrafficParams,
    c_policy: CResidency,
) -> Traffic {
    let mut t = Traffic::default();
    let kb = params.kb();
    // Remaining K-blocks per (m, n) panel; missing entry = untouched.
    let mut remaining: HashMap<(usize, usize), usize> = HashMap::new();
    let mut prev: Option<BlockCoord> = None;

    for c in schedule {
        let (ml, kl, nl) = (params.m_len(c.m), params.k_len(c.k), params.n_len(c.n));
        let a_size = (ml * kl) as u64;
        let b_size = (kl * nl) as u64;
        let c_size = (ml * nl) as u64;

        let share_a = prev.is_some_and(|p| p.m == c.m && p.k == c.k);
        let share_b = prev.is_some_and(|p| p.k == c.k && p.n == c.n);
        if !share_a {
            t.a_loads += a_size;
        }
        if !share_b {
            t.b_loads += b_size;
        }

        let key = (c.m, c.n);
        let entry = remaining.entry(key).or_insert(kb);
        let first_visit = *entry == kb;

        match c_policy {
            CResidency::HoldInLlc => {
                let resident = prev.is_some_and(|p| p.m == c.m && p.n == c.n);
                if !first_visit && !resident {
                    // Returning to a previously spilled partial panel.
                    t.c_partial_reads += c_size;
                }
                *entry -= 1;
                if *entry == 0 {
                    t.c_final_writes += c_size;
                    remaining.remove(&key);
                } else {
                    // Peek: if the next block leaves this (m, n), we will
                    // spill. We can't peek an iterator generically, so spill
                    // accounting is deferred: handled when the *next* block
                    // arrives (see below).
                }
            }
            CResidency::StreamToDram => {
                if !first_visit {
                    t.c_partial_reads += c_size;
                }
                *entry -= 1;
                if *entry == 0 {
                    t.c_final_writes += c_size;
                    remaining.remove(&key);
                } else {
                    t.c_partial_writes += c_size;
                }
            }
        }

        // Deferred spill for HoldInLlc: when we moved away from `prev`'s
        // (m, n) while it was still incomplete, that panel was written out.
        if c_policy == CResidency::HoldInLlc {
            if let Some(p) = prev {
                let moved_away = p.m != c.m || p.n != c.n;
                if moved_away {
                    if let Some(_rem) = remaining.get(&(p.m, p.n)) {
                        let spilled = (params.m_len(p.m) * params.n_len(p.n)) as u64;
                        t.c_partial_writes += spilled;
                    }
                }
            }
        }

        prev = Some(c);
    }

    // A trailing incomplete panel (possible only for truncated schedules)
    // is spilled at the end.
    if c_policy == CResidency::HoldInLlc {
        if let Some(p) = prev {
            if remaining.contains_key(&(p.m, p.n)) {
                t.c_partial_writes += (params.m_len(p.m) * params.n_len(p.n)) as u64;
            }
        }
    }

    t
}

/// [`dram_traffic`], but with B loads served by the executor's actual
/// panel ring instead of the adjacent-block share rule alone.
///
/// The pipelined executor keeps a ring of `ring_depth` B panels managed as
/// an LRU cache of `(k, n)` surfaces ([`PanelCache`] — the *same* state
/// machine replayed here), so at a snake reversal it often re-reads a
/// surface the adjacency rule would count as a fresh DRAM fetch. B loads
/// from this function therefore never exceed [`dram_traffic`]'s, and they
/// equal the executor's measured [`crate::ExecStats::b_elems_loaded`]
/// exactly (when built with the `traffic-counters` feature). A and C
/// accounting is identical to [`dram_traffic`]: the executor's A strips
/// are single-buffered per worker and C accumulates in place.
///
/// # Panics
/// Panics when `ring_depth < 2` — the executor's ring never has fewer
/// than two panels ([`crate::panel::ring_depth`]), and the LRU eviction
/// rule needs a victim distinct from the live panel.
pub fn dram_traffic_with_panel_ring(
    schedule: impl IntoIterator<Item = BlockCoord>,
    params: TrafficParams,
    c_policy: CResidency,
    ring_depth: usize,
) -> Traffic {
    assert!(ring_depth >= 2, "panel ring needs at least 2 panels");
    let coords: Vec<BlockCoord> = schedule.into_iter().collect();
    let mut t = dram_traffic(coords.iter().copied(), params, c_policy);

    // Re-derive B loads by replaying the executor's LRU panel ring: a
    // pack (miss) fetches the surface, Keep/Rotate serve it from the ring.
    t.b_loads = 0;
    let mut cache: Option<PanelCache> = None;
    for c in &coords {
        let want = (c.k, c.n);
        let b_size = (params.k_len(c.k) * params.n_len(c.n)) as u64;
        match cache.as_mut() {
            None => {
                let mut pc = PanelCache::new(ring_depth);
                pc.seed(want);
                cache = Some(pc);
                t.b_loads += b_size; // prologue pack of block 0
            }
            Some(pc) => {
                if let PanelAction::Pack(_) = pc.advance(want) {
                    t.b_loads += b_size;
                }
            }
        }
    }
    t
}

/// DRAM traffic of the **two-level** CB schedule over the same block
/// geometry: the K/N block grid is cut into outer tiles of
/// `ko_blocks x no_blocks` L2-level blocks
/// ([`crate::schedule::TwoLevelSchedule`]) and the resulting block order
/// replays through the *same* accounting as [`dram_traffic`] — so the
/// two-level model reconciles u64-exactly with the executor's element
/// counters by construction (both walk the identical coordinate
/// sequence under identical share rules).
///
/// `0` in either outer extent disables that level; both `0` returns
/// exactly [`dram_traffic`] over the one-level K-first schedule.
///
/// Under [`CResidency::HoldInLlc`], tiling K (`ko_blocks < kb`) spills
/// each partial-C panel once per outer-tile departure — the MOMMS
/// trade: bounded LLC-level C working set bought with partial round
/// trips. Tiling only N never spills (every panel's reduction still
/// completes within its tile).
pub fn two_level_traffic(
    params: TrafficParams,
    ko_blocks: usize,
    no_blocks: usize,
    c_policy: CResidency,
) -> Traffic {
    let grid = crate::schedule::BlockGrid::for_problem(
        params.m, params.k, params.n, params.bm, params.bk, params.bn,
    );
    let sched =
        crate::schedule::TwoLevelSchedule::new(grid, params.m, params.n, ko_blocks, no_blocks);
    dram_traffic(sched, params, c_policy)
}

/// [`two_level_traffic`] with B loads served by the executor's panel ring
/// (see [`dram_traffic_with_panel_ring`]): the exact model for the
/// pipelined executor's measured counters on a two-level schedule.
pub fn two_level_traffic_with_panel_ring(
    params: TrafficParams,
    ko_blocks: usize,
    no_blocks: usize,
    c_policy: CResidency,
    ring_depth: usize,
) -> Traffic {
    let grid = crate::schedule::BlockGrid::for_problem(
        params.m, params.k, params.n, params.bm, params.bk, params.bn,
    );
    let sched =
        crate::schedule::TwoLevelSchedule::new(grid, params.m, params.n, ko_blocks, no_blocks);
    dram_traffic_with_panel_ring(sched, params, c_policy, ring_depth)
}

#[cfg(test)]
mod two_level_tests {
    use super::*;
    use crate::schedule::{BlockGrid, KFirstSchedule};

    fn params(m: usize, k: usize, n: usize, b: usize) -> TrafficParams {
        TrafficParams { m, k, n, bm: b, bk: b, bn: b }
    }

    #[test]
    fn disabled_outer_level_equals_one_level_exactly() {
        for (m, k, n, b) in [(16, 16, 16, 4), (10, 9, 7, 4), (8, 24, 32, 8)] {
            let p = params(m, k, n, b);
            let grid = BlockGrid::for_problem(m, k, n, b, b, b);
            for policy in [CResidency::HoldInLlc, CResidency::StreamToDram] {
                let one = dram_traffic(KFirstSchedule::new(grid, m, n), p, policy);
                assert_eq!(two_level_traffic(p, 0, 0, policy), one, "{policy:?}");
                // Oversized tiles are the same degenerate case.
                assert_eq!(two_level_traffic(p, 99, 99, policy), one, "{policy:?}");
            }
        }
    }

    #[test]
    fn k_tiling_pays_exactly_one_spill_round_trip_per_panel_per_extra_tile() {
        // kb = 4 tiled at ko = 2: every (m, n) panel's reduction is
        // interrupted once, costing one partial write + one partial read.
        let p = params(8, 16, 8, 4); // mb = 2, kb = 4, nb = 2
        let t = two_level_traffic(p, 2, 0, CResidency::HoldInLlc);
        let panel = (4 * 4) as u64;
        let panels = 2 * 2;
        assert_eq!(t.c_partial_writes, panels * panel);
        assert_eq!(t.c_partial_reads, panels * panel);
        assert_eq!(t.c_final_writes, (8 * 8) as u64);
        // The one-level schedule never spills; the two-level C total is
        // higher by exactly the round trips.
        let one = two_level_traffic(p, 0, 0, CResidency::HoldInLlc);
        assert_eq!(one.c_partial_writes + one.c_partial_reads, 0);
        assert_eq!(t.c_total(), one.c_total() + 2 * panels * panel);
    }

    #[test]
    fn n_only_tiling_never_spills_partials() {
        let p = params(8, 16, 32, 4);
        let t = two_level_traffic(p, 0, 2, CResidency::HoldInLlc);
        assert_eq!(t.c_partial_writes, 0);
        assert_eq!(t.c_partial_reads, 0);
        assert_eq!(t.c_final_writes, (8 * 32) as u64);
    }

    #[test]
    fn panel_ring_variant_never_loads_more_b_than_adjacency() {
        let p = params(8, 16, 16, 4);
        let adj = two_level_traffic(p, 2, 2, CResidency::HoldInLlc);
        let ring = two_level_traffic_with_panel_ring(p, 2, 2, CResidency::HoldInLlc, 4);
        assert!(ring.b_loads <= adj.b_loads);
        // A and C accounting are identical between the two.
        assert_eq!(ring.a_loads, adj.a_loads);
        assert_eq!(ring.c_total(), adj.c_total());
    }

    #[test]
    fn one_level_total_is_the_floor_for_these_grids() {
        // The K-first boustrophedon is the paper's IO-minimal order; any
        // outer tiling trades C round trips (K tiles) or input reloads
        // (tile edges) and can only move more data in total. C finals are
        // invariant: every output element is written exactly once.
        let p = params(16, 16, 16, 4);
        let one = two_level_traffic(p, 0, 0, CResidency::HoldInLlc);
        for (ko, no) in [(2, 0), (0, 2), (2, 2), (1, 1)] {
            let t = two_level_traffic(p, ko, no, CResidency::HoldInLlc);
            assert!(t.total() >= one.total(), "ko={ko} no={no}");
            assert_eq!(t.c_final_writes, one.c_final_writes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{shared_surfaces, BlockGrid, KFirstSchedule, OuterLoop, Surface};

    fn params(m: usize, k: usize, n: usize, b: usize) -> TrafficParams {
        TrafficParams { m, k, n, bm: b, bk: b, bn: b }
    }

    fn kfirst(p: TrafficParams) -> KFirstSchedule {
        let grid = BlockGrid::for_problem(p.m, p.k, p.n, p.bm, p.bk, p.bn);
        KFirstSchedule::new(grid, p.m, p.n)
    }

    #[test]
    fn kfirst_schedule_never_spills_partials() {
        let p = params(8, 12, 16, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        assert_eq!(t.c_partial_writes, 0);
        assert_eq!(t.c_partial_reads, 0);
        assert_eq!(t.c_final_writes, (8 * 16) as u64);
    }

    #[test]
    fn c_final_writes_equal_output_size_regardless_of_policy() {
        let p = params(10, 9, 7, 4); // deliberately non-divisible
        for policy in [CResidency::HoldInLlc, CResidency::StreamToDram] {
            let t = dram_traffic(kfirst(p), p, policy);
            assert_eq!(t.c_final_writes, 70, "{policy:?}");
        }
    }

    #[test]
    fn streaming_pays_partial_round_trips() {
        let p = params(8, 12, 8, 4); // kb = 3
        let hold = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        let stream = dram_traffic(kfirst(p), p, CResidency::StreamToDram);
        assert!(stream.total() > hold.total());
        // Each (m, n) panel: kb-1 partial writes and kb-1 partial reads.
        let panels = 2 * 2; // (8/4) * (8/4)
        let per_panel = (4 * 4) as u64;
        assert_eq!(stream.c_partial_writes, panels as u64 * 2 * per_panel);
        assert_eq!(stream.c_partial_reads, panels as u64 * 2 * per_panel);
    }

    #[test]
    fn snake_reuse_reduces_input_loads() {
        let p = params(16, 16, 16, 4);
        let grid = BlockGrid::for_problem(16, 16, 16, 4, 4, 4);
        let snake = dram_traffic(
            KFirstSchedule::with_outer(grid, OuterLoop::NOuter),
            p,
            CResidency::HoldInLlc,
        );
        let naive = dram_traffic(
            KFirstSchedule::without_snaking(grid, OuterLoop::NOuter),
            p,
            CResidency::HoldInLlc,
        );
        // Snaking reuses one A or B surface at every loop boundary; the
        // non-snaking order must fetch strictly more input data and spill
        // partial C panels when it jumps back to k=0... (it does not jump in
        // (m,n) mid-run for K-inner loops, so only inputs differ here).
        assert!(naive.a_loads + naive.b_loads > snake.a_loads + snake.b_loads);
    }

    #[test]
    fn b_reused_across_m_steps() {
        // One K block, so the schedule is a pure (n, m) sweep: B loaded
        // once per n column, A loaded for every block.
        let p = params(12, 4, 12, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        assert_eq!(t.b_loads, (4 * 12) as u64); // 3 n-blocks x (4x4) each
        // A is fetched for every block except the two n-boundary snake
        // transitions, where (m, k) is unchanged: 9 - 2 = 7 fetches.
        assert_eq!(t.a_loads, (7 * 16) as u64);
    }

    #[test]
    fn edge_blocks_use_true_sizes() {
        // 5x5x5 with block 4: edge blocks are 1 wide.
        let p = params(5, 5, 5, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        assert_eq!(t.c_final_writes, 25);
        // Total A data is at most once per (m,k,n) triple: 4 m-blocks... and
        // at minimum the full matrix once.
        assert!(t.a_loads >= 25);
    }

    #[test]
    fn worst_case_schedule_spills_every_panel_switch() {
        // A K-outer schedule (k, m, n ordering) revisits each (m, n) panel
        // kb times with departures in between: HoldInLlc must spill.
        let p = params(8, 8, 8, 4);
        let mut order = Vec::new();
        for k in 0..2 {
            for m in 0..2 {
                for n in 0..2 {
                    order.push(BlockCoord { m, k, n });
                }
            }
        }
        let t = dram_traffic(order, p, CResidency::HoldInLlc);
        // Every panel is left once while incomplete: 4 panels spilled and
        // read back once each.
        assert_eq!(t.c_partial_writes, 4 * 16);
        assert_eq!(t.c_partial_reads, 4 * 16);
        assert_eq!(t.c_final_writes, 64);
    }

    #[test]
    fn empty_schedule_moves_nothing() {
        let p = params(0, 4, 4, 4);
        let t = dram_traffic(std::iter::empty(), p, CResidency::HoldInLlc);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn totals_add_up() {
        let p = params(8, 8, 8, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::StreamToDram);
        assert_eq!(
            t.total(),
            t.a_loads + t.b_loads + t.c_total()
        );
        assert_eq!(t.total_bytes(4), t.total() * 4);
    }

    #[test]
    fn int8_operand_bytes_are_exactly_one_quarter_of_f32() {
        use std::mem::size_of;
        let p = params(64, 48, 56, 16);
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        // Same schedule, same element counts: the predicted operand bytes
        // scale exactly with the element size, so int8 is one quarter of
        // f32 — u64-exact, no rounding anywhere.
        assert_eq!(t.input_bytes(size_of::<i8>()) * 4, t.input_bytes(size_of::<f32>()));
        // The C surfaces stay accumulator-width: i8 widens to i32 (4 B),
        // bf16 to f32 (4 B), so only the input side narrows.
        assert_eq!(t.total_bytes_for::<i8>(), t.input_bytes(1) + t.c_total() * 4);
        assert_eq!(
            t.total_bytes_for::<cake_matrix::Bf16>(),
            t.input_bytes(2) + t.c_total() * 4
        );
        // Uniform dtypes collapse to the legacy uniform-size total.
        assert_eq!(t.total_bytes_for::<f32>(), t.total_bytes(4));
        assert_eq!(t.total_bytes_for::<f64>(), t.total_bytes(8));
    }

    // ----- edge-block regressions (m/k/n not divisible by bm/bk/bn) -----

    #[test]
    fn non_divisible_extents_tally_exact_edge_sizes() {
        // 5x3x5 with 4x4x4 blocks: grid 2x1x2, kb = 1, N-outer snake
        // (m0,n0) (m1,n0) (m1,n1) (m0,n1). Edge blocks are 1 wide/tall.
        let p = TrafficParams { m: 5, k: 3, n: 5, bm: 4, bk: 4, bn: 4 };
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        // B: loaded once per n stripe (shared across the m step):
        // 3*4 + 3*1 elements.
        assert_eq!(t.b_loads, 15);
        // A: every block except the n-boundary share (m1 stays):
        // 4*3 + 1*3 + 0 + 4*3.
        assert_eq!(t.a_loads, 27);
        assert_eq!(t.c_final_writes, 25);
        assert_eq!(t.c_partial_writes + t.c_partial_reads, 0);
    }

    #[test]
    fn non_divisible_full_input_coverage_lower_bound() {
        // Whatever the sharing pattern, each input element is fetched at
        // least once and C completes exactly once per element.
        for (m, k, n, b) in [(10, 9, 7, 4), (7, 7, 7, 3), (13, 5, 11, 8)] {
            let p = params(m, k, n, b);
            let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
            assert!(t.a_loads >= (m * k) as u64, "{m}x{k}x{n}/{b}");
            assert!(t.b_loads >= (k * n) as u64, "{m}x{k}x{n}/{b}");
            assert_eq!(t.c_final_writes, (m * n) as u64, "{m}x{k}x{n}/{b}");
        }
    }

    #[test]
    fn single_block_grid_loads_everything_exactly_once() {
        // mb = kb = nb = 1: one block, no transitions, no reuse to find.
        let p = params(5, 6, 7, 8);
        let grid = BlockGrid::for_problem(5, 6, 7, 8, 8, 8);
        assert_eq!((grid.mb, grid.kb, grid.nb), (1, 1, 1));
        for policy in [CResidency::HoldInLlc, CResidency::StreamToDram] {
            let t = dram_traffic(kfirst(p), p, policy);
            assert_eq!(t.a_loads, 30, "{policy:?}");
            assert_eq!(t.b_loads, 42, "{policy:?}");
            assert_eq!(t.c_final_writes, 35, "{policy:?}");
            assert_eq!(t.c_partial_writes + t.c_partial_reads, 0, "{policy:?}");
        }
    }

    #[test]
    fn shared_surfaces_on_single_block_schedule_does_not_panic() {
        // A 1-block schedule has an empty transition window; iterating
        // adjacent pairs must be a no-op, and a degenerate self-pair must
        // not panic either (it reports all three surfaces shared).
        let sched: Vec<BlockCoord> =
            KFirstSchedule::new(BlockGrid::for_problem(4, 4, 4, 8, 8, 8), 4, 4).collect();
        assert_eq!(sched.len(), 1);
        for w in sched.windows(2) {
            let _ = shared_surfaces(w[0], w[1]); // never reached
        }
        let all = shared_surfaces(sched[0], sched[0]);
        assert_eq!(all, vec![Surface::A, Surface::B, Surface::C]);
    }

    // ----- ring-aware B accounting (the executor's panel ring) -----

    #[test]
    fn ring_b_loads_never_exceed_adjacency_b_loads() {
        for (m, k, n, b) in [(16, 16, 16, 4), (10, 9, 7, 4), (32, 48, 32, 16)] {
            let p = params(m, k, n, b);
            for depth in 2..=4 {
                let adj = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
                let ring =
                    dram_traffic_with_panel_ring(kfirst(p), p, CResidency::HoldInLlc, depth);
                assert!(ring.b_loads <= adj.b_loads, "{m}x{k}x{n}/{b} depth {depth}");
                // A and C accounting is untouched by the ring.
                assert_eq!(ring.a_loads, adj.a_loads);
                assert_eq!(ring.c_final_writes, adj.c_final_writes);
                assert_eq!(ring.c_partial_writes, adj.c_partial_writes);
                assert_eq!(ring.c_partial_reads, adj.c_partial_reads);
            }
        }
    }

    #[test]
    fn deep_ring_packs_each_b_surface_exactly_once() {
        // Ring at least as deep as the k-block count: every revisit hits,
        // so B DRAM traffic collapses to one fetch per element of B per n
        // stripe sweep = exactly k*n elements.
        let p = params(32, 48, 32, 16); // kb = 3 <= depth 3
        let t = dram_traffic_with_panel_ring(kfirst(p), p, CResidency::HoldInLlc, 3);
        assert_eq!(t.b_loads, (48 * 32) as u64);
    }

    #[test]
    fn shallow_ring_repays_at_snake_reversals_only() {
        // kb = 3 with only 2 panels: some reversal surfaces were already
        // evicted, so a shallow ring saves less than a kb-deep one but
        // still at least matches plain adjacency sharing.
        let p = params(32, 48, 32, 16);
        let adj = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        let shallow = dram_traffic_with_panel_ring(kfirst(p), p, CResidency::HoldInLlc, 2);
        let deep = dram_traffic_with_panel_ring(kfirst(p), p, CResidency::HoldInLlc, 3);
        assert!(deep.b_loads < shallow.b_loads);
        assert!(shallow.b_loads <= adj.b_loads);
    }

    #[test]
    #[should_panic(expected = "at least 2 panels")]
    fn ring_depth_below_two_is_rejected() {
        let p = params(8, 8, 8, 4);
        let _ = dram_traffic_with_panel_ring(kfirst(p), p, CResidency::HoldInLlc, 1);
    }

    #[test]
    fn ring_on_empty_schedule_moves_nothing() {
        let p = params(0, 4, 4, 4);
        let t = dram_traffic_with_panel_ring(
            std::iter::empty(),
            p,
            CResidency::HoldInLlc,
            2,
        );
        assert_eq!(t.total(), 0);
    }
}
