//! Exact DRAM traffic accounting for block schedules.
//!
//! Walks a block schedule and counts external-memory element transfers
//! under the paper's reuse rules:
//!
//! * An **A surface** is fetched unless the previous block had the same
//!   `(m, k)` coordinates (the LLC keeps the previous block's inputs —
//!   that is what the factor 2 in the Section 4.3 sizing rule buys).
//! * A **B surface** is fetched unless the previous block had the same
//!   `(k, n)`.
//! * The **C surface** policy is configurable:
//!   - [`CResidency::HoldInLlc`] (CAKE): the partial panel for the current
//!     `(m, n)` stays in local memory. Leaving an `(m, n)` before its
//!     reduction completes spills it (write now + read on return); a
//!     completed panel is written exactly once. The K-first schedule never
//!     spills.
//!   - [`CResidency::StreamToDram`] (GOTO-style): every block visit reads
//!     the partial panel from DRAM (except the first visit) and writes it
//!     back (paper Section 4.1: partial results of C are streamed to DRAM).
//!
//! Edge blocks at the matrix boundary are accounted with their true
//! (smaller) surface sizes.

use std::collections::HashMap;

use crate::schedule::BlockCoord;

/// Problem and block extents needed to size surfaces.
#[derive(Debug, Clone, Copy)]
pub struct TrafficParams {
    /// Full problem extents.
    pub m: usize,
    /// Reduction extent.
    pub k: usize,
    /// Column extent.
    pub n: usize,
    /// Block extent along M.
    pub bm: usize,
    /// Block extent along K.
    pub bk: usize,
    /// Block extent along N.
    pub bn: usize,
}

impl TrafficParams {
    fn m_len(&self, mi: usize) -> usize {
        self.bm.min(self.m - mi * self.bm)
    }
    fn k_len(&self, ki: usize) -> usize {
        self.bk.min(self.k - ki * self.bk)
    }
    fn n_len(&self, ni: usize) -> usize {
        self.bn.min(self.n - ni * self.bn)
    }
    fn kb(&self) -> usize {
        if self.k == 0 { 0 } else { self.k.div_ceil(self.bk) }
    }
}

/// What happens to partial C panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CResidency {
    /// Partial panels held in local memory until complete (CAKE).
    HoldInLlc,
    /// Partial panels streamed to/from DRAM every visit (GOTO).
    StreamToDram,
}

/// DRAM traffic tally, in elements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Elements of A fetched from DRAM.
    pub a_loads: u64,
    /// Elements of B fetched from DRAM.
    pub b_loads: u64,
    /// Elements of completed C written to DRAM (exactly `M * N` when the
    /// whole product is computed).
    pub c_final_writes: u64,
    /// Elements of *partial* C written to DRAM (spills / streaming).
    pub c_partial_writes: u64,
    /// Elements of partial C read back from DRAM.
    pub c_partial_reads: u64,
}

impl Traffic {
    /// Total elements moved between DRAM and local memory.
    pub fn total(&self) -> u64 {
        self.a_loads + self.b_loads + self.c_final_writes + self.c_partial_writes + self.c_partial_reads
    }

    /// Total bytes for an element size.
    pub fn total_bytes(&self, elem_bytes: usize) -> u64 {
        self.total() * elem_bytes as u64
    }

    /// All C-related traffic.
    pub fn c_total(&self) -> u64 {
        self.c_final_writes + self.c_partial_writes + self.c_partial_reads
    }
}

/// Walk `schedule` and tally DRAM traffic under the given C policy.
pub fn dram_traffic(
    schedule: impl IntoIterator<Item = BlockCoord>,
    params: TrafficParams,
    c_policy: CResidency,
) -> Traffic {
    let mut t = Traffic::default();
    let kb = params.kb();
    // Remaining K-blocks per (m, n) panel; missing entry = untouched.
    let mut remaining: HashMap<(usize, usize), usize> = HashMap::new();
    let mut prev: Option<BlockCoord> = None;

    for c in schedule {
        let (ml, kl, nl) = (params.m_len(c.m), params.k_len(c.k), params.n_len(c.n));
        let a_size = (ml * kl) as u64;
        let b_size = (kl * nl) as u64;
        let c_size = (ml * nl) as u64;

        let share_a = prev.is_some_and(|p| p.m == c.m && p.k == c.k);
        let share_b = prev.is_some_and(|p| p.k == c.k && p.n == c.n);
        if !share_a {
            t.a_loads += a_size;
        }
        if !share_b {
            t.b_loads += b_size;
        }

        let key = (c.m, c.n);
        let entry = remaining.entry(key).or_insert(kb);
        let first_visit = *entry == kb;

        match c_policy {
            CResidency::HoldInLlc => {
                let resident = prev.is_some_and(|p| p.m == c.m && p.n == c.n);
                if !first_visit && !resident {
                    // Returning to a previously spilled partial panel.
                    t.c_partial_reads += c_size;
                }
                *entry -= 1;
                if *entry == 0 {
                    t.c_final_writes += c_size;
                    remaining.remove(&key);
                } else {
                    // Peek: if the next block leaves this (m, n), we will
                    // spill. We can't peek an iterator generically, so spill
                    // accounting is deferred: handled when the *next* block
                    // arrives (see below).
                }
            }
            CResidency::StreamToDram => {
                if !first_visit {
                    t.c_partial_reads += c_size;
                }
                *entry -= 1;
                if *entry == 0 {
                    t.c_final_writes += c_size;
                    remaining.remove(&key);
                } else {
                    t.c_partial_writes += c_size;
                }
            }
        }

        // Deferred spill for HoldInLlc: when we moved away from `prev`'s
        // (m, n) while it was still incomplete, that panel was written out.
        if c_policy == CResidency::HoldInLlc {
            if let Some(p) = prev {
                let moved_away = p.m != c.m || p.n != c.n;
                if moved_away {
                    if let Some(_rem) = remaining.get(&(p.m, p.n)) {
                        let spilled = (params.m_len(p.m) * params.n_len(p.n)) as u64;
                        t.c_partial_writes += spilled;
                    }
                }
            }
        }

        prev = Some(c);
    }

    // A trailing incomplete panel (possible only for truncated schedules)
    // is spilled at the end.
    if c_policy == CResidency::HoldInLlc {
        if let Some(p) = prev {
            if remaining.contains_key(&(p.m, p.n)) {
                t.c_partial_writes += (params.m_len(p.m) * params.n_len(p.n)) as u64;
            }
        }
    }

    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{BlockGrid, KFirstSchedule, OuterLoop};

    fn params(m: usize, k: usize, n: usize, b: usize) -> TrafficParams {
        TrafficParams { m, k, n, bm: b, bk: b, bn: b }
    }

    fn kfirst(p: TrafficParams) -> KFirstSchedule {
        let grid = BlockGrid::for_problem(p.m, p.k, p.n, p.bm, p.bk, p.bn);
        KFirstSchedule::new(grid, p.m, p.n)
    }

    #[test]
    fn kfirst_schedule_never_spills_partials() {
        let p = params(8, 12, 16, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        assert_eq!(t.c_partial_writes, 0);
        assert_eq!(t.c_partial_reads, 0);
        assert_eq!(t.c_final_writes, (8 * 16) as u64);
    }

    #[test]
    fn c_final_writes_equal_output_size_regardless_of_policy() {
        let p = params(10, 9, 7, 4); // deliberately non-divisible
        for policy in [CResidency::HoldInLlc, CResidency::StreamToDram] {
            let t = dram_traffic(kfirst(p), p, policy);
            assert_eq!(t.c_final_writes, 70, "{policy:?}");
        }
    }

    #[test]
    fn streaming_pays_partial_round_trips() {
        let p = params(8, 12, 8, 4); // kb = 3
        let hold = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        let stream = dram_traffic(kfirst(p), p, CResidency::StreamToDram);
        assert!(stream.total() > hold.total());
        // Each (m, n) panel: kb-1 partial writes and kb-1 partial reads.
        let panels = 2 * 2; // (8/4) * (8/4)
        let per_panel = (4 * 4) as u64;
        assert_eq!(stream.c_partial_writes, panels as u64 * 2 * per_panel);
        assert_eq!(stream.c_partial_reads, panels as u64 * 2 * per_panel);
    }

    #[test]
    fn snake_reuse_reduces_input_loads() {
        let p = params(16, 16, 16, 4);
        let grid = BlockGrid::for_problem(16, 16, 16, 4, 4, 4);
        let snake = dram_traffic(
            KFirstSchedule::with_outer(grid, OuterLoop::NOuter),
            p,
            CResidency::HoldInLlc,
        );
        let naive = dram_traffic(
            KFirstSchedule::without_snaking(grid, OuterLoop::NOuter),
            p,
            CResidency::HoldInLlc,
        );
        // Snaking reuses one A or B surface at every loop boundary; the
        // non-snaking order must fetch strictly more input data and spill
        // partial C panels when it jumps back to k=0... (it does not jump in
        // (m,n) mid-run for K-inner loops, so only inputs differ here).
        assert!(naive.a_loads + naive.b_loads > snake.a_loads + snake.b_loads);
    }

    #[test]
    fn b_reused_across_m_steps() {
        // One K block, so the schedule is a pure (n, m) sweep: B loaded
        // once per n column, A loaded for every block.
        let p = params(12, 4, 12, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        assert_eq!(t.b_loads, (4 * 12) as u64); // 3 n-blocks x (4x4) each
        // A is fetched for every block except the two n-boundary snake
        // transitions, where (m, k) is unchanged: 9 - 2 = 7 fetches.
        assert_eq!(t.a_loads, (7 * 16) as u64);
    }

    #[test]
    fn edge_blocks_use_true_sizes() {
        // 5x5x5 with block 4: edge blocks are 1 wide.
        let p = params(5, 5, 5, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::HoldInLlc);
        assert_eq!(t.c_final_writes, 25);
        // Total A data is at most once per (m,k,n) triple: 4 m-blocks... and
        // at minimum the full matrix once.
        assert!(t.a_loads >= 25);
    }

    #[test]
    fn worst_case_schedule_spills_every_panel_switch() {
        // A K-outer schedule (k, m, n ordering) revisits each (m, n) panel
        // kb times with departures in between: HoldInLlc must spill.
        let p = params(8, 8, 8, 4);
        let mut order = Vec::new();
        for k in 0..2 {
            for m in 0..2 {
                for n in 0..2 {
                    order.push(BlockCoord { m, k, n });
                }
            }
        }
        let t = dram_traffic(order, p, CResidency::HoldInLlc);
        // Every panel is left once while incomplete: 4 panels spilled and
        // read back once each.
        assert_eq!(t.c_partial_writes, 4 * 16);
        assert_eq!(t.c_partial_reads, 4 * 16);
        assert_eq!(t.c_final_writes, 64);
    }

    #[test]
    fn empty_schedule_moves_nothing() {
        let p = params(0, 4, 4, 4);
        let t = dram_traffic(std::iter::empty(), p, CResidency::HoldInLlc);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn totals_add_up() {
        let p = params(8, 8, 8, 4);
        let t = dram_traffic(kfirst(p), p, CResidency::StreamToDram);
        assert_eq!(
            t.total(),
            t.a_loads + t.b_loads + t.c_total()
        );
        assert_eq!(t.total_bytes(4), t.total() * 4);
    }
}
