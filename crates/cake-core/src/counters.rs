//! Measured element-traffic counters for the executor, gated by the
//! `traffic-counters` feature.
//!
//! With the feature enabled, the executor tallies every element it
//! actually packs (A strips, B panel slivers) and every C element it
//! updates, and publishes the totals through [`crate::ExecStats`]. The
//! `cake-verify` conformance oracle compares these *measured* quantities
//! against the analytical accounting in [`crate::traffic`] and the
//! closed forms of [`crate::model`].
//!
//! With the feature disabled (the default), [`Tally`] is a zero-sized
//! no-op: the executor code stays identical in both configurations and
//! the compiler removes the calls entirely.

#[cfg(feature = "traffic-counters")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Cross-worker element-count sinks. Workers add per-pack totals (one
/// atomic add per pack or compute call, not per element), so the cost is
/// negligible even when enabled.
#[derive(Default)]
pub(crate) struct Tally {
    #[cfg(feature = "traffic-counters")]
    a_elems: AtomicU64,
    #[cfg(feature = "traffic-counters")]
    b_elems: AtomicU64,
    #[cfg(feature = "traffic-counters")]
    c_elems: AtomicU64,
}

impl Tally {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Record `elems` A elements packed from the source view.
    #[inline]
    pub(crate) fn add_a(&self, elems: usize) {
        #[cfg(feature = "traffic-counters")]
        self.a_elems.fetch_add(elems as u64, Ordering::Relaxed);
        #[cfg(not(feature = "traffic-counters"))]
        let _ = elems;
    }

    /// Record `elems` B elements packed from the source view.
    #[inline]
    pub(crate) fn add_b(&self, elems: usize) {
        #[cfg(feature = "traffic-counters")]
        self.b_elems.fetch_add(elems as u64, Ordering::Relaxed);
        #[cfg(not(feature = "traffic-counters"))]
        let _ = elems;
    }

    /// Record `elems` C elements updated in place.
    #[inline]
    pub(crate) fn add_c(&self, elems: usize) {
        #[cfg(feature = "traffic-counters")]
        self.c_elems.fetch_add(elems as u64, Ordering::Relaxed);
        #[cfg(not(feature = "traffic-counters"))]
        let _ = elems;
    }

    /// `(a_elems, b_elems, c_elems)` totals; all zero without the feature.
    pub(crate) fn snapshot(&self) -> (u64, u64, u64) {
        #[cfg(feature = "traffic-counters")]
        {
            (
                self.a_elems.load(Ordering::Relaxed),
                self.b_elems.load(Ordering::Relaxed),
                self.c_elems.load(Ordering::Relaxed),
            )
        }
        #[cfg(not(feature = "traffic-counters"))]
        {
            (0, 0, 0)
        }
    }
}
