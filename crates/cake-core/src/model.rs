//! The CAKE analytical resource model (paper Sections 3 and 4.2).
//!
//! Two levels of abstraction:
//!
//! * The **abstract machine** of Section 3, measured in *tiles* and *unit
//!   times* — free functions [`cb_internal_mem_tiles`], [`cb_min_ext_bw_tiles`],
//!   [`cb_internal_bw_tiles`] implementing Equations 1–3 verbatim.
//! * The **CPU instantiation** of Section 4.2 — [`CakeModel`], measured in
//!   elements, cycles, bytes and GB/s. Instead of the paper's tile-normalized
//!   unit time (one `mr x kc x nr` tile product per "cycle"), the CPU model
//!   uses a real clock and a sustained per-core MAC rate, from which the
//!   paper's Equations 4–6 fall out:
//!
//!   ```text
//!   T_block      = p*mc * kc * nc / (p * macs_per_cycle)          [cycles]
//!   BW_ext       = (A + B) / T  = ((alpha+1)/alpha) * rate / mc   [elems/cy]
//!   BW_int       = (A + B + 2C) / T = BW_ext + 2p * rate / kc     [elems/cy]
//!   MEM_local    = p*mc*kc*(alpha+1) + alpha*p^2*mc^2             [elems]
//!   ```
//!
//!   `BW_ext` is independent of `p` (Eq. 4: constant external bandwidth),
//!   `BW_int` grows linearly in `p` (Eq. 6), and `MEM_local` grows
//!   quadratically (Eq. 5).

use crate::shape::CbBlockShape;

// ----------------------------------------------------------------------------
// Section 3: abstract machine, tile units.
// ----------------------------------------------------------------------------

/// Eq. 1 — internal memory needed by one CB block, in tiles:
/// `alpha*p*k^2 + p*k^2 + alpha*p^2*k^2`.
pub fn cb_internal_mem_tiles(p: usize, k: usize, alpha: f64) -> f64 {
    let (p, k) = (p as f64, k as f64);
    alpha * p * k * k + p * k * k + alpha * p * p * k * k
}

/// Eq. 2 — minimum external bandwidth of a CB block, in tiles per unit
/// time: `((alpha + 1)/alpha) * k`. Independent of `p` — the central claim.
pub fn cb_min_ext_bw_tiles(k: usize, alpha: f64) -> f64 {
    (alpha + 1.0) / alpha * k as f64
}

/// Eq. 3 — internal (local-memory) bandwidth of a CB block, in tiles per
/// unit time: `R*k + 2*p*k`, where `R` is the external-bandwidth factor
/// (`BW_ext = R*k`).
pub fn cb_internal_bw_tiles(p: usize, k: usize, r: f64) -> f64 {
    r * k as f64 + 2.0 * (p * k) as f64
}

/// Section 3.2 — smallest `alpha` satisfying `BW_ext >= BW_min` given the
/// external-bandwidth factor `R > 1`: `alpha >= 1 / (R - 1)` (clamped to 1,
/// since `alpha >= 1` by construction).
pub fn alpha_min_for_bw_factor(r: f64) -> f64 {
    assert!(r > 1.0, "external bandwidth factor R must exceed 1 (got {r})");
    (1.0 / (r - 1.0)).max(1.0)
}

// ----------------------------------------------------------------------------
// Section 4.2: CPU instantiation.
// ----------------------------------------------------------------------------

/// CPU-level CAKE model for a concrete CB block shape, kernel, and clock.
#[derive(Debug, Clone, Copy)]
pub struct CakeModel {
    /// CB block shape (provides `p`, `mc`, `kc`, `nc`, `alpha`).
    pub shape: CbBlockShape,
    /// Kernel register-tile rows.
    pub mr: usize,
    /// Kernel register-tile columns.
    pub nr: usize,
    /// Element size in bytes.
    pub elem_bytes: usize,
    /// Core clock in GHz (cycles per nanosecond).
    pub freq_ghz: f64,
    /// Sustained MACs per cycle per core. The paper's idealized machine
    /// retires `mr * nr` (one FMA across the full register tile per cycle);
    /// real kernels land somewhere below that. This scales timing uniformly
    /// and cancels out of all "who wins" comparisons.
    pub macs_per_cycle: f64,
}

impl CakeModel {
    /// Model with the idealized `mr * nr` MACs per cycle per core.
    pub fn new(shape: CbBlockShape, mr: usize, nr: usize, elem_bytes: usize, freq_ghz: f64) -> Self {
        Self::with_mac_rate(shape, mr, nr, elem_bytes, freq_ghz, (mr * nr) as f64)
    }

    /// Model with an explicit sustained MAC rate (e.g. measured).
    pub fn with_mac_rate(
        shape: CbBlockShape,
        mr: usize,
        nr: usize,
        elem_bytes: usize,
        freq_ghz: f64,
        macs_per_cycle: f64,
    ) -> Self {
        assert!(mr > 0 && nr > 0 && elem_bytes > 0);
        assert!(freq_ghz > 0.0 && macs_per_cycle > 0.0);
        Self {
            shape,
            mr,
            nr,
            elem_bytes,
            freq_ghz,
            macs_per_cycle,
        }
    }

    /// Compute time of one CB block in cycles: all `p*mc*kc*nc` MACs spread
    /// over `p` cores at `macs_per_cycle` each.
    pub fn block_compute_cycles(&self) -> f64 {
        self.shape.block_macs() as f64 / (self.shape.p as f64 * self.macs_per_cycle)
    }

    /// External (DRAM) IO of one CB block in elements: `A + B` surfaces
    /// only — partial C stays in the LLC (Section 4.2).
    pub fn block_ext_io_elems(&self) -> f64 {
        (self.shape.a_surface() + self.shape.b_surface()) as f64
    }

    /// Eq. 4 — required external bandwidth in elements per cycle:
    /// `((alpha+1)/alpha) * macs_per_cycle / mc`. Independent of `p`.
    pub fn ext_bw_elems_per_cycle(&self) -> f64 {
        self.block_ext_io_elems() / self.block_compute_cycles()
    }

    /// Eq. 4 converted to GB/s for this element type and clock.
    ///
    /// This is the dashed "CAKE Optimal" curve of Figures 10a and 11a: flat
    /// in the number of cores.
    pub fn ext_bw_gbs(&self) -> f64 {
        self.ext_bw_elems_per_cycle() * self.elem_bytes as f64 * self.freq_ghz
    }

    /// Eq. 5 — local memory footprint in elements:
    /// `p*mc*kc*(alpha+1) + alpha*p^2*mc^2`.
    pub fn local_mem_elems(&self) -> f64 {
        let s = &self.shape;
        let (p, mc, kc) = (s.p as f64, s.mc as f64, s.kc as f64);
        let alpha = s.alpha();
        p * mc * kc * (alpha + 1.0) + alpha * p * p * mc * mc
    }

    /// Eq. 5 in bytes.
    pub fn local_mem_bytes(&self) -> f64 {
        self.local_mem_elems() * self.elem_bytes as f64
    }

    /// Eq. 6 — internal (LLC<->cores) bandwidth in elements per cycle:
    /// `(A + B + 2C) / T`, i.e. `BW_ext + 2p*macs_per_cycle/kc`.
    /// Grows linearly with `p`.
    pub fn int_bw_elems_per_cycle(&self) -> f64 {
        let s = &self.shape;
        let io = self.block_ext_io_elems() + 2.0 * s.c_surface() as f64;
        io / self.block_compute_cycles()
    }

    /// Eq. 6 in GB/s.
    pub fn int_bw_gbs(&self) -> f64 {
        self.int_bw_elems_per_cycle() * self.elem_bytes as f64 * self.freq_ghz
    }

    /// Peak computation throughput with `p` cores in GFLOP/s
    /// (2 FLOPs per MAC).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.macs_per_cycle * self.shape.p as f64 * self.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: usize, alpha: f64) -> CakeModel {
        let shape = CbBlockShape::fixed(p, 96, 96, (alpha * (p * 96) as f64) as usize);
        CakeModel::new(shape, 6, 16, 4, 3.7)
    }

    #[test]
    fn eq1_matches_hand_computation() {
        // p=2, k=3, alpha=1: 1*2*9 + 2*9 + 1*4*9 = 18 + 18 + 36 = 72.
        assert_eq!(cb_internal_mem_tiles(2, 3, 1.0), 72.0);
    }

    #[test]
    fn eq2_is_independent_of_p_and_decreases_with_alpha() {
        let b1 = cb_min_ext_bw_tiles(4, 1.0);
        assert_eq!(b1, 8.0); // (1+1)/1 * 4
        let b2 = cb_min_ext_bw_tiles(4, 4.0);
        assert!(b2 < b1);
        assert!((b2 - 5.0).abs() < 1e-12); // (4+1)/4*4 = 5
    }

    #[test]
    fn eq3_grows_linearly_with_p() {
        let k = 2;
        let r = 3.0;
        let b4 = cb_internal_bw_tiles(4, k, r);
        let b8 = cb_internal_bw_tiles(8, k, r);
        assert_eq!(b8 - b4, 16.0); // 2*(8-4)*k
    }

    #[test]
    fn alpha_min_matches_section_3_2() {
        assert_eq!(alpha_min_for_bw_factor(2.0), 1.0); // 1/(2-1) = 1
        assert!((alpha_min_for_bw_factor(1.25) - 4.0).abs() < 1e-12); // 1/0.25
        assert_eq!(alpha_min_for_bw_factor(10.0), 1.0); // clamped
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn alpha_min_rejects_r_below_one() {
        let _ = alpha_min_for_bw_factor(0.9);
    }

    #[test]
    fn block_cycles_from_first_principles() {
        let m = model(4, 1.0);
        // macs = 4*96 * 96 * 384; rate = 4 cores * 96 MACs/cycle.
        let expect = (4.0 * 96.0 * 96.0 * 384.0) / (4.0 * 96.0);
        assert!((m.block_compute_cycles() - expect).abs() < 1e-6);
    }

    #[test]
    fn eq4_external_bw_is_constant_in_p() {
        let m2 = model(2, 1.0);
        let m8 = model(8, 1.0);
        assert!((m2.ext_bw_elems_per_cycle() - m8.ext_bw_elems_per_cycle()).abs() < 1e-9);
        // Closed form: (1+alpha)/alpha * rate/mc = 2 * 96/96 = 2 elems/cycle.
        assert!((m2.ext_bw_elems_per_cycle() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn eq4_decreases_with_alpha() {
        let m1 = model(4, 1.0);
        let m4 = model(4, 4.0);
        assert!(m4.ext_bw_gbs() < m1.ext_bw_gbs());
        // (1+4)/4 / ((1+1)/1) = 0.625 ratio.
        let ratio = m4.ext_bw_gbs() / m1.ext_bw_gbs();
        assert!((ratio - 0.625).abs() < 0.01);
    }

    #[test]
    fn eq5_grows_quadratically_with_p() {
        let m2 = model(2, 1.0).local_mem_elems();
        let m4 = model(4, 1.0).local_mem_elems();
        let m8 = model(8, 1.0).local_mem_elems();
        assert!(m4 / m2 > 2.5);
        assert!(m8 / m4 > 3.0);
    }

    #[test]
    fn eq6_internal_bw_grows_linearly_with_p() {
        let m2 = model(2, 1.0).int_bw_elems_per_cycle();
        let m4 = model(4, 1.0).int_bw_elems_per_cycle();
        let m8 = model(8, 1.0).int_bw_elems_per_cycle();
        let d1 = m4 - m2;
        let d2 = m8 - m4;
        assert!((d2 / d1 - 2.0).abs() < 0.01);
        // Closed form check at p=4: ext + 2p*rate/kc = 2 + 8*96/96 = 10.
        assert!((m4 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn peak_gflops_scale_with_cores() {
        let m1 = model(1, 1.0);
        let m10 = model(10, 1.0);
        assert!((m10.peak_gflops() / m1.peak_gflops() - 10.0).abs() < 1e-9);
        // 2 * 96 FLOPs/cycle * 3.7 GHz = 710.4 GFLOP/s for p=1.
        assert!((m1.peak_gflops() - 710.4).abs() < 0.1);
    }

    #[test]
    fn gbs_conversion_uses_elem_size_and_clock() {
        let m = model(4, 1.0);
        let expected = m.ext_bw_elems_per_cycle() * 4.0 * 3.7;
        assert!((m.ext_bw_gbs() - expected).abs() < 1e-9);
    }

    #[test]
    fn derated_mac_rate_scales_bandwidth_down() {
        let shape = CbBlockShape::fixed(4, 96, 96, 384);
        let full = CakeModel::new(shape, 6, 16, 4, 3.7);
        let half = CakeModel::with_mac_rate(shape, 6, 16, 4, 3.7, 48.0);
        assert!((full.ext_bw_gbs() / half.ext_bw_gbs() - 2.0).abs() < 1e-9);
        assert!((full.peak_gflops() / half.peak_gflops() - 2.0).abs() < 1e-9);
    }
}
