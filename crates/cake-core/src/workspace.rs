//! Reusable GEMM workspace: packed-A strips plus the pipeline's B panels.
//!
//! The pipelined executor double-buffers the shared B panel (pack block
//! `i+1` while computing on block `i`), and generalizes the pair into a
//! small *panel ring*: up to [`MAX_B_PANELS`] panels sized for the largest
//! `kc x nc` block seen so far, plus one packed-A strip per worker. With
//! `min(k-blocks, MAX_B_PANELS)` panels resident, the K-first snake's
//! reversals find their B surface still packed and skip the pack entirely —
//! for the common case of a few `kc` panels per problem, B is packed the
//! GOTO-minimal once-per-surface. Buffers grow geometrically via
//! [`SharedBuf::reserve`] and are never zeroed on reuse — the packing
//! routines overwrite every element they later read, including the zero
//! padding of edge slivers.
//!
//! Create one workspace per [`ThreadPool`](crate::pool::ThreadPool) (or let
//! [`CakeGemm`](crate::api::CakeGemm) keep one per element type) and thread
//! it through repeated calls: after warmup, a steady-shape GEMM stream
//! performs **zero** heap allocations.

use cake_kernels::pack::{packed_a_size, packed_b_size};
use cake_matrix::Element;

use crate::shape::CbBlockShape;
use crate::shared::SharedBuf;

/// Upper bound on the B-panel ring. Two panels are the pipelining floor
/// (compute one, pack the other); extra panels are pure cache, and each
/// costs `kc * nc` elements of LLC-resident footprint, so the ring stays
/// small.
pub const MAX_B_PANELS: usize = 4;

/// Most row tiles any one worker can own when `total_tiles` tiles are
/// partitioned by the 2D grid ([`worker_grid`](crate::schedule::worker_grid)
/// + balanced contiguous strips) across `workers` workers:
///
/// `max(1, min(T, ceil(T / workers) + workers - 1))`
///
/// Why this dominates every per-block split `t <= T`:
///
/// * `t >= workers`: the grid degenerates to `(workers, 1)` and a strip
///   holds `ceil(t / workers) <= ceil(T / workers)` tiles;
/// * `t < workers`: the row-group count `pm <= t`, so a strip holds at
///   most `t <= min(T, workers - 1)` tiles.
///
/// Both branches sit under the closed form, which is also nondecreasing in
/// `T` — so sizing the packed-A stride for the *largest* block covers every
/// partial edge block. The same expression is proven symbolically against
/// the executor's pack sites by `cake-audit`.
pub fn worker_tile_bound(total_tiles: usize, workers: usize) -> usize {
    assert!(workers > 0, "tile bound needs at least one worker");
    total_tiles
        .min(total_tiles.div_ceil(workers) + workers - 1)
        .max(1)
}

/// Packed-operand buffers reused across GEMM calls.
pub struct GemmWorkspace<T> {
    /// One packed-A strip per worker, in a single allocation of
    /// `p * pa_stride` elements.
    pub(crate) packed_a: SharedBuf<T>,
    /// The B-panel ring of the software pipeline (>= 2 entries once
    /// prepared; grown on demand up to [`MAX_B_PANELS`]).
    pub(crate) packed_b: Vec<SharedBuf<T>>,
    /// Per-worker packed-A stride the buffers were last prepared for.
    pub(crate) pa_stride: usize,
    /// Heap allocations performed over the workspace's lifetime.
    allocations: usize,
}

impl<T: Element> GemmWorkspace<T> {
    /// An empty workspace; buffers are allocated lazily by [`prepare`].
    ///
    /// [`prepare`]: Self::prepare
    pub fn new() -> Self {
        Self {
            packed_a: SharedBuf::empty(),
            packed_b: Vec::new(),
            pa_stride: 0,
            allocations: 0,
        }
    }

    /// Size the buffers for one CB-block shape and kernel (`mr x nr`) run
    /// by `workers` pool threads, with an `n_panels`-entry B ring, growing
    /// only when the current capacity is insufficient. Returns the number
    /// of fresh allocations this call performed (0 after warmup).
    ///
    /// `workers` is the *effective* pool size, which may differ from
    /// `shape.p` (the shape keeps the requested p for the analytic model;
    /// the executor partitions across whatever the pool actually has).
    // audit: cold staging call before the block loop; allocates only on
    // first use or shape growth, and the warm-alloc runtime test pins the
    // steady state at zero fresh allocations
    pub fn prepare(
        &mut self,
        shape: &CbBlockShape,
        workers: usize,
        mr: usize,
        nr: usize,
        n_panels: usize,
    ) -> usize {
        let n_panels = n_panels.clamp(2, MAX_B_PANELS);
        // 2D-partition bound (see `worker_tile_bound`): the block's
        // ceil(bm / mr) tiles are split by the worker grid, and no worker
        // ever owns more than the closed-form bound — never more than the
        // old fixed-strip ceil(mc / mr) when the grid is pure M-strips.
        let max_tiles = worker_tile_bound(shape.m_block().div_ceil(mr), workers);
        let pa_stride = packed_a_size(max_tiles * mr, shape.k_block(), mr);
        let pb_len = packed_b_size(shape.k_block(), shape.n_block(), nr);
        let mut fresh = 0;
        fresh += usize::from(self.packed_a.reserve(pa_stride * workers));
        while self.packed_b.len() < n_panels {
            self.packed_b.push(SharedBuf::empty());
        }
        for panel in self.packed_b.iter_mut().take(n_panels) {
            fresh += usize::from(panel.reserve(pb_len));
        }
        self.pa_stride = pa_stride;
        self.allocations += fresh;
        fresh
    }

    /// Total heap allocations performed since construction.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Current workspace footprint in bytes.
    pub fn bytes(&self) -> usize {
        let panels: usize = self.packed_b.iter().map(|b| b.len()).sum();
        (self.packed_a.len() + panels) * std::mem::size_of::<T>()
    }
}

impl<T: Element> Default for GemmWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_allocates_once_per_shape_class() {
        let mut ws = GemmWorkspace::<f32>::new();
        let shape = CbBlockShape::fixed(2, 16, 16, 32);
        let first = ws.prepare(&shape, 2, 6, 16, 2);
        assert_eq!(first, 3, "A strips + two B panels");
        // Same shape again: fully warm.
        assert_eq!(ws.prepare(&shape, 2, 6, 16, 2), 0);
        // Smaller shape fits in existing capacity.
        let small = CbBlockShape::fixed(2, 8, 8, 16);
        assert_eq!(ws.prepare(&small, 2, 6, 16, 2), 0);
        assert_eq!(ws.allocations(), 3);
        assert!(ws.bytes() > 0);
    }

    #[test]
    fn prepare_grows_for_larger_shapes() {
        let mut ws = GemmWorkspace::<f64>::new();
        let small = CbBlockShape::fixed(1, 8, 8, 8);
        let big = CbBlockShape::fixed(1, 64, 64, 128);
        assert!(ws.prepare(&small, 1, 4, 8, 2) > 0);
        let before = ws.bytes();
        assert!(ws.prepare(&big, 1, 4, 8, 2) > 0);
        assert!(ws.bytes() > before);
        // And shrinking back performs no work.
        assert_eq!(ws.prepare(&small, 1, 4, 8, 2), 0);
    }

    #[test]
    fn panel_ring_grows_on_demand_and_is_capped() {
        let mut ws = GemmWorkspace::<f32>::new();
        let shape = CbBlockShape::fixed(1, 8, 8, 16);
        assert_eq!(ws.prepare(&shape, 1, 6, 16, 2), 3, "A + 2 panels");
        // A deeper ring for the same shape only allocates the new panels.
        assert_eq!(ws.prepare(&shape, 1, 6, 16, 4), 2, "2 more panels");
        assert_eq!(ws.prepare(&shape, 1, 6, 16, 4), 0);
        // Requests beyond MAX_B_PANELS (and below 2) are clamped.
        assert_eq!(ws.prepare(&shape, 1, 6, 16, 99), 0);
        assert_eq!(ws.packed_b.len(), MAX_B_PANELS);
        assert_eq!(ws.prepare(&shape, 1, 6, 16, 0), 0);
    }

    #[test]
    fn pa_stride_tracks_last_prepared_shape() {
        let mut ws = GemmWorkspace::<f32>::new();
        let shape = CbBlockShape::fixed(3, 12, 16, 32);
        ws.prepare(&shape, 3, 6, 16, 2);
        // bm = 36, mr = 6: T = 6 tiles; bound = min(6, ceil(6/3) + 2) = 4
        // tiles = 24 rows (the + p - 1 slack covers small partial blocks
        // whose worker grid folds into N).
        assert_eq!(ws.pa_stride, packed_a_size(worker_tile_bound(6, 3) * 6, 16, 6));
        assert_eq!(ws.pa_stride, packed_a_size(24, 16, 6));
    }

    #[test]
    fn tile_bound_pins_and_edges() {
        // Single worker owns everything.
        for t in 0..10 {
            assert_eq!(worker_tile_bound(t, 1), t.max(1));
        }
        // Plenty of tiles: balanced strip plus the small-block slack.
        assert_eq!(worker_tile_bound(6, 3), 4);
        assert_eq!(worker_tile_bound(4, 3), 4, "capped by T itself");
        assert_eq!(worker_tile_bound(0, 4), 1, "empty blocks still get a tile slot");
        // More workers than tiles: T wins the min.
        assert_eq!(worker_tile_bound(3, 8), 3);
    }

    #[test]
    fn tile_bound_dominates_every_2d_split() {
        use crate::schedule::worker_grid;
        // For every block size t up to the sizing maximum T, no worker's
        // strip under the real grid exceeds the closed-form bound for T.
        for workers in 1..=9usize {
            for total in 0..=24usize {
                let bound = worker_tile_bound(total, workers);
                // Monotone in T: sizing for the largest block covers all.
                assert!(bound <= worker_tile_bound(total + 1, workers));
                for t in 0..=total {
                    let (pm, _pn) = worker_grid(workers, t);
                    let per_worker = t.div_ceil(pm.max(1));
                    assert!(
                        per_worker <= bound,
                        "t={t} of T={total}, workers={workers}: strip {per_worker} > bound {bound}"
                    );
                }
            }
        }
    }
}
