//! Reusable GEMM workspace: packed-A strips plus the pipeline's B panels.
//!
//! The pipelined executor double-buffers the shared B panel (pack block
//! `i+1` while computing on block `i`), and generalizes the pair into a
//! small *panel ring*: up to [`MAX_B_PANELS`] panels sized for the largest
//! `kc x nc` block seen so far, plus one packed-A strip per worker. With
//! `min(k-blocks, MAX_B_PANELS)` panels resident, the K-first snake's
//! reversals find their B surface still packed and skip the pack entirely —
//! for the common case of a few `kc` panels per problem, B is packed the
//! GOTO-minimal once-per-surface. Buffers grow geometrically via
//! [`SharedBuf::reserve`] and are never zeroed on reuse — the packing
//! routines overwrite every element they later read, including the zero
//! padding of edge slivers.
//!
//! Create one workspace per [`ThreadPool`](crate::pool::ThreadPool) (or let
//! [`CakeGemm`](crate::api::CakeGemm) keep one per element type) and thread
//! it through repeated calls: after warmup, a steady-shape GEMM stream
//! performs **zero** heap allocations.

use cake_kernels::pack::{packed_a_size, packed_b_size};
use cake_matrix::Element;

use crate::shape::CbBlockShape;
use crate::shared::SharedBuf;

/// Upper bound on the B-panel ring. Two panels are the pipelining floor
/// (compute one, pack the other); extra panels are pure cache, and each
/// costs `kc * nc` elements of LLC-resident footprint, so the ring stays
/// small.
pub const MAX_B_PANELS: usize = 4;

/// Packed-operand buffers reused across GEMM calls.
pub struct GemmWorkspace<T> {
    /// One packed-A strip per worker, in a single allocation of
    /// `p * pa_stride` elements.
    pub(crate) packed_a: SharedBuf<T>,
    /// The B-panel ring of the software pipeline (>= 2 entries once
    /// prepared; grown on demand up to [`MAX_B_PANELS`]).
    pub(crate) packed_b: Vec<SharedBuf<T>>,
    /// Per-worker packed-A stride the buffers were last prepared for.
    pub(crate) pa_stride: usize,
    /// Heap allocations performed over the workspace's lifetime.
    allocations: usize,
}

impl<T: Element> GemmWorkspace<T> {
    /// An empty workspace; buffers are allocated lazily by [`prepare`].
    ///
    /// [`prepare`]: Self::prepare
    pub fn new() -> Self {
        Self {
            packed_a: SharedBuf::empty(),
            packed_b: Vec::new(),
            pa_stride: 0,
            allocations: 0,
        }
    }

    /// Size the buffers for one CB-block shape and kernel (`mr x nr`) with
    /// an `n_panels`-entry B ring, growing only when the current capacity
    /// is insufficient. Returns the number of fresh allocations this call
    /// performed (0 after warmup).
    pub fn prepare(&mut self, shape: &CbBlockShape, mr: usize, nr: usize, n_panels: usize) -> usize {
        let n_panels = n_panels.clamp(2, MAX_B_PANELS);
        // Balanced M-partition bound: a full block has ceil(bm / mr) tiles
        // split contiguously across p workers, so one worker owns at most
        // ceil(tiles / p) of them — never more than the old fixed-strip
        // ceil(mc / mr), and exactly it when mc is a multiple of mr.
        let max_tiles = shape.m_block().div_ceil(mr).div_ceil(shape.p);
        let pa_stride = packed_a_size(max_tiles * mr, shape.k_block(), mr);
        let pb_len = packed_b_size(shape.k_block(), shape.n_block(), nr);
        let mut fresh = 0;
        fresh += usize::from(self.packed_a.reserve(pa_stride * shape.p));
        while self.packed_b.len() < n_panels {
            self.packed_b.push(SharedBuf::empty());
        }
        for panel in self.packed_b.iter_mut().take(n_panels) {
            fresh += usize::from(panel.reserve(pb_len));
        }
        self.pa_stride = pa_stride;
        self.allocations += fresh;
        fresh
    }

    /// Total heap allocations performed since construction.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Current workspace footprint in bytes.
    pub fn bytes(&self) -> usize {
        let panels: usize = self.packed_b.iter().map(|b| b.len()).sum();
        (self.packed_a.len() + panels) * std::mem::size_of::<T>()
    }
}

impl<T: Element> Default for GemmWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_allocates_once_per_shape_class() {
        let mut ws = GemmWorkspace::<f32>::new();
        let shape = CbBlockShape::fixed(2, 16, 16, 32);
        let first = ws.prepare(&shape, 6, 16, 2);
        assert_eq!(first, 3, "A strips + two B panels");
        // Same shape again: fully warm.
        assert_eq!(ws.prepare(&shape, 6, 16, 2), 0);
        // Smaller shape fits in existing capacity.
        let small = CbBlockShape::fixed(2, 8, 8, 16);
        assert_eq!(ws.prepare(&small, 6, 16, 2), 0);
        assert_eq!(ws.allocations(), 3);
        assert!(ws.bytes() > 0);
    }

    #[test]
    fn prepare_grows_for_larger_shapes() {
        let mut ws = GemmWorkspace::<f64>::new();
        let small = CbBlockShape::fixed(1, 8, 8, 8);
        let big = CbBlockShape::fixed(1, 64, 64, 128);
        assert!(ws.prepare(&small, 4, 8, 2) > 0);
        let before = ws.bytes();
        assert!(ws.prepare(&big, 4, 8, 2) > 0);
        assert!(ws.bytes() > before);
        // And shrinking back performs no work.
        assert_eq!(ws.prepare(&small, 4, 8, 2), 0);
    }

    #[test]
    fn panel_ring_grows_on_demand_and_is_capped() {
        let mut ws = GemmWorkspace::<f32>::new();
        let shape = CbBlockShape::fixed(1, 8, 8, 16);
        assert_eq!(ws.prepare(&shape, 6, 16, 2), 3, "A + 2 panels");
        // A deeper ring for the same shape only allocates the new panels.
        assert_eq!(ws.prepare(&shape, 6, 16, 4), 2, "2 more panels");
        assert_eq!(ws.prepare(&shape, 6, 16, 4), 0);
        // Requests beyond MAX_B_PANELS (and below 2) are clamped.
        assert_eq!(ws.prepare(&shape, 6, 16, 99), 0);
        assert_eq!(ws.packed_b.len(), MAX_B_PANELS);
        assert_eq!(ws.prepare(&shape, 6, 16, 0), 0);
    }

    #[test]
    fn pa_stride_tracks_last_prepared_shape() {
        let mut ws = GemmWorkspace::<f32>::new();
        let shape = CbBlockShape::fixed(3, 12, 16, 32);
        ws.prepare(&shape, 6, 16, 2);
        // mc divisible by mr: the balanced bound equals the fixed strip.
        assert_eq!(ws.pa_stride, packed_a_size(12, 16, 6));
    }

    #[test]
    fn pa_stride_balanced_bound_never_exceeds_fixed_strip() {
        // mc NOT a multiple of mr: the contiguous tile split hands one
        // worker at most ceil(ceil(p*mc/mr)/p) tiles, which can be fewer
        // than the old per-worker ceil(mc/mr).
        let mut ws = GemmWorkspace::<f32>::new();
        let shape = CbBlockShape::fixed(3, 8, 16, 32); // bm = 24, mr = 6
        ws.prepare(&shape, 6, 16, 2);
        // ceil(24/6) = 4 tiles over 3 workers -> max 2 tiles = 12 rows.
        assert_eq!(ws.pa_stride, packed_a_size(12, 16, 6));
        // A 5-worker split of the same 24 rows: ceil(4/5) = 1 tile each.
        let mut ws5 = GemmWorkspace::<f32>::new();
        ws5.prepare(&CbBlockShape::fixed(5, 5, 16, 32), 6, 16, 2); // bm = 25
        assert_eq!(ws5.pa_stride, packed_a_size(6, 16, 6));
    }
}
