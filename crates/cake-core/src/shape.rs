//! Constant-bandwidth block shaping and sizing (paper Section 3 and 4.2/4.3).
//!
//! On the CPU instantiation (Section 4.2, Figure 6) a CB block is
//!
//! ```text
//!   (p * mc)  x  kc  x  (alpha * p * mc)
//!      M-dim     K-dim        N-dim
//! ```
//!
//! with `mc = kc` (square per-core A sub-matrix in L2, exactly as GOTO) and
//! `alpha >= 1` chosen from available DRAM bandwidth. Each of the `p` cores
//! owns one `mc x kc` A sub-matrix; the `kc x alpha*p*mc` B panel is
//! broadcast from the LLC; the `p*mc x alpha*p*mc` partial-C panel is
//! accumulated in the LLC and only written to DRAM when its K-reduction
//! completes.
//!
//! Sizing follows the LRU rule of Section 4.3: the three surfaces must fit
//! the LLC with headroom for the *next* block's inputs,
//! `C + 2(A + B) <= S`.
//!
//! A shape may additionally carry an *outer* (LLC-level) tiling — the
//! MOMMS observation that constant-bandwidth blocking applies at every
//! cache level: the K/N block grid is cut into outer tiles of
//! `ko_blocks x no_blocks` L2-level blocks and the schedule finishes one
//! outer tile before moving to the next. `0` in either extent disables the
//! outer level, which degenerates to the one-level K-first snake exactly.

/// Shape of one constant-bandwidth block on a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbBlockShape {
    /// Cores cooperating on a block.
    pub p: usize,
    /// Per-core square A sub-matrix side (`mc == kc`), in elements.
    pub mc: usize,
    /// Reduction-dimension depth of the block (equals `mc` by construction).
    pub kc: usize,
    /// N-dimension width of the block, `alpha * p * mc` rounded to the
    /// kernel's `nr`.
    pub nc: usize,
    /// Numerator of the bandwidth factor: `nc ~= alpha * p * mc`.
    pub alpha_x1000: u32,
    /// Outer (LLC-level) tile depth along K, in L2-level blocks; 0
    /// disables the outer level (one-level schedule).
    pub ko_blocks: usize,
    /// Outer (LLC-level) tile width along N, in L2-level blocks; 0
    /// disables the outer level (one-level schedule).
    pub no_blocks: usize,
}

impl CbBlockShape {
    /// Derive a CB block shape analytically from machine resources.
    ///
    /// * `p` — number of cores to use.
    /// * `alpha` — aspect factor (>= 1); pick via [`crate::tune`] when DRAM
    ///   bandwidth is scarce, 1.0 otherwise.
    /// * `l2_bytes` — per-core private cache size (holds one `mc x kc` A
    ///   sub-matrix, using at most half the cache per Section 4.3's
    ///   double-buffering headroom).
    /// * `llc_bytes` — shared last-level cache size (holds B, partial C).
    /// * `elem_bytes` — element size.
    /// * `mr`, `nr` — microkernel register-tile shape; `mc` is rounded down
    ///   to a multiple of `mr` and `nc` to a multiple of `nr`.
    ///
    /// # Panics
    /// Panics if `p == 0`, `alpha < 1.0`, or the caches are too small to
    /// hold even a single `mr x nr` tile system.
    pub fn derive(
        p: usize,
        alpha: f64,
        l2_bytes: usize,
        llc_bytes: usize,
        elem_bytes: usize,
        mr: usize,
        nr: usize,
    ) -> Self {
        assert!(p > 0, "need at least one core");
        assert!(alpha >= 1.0, "alpha must be >= 1 (got {alpha})");
        assert!(elem_bytes > 0 && mr > 0 && nr > 0);

        let (mc_llc, mc_l2) = Self::mc_bounds(p, alpha, l2_bytes, llc_bytes, elem_bytes);

        let mut mc = mc_llc.min(mc_l2);
        // Round down to the kernel row tile; floor at mr so degenerate
        // caches still yield a runnable (if cache-oblivious) shape.
        mc = (mc / mr) * mr;
        if mc == 0 {
            mc = mr;
        }

        let kc = mc;
        let nc_raw = (alpha * p as f64 * mc as f64).round() as usize;
        let mut nc = (nc_raw / nr) * nr;
        if nc == 0 {
            nc = nr;
        }

        Self {
            p,
            mc,
            kc,
            nc,
            alpha_x1000: (alpha * 1000.0).round() as u32,
            ko_blocks: 0,
            no_blocks: 0,
        }
    }

    /// The two raw `mc` upper bounds behind [`derive`](Self::derive), in
    /// elements before kernel-tile rounding: `(mc_llc, mc_l2)`.
    ///
    /// * `mc_llc` — the Section 4.3 LRU rule `C + 2(A + B) <= S_llc` with
    ///   `A = p*mc^2`, `B = alpha*p*mc^2`, `C = alpha*p^2*mc^2`, i.e.
    ///   `mc^2 * (alpha*p^2 + 2*p*(1 + alpha)) <= S_llc`.
    /// * `mc_l2` — the per-core constraint: the square `mc x kc` A
    ///   sub-matrix lives in L2 with factor-2 headroom so the next block's
    ///   sub-matrix streams in without evicting live lines (the same LRU
    ///   argument one level down).
    ///
    /// Whichever bound is smaller is the binding constraint — surfaced by
    /// `cakectl gemm --explain` so shaping regressions are diagnosable.
    pub fn mc_bounds(
        p: usize,
        alpha: f64,
        l2_bytes: usize,
        llc_bytes: usize,
        elem_bytes: usize,
    ) -> (usize, usize) {
        assert!(p > 0, "need at least one core");
        assert!(alpha >= 1.0, "alpha must be >= 1 (got {alpha})");
        assert!(elem_bytes > 0);
        let s_llc = llc_bytes / elem_bytes; // LLC capacity in elements
        let s_l2 = l2_bytes / elem_bytes; // L2 capacity in elements
        let pf = p as f64;
        let denom_llc = alpha * pf * pf + 2.0 * pf * (1.0 + alpha);
        let mc_llc = (s_llc as f64 / denom_llc).sqrt().floor() as usize;
        let mc_l2 = ((s_l2 / 2) as f64).sqrt().floor() as usize;
        (mc_llc, mc_l2)
    }

    /// A fixed shape (used by tests and the simulator to decouple shape
    /// choice from cache parameters).
    pub fn fixed(p: usize, mc: usize, kc: usize, nc: usize) -> Self {
        assert!(p > 0 && mc > 0 && kc > 0 && nc > 0);
        let alpha = nc as f64 / (p * mc) as f64;
        Self {
            p,
            mc,
            kc,
            nc,
            alpha_x1000: (alpha.max(0.001) * 1000.0).round() as u32,
            ko_blocks: 0,
            no_blocks: 0,
        }
    }

    /// The same shape with an outer (LLC-level) K/N tiling of
    /// `ko_blocks x no_blocks` L2-level blocks per tile. `0` in either
    /// extent disables the outer level.
    pub fn with_outer_tiles(mut self, ko_blocks: usize, no_blocks: usize) -> Self {
        self.ko_blocks = ko_blocks;
        self.no_blocks = no_blocks;
        self
    }

    /// Whether this shape requests the two-level (outer K/N tiled)
    /// schedule.
    #[inline]
    pub fn has_outer_level(&self) -> bool {
        self.ko_blocks > 0 || self.no_blocks > 0
    }

    /// The aspect factor `alpha = nc / (p * mc)` (approximate after
    /// rounding to kernel tiles).
    pub fn alpha(&self) -> f64 {
        f64::from(self.alpha_x1000) / 1000.0
    }

    /// M-extent of the CB block (`p * mc`).
    #[inline]
    pub fn m_block(&self) -> usize {
        self.p * self.mc
    }

    /// K-extent of the CB block (`kc`).
    #[inline]
    pub fn k_block(&self) -> usize {
        self.kc
    }

    /// N-extent of the CB block (`nc ~= alpha * p * mc`).
    #[inline]
    pub fn n_block(&self) -> usize {
        self.nc
    }

    /// Elements of the A surface (`p*mc x kc`).
    pub fn a_surface(&self) -> usize {
        self.m_block() * self.kc
    }

    /// Elements of the B surface (`kc x nc`).
    pub fn b_surface(&self) -> usize {
        self.kc * self.nc
    }

    /// Elements of the C surface (`p*mc x nc`).
    pub fn c_surface(&self) -> usize {
        self.m_block() * self.nc
    }

    /// Total local-memory footprint of one block in elements
    /// (paper Eq. 5 instantiated with this shape).
    pub fn local_footprint(&self) -> usize {
        self.a_surface() + self.b_surface() + self.c_surface()
    }

    /// Verify the Section 4.3 LRU inequality against an LLC of
    /// `llc_bytes`.
    pub fn fits_llc_lru(&self, llc_bytes: usize, elem_bytes: usize) -> bool {
        let s = llc_bytes / elem_bytes;
        self.c_surface() + 2 * (self.a_surface() + self.b_surface()) <= s
    }

    /// MAC operations performed by one full CB block.
    pub fn block_macs(&self) -> usize {
        self.m_block() * self.kc * self.nc
    }

    /// Balance a candidate per-core strip height `mc0` against a problem's
    /// M extent: keep the same number of M-blocks but shrink `mc` so the
    /// final block is (nearly) full instead of ragged — a ragged block
    /// leaves cores idle for its whole duration.
    ///
    /// Returns `mc0` unchanged when one block already covers M.
    pub fn balance_mc(m: usize, p: usize, mc0: usize, mr: usize) -> usize {
        assert!(p > 0 && mc0 > 0 && mr > 0);
        if m == 0 {
            return mc0.max(mr);
        }
        let bm0 = p * mc0;
        let mb = m.div_ceil(bm0).max(1);
        // Smallest strip covering M with the same block count, rounded up
        // to the kernel row tile.
        let mc = m.div_ceil(p * mb).div_ceil(mr) * mr;
        mc.clamp(mr, mc0.max(mr))
    }
}

impl std::fmt::Display for CbBlockShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CB[{}x{}x{} | p={} mc={} alpha={:.2}]",
            self.m_block(),
            self.k_block(),
            self.n_block(),
            self.p,
            self.mc,
            self.alpha()
        )?;
        if self.has_outer_level() {
            write!(f, "+outer[{}x{}]", self.ko_blocks.max(1), self.no_blocks.max(1))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: usize = 1024;
    const MIB: usize = 1024 * 1024;

    fn intel_like(p: usize, alpha: f64) -> CbBlockShape {
        // i9-10900K: 256 KiB L2, 20 MiB L3, f32, 6x16 kernel.
        CbBlockShape::derive(p, alpha, 256 * KIB, 20 * MIB, 4, 6, 16)
    }

    #[test]
    fn derived_shape_satisfies_lru_rule() {
        for p in 1..=10 {
            for &alpha in &[1.0, 1.5, 2.0, 4.0] {
                let s = intel_like(p, alpha);
                assert!(
                    s.fits_llc_lru(20 * MIB, 4),
                    "p={p} alpha={alpha} shape={s} does not fit LLC"
                );
                assert!(s.mc.is_multiple_of(6), "mc must be a multiple of mr");
                assert!(s.nc.is_multiple_of(16), "nc must be a multiple of nr");
            }
        }
    }

    #[test]
    fn paper_example_shape_matches() {
        // Paper Section 4.4: Intel i9-10900K, p = 10, alpha = 1 gives
        // mc = kc = 192 with B+C filling the L3. Our LRU-constrained
        // derivation is slightly more conservative but must be in the same
        // regime (within a factor ~2) and respect all constraints.
        let s = intel_like(10, 1.0);
        assert!(
            (96..=240).contains(&s.mc),
            "expected mc near the paper's 192-element regime, got {}",
            s.mc
        );
        assert_eq!(s.mc, s.kc);
        assert_eq!(s.m_block(), 10 * s.mc);
    }

    #[test]
    fn c_surface_dominates_llc_as_in_paper() {
        // Paper: with p=10, alpha=1, the C surface takes ~91% and B ~9% of
        // the LLC-resident working set (excluding the per-core A panels).
        let s = intel_like(10, 1.0);
        let c = s.c_surface() as f64;
        let b = s.b_surface() as f64;
        let frac = c / (c + b);
        assert!((0.85..=0.95).contains(&frac), "C fraction = {frac:.3}");
    }

    #[test]
    fn mc_shrinks_with_more_cores_when_llc_bound() {
        // Local memory demand grows ~p^2, so for a fixed LLC mc must shrink
        // once the LLC (not the per-core L2) is the binding constraint. Use
        // an oversized L2 so the LLC term is always the limiter.
        let big_l2 = 64 * MIB;
        let m1 = CbBlockShape::derive(1, 1.0, big_l2, 20 * MIB, 4, 6, 16).mc;
        let m10 = CbBlockShape::derive(10, 1.0, big_l2, 20 * MIB, 4, 6, 16).mc;
        assert!(m10 < m1, "mc should shrink with p: {m1} -> {m10}");
        // On the real i9 config the L2 constraint binds for both, so mc is
        // flat — also worth pinning down.
        assert_eq!(intel_like(1, 1.0).mc, intel_like(10, 1.0).mc);
    }

    #[test]
    fn alpha_widens_n_dimension() {
        let s1 = intel_like(4, 1.0);
        let s2 = intel_like(4, 2.0);
        // nc scales ~alpha (modulo the mc shrink from the LLC constraint).
        assert!(s2.nc as f64 / s2.mc as f64 > s1.nc as f64 / s1.mc as f64);
    }

    #[test]
    fn fixed_shape_reports_alpha() {
        let s = CbBlockShape::fixed(4, 96, 96, 768);
        assert!((s.alpha() - 2.0).abs() < 0.01);
        assert_eq!(s.m_block(), 384);
        assert_eq!(s.block_macs(), 384 * 96 * 768);
    }

    #[test]
    fn tiny_cache_still_yields_runnable_shape() {
        let s = CbBlockShape::derive(2, 1.0, 64, 256, 4, 6, 16);
        assert!(s.mc >= 6);
        assert!(s.nc >= 16);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_below_one_rejected() {
        let _ = intel_like(2, 0.5);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn zero_cores_rejected() {
        let _ = CbBlockShape::derive(0, 1.0, KIB, MIB, 4, 6, 16);
    }

    #[test]
    fn mc_bounds_back_the_derived_shape() {
        let (mc_llc, mc_l2) = CbBlockShape::mc_bounds(10, 1.0, 256 * KIB, 20 * MIB, 4);
        let s = intel_like(10, 1.0);
        assert_eq!(s.mc, (mc_llc.min(mc_l2) / 6) * 6, "derive = min bound rounded to mr");
        // The LRU bound shrinks as p grows; the per-core L2 bound does not.
        let (llc1, l21) = CbBlockShape::mc_bounds(1, 1.0, 256 * KIB, 20 * MIB, 4);
        assert!(mc_llc < llc1);
        assert_eq!(mc_l2, l21);
    }

    #[test]
    fn outer_tiles_builder_round_trips() {
        let s = CbBlockShape::fixed(2, 8, 8, 16);
        assert!(!s.has_outer_level());
        let t = s.with_outer_tiles(2, 3);
        assert!(t.has_outer_level());
        assert_eq!((t.ko_blocks, t.no_blocks), (2, 3));
        // Surfaces and MACs are properties of the L2-level block — the
        // outer tiling only reorders the schedule.
        assert_eq!(t.a_surface(), s.a_surface());
        assert_eq!(t.block_macs(), s.block_macs());
        assert_eq!(format!("{t}"), format!("{s}+outer[2x3]"));
    }

    #[test]
    fn surfaces_match_formulas() {
        let s = CbBlockShape::fixed(3, 10, 10, 60);
        // A = p*mc*kc, B = kc*nc, C = p*mc*nc.
        assert_eq!(s.a_surface(), 3 * 10 * 10);
        assert_eq!(s.b_surface(), 10 * 60);
        assert_eq!(s.c_surface(), 30 * 60);
        assert_eq!(s.local_footprint(), 300 + 600 + 1800);
    }
}
