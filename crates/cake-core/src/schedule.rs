//! K-first block scheduling with surface sharing (paper Section 2.2,
//! Algorithm 2).
//!
//! The `M x K x N` computation space is partitioned into a grid of
//! `Mb x Kb x Nb` CB blocks. Blocks are executed sequentially; to minimize
//! DRAM IO, consecutive blocks must *share an IO surface* (be adjacent in
//! the grid):
//!
//! * the innermost loop runs along **K** so the partial-C surface — the
//!   largest and the only one whose spill costs double IO — is reused until
//!   its reduction completes;
//! * the middle loop runs along **M** (when `N >= M`) so the B surface is
//!   reused across M-steps;
//! * the outer loop runs along **N**. When `M > N` the outer two loops swap
//!   so the larger A surface is reused before B.
//!
//! Every loop is *boustrophedon* (snake): its direction flips each time the
//! enclosing loop advances. Algorithm 2 in the paper expresses the flip via
//! the parity of the enclosing indices, which is equivalent to the
//! formulation here (parity of the number of completed inner traversals)
//! when the grid extents are even, and remains adjacency-correct for odd
//! extents as well.

/// Index of one CB block within the block grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockCoord {
    /// M-dimension block index.
    pub m: usize,
    /// K-dimension (reduction) block index.
    pub k: usize,
    /// N-dimension block index.
    pub n: usize,
}

/// The extents of the block grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGrid {
    /// Number of blocks along M.
    pub mb: usize,
    /// Number of blocks along K.
    pub kb: usize,
    /// Number of blocks along N.
    pub nb: usize,
}

impl BlockGrid {
    /// Grid covering an `m x k x n` problem with the given block extents
    /// (ceiling division; edge blocks are partial).
    pub fn for_problem(m: usize, k: usize, n: usize, bm: usize, bk: usize, bn: usize) -> Self {
        Self {
            mb: cake_matrix::block_count(m, bm),
            kb: cake_matrix::block_count(k, bk),
            nb: cake_matrix::block_count(n, bn),
        }
    }

    /// Total number of blocks.
    pub fn len(&self) -> usize {
        self.mb * self.kb * self.nb
    }

    /// `true` when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which of the outer two loops runs outermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterLoop {
    /// `for n { for m { for k } } }` — reuses B across M-steps; optimal
    /// when `N >= M` (B surface at least as large as A).
    NOuter,
    /// `for m { for n { for k } } }` — reuses A across N-steps; optimal
    /// when `M > N`.
    MOuter,
}

/// An IO surface of a block (paper Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// Input surface from matrix A (`m x k` face).
    A,
    /// Input surface from matrix B (`k x n` face).
    B,
    /// Result surface of C (`m x n` face), partial until the K run ends.
    C,
}

/// The K-first snake schedule: an iterator over [`BlockCoord`]s in
/// execution order. `Copy` on purpose: each executor worker grabs a
/// private copy with a plain assignment, so replaying the schedule
/// never touches the heap or a shared cache line.
#[derive(Debug, Clone, Copy)]
pub struct KFirstSchedule {
    grid: BlockGrid,
    outer: OuterLoop,
    /// `true` => plain nested loops starting at index 0 every time (the
    /// paper's counter-example with `O(M*N + N)` missed reuses), used for
    /// the ablation bench.
    snake: bool,
    pos: usize,
}

impl KFirstSchedule {
    /// Snake schedule with the outer loop chosen from the problem shape
    /// (`N >= M` => N outer), as prescribed in Section 2.2.
    pub fn new(grid: BlockGrid, m: usize, n: usize) -> Self {
        let outer = if n >= m { OuterLoop::NOuter } else { OuterLoop::MOuter };
        Self::with_outer(grid, outer)
    }

    /// Snake schedule with an explicit outer loop.
    pub fn with_outer(grid: BlockGrid, outer: OuterLoop) -> Self {
        Self {
            grid,
            outer,
            snake: true,
            pos: 0,
        }
    }

    /// Non-snaking variant (always traverses each dimension from index 0).
    /// Same block set, no direction flipping — loses inter-block A/B reuse
    /// at loop boundaries. For ablation only.
    pub fn without_snaking(grid: BlockGrid, outer: OuterLoop) -> Self {
        Self {
            grid,
            outer,
            snake: false,
            pos: 0,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> BlockGrid {
        self.grid
    }

    /// Outer-loop choice.
    pub fn outer(&self) -> OuterLoop {
        self.outer
    }

    /// Total number of blocks in the schedule.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// `true` when the schedule contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Block at linear position `idx` (0-based) in execution order.
    pub fn coord_at(&self, idx: usize) -> BlockCoord {
        debug_assert!(idx < self.len());
        let (outer_ext, mid_ext, inner_ext) = match self.outer {
            OuterLoop::NOuter => (self.grid.nb, self.grid.mb, self.grid.kb),
            OuterLoop::MOuter => (self.grid.mb, self.grid.nb, self.grid.kb),
        };
        debug_assert!(outer_ext * mid_ext * inner_ext == self.len());

        let o = idx / (mid_ext * inner_ext);
        let rem = idx % (mid_ext * inner_ext);
        let mid_step = rem / inner_ext;
        let inner_step = rem % inner_ext;

        let (mid, inner) = if self.snake {
            // Middle loop snakes on outer parity; inner loop snakes on the
            // parity of the total number of completed (outer, mid) pairs.
            let mid = if o.is_multiple_of(2) { mid_step } else { mid_ext - 1 - mid_step };
            let pair = o * mid_ext + mid_step;
            let inner = if pair.is_multiple_of(2) {
                inner_step
            } else {
                inner_ext - 1 - inner_step
            };
            (mid, inner)
        } else {
            (mid_step, inner_step)
        };

        match self.outer {
            OuterLoop::NOuter => BlockCoord { m: mid, k: inner, n: o },
            OuterLoop::MOuter => BlockCoord { m: o, k: inner, n: mid },
        }
    }
}

impl Iterator for KFirstSchedule {
    type Item = BlockCoord;

    fn next(&mut self) -> Option<BlockCoord> {
        // NB: call through the grid explicitly — on `&mut self`, plain
        // `self.len()` resolves to `ExactSizeIterator::len`, which already
        // subtracts `pos`.
        if self.pos >= self.grid.len() {
            return None;
        }
        let c = self.coord_at(self.pos);
        self.pos += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.grid.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for KFirstSchedule {}

/// The two-level (MOMMS-style) CB schedule: constant-bandwidth blocking
/// applied at the LLC level *above* the L2-level block grid.
///
/// The K/N face of the block grid is cut into outer tiles of `ko x no`
/// L2-level blocks. Outer tiles are visited with N outermost and the K
/// tile loop boustrophedon on N-tile parity (the outer-level snake);
/// within each tile the ordinary one-level K-first snake runs over the
/// tile's blocks, spanning all `mb` block rows. Each tile's `ko` partial
/// K-products complete before the schedule moves on, so the live partial-C
/// working set at the LLC level is bounded by one tile's C surface — the
/// same constant-bandwidth argument one cache level up.
///
/// With a single outer tile (extents `>= kb`/`nb`, or 0 meaning
/// "disabled") the schedule degenerates **bit-exactly** to
/// [`KFirstSchedule::new`]'s order, so every one-level invariant carries
/// over unchanged.
///
/// `Copy` for the same reason as [`KFirstSchedule`]: executor workers
/// replay a private copy with pure arithmetic — no heap, no sharing.
#[derive(Debug, Clone, Copy)]
pub struct TwoLevelSchedule {
    grid: BlockGrid,
    outer: OuterLoop,
    /// Outer tile extent along K, in blocks (clamped to `[1, kb]`).
    ko: usize,
    /// Outer tile extent along N, in blocks (clamped to `[1, nb]`).
    no: usize,
    pos: usize,
}

impl TwoLevelSchedule {
    /// Two-level schedule over `grid` with outer K/N tile extents in
    /// blocks. `0` in either extent means "whole dimension" (that level of
    /// tiling disabled); both `0` is exactly the one-level schedule. The
    /// inner snake's loop orientation follows the problem shape as in
    /// [`KFirstSchedule::new`].
    pub fn new(grid: BlockGrid, m: usize, n: usize, ko_blocks: usize, no_blocks: usize) -> Self {
        let outer = if n >= m { OuterLoop::NOuter } else { OuterLoop::MOuter };
        let cap = |want: usize, ext: usize| -> usize {
            let ext = ext.max(1);
            if want == 0 {
                ext
            } else {
                want.min(ext)
            }
        };
        Self {
            grid,
            outer,
            ko: cap(ko_blocks, grid.kb),
            no: cap(no_blocks, grid.nb),
            pos: 0,
        }
    }

    /// The degenerate single-tile schedule — identical order to
    /// [`KFirstSchedule::new`].
    pub fn one_level(grid: BlockGrid, m: usize, n: usize) -> Self {
        Self::new(grid, m, n, 0, 0)
    }

    /// The underlying grid.
    pub fn grid(&self) -> BlockGrid {
        self.grid
    }

    /// Total number of blocks in the schedule.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// `true` when the schedule contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Outer tile counts `(k_tiles, n_tiles)`.
    pub fn outer_tiles(&self) -> (usize, usize) {
        (self.grid.kb.div_ceil(self.ko), self.grid.nb.div_ceil(self.no))
    }

    /// `true` when more than one outer tile exists (the outer level is
    /// live rather than degenerate).
    pub fn is_two_level(&self) -> bool {
        let (kt, nt) = self.outer_tiles();
        kt * nt > 1
    }

    /// Block at linear position `idx` (0-based) in execution order.
    ///
    /// Out-of-range `idx` (never produced by the executor, which guards
    /// with `bi < len`) clamps to the last grid corner rather than
    /// panicking — this sits on the executor's warm path.
    pub fn coord_at(&self, idx: usize) -> BlockCoord {
        let (kt, nt) = self.outer_tiles();
        let mut rem = idx;
        for tn in 0..nt {
            for tk_step in 0..kt {
                // Outer-level boustrophedon: the K tile loop reverses on
                // every N tile advance, so consecutive tiles stay adjacent
                // on the K/N face.
                let tk = if tn.is_multiple_of(2) { tk_step } else { kt - 1 - tk_step };
                let k0 = tk * self.ko;
                let n0 = tn * self.no;
                let kl = self.ko.min(self.grid.kb - k0);
                let nl = self.no.min(self.grid.nb - n0);
                let cnt = self.grid.mb * kl * nl;
                if rem < cnt {
                    let sub = BlockGrid { mb: self.grid.mb, kb: kl, nb: nl };
                    let c = KFirstSchedule::with_outer(sub, self.outer).coord_at(rem);
                    return BlockCoord { m: c.m, k: k0 + c.k, n: n0 + c.n };
                }
                rem -= cnt;
            }
        }
        BlockCoord {
            m: self.grid.mb.saturating_sub(1),
            k: self.grid.kb.saturating_sub(1),
            n: self.grid.nb.saturating_sub(1),
        }
    }
}

impl Iterator for TwoLevelSchedule {
    type Item = BlockCoord;

    fn next(&mut self) -> Option<BlockCoord> {
        if self.pos >= self.grid.len() {
            return None;
        }
        let c = self.coord_at(self.pos);
        self.pos += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.grid.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TwoLevelSchedule {}

/// The surfaces two consecutively executed blocks share.
///
/// Blocks share A when they agree in `(m, k)`, B when they agree in
/// `(k, n)`, and C when they agree in `(m, n)`. Adjacent snake-schedule
/// blocks always share exactly one surface; non-adjacent blocks share none.
pub fn shared_surfaces(prev: BlockCoord, next: BlockCoord) -> Vec<Surface> {
    let mut out = Vec::with_capacity(1);
    if prev.m == next.m && prev.k == next.k {
        out.push(Surface::A);
    }
    if prev.k == next.k && prev.n == next.n {
        out.push(Surface::B);
    }
    if prev.m == next.m && prev.n == next.n {
        out.push(Surface::C);
    }
    out
}

/// 2D worker grid `(pm, pn)` for partitioning one CB block across `p`
/// workers: `pm` row groups times `pn` column groups, with `pm * pn == p`.
///
/// `pm` is the **largest divisor of `p` that is at most `m_tiles`** (the
/// block's row-tile count), so:
///
/// * when `m_tiles >= p` the grid degenerates to `(p, 1)` — the classic
///   balanced M-strip partition, unchanged from the 1D executor;
/// * when `m_tiles < p` (small-m blocks that used to idle `p - m_tiles`
///   workers) the surplus parallelism folds into the N dimension, each of
///   the `pn` column groups taking a contiguous sliver range via
///   [`split_range`](cake_kernels::pack::split_range).
///
/// `m_tiles == 0` is treated as 1 so empty blocks still yield a valid
/// (degenerate) grid.
pub fn worker_grid(p: usize, m_tiles: usize) -> (usize, usize) {
    // audit: cold grid-shaping precondition, once per GEMM call
    assert!(p > 0, "worker grid needs at least one worker");
    let cap = m_tiles.max(1);
    let mut pm = 1;
    for d in 1..=p {
        if p.is_multiple_of(d) && d <= cap && d > pm {
            pm = d;
        }
    }
    (pm, p / pm)
}

#[cfg(test)]
mod worker_grid_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degenerates_to_m_strips_when_tiles_suffice() {
        for p in 1..=8 {
            assert_eq!(worker_grid(p, p), (p, 1));
            assert_eq!(worker_grid(p, p + 3), (p, 1));
        }
    }

    #[test]
    fn folds_surplus_workers_into_n() {
        assert_eq!(worker_grid(4, 2), (2, 2));
        assert_eq!(worker_grid(4, 1), (1, 4));
        assert_eq!(worker_grid(8, 3), (2, 4), "largest divisor of 8 <= 3 is 2");
        assert_eq!(worker_grid(6, 3), (3, 2));
        assert_eq!(worker_grid(5, 3), (1, 5), "prime p has no middle divisor");
        assert_eq!(worker_grid(1, 0), (1, 1));
        assert_eq!(worker_grid(3, 0), (1, 3), "empty block still grids");
    }

    proptest! {
        #[test]
        fn grid_is_exact_and_maximal(p in 1usize..33, m_tiles in 0usize..40) {
            let (pm, pn) = worker_grid(p, m_tiles);
            prop_assert_eq!(pm * pn, p, "grid must use every worker");
            prop_assert!(pm <= m_tiles.max(1), "row groups never exceed row tiles");
            // Maximality: no larger divisor of p fits under the tile count.
            for d in (pm + 1)..=m_tiles.max(1).min(p) {
                prop_assert!(!p.is_multiple_of(d), "pm = {} not maximal, {} fits", pm, d);
            }
        }
    }
}

#[cfg(test)]
mod two_level_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn grid(mb: usize, kb: usize, nb: usize) -> BlockGrid {
        BlockGrid { mb, kb, nb }
    }

    /// The outer tile a coord falls into, for contiguity checks.
    fn tile_of(s: &TwoLevelSchedule, c: BlockCoord, ko: usize, no: usize) -> (usize, usize) {
        let _ = s;
        (c.k / ko, c.n / no)
    }

    #[test]
    fn degenerates_exactly_to_one_level_order() {
        for (mb, kb, nb, m, n) in
            [(3, 4, 5, 10, 20), (2, 3, 2, 30, 10), (1, 1, 1, 4, 4), (4, 1, 6, 7, 7)]
        {
            let g = grid(mb, kb, nb);
            let one: Vec<_> = KFirstSchedule::new(g, m, n).collect();
            for (ko, no) in [(0, 0), (kb, nb), (kb + 3, nb + 1), (0, nb)] {
                let two: Vec<_> = TwoLevelSchedule::new(g, m, n, ko, no).collect();
                assert_eq!(one, two, "ko={ko} no={no} must degenerate");
                assert!(!TwoLevelSchedule::new(g, m, n, ko, no).is_two_level());
            }
        }
    }

    #[test]
    fn visits_every_block_exactly_once() {
        let g = grid(3, 5, 7);
        let s = TwoLevelSchedule::new(g, 10, 20, 2, 3);
        assert!(s.is_two_level());
        let seen: HashSet<BlockCoord> = s.collect();
        assert_eq!(seen.len(), g.len());
        for m in 0..3 {
            for k in 0..5 {
                for n in 0..7 {
                    assert!(seen.contains(&BlockCoord { m, k, n }));
                }
            }
        }
    }

    #[test]
    fn outer_tiles_are_contiguous_runs() {
        // Once the schedule leaves an outer tile it never returns: the
        // LLC-level working set is one tile at a time.
        let g = grid(2, 6, 8);
        let (ko, no) = (2, 3);
        let s = TwoLevelSchedule::new(g, 16, 16, ko, no);
        let mut finished: HashSet<(usize, usize)> = HashSet::new();
        let mut cur: Option<(usize, usize)> = None;
        for c in s {
            let t = tile_of(&s, c, ko, no);
            if cur != Some(t) {
                if let Some(prev) = cur {
                    assert!(finished.insert(prev), "tile {prev:?} revisited");
                }
                assert!(!finished.contains(&t), "tile {t:?} re-entered");
                cur = Some(t);
            }
        }
    }

    #[test]
    fn coord_at_matches_iteration_and_is_total() {
        let g = grid(3, 4, 5);
        let s = TwoLevelSchedule::new(g, 9, 9, 3, 2);
        for (i, c) in s.enumerate() {
            assert_eq!(s.coord_at(i), c);
        }
        // Out-of-range clamps to the last corner instead of panicking
        // (warm-path totality).
        let far = s.coord_at(usize::MAX);
        assert_eq!(far, BlockCoord { m: 2, k: 3, n: 4 });
    }

    #[test]
    fn empty_grid_is_empty() {
        let s = TwoLevelSchedule::new(grid(0, 4, 4), 0, 16, 2, 2);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    proptest! {
        #[test]
        fn permutation_and_tile_contiguity(
            mb in 1usize..5,
            kb in 1usize..7,
            nb in 1usize..7,
            ko in 1usize..8,
            no in 1usize..8,
            m_ge_n in 0usize..2,
        ) {
            let g = grid(mb, kb, nb);
            let (m, n) = if m_ge_n == 1 { (20, 10) } else { (10, 20) };
            let s = TwoLevelSchedule::new(g, m, n, ko, no);
            let coords: Vec<_> = s.collect();
            prop_assert_eq!(coords.len(), g.len());
            let uniq: HashSet<_> = coords.iter().copied().collect();
            prop_assert_eq!(uniq.len(), g.len(), "schedule must be a permutation");
            // Tile contiguity.
            let (cko, cno) = (ko.min(kb), no.min(nb));
            let mut seen_tiles: HashSet<(usize, usize)> = HashSet::new();
            let mut cur = None;
            for c in &coords {
                let t = (c.k / cko, c.n / cno);
                if cur != Some(t) {
                    prop_assert!(seen_tiles.insert(t), "tile {:?} interleaved", t);
                    cur = Some(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn grid(mb: usize, kb: usize, nb: usize) -> BlockGrid {
        BlockGrid { mb, kb, nb }
    }

    #[test]
    fn covers_every_block_exactly_once() {
        let g = grid(3, 4, 5);
        let seen: HashSet<BlockCoord> = KFirstSchedule::with_outer(g, OuterLoop::NOuter).collect();
        assert_eq!(seen.len(), 60);
        for m in 0..3 {
            for k in 0..4 {
                for n in 0..5 {
                    assert!(seen.contains(&BlockCoord { m, k, n }));
                }
            }
        }
    }

    #[test]
    fn k_runs_first() {
        // First Kb blocks of an N-outer schedule must share (m=0, n=0) and
        // sweep k = 0..Kb.
        let sched: Vec<_> = KFirstSchedule::with_outer(grid(2, 3, 2), OuterLoop::NOuter).collect();
        for (i, c) in sched.iter().take(3).enumerate() {
            assert_eq!((c.m, c.n), (0, 0));
            assert_eq!(c.k, i);
        }
        // Next block advances m, keeping n and (snaked) k.
        assert_eq!(sched[3].m, 1);
        assert_eq!(sched[3].n, 0);
        assert_eq!(sched[3].k, 2, "k must stay at the far end (snake)");
    }

    #[test]
    fn consecutive_blocks_are_grid_adjacent() {
        for (mb, kb, nb) in [(1, 1, 1), (2, 2, 2), (3, 4, 5), (5, 1, 3), (1, 7, 2)] {
            for outer in [OuterLoop::NOuter, OuterLoop::MOuter] {
                let sched: Vec<_> = KFirstSchedule::with_outer(grid(mb, kb, nb), outer).collect();
                for w in sched.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    let dm = a.m.abs_diff(b.m);
                    let dk = a.k.abs_diff(b.k);
                    let dn = a.n.abs_diff(b.n);
                    assert_eq!(
                        dm + dk + dn,
                        1,
                        "blocks {a:?} -> {b:?} not adjacent (grid {mb}x{kb}x{nb}, {outer:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn adjacent_blocks_share_exactly_one_surface() {
        let sched: Vec<_> = KFirstSchedule::with_outer(grid(3, 3, 3), OuterLoop::NOuter).collect();
        for w in sched.windows(2) {
            let shared = shared_surfaces(w[0], w[1]);
            assert_eq!(shared.len(), 1, "{:?} -> {:?} share {shared:?}", w[0], w[1]);
        }
    }

    #[test]
    fn k_steps_share_c_m_steps_share_b_n_steps_share_a() {
        let sched: Vec<_> = KFirstSchedule::with_outer(grid(2, 2, 2), OuterLoop::NOuter).collect();
        for w in sched.windows(2) {
            let s = shared_surfaces(w[0], w[1])[0];
            if w[0].k != w[1].k {
                assert_eq!(s, Surface::C);
            } else if w[0].m != w[1].m {
                assert_eq!(s, Surface::B);
            } else {
                assert_eq!(s, Surface::A);
            }
        }
    }

    #[test]
    fn non_snaking_loses_adjacency() {
        let sched: Vec<_> =
            KFirstSchedule::without_snaking(grid(2, 3, 2), OuterLoop::NOuter).collect();
        // At the first m advance (index 2 -> 3), k jumps from 2 back to 0:
        // not adjacent, no shared surface with the paper's reuse rules.
        let jump = shared_surfaces(sched[2], sched[3]);
        assert!(jump.is_empty(), "expected no sharing, got {jump:?}");
    }

    #[test]
    fn outer_loop_selection_follows_shape() {
        let g = grid(2, 2, 2);
        assert_eq!(KFirstSchedule::new(g, 100, 200).outer(), OuterLoop::NOuter);
        assert_eq!(KFirstSchedule::new(g, 200, 100).outer(), OuterLoop::MOuter);
        // Tie goes to N-outer (N >= M).
        assert_eq!(KFirstSchedule::new(g, 100, 100).outer(), OuterLoop::NOuter);
    }

    #[test]
    fn grid_for_problem_uses_ceiling_division() {
        let g = BlockGrid::for_problem(100, 50, 70, 30, 30, 30);
        assert_eq!((g.mb, g.kb, g.nb), (4, 2, 3));
        assert_eq!(g.len(), 24);
    }

    #[test]
    fn empty_grid_yields_nothing() {
        let g = BlockGrid::for_problem(0, 10, 10, 4, 4, 4);
        assert!(g.is_empty());
        assert_eq!(KFirstSchedule::new(g, 0, 10).count(), 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut s = KFirstSchedule::with_outer(grid(2, 3, 4), OuterLoop::NOuter);
        assert_eq!(s.size_hint(), (24, Some(24)));
        s.next();
        assert_eq!(s.size_hint(), (23, Some(23)));
        assert_eq!(s.len(), 24);
    }

    proptest! {
        #[test]
        fn snake_adjacency_holds_for_arbitrary_grids(
            mb in 1usize..8, kb in 1usize..8, nb in 1usize..8,
            m_outer in any::<bool>(),
        ) {
            let outer = if m_outer { OuterLoop::MOuter } else { OuterLoop::NOuter };
            let sched: Vec<_> = KFirstSchedule::with_outer(grid(mb, kb, nb), outer).collect();
            prop_assert_eq!(sched.len(), mb * kb * nb);
            let unique: HashSet<_> = sched.iter().copied().collect();
            prop_assert_eq!(unique.len(), sched.len());
            for w in sched.windows(2) {
                let d = w[0].m.abs_diff(w[1].m) + w[0].k.abs_diff(w[1].k) + w[0].n.abs_diff(w[1].n);
                prop_assert_eq!(d, 1);
            }
        }

        #[test]
        fn coord_at_matches_iteration(mb in 1usize..6, kb in 1usize..6, nb in 1usize..6) {
            let s = KFirstSchedule::with_outer(grid(mb, kb, nb), OuterLoop::NOuter);
            let by_index: Vec<_> = (0..s.len()).map(|i| s.coord_at(i)).collect();
            let by_iter: Vec<_> = s.collect();
            prop_assert_eq!(by_index, by_iter);
        }
    }
}


/// One dimension of the block grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Row-block dimension.
    M,
    /// Reduction-block dimension.
    K,
    /// Column-block dimension.
    N,
}

/// A boustrophedon schedule with an arbitrary loop order — the
/// generalization of [`KFirstSchedule`] used by the reuse-priority
/// ablation.
///
/// The innermost dimension decides which surface is reused on every step:
/// inner `K` reuses the partial-C surface (the paper's choice), inner `M`
/// reuses B, inner `N` reuses A. K-first is optimal exactly when the
/// C-sharing saving (`2 * bm * bn`, partials spill twice) dominates the
/// A- or B-sharing saving — which holds for the paper's wide CB blocks
/// but *reverses* for tall-K blocks (`bk > 2 * max(bm, bn)`), a crossover
/// the tests pin down.
#[derive(Debug, Clone)]
pub struct SnakeSchedule {
    grid: BlockGrid,
    /// Loop order, outermost first.
    order: [Dim; 3],
    pos: usize,
}

impl SnakeSchedule {
    /// Schedule with the given loop order (outermost first).
    ///
    /// # Panics
    /// Panics unless `order` is a permutation of {M, K, N}.
    pub fn new(grid: BlockGrid, order: [Dim; 3]) -> Self {
        let mut seen = [false; 3];
        for d in order {
            let i = d as usize;
            assert!(!seen[i], "loop order must be a permutation, got {order:?}");
            seen[i] = true;
        }
        Self { grid, order, pos: 0 }
    }

    fn ext(&self, d: Dim) -> usize {
        match d {
            Dim::M => self.grid.mb,
            Dim::K => self.grid.kb,
            Dim::N => self.grid.nb,
        }
    }

    /// Total number of blocks.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// `true` when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Block at linear position `idx` in execution order.
    pub fn coord_at(&self, idx: usize) -> BlockCoord {
        debug_assert!(idx < self.len());
        let (oe, me, ie) =
            // audit: checked constant indices into the [Dim; 3] loop order
            (self.ext(self.order[0]), self.ext(self.order[1]), self.ext(self.order[2]));
        debug_assert_eq!(oe * me * ie, self.len());
        let o = idx / (me * ie);
        let rem = idx % (me * ie);
        let mid_step = rem / ie;
        let inner_step = rem % ie;

        let mid = if o.is_multiple_of(2) { mid_step } else { me - 1 - mid_step };
        let pair = o * me + mid_step;
        let inner = if pair.is_multiple_of(2) { inner_step } else { ie - 1 - inner_step };

        let mut c = BlockCoord { m: 0, k: 0, n: 0 };
        // audit: checked constant indices into the [Dim; 3] loop order
        for (d, v) in [(self.order[0], o), (self.order[1], mid), (self.order[2], inner)] {
            match d {
                Dim::M => c.m = v,
                Dim::K => c.k = v,
                Dim::N => c.n = v,
            }
        }
        c
    }
}

impl Iterator for SnakeSchedule {
    type Item = BlockCoord;

    fn next(&mut self) -> Option<BlockCoord> {
        if self.pos >= self.grid.len() {
            return None;
        }
        let c = self.coord_at(self.pos);
        self.pos += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.grid.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SnakeSchedule {}

#[cfg(test)]
mod general_tests {
    use super::*;
    use crate::traffic::{dram_traffic, CResidency, TrafficParams};
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn kfirst_is_the_nmk_special_case() {
        let grid = BlockGrid { mb: 3, kb: 4, nb: 2 };
        let a: Vec<_> = KFirstSchedule::with_outer(grid, OuterLoop::NOuter).collect();
        let b: Vec<_> = SnakeSchedule::new(grid, [Dim::N, Dim::M, Dim::K]).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn repeated_dims_rejected() {
        let _ = SnakeSchedule::new(BlockGrid { mb: 1, kb: 1, nb: 1 }, [Dim::M, Dim::M, Dim::K]);
    }

    #[test]
    fn kfirst_wins_for_wide_blocks() {
        // Paper-shaped blocks (bm = bn >> bk is not required; cubic is
        // enough): sharing C (worth 2*bm*bn) beats sharing A or B.
        let tp = TrafficParams { m: 128, k: 128, n: 128, bm: 32, bk: 32, bn: 32 };
        let grid = BlockGrid::for_problem(tp.m, tp.k, tp.n, tp.bm, tp.bk, tp.bn);
        let k_inner = dram_traffic(
            SnakeSchedule::new(grid, [Dim::N, Dim::M, Dim::K]), tp, CResidency::HoldInLlc);
        let n_inner = dram_traffic(
            SnakeSchedule::new(grid, [Dim::K, Dim::M, Dim::N]), tp, CResidency::HoldInLlc);
        let m_inner = dram_traffic(
            SnakeSchedule::new(grid, [Dim::K, Dim::N, Dim::M]), tp, CResidency::HoldInLlc);
        assert!(k_inner.total() < n_inner.total());
        assert!(k_inner.total() < m_inner.total());
    }

    #[test]
    fn reuse_priority_crossover_for_tall_k_blocks() {
        // Tall-K blocks: bk = 64 >> bm = bn = 8. Sharing A per step saves
        // bm*bk = 512 while sharing C saves only 2*bm*bn = 128: the
        // N-inner (A-reusing) order must beat the paper's K-first.
        let tp = TrafficParams { m: 32, k: 256, n: 32, bm: 8, bk: 64, bn: 8 };
        let grid = BlockGrid::for_problem(tp.m, tp.k, tp.n, tp.bm, tp.bk, tp.bn);
        let k_inner = dram_traffic(
            SnakeSchedule::new(grid, [Dim::N, Dim::M, Dim::K]), tp, CResidency::HoldInLlc);
        let n_inner = dram_traffic(
            SnakeSchedule::new(grid, [Dim::K, Dim::M, Dim::N]), tp, CResidency::HoldInLlc);
        assert!(
            n_inner.total() < k_inner.total(),
            "A-reusing order should win for tall-K blocks: n_inner {} vs k_inner {}",
            n_inner.total(),
            k_inner.total()
        );
    }

    proptest! {
        #[test]
        fn all_orders_cover_once_and_stay_adjacent(
            mb in 1usize..6, kb in 1usize..6, nb in 1usize..6,
            perm in 0usize..6,
        ) {
            let orders = [
                [Dim::M, Dim::K, Dim::N], [Dim::M, Dim::N, Dim::K],
                [Dim::K, Dim::M, Dim::N], [Dim::K, Dim::N, Dim::M],
                [Dim::N, Dim::M, Dim::K], [Dim::N, Dim::K, Dim::M],
            ];
            let grid = BlockGrid { mb, kb, nb };
            let sched: Vec<_> = SnakeSchedule::new(grid, orders[perm]).collect();
            prop_assert_eq!(sched.len(), grid.len());
            let unique: HashSet<_> = sched.iter().copied().collect();
            prop_assert_eq!(unique.len(), sched.len());
            for w in sched.windows(2) {
                let d = w[0].m.abs_diff(w[1].m) + w[0].k.abs_diff(w[1].k) + w[0].n.abs_diff(w[1].n);
                prop_assert_eq!(d, 1);
            }
        }
    }
}
