//! The multithreaded, software-pipelined CB-block GEMM engine.
//!
//! Executes the K-first snake schedule over constant-bandwidth blocks
//! (paper Figure 6):
//!
//! * Each of the `p` workers owns one tile of the current block's A×C
//!   surface under a **2D worker grid** ([`worker_grid`]): `pm` row groups
//!   times `pn` column groups with `pm * pn == p`. When the block has at
//!   least `p` row tiles the grid degenerates to the balanced M-partition
//!   ([`worker_rows`]) — `p` contiguous runs differing by at most one tile
//!   — and when it has fewer (small-m edge blocks that used to idle
//!   workers), the surplus parallelism folds into N: workers in the same
//!   row group split the block's B slivers and each packs a private copy
//!   of the shared row strip (strips are repacked after the owner's *own*
//!   compute, so sharing one strip across a row group would race with a
//!   peer still computing the previous block).
//! * `p` here is the **effective** worker count — the pool's size, clamped
//!   by [`crate::topology::effective_p`] at pool construction. `shape.p`
//!   (the requested p that shaped the block) may be larger; the executor
//!   partitions any block across any pool and reports both in
//!   [`ExecStats`].
//! * The `kc x nc` B panel is packed cooperatively (each worker packs a
//!   balanced *contiguous* run of `nr`-column slivers, split by actual
//!   sliver count) into one shared buffer — the LLC-resident surface that
//!   is "broadcast" to all cores.
//! * Partial C results are accumulated **in place** in the output matrix
//!   across the whole K run — never written early and re-read, which is
//!   precisely the IO the paper eliminates relative to GOTO.
//! * Surface sharing between consecutive blocks (same `(m,k)` => keep
//!   packed A; same `(k,n)` => keep packed B) skips redundant packing,
//!   mirroring the DRAM-level reuse the schedule was designed for.
//!
//! # The pipeline
//!
//! The B panel is **double-buffered**: after computing on block `i`'s
//! panel, a worker immediately packs its share of block `i+1`'s B slivers
//! into the *alternate* panel and then waits at a single rotation barrier.
//! Workers that finish computing early therefore pack the next panel while
//! slower workers are still computing — the packing IO hides under compute
//! exactly as the paper's constant-bandwidth model assumes (Section 3,
//! Figure 4), and the old two-barriers-per-block lockstep collapses to
//! **one barrier per block**:
//!
//! ```text
//!            panel 0            panel 1            panel 0
//! block i:   compute(i) ──► pack B(i+1) ──► barrier
//! block i+1:                     compute(i+1) ──► pack B(i+2) ──► barrier
//! ```
//!
//! When consecutive blocks share their B surface (an M-step in the snake),
//! no pack is issued and the panel does **not** rotate, so the reuse-skip
//! accounting is unchanged from the serial executor. The double buffer
//! additionally generalizes to a small **panel ring** — `min(k-blocks,
//! MAX_B_PANELS)` panels, never fewer than two — managed as an LRU cache of
//! `(k, n)` surfaces: at a snake reversal the ring usually still holds the
//! surface the next block needs, and the rotation happens without any
//! packing at all ([`ExecStats::b_panel_hits`]). With the ring as deep as
//! the problem's k-block count, B is packed exactly once per distinct
//! surface — the same pack volume as the GOTO loop nest — while keeping
//! CAKE's accumulate-in-LLC C traffic. A worker's private A strip has a
//! single buffer; it is repacked after the worker's own compute finishes
//! (no other worker reads it), which keeps it off the barrier's critical
//! path as well.
//!
//! The rotation barrier is a cache-line-padded sense-reversing
//! spin-then-yield-then-park barrier ([`crate::sync::SpinBarrier`]), not
//! `std::sync::Barrier`: with one barrier per block on the critical path,
//! a futex park/wake per episode would cost microseconds per block, while
//! the user-space spin release is observed in tens of nanoseconds. The
//! barrier mode is chosen per call ([`crate::sync::BarrierMode::auto`]):
//! pure spin-then-yield when the pool fits the host's cores, parking when
//! it is oversubscribed — so co-tenant runs stop burning whole timeslices
//! per rotation.
//!
//! Packed buffers live in a caller-provided [`GemmWorkspace`] so repeated
//! GEMMs reuse them without touching the allocator; [`execute_with_stats`]
//! creates a throwaway workspace for one-shot calls. For multicore runs,
//! pair the executor with a core-pinned pool
//! ([`crate::pool::ThreadPool::pinned`]) so each worker's L2-resident A
//! strip survives between blocks.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use cake_kernels::edge::run_tile;
use cake_kernels::pack::{pack_a, pack_b, split_range};
use cake_kernels::Ukr;
use cake_matrix::{Dtype, MatrixView, MatrixViewMut};

use crate::counters::Tally;
use crate::panel::{ring_depth, PanelAction, PanelCache};
use crate::pool::ThreadPool;
use crate::schedule::{worker_grid, BlockGrid, TwoLevelSchedule};
use crate::shape::CbBlockShape;
use crate::shared::OutPtr;
use crate::sync::{BarrierMode, SpinBarrier};
use crate::topology;
use crate::workspace::GemmWorkspace;

/// Execution statistics for one CAKE GEMM call — observable evidence of
/// the schedule's surface reuse and the pipeline's pack/compute overlap on
/// the *real* executor (the simulator measures the same quantities on the
/// model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// CB blocks executed.
    pub blocks: usize,
    /// Blocks whose shared B panel was reused from the previous block
    /// (an M-step in the snake: same `(k, n)`).
    pub b_packs_skipped: usize,
    /// Additional B packs avoided because *another* ring panel still held
    /// the needed `(k, n)` surface — the pipeline panels double as an LRU
    /// panel cache, which pays off at every snake reversal.
    pub b_panel_hits: usize,
    /// Blocks whose per-worker A strips were reused (an N-step: same
    /// `(m, k)`).
    pub a_packs_skipped: usize,
    /// Barrier waits actually performed by worker 0 — one rotation barrier
    /// per block in the pipelined executor (measured, not derived).
    pub barriers: usize,
    /// Workers that participated in this call — the *effective* worker
    /// count (`pool.size()`), which topology clamping may have reduced
    /// below [`requested_workers`].
    ///
    /// [`requested_workers`]: Self::requested_workers
    pub workers: usize,
    /// The p the caller asked for (`shape.p`) — what shaped the CB block
    /// and drives the analytic model. When this exceeds [`workers`], the
    /// run was clamped to host topology.
    ///
    /// [`workers`]: Self::workers
    pub requested_workers: usize,
    /// Cores available to this process ([`crate::topology::available_cores`])
    /// when the call ran — context for interpreting any clamp.
    pub host_cores: usize,
    /// Rotation-barrier wait strategy the call selected
    /// ([`crate::sync::BarrierMode::auto`]): spin-then-yield on a
    /// well-fitted host, parking when workers outnumber cores.
    pub barrier_mode: BarrierMode,
    /// Nanoseconds spent packing A strips and B panels, summed over all
    /// workers.
    pub pack_ns: u64,
    /// Largest single-worker pack time — together with [`pack_ns`] this
    /// separates "packing is cheap" from "packing is cheap on average but
    /// one worker does it all".
    ///
    /// [`pack_ns`]: Self::pack_ns
    pub pack_ns_max: u64,
    /// Nanoseconds spent in microkernel compute, summed over all workers.
    pub compute_ns: u64,
    /// Largest single-worker compute time (the critical-path worker).
    pub compute_ns_max: u64,
    /// Smallest single-worker compute time. `compute_ns_max -
    /// compute_ns_min` is the partition's raw load imbalance.
    pub compute_ns_min: u64,
    /// Nanoseconds spent waiting at the rotation barrier, summed over all
    /// workers — the pipeline's residual synchronization cost. A large sum
    /// with a small [`barrier_wait_ns_max`] means everyone waits a little
    /// (barrier overhead); a sum dominated by the max means one slow
    /// worker stalls the rest (imbalance).
    ///
    /// [`barrier_wait_ns_max`]: Self::barrier_wait_ns_max
    pub barrier_wait_ns: u64,
    /// Largest single-worker barrier wait.
    pub barrier_wait_ns_max: u64,
    /// Workspace footprint in bytes (packed-A strips + the B panel ring).
    pub workspace_bytes: usize,
    /// Heap allocations performed by this call (0 once the workspace is
    /// warm).
    pub allocations: usize,
    /// A elements actually packed from the source view — the executor's
    /// measured external A traffic. Populated only when `cake-core` is
    /// built with the `traffic-counters` feature; 0 otherwise.
    pub a_elems_loaded: u64,
    /// B elements actually packed from the source view (measured external
    /// B traffic). Requires the `traffic-counters` feature; 0 otherwise.
    pub b_elems_loaded: u64,
    /// C elements updated in place (one per microkernel-accumulated output
    /// element per block visit: `kb * M * N` over a full GEMM) — the
    /// executor's measured local-memory C traffic, of which exactly
    /// `1 / kb` reaches DRAM as final writes. Requires the
    /// `traffic-counters` feature; 0 otherwise.
    pub c_elems_updated: u64,
    /// Name of the microkernel that produced this call's numbers
    /// (e.g. `"avx512_f32_14x32"`) — records the dispatch tier per run so
    /// benchmark output can attribute each measurement. Empty on a
    /// default-constructed (never-ran) record.
    pub kernel: &'static str,
}

impl ExecStats {
    /// Fraction of total busy time spent packing: `pack / (pack + compute)`.
    /// Low values mean packing is effectively hidden under compute.
    pub fn pack_fraction(&self) -> f64 {
        let busy = self.pack_ns + self.compute_ns;
        if busy == 0 {
            return 0.0;
        }
        self.pack_ns as f64 / busy as f64
    }

    /// Compute-load imbalance factor: the critical-path worker's compute
    /// time over the per-worker average (`max * p / sum`). `1.0` is a
    /// perfectly balanced partition; the whole GEMM runs at the speed of
    /// the max, so every 0.1 above 1.0 is ~10% of the parallel speedup
    /// lost to imbalance. `1.0` when nothing was measured.
    pub fn compute_imbalance(&self) -> f64 {
        if self.compute_ns == 0 || self.workers == 0 {
            return 1.0;
        }
        self.compute_ns_max as f64 * self.workers as f64 / self.compute_ns as f64
    }
}

/// The rows of an `ml`-row CB block owned by worker `wid` of `p` under the
/// balanced M-partition: the block's `ceil(ml / mr)` kernel tile rows are
/// split into `p` contiguous runs whose lengths differ by at most one
/// tile ([`split_range`]), so tail blocks spread across all workers
/// instead of serializing on whichever owned the fixed strip.
///
/// Returns `Some((first_row, row_count))`, or `None` when the worker owns
/// no tiles (`p > ceil(ml / mr)` leaves trailing workers idle). The
/// returned ranges tile `[0, ml)` exactly: disjoint, in worker order,
/// covering every row once.
pub fn worker_rows(ml: usize, mr: usize, p: usize, wid: usize) -> Option<(usize, usize)> {
    let tiles = ml.div_ceil(mr);
    let r = split_range(tiles, p, wid);
    if r.is_empty() {
        return None;
    }
    let row0 = r.start * mr;
    let rows = (r.end * mr).min(ml) - row0;
    Some((row0, rows))
}

/// Per-block geometry: origin and live extents within the operand views.
#[derive(Clone, Copy)]
struct Blk {
    m0: usize,
    k0: usize,
    n0: usize,
    ml: usize,
    kl: usize,
    nl: usize,
}

/// Execute `C += A * B` with the CAKE CB-block schedule.
///
/// * `a` — `M x K` view, `b` — `K x N` view, `c` — `M x N` mutable view
///   over the **accumulator** type (`T::Acc` — the same `T` for f32/f64,
///   `i32` for int8, `f32` for bf16).
/// * `shape` — the CB block (`p`, `mc`, `kc`, `nc`); `shape.p` must equal
///   `pool.size()`.
/// * `ukr` — microkernel; `shape.mc` need not be a multiple of `mr` but
///   performance is best when it is.
///
/// # Panics
/// Panics on dimension mismatch between the operand views, or when
/// `pool.size() != shape.p`.
pub fn execute<T: Dtype>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
    shape: &CbBlockShape,
    ukr: &Ukr<T>,
    pool: &ThreadPool,
) {
    let _ = execute_with_stats(a, b, c, shape, ukr, pool);
}

/// [`execute`], additionally returning per-call [`ExecStats`]. Allocates a
/// throwaway workspace; use [`execute_with_stats_in`] to reuse one.
pub fn execute_with_stats<T: Dtype>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
    shape: &CbBlockShape,
    ukr: &Ukr<T>,
    pool: &ThreadPool,
) -> ExecStats {
    let mut ws = GemmWorkspace::new();
    execute_with_stats_in(a, b, c, shape, ukr, pool, &mut ws)
}

/// [`execute`] against a caller-owned reusable workspace.
#[allow(clippy::too_many_arguments)]
pub fn execute_in<T: Dtype>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
    shape: &CbBlockShape,
    ukr: &Ukr<T>,
    pool: &ThreadPool,
    ws: &mut GemmWorkspace<T>,
) {
    let _ = execute_with_stats_in(a, b, c, shape, ukr, pool, ws);
}

/// The pipelined CB-block executor: packs into and computes from `ws`,
/// returning measured [`ExecStats`].
///
/// This is the warm-path root: after the one `ws.prepare(..)` staging
/// call (cold — it only allocates on first use or shape growth) the
/// whole call tree below here must neither allocate nor panic, which
/// `cake-audit`'s alloc-freedom and panic-freedom passes prove
/// statically from these anchors.
// audit: warm
// audit: hot
#[allow(clippy::too_many_arguments)]
pub fn execute_with_stats_in<T: Dtype>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T::Acc>,
    shape: &CbBlockShape,
    ukr: &Ukr<T>,
    pool: &ThreadPool,
    ws: &mut GemmWorkspace<T>,
) -> ExecStats {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    // audit: cold entry shape validation, once per call before any loop
    assert_eq!(b.rows(), k, "A is {m}x{k} but B has {} rows", b.rows());
    // audit: cold entry shape validation, once per call before any loop
    assert_eq!(c.rows(), m, "C must have {m} rows, has {}", c.rows());
    // audit: cold entry shape validation, once per call before any loop
    assert_eq!(c.cols(), n, "C must have {n} cols, has {}", c.cols());
    if m == 0 || n == 0 || k == 0 {
        return ExecStats::default();
    }

    // Partition across the workers that actually exist. `shape.p` (the
    // requested p) keeps shaping the block; a topology-clamped pool simply
    // runs the same blocks with fewer workers.
    let p = pool.size();
    let (mr, nr) = (ukr.mr(), ukr.nr());
    let (bm, bk, bn) = (shape.m_block(), shape.k_block(), shape.n_block());

    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    // Two-level (LLC-tiled) order when the shape carries outer extents;
    // with both zero this is bit-exactly the one-level K-first snake.
    let schedule = TwoLevelSchedule::new(grid, m, n, shape.ko_blocks, shape.no_blocks);
    let nblocks = schedule.len();

    // B panel ring: two panels are the pipelining floor; a ring as deep as
    // the k-block count makes every snake reversal a cache hit (B packed
    // once per distinct surface), capped so the LLC footprint stays small.
    let n_panels = ring_depth(grid.kb);
    let allocations = ws.prepare(shape, p, mr, nr, n_panels);
    let pa_stride = ws.pa_stride;
    let packed_a = &ws.packed_a;
    // audit: checked prepare() above just grew packed_b to >= n_panels
    let panels = &ws.packed_b[..n_panels];
    let pb_len = panels.first().map_or(0, |pb| pb.len());

    let host_cores = topology::available_cores();
    let barrier_mode = BarrierMode::auto(p, host_cores);
    let barrier = SpinBarrier::with_mode(p, barrier_mode);
    // SAFETY: the pointer lives as long as `c`; workers write disjoint
    // row x column tiles of the output (2D worker grid).
    let out = unsafe { OutPtr::new(c.ptr_at_mut(0, 0)) };
    let (rsc, csc) = (c.row_stride(), c.col_stride());

    // Cross-worker stat sinks (each worker accumulates locally and folds in
    // once at the end, so the hot loop touches no shared cache lines).
    let pack_total = AtomicU64::new(0);
    let pack_max = AtomicU64::new(0);
    let compute_total = AtomicU64::new(0);
    let compute_max = AtomicU64::new(0);
    let compute_min = AtomicU64::new(u64::MAX);
    let wait_total = AtomicU64::new(0);
    let wait_max = AtomicU64::new(0);
    let barrier_count = AtomicUsize::new(0);
    // Measured element traffic (no-op unless `traffic-counters` is on).
    let tally = Tally::new();

    pool.broadcast(|wid| {
        // Per-worker private schedule copy (plain `Copy`: pure arithmetic,
        // no heap, no sharing).
        let sched = schedule;

        let blk = |bi: usize| {
            let coord = sched.coord_at(bi);
            let (m0, k0, n0) = (coord.m * bm, coord.k * bk, coord.n * bn);
            Blk {
                m0,
                k0,
                n0,
                ml: bm.min(m - m0),
                kl: bk.min(k - k0),
                nl: bn.min(n - n0),
            }
        };

        // Cooperatively pack this worker's contiguous share of block `g`'s
        // B slivers into the panel at `pb_base`. The share is balanced by
        // *actual* sliver count ([`split_range`]): a tail block with few
        // slivers still spreads across all workers instead of landing on
        // whichever indices happen to be below the count, and contiguous
        // slivers mean each worker streams one dense region of the panel.
        // Workers carve disjoint raw sub-slices out of the shared buffer:
        // no two `&mut` regions ever overlap. Pack ownership stays 1D over
        // all `p` workers regardless of the 2D compute grid, so the audit
        // pack protocol and the pack counters are partition-invariant.
        let pack_b_coop = |g: &Blk, pb_base: *mut T| {
            let nslivers = g.nl.div_ceil(nr);
            let mut loaded = 0usize;
            for t in split_range(nslivers, p, wid) {
                let col0 = g.n0 + t * nr;
                let live = nr.min(g.n0 + g.nl - col0);
                // Mirrors the `exec_pb_sliver_write` interval proof in
                // cake-audit: the sliver end never passes the panel end.
                debug_assert!((t + 1) * nr * g.kl <= pb_len);
                // SAFETY: sliver t occupies [t*nr*kl, (t+1)*nr*kl), within
                // capacity since t < nslivers <= bn/nr and kl <= bk; sliver
                // ranges of distinct t are disjoint and each t has one owner.
                let sliver: &mut [T] = unsafe {
                    std::slice::from_raw_parts_mut(pb_base.add(t * nr * g.kl), nr * g.kl)
                };
                pack_b(&b.sub(g.k0, col0, g.kl, live), sliver, nr);
                loaded += g.kl * live;
            }
            tally.add_b(loaded);
        };

        // This worker's cell of block `g` under the 2D worker grid
        // ([`worker_grid`]). The grid is a pure function of the block's
        // row-tile count, so every worker derives the same `(pm, pn)` and
        // they tile the block exactly: worker `wid` sits at row group
        // `wm = wid / pn`, column group `wn = wid % pn`; its rows come
        // from the balanced partition over the `pm` row groups, its
        // compute columns from the contiguous sliver split over `pn`.
        let my_cell = |g: &Blk| {
            let (pm, pn) = worker_grid(p, g.ml.div_ceil(mr));
            let (wm, wn) = (wid / pn, wid % pn);
            (worker_rows(g.ml, mr, pm, wm), wn, pn)
        };

        // Pack this worker's private A strip for block `g` (k-major `mr`
        // slivers — the packed-A format over the strip sub-view). Workers
        // in the same row group (`wn > 0` peers) pack identical *private*
        // copies: a shared strip would race, because strips are repacked
        // for block `i+1` right after the owner's own compute while a peer
        // may still be computing block `i` from it.
        let pack_a_own = |g: &Blk| {
            let (cell_rows, wn, _pn) = my_cell(g);
            let Some((row0, rows)) = cell_rows else {
                return;
            };
            // Mirrors `exec_pa_strip` / `exec_pa_pack` in cake-audit: the
            // strip fits the shared buffer and the packed strip fits it.
            debug_assert!((wid + 1) * pa_stride <= packed_a.len());
            debug_assert!(cake_kernels::pack::packed_a_size(rows, g.kl, mr) <= pa_stride);
            // SAFETY: each worker owns the disjoint range
            // [wid*pa_stride, (wid+1)*pa_stride) of the shared buffer.
            let pa: &mut [T] = unsafe {
                std::slice::from_raw_parts_mut(
                    packed_a.base_ptr().add(wid * pa_stride),
                    pa_stride,
                )
            };
            pack_a(&a.sub(g.m0 + row0, g.k0, rows, g.kl), pa, mr);
            // Count the surface load once per row group, not once per
            // duplicated private copy, so `a_elems` is partition-invariant.
            if wn == 0 {
                tally.add_a(rows * g.kl);
            }
        };

        // Compute this worker's strip x its column-group slivers, B-sliver
        // stationary: the strip (<= mc x kc) is L2-resident by construction
        // (the paper's per-core A region), so sweeping it per B sliver
        // reads every LLC-resident panel element exactly once while all A
        // traffic stays in L2. Under the degenerate (p, 1) grid the sliver
        // range is the whole panel — identical to the 1D executor.
        let compute = |g: &Blk, pb_base: *const T| {
            let (cell_rows, wn, pn) = my_cell(g);
            let Some((row0, rows)) = cell_rows else {
                return; // empty block
            };
            // Read-only phase: raw pointers, no outstanding `&mut`.
            // SAFETY: wid*pa_stride is within the buffer (exec_pa_strip
            // proof) and no `&mut` to it is live during the compute phase.
            let pa_ptr = unsafe { packed_a.base_ptr().add(wid * pa_stride) as *const T };
            let a_slivers = rows.div_ceil(mr);
            let b_slivers = g.nl.div_ceil(nr);
            let mut owned_cols = 0usize;
            for t in split_range(b_slivers, pn, wn) {
                let ncols = nr.min(g.nl - t * nr);
                let col = g.n0 + t * nr;
                owned_cols += ncols;
                // Mirrors `exec_pb_sliver_read` in cake-audit.
                debug_assert!((t + 1) * nr * g.kl <= pb_len);
                for s in 0..a_slivers {
                    let mrows = mr.min(rows - s * mr);
                    let row = g.m0 + row0 + s * mr;
                    // Mirrors `exec_pa_read` and `exec_c_tile` in cake-audit.
                    debug_assert!((s + 1) * mr * g.kl <= pa_stride);
                    debug_assert!(row + mrows <= m && col + ncols <= n);
                    // SAFETY: packed slivers are zero-padded full tiles;
                    // C indices (row, col) + (mrows, ncols) are in bounds;
                    // each worker's (rows x sliver-columns) cell is
                    // disjoint from all others' under the 2D grid.
                    unsafe {
                        let cptr = out.get().add(row * rsc + col * csc);
                        run_tile(
                            ukr,
                            g.kl,
                            pa_ptr.add(s * mr * g.kl),
                            pb_base.add(t * nr * g.kl),
                            cptr,
                            rsc,
                            csc,
                            mrows,
                            ncols,
                        );
                    }
                }
            }
            tally.add_c(rows * owned_cols);
        };

        let (mut pack_ns, mut compute_ns, mut wait_ns) = (0u64, 0u64, 0u64);
        let mut waits = 0usize;
        let mut bsense = barrier.waiter();
        // The ring state evolves as a pure function of the schedule, so
        // every worker tracks an identical copy and all agree on which
        // panel is live and which gets packed.
        let mut cache = PanelCache::new(panels.len());

        for bi in 0..nblocks {
            let g = blk(bi);

            if bi == 0 {
                // Prologue: fill panel 0 and our A strip for block 0. The
                // single barrier separates these writes from all reads.
                let c0 = sched.coord_at(0);
                cache.seed((c0.k, c0.n));
                let t0 = Instant::now();
                // audit: step prologue pack_b slot=first
                // audit: checked panel 0 exists: ring depth is always >= 2
                pack_b_coop(&g, panels[0].base_ptr());
                // audit: step prologue pack_a
                pack_a_own(&g);
                pack_ns += t0.elapsed().as_nanos() as u64;
                let t1 = Instant::now();
                // audit: step prologue barrier
                barrier.wait(&mut bsense);
                wait_ns += t1.elapsed().as_nanos() as u64;
                waits += 1;
            }

            let t0 = Instant::now();
            // audit: step block compute slot=cur
            // audit: checked cache.cur() < depth == panels.len() (ring invariant)
            compute(&g, panels[cache.cur()].base_ptr() as *const T);
            compute_ns += t0.elapsed().as_nanos() as u64;

            if bi + 1 < nblocks {
                // Pipeline: pack block bi+1's surfaces while other workers
                // may still be computing block bi. A miss fills an idle
                // ring panel (the LRU victim is never the one still being
                // read); the private A strip is safe to overwrite after our
                // own compute.
                let cn = sched.coord_at(bi + 1);
                let cp = sched.coord_at(bi);
                let share_a = cp.m == cn.m && cp.k == cn.k;

                let gn = blk(bi + 1);
                let t1 = Instant::now();
                if let PanelAction::Pack(next) = cache.advance((cn.k, cn.n)) {
                    // audit: step block pack_b slot=next cond=ring-miss
                    // audit: checked Pack(next) victims are drawn from 0..depth
                    pack_b_coop(&gn, panels[next].base_ptr());
                }
                if !share_a {
                    // audit: step block pack_a cond=!share_a
                    pack_a_own(&gn);
                }
                pack_ns += t1.elapsed().as_nanos() as u64;

                // Rotation barrier: block bi's reads are done everywhere,
                // block bi+1's panel is complete everywhere.
                let t2 = Instant::now();
                // audit: step block barrier cond=has-next
                barrier.wait(&mut bsense);
                wait_ns += t2.elapsed().as_nanos() as u64;
                waits += 1;
            }
        }

        pack_total.fetch_add(pack_ns, Ordering::Relaxed);
        pack_max.fetch_max(pack_ns, Ordering::Relaxed);
        compute_total.fetch_add(compute_ns, Ordering::Relaxed);
        compute_max.fetch_max(compute_ns, Ordering::Relaxed);
        compute_min.fetch_min(compute_ns, Ordering::Relaxed);
        wait_total.fetch_add(wait_ns, Ordering::Relaxed);
        wait_max.fetch_max(wait_ns, Ordering::Relaxed);
        if wid == 0 {
            barrier_count.store(waits, Ordering::Relaxed);
        }
    });

    // Reuse-skip counts are a pure function of the schedule; tally once.
    let (a_elems_loaded, b_elems_loaded, c_elems_updated) = tally.snapshot();
    let mut stats = ExecStats {
        blocks: nblocks,
        barriers: barrier_count.load(Ordering::Relaxed),
        workers: p,
        requested_workers: shape.p,
        host_cores,
        barrier_mode,
        pack_ns: pack_total.load(Ordering::Relaxed),
        pack_ns_max: pack_max.load(Ordering::Relaxed),
        compute_ns: compute_total.load(Ordering::Relaxed),
        compute_ns_max: compute_max.load(Ordering::Relaxed),
        compute_ns_min: match compute_min.load(Ordering::Relaxed) {
            u64::MAX => 0,
            v => v,
        },
        barrier_wait_ns: wait_total.load(Ordering::Relaxed),
        barrier_wait_ns_max: wait_max.load(Ordering::Relaxed),
        workspace_bytes: ws.bytes(),
        allocations,
        a_elems_loaded,
        b_elems_loaded,
        c_elems_updated,
        kernel: ukr.name(),
        ..ExecStats::default()
    };
    // Replay the panel ring the workers ran (same pure function of the
    // schedule) to attribute each avoided B pack to adjacency sharing vs a
    // panel-cache hit.
    let mut sprev: Option<crate::schedule::BlockCoord> = None;
    let mut cache = PanelCache::new(n_panels);
    for bi in 0..nblocks {
        let coord = schedule.coord_at(bi);
        let want = (coord.k, coord.n);
        if bi == 0 {
            cache.seed(want);
        } else {
            match cache.advance(want) {
                PanelAction::Keep => stats.b_packs_skipped += 1,
                PanelAction::Rotate(_) => stats.b_panel_hits += 1,
                PanelAction::Pack(_) => {}
            }
        }
        if let Some(pc) = sprev {
            if pc.m == coord.m && pc.k == coord.k {
                stats.a_packs_skipped += 1;
            }
        }
        sprev = Some(coord);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_kernels::select::best_kernel;
    use cake_matrix::compare::assert_gemm_eq;
    use cake_matrix::{init, Matrix};

    fn reference(a: &Matrix<f32>, b: &Matrix<f32>, c: &mut Matrix<f32>) {
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = c.get(i, j) as f64;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                }
                c.set(i, j, s as f32);
            }
        }
    }

    fn run_case(m: usize, k: usize, n: usize, p: usize, mc: usize, kc: usize, nc: usize) {
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);
        let mut c = init::random::<f32>(m, n, 3);
        let mut expected = c.clone();

        let shape = CbBlockShape::fixed(p, mc, kc, nc);
        let ukr = best_kernel::<f32>();
        let pool = ThreadPool::new(p);
        execute(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool);

        reference(&a, &b, &mut expected);
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn single_core_exact_block_fit() {
        run_case(32, 32, 32, 1, 32, 32, 32);
    }

    #[test]
    fn single_core_many_blocks() {
        run_case(64, 48, 80, 1, 16, 16, 16);
    }

    #[test]
    fn multi_core_divisible() {
        run_case(64, 32, 64, 4, 16, 16, 32);
    }

    #[test]
    fn multi_core_ragged_edges() {
        run_case(61, 37, 53, 4, 16, 16, 32);
    }

    #[test]
    fn more_cores_than_rows_in_edge_blocks() {
        // Last M block has fewer rows than p*mc: some workers idle.
        run_case(20, 24, 24, 4, 8, 8, 16);
    }

    #[test]
    fn tall_skinny_and_wide_shapes() {
        run_case(128, 8, 16, 2, 16, 16, 16);
        run_case(16, 8, 128, 2, 16, 16, 16);
        run_case(8, 128, 8, 2, 16, 16, 16);
    }

    #[test]
    fn tiny_problems() {
        run_case(1, 1, 1, 1, 8, 8, 8);
        run_case(3, 2, 5, 2, 8, 8, 8);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = init::eye::<f32>(8, 8);
        let b = init::sequential::<f32>(8, 8);
        let mut c = init::ones::<f32>(8, 8);
        let shape = CbBlockShape::fixed(1, 8, 8, 8);
        let pool = ThreadPool::new(1);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        // C = 1 + I*B = 1 + B.
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(c.get(i, j), 1.0 + b.get(i, j));
            }
        }
    }

    #[test]
    fn zero_dims_are_noops() {
        let a = Matrix::<f32>::zeros(0, 4);
        let b = Matrix::<f32>::zeros(4, 4);
        let mut c = Matrix::<f32>::zeros(0, 4);
        let shape = CbBlockShape::fixed(2, 8, 8, 8);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );

        // K = 0: C unchanged.
        let a = init::random::<f32>(4, 0, 1);
        let b = init::random::<f32>(0, 4, 2);
        let mut c = init::ones::<f32>(4, 4);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        assert_eq!(c.sum_f64(), 16.0);
    }

    #[test]
    fn pool_decoupled_from_shape_p() {
        // Topology clamping can hand the executor a pool smaller (or, via
        // an explicit pool, larger) than shape.p: the partition follows
        // the pool, the block geometry follows the shape, and the result
        // is exact either way.
        for pool_size in [1, 2, 3, 5] {
            let a = init::random::<f32>(40, 24, 11);
            let b = init::random::<f32>(24, 40, 12);
            let mut c = init::random::<f32>(40, 40, 13);
            let mut expected = c.clone();
            let shape = CbBlockShape::fixed(2, 8, 8, 16); // requested p = 2
            let pool = ThreadPool::new(pool_size);
            let stats = execute_with_stats(
                &a.view(),
                &b.view(),
                &mut c.view_mut(),
                &shape,
                &best_kernel::<f32>(),
                &pool,
            );
            assert_eq!(stats.workers, pool_size, "stats report the pool, not the shape");
            assert_eq!(stats.requested_workers, 2);
            reference(&a, &b, &mut expected);
            assert_gemm_eq(&c, &expected, 24);
        }
    }

    #[test]
    fn small_m_blocks_fold_workers_into_n() {
        // m < p * mr: the old M-only strips idled workers; the 2D grid
        // folds them into N. Sweep p in {2, 3, 8} with one row tile.
        let ukr = best_kernel::<f32>();
        let mr = ukr.mr();
        for p in [2usize, 3, 8] {
            let m = mr - 1; // fewer rows than one tile, far below p * mr
            run_case(m, 24, 48, p, 8, 8, 16);
            run_case(mr + 1, 24, 48, p, 8, 8, 16); // two tiles, still < p
            run_case(m, 5, 7, p, 8, 8, 16); // ragged K/N edges too
        }
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f32>::zeros(4, 5);
        let b = Matrix::<f32>::zeros(4, 4); // should be 5 rows
        let mut c = Matrix::<f32>::zeros(4, 4);
        let shape = CbBlockShape::fixed(1, 8, 8, 8);
        let pool = ThreadPool::new(1);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
    }

    #[test]
    fn f64_path_works() {
        let (m, k, n) = (40, 30, 50);
        let a = init::random::<f64>(m, k, 4);
        let b = init::random::<f64>(k, n, 5);
        let mut c = Matrix::<f64>::zeros(m, n);
        let shape = CbBlockShape::fixed(2, 12, 12, 24);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f64>(),
            &pool,
        );
        let mut expected = Matrix::<f64>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                expected.set(i, j, s);
            }
        }
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn i8_path_is_bit_exact_end_to_end() {
        // Full-range int8 operands through the whole pipelined executor
        // (packing, panel ring, 2D grid, edge tiles): the i32 result must
        // equal the scalar widening product exactly on every tier.
        let (m, k, n) = (61, 37, 53);
        let a = init::random_i8(m, k, 14);
        let b = init::random_i8(k, n, 15);
        let mut c = Matrix::<i32>::zeros(m, n);
        let shape = CbBlockShape::fixed(2, 16, 16, 32);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<i8>(),
            &pool,
        );
        for i in 0..m {
            for j in 0..n {
                let mut s = 0i32;
                for kk in 0..k {
                    s += a.get(i, kk) as i32 * b.get(kk, j) as i32;
                }
                assert_eq!(c.get(i, j), s, "({i},{j})");
            }
        }
    }

    #[test]
    fn bf16_path_matches_f32_oracle() {
        use cake_matrix::Bf16;
        let (m, k, n) = (40, 30, 50);
        let af = init::random::<f32>(m, k, 16);
        let bf = init::random::<f32>(k, n, 17);
        // Round the operands to bf16 first so the oracle sees the same
        // values the kernel does.
        let a = Matrix::from_fn(m, k, |i, j| Bf16::from_f32(af.get(i, j)));
        let b = Matrix::from_fn(k, n, |i, j| Bf16::from_f32(bf.get(i, j)));
        let mut c = Matrix::<f32>::zeros(m, n);
        let shape = CbBlockShape::fixed(2, 16, 16, 32);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<Bf16>(),
            &pool,
        );
        let mut expected = Matrix::<f32>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += a.get(i, kk).to_f32() as f64 * b.get(kk, j).to_f32() as f64;
                }
                expected.set(i, j, s as f32);
            }
        }
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn column_major_output() {
        use cake_matrix::Layout;
        let (m, k, n) = (24, 16, 24);
        let a = init::random::<f32>(m, k, 6);
        let b = init::random::<f32>(k, n, 7);
        let mut c = Matrix::<f32>::zeros_with_layout(m, n, Layout::ColMajor);
        let shape = CbBlockShape::fixed(2, 8, 8, 16);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        let mut expected = Matrix::<f32>::zeros(m, n);
        reference(&a, &b, &mut expected);
        assert_gemm_eq(&c.to_layout(Layout::RowMajor), &expected, k);
    }

    #[test]
    fn workspace_reuse_is_allocation_free_and_correct() {
        let shape = CbBlockShape::fixed(2, 8, 8, 16);
        let pool = ThreadPool::new(2);
        let ukr = best_kernel::<f32>();
        let mut ws = GemmWorkspace::new();
        for round in 0..5 {
            let a = init::random::<f32>(24, 24, 10 + round);
            let b = init::random::<f32>(24, 24, 20 + round);
            let mut c = Matrix::<f32>::zeros(24, 24);
            let stats = execute_with_stats_in(
                &a.view(),
                &b.view(),
                &mut c.view_mut(),
                &shape,
                &ukr,
                &pool,
                &mut ws,
            );
            if round == 0 {
                assert!(stats.allocations > 0, "first call must allocate");
            } else {
                assert_eq!(stats.allocations, 0, "warm calls must not allocate");
            }
            let mut expected = Matrix::<f32>::zeros(24, 24);
            reference(&a, &b, &mut expected);
            assert_gemm_eq(&c, &expected, 24);
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use cake_kernels::select::best_kernel;
    use cake_matrix::{init, Matrix};

    fn run_stats(m: usize, k: usize, n: usize, p: usize, mc: usize, kc: usize, nc: usize) -> ExecStats {
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);
        let mut c = Matrix::<f32>::zeros(m, n);
        let shape = CbBlockShape::fixed(p, mc, kc, nc);
        let pool = ThreadPool::new(p);
        execute_with_stats(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        )
    }

    #[test]
    fn stats_count_blocks_and_barriers() {
        // 2x3x2 block grid = 12 blocks. The pipelined executor pays ONE
        // rotation barrier per block (the old lockstep paid two).
        let s = run_stats(32, 48, 32, 1, 16, 16, 16);
        assert_eq!(s.blocks, 12);
        assert_eq!(s.barriers, 12);
    }

    #[test]
    fn phase_timings_are_measured() {
        let s = run_stats(32, 48, 32, 2, 16, 16, 16);
        assert!(s.compute_ns > 0, "compute time must be measured");
        assert!(s.pack_ns > 0, "pack time must be measured");
        assert!(s.workspace_bytes > 0);
        assert!(s.allocations > 0, "fresh workspace allocates");
        let f = s.pack_fraction();
        assert!((0.0..=1.0).contains(&f), "pack fraction {f} out of range");
    }

    #[test]
    fn per_worker_extrema_bound_the_sums() {
        let s = run_stats(48, 48, 48, 2, 16, 16, 16);
        assert_eq!(s.workers, 2);
        assert!(s.compute_ns_max > 0, "per-worker compute max must be measured");
        // max <= sum <= p * max, and min <= max.
        assert!(s.compute_ns_max <= s.compute_ns);
        assert!(s.compute_ns <= s.compute_ns_max * s.workers as u64);
        assert!(s.compute_ns_min <= s.compute_ns_max);
        assert!(s.pack_ns_max <= s.pack_ns);
        assert!(s.barrier_wait_ns_max <= s.barrier_wait_ns);
        let imb = s.compute_imbalance();
        assert!((1.0..=s.workers as f64).contains(&imb), "imbalance {imb} out of range");
    }

    #[test]
    fn snake_reuse_shows_up_in_skip_counts() {
        // Grid (mb=2, kb=3, nb=2), N-outer: transitions = 11 total.
        // M-steps (same k,n): 2 (one per n stripe) -> B skipped twice.
        // N-steps (same m,k): 1 -> A skipped once.
        // The panel ring is as deep as the k-block count (3), so every
        // revisited surface is still resident: the remaining non-pack
        // transitions are all cache hits, and B is packed exactly once per
        // distinct (k, n) surface — 3 k-blocks x 2 n-stripes = 6 packs out
        // of 12 blocks.
        let s = run_stats(32, 48, 32, 1, 16, 16, 16);
        assert_eq!(s.b_packs_skipped, 2);
        assert_eq!(s.a_packs_skipped, 1);
        assert_eq!(s.b_panel_hits, 4);
        let b_packs = s.blocks - s.b_packs_skipped - s.b_panel_hits;
        assert_eq!(b_packs, 6, "one B pack per distinct surface");
    }

    #[test]
    fn single_block_has_no_skips() {
        let s = run_stats(16, 16, 16, 1, 16, 16, 16);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.barriers, 1, "single block: just the prologue barrier");
        assert_eq!(s.a_packs_skipped + s.b_packs_skipped + s.b_panel_hits, 0);
    }

    #[test]
    fn empty_problem_zero_stats() {
        let a = Matrix::<f32>::zeros(0, 4);
        let b = Matrix::<f32>::zeros(4, 4);
        let mut c = Matrix::<f32>::zeros(0, 4);
        let shape = CbBlockShape::fixed(1, 8, 8, 8);
        let pool = ThreadPool::new(1);
        let s = execute_with_stats(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        assert_eq!(s, ExecStats::default());
    }

    #[test]
    fn every_transition_skips_at_most_one_pack_kind() {
        let s = run_stats(48, 48, 48, 2, 8, 16, 16);
        // Each of the blocks-1 transitions shares exactly one surface; C
        // shares (K-steps) skip neither pack.
        assert!(s.a_packs_skipped + s.b_packs_skipped < s.blocks);
    }
}

#[cfg(test)]
mod partition_tests {
    use super::worker_rows;
    use proptest::prelude::*;

    /// Check the balanced M-partition invariants for one `(ml, mr, p)`:
    /// worker row ranges tile `[0, ml)` exactly once, in order, and tile
    /// counts differ by at most one across workers.
    fn check_partition(ml: usize, mr: usize, p: usize) {
        let mut next = 0usize;
        let mut tile_counts = Vec::with_capacity(p);
        for wid in 0..p {
            match worker_rows(ml, mr, p, wid) {
                Some((row0, rows)) => {
                    assert!(rows > 0, "ml={ml} mr={mr} p={p} wid={wid}: empty Some");
                    assert_eq!(row0, next, "ml={ml} mr={mr} p={p} wid={wid}: gap or overlap");
                    assert!(
                        row0.is_multiple_of(mr),
                        "ml={ml} mr={mr} p={p} wid={wid}: strip not tile-aligned"
                    );
                    next = row0 + rows;
                    tile_counts.push(rows.div_ceil(mr));
                }
                None => tile_counts.push(0),
            }
        }
        assert_eq!(next, ml, "ml={ml} mr={mr} p={p}: rows not fully covered");
        // Idle workers only appear when there are fewer tiles than workers;
        // among non-idle workers the spread is at most one tile.
        let busy: Vec<usize> = tile_counts.iter().copied().filter(|&t| t > 0).collect();
        if let (Some(&hi), Some(&lo)) = (busy.iter().max(), busy.iter().min()) {
            assert!(hi - lo <= 1, "ml={ml} mr={mr} p={p}: tile spread {tile_counts:?}");
            assert_eq!(busy.len(), ml.div_ceil(mr).min(p), "idle workers with work left");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        /// Satellite: the balanced M-partition covers `[0, ml)` exactly
        /// once for arbitrary `(ml, mr, p)` — including `p` greater than
        /// the tile count, where trailing workers must idle cleanly.
        #[test]
        fn balanced_partition_tiles_every_row_exactly_once(
            ml in 0usize..400,
            mr in 1usize..17,
            p in 1usize..24,
        ) {
            check_partition(ml, mr, p);
        }
    }

    /// Check the 2D M x N strip grid for one `(ml, nl, mr, nr, p)`:
    /// every output element of the `ml x nl` block is covered by exactly
    /// one worker's (rows x sliver-columns) cell, and within each grid
    /// dimension busy workers' tile counts differ by at most one.
    fn check_partition_2d(ml: usize, nl: usize, mr: usize, nr: usize, p: usize) {
        use crate::schedule::worker_grid;
        use cake_kernels::pack::split_range;

        let (pm, pn) = worker_grid(p, ml.div_ceil(mr));
        assert_eq!(pm * pn, p);
        let b_slivers = nl.div_ceil(nr);

        let mut cover = vec![0u32; ml * nl];
        let mut row_tiles = Vec::new();
        let mut col_tiles = Vec::new();
        for wid in 0..p {
            let (wm, wn) = (wid / pn, wid % pn);
            let Some((row0, rows)) = super::worker_rows(ml, mr, pm, wm) else {
                continue;
            };
            row_tiles.push(rows.div_ceil(mr));
            let slivers = split_range(b_slivers, pn, wn);
            col_tiles.push(slivers.len());
            for t in slivers {
                let col0 = t * nr;
                let ncols = nr.min(nl - col0);
                for r in row0..row0 + rows {
                    for c in col0..col0 + ncols {
                        cover[r * nl + c] += 1;
                    }
                }
            }
        }
        for (i, &hits) in cover.iter().enumerate() {
            assert_eq!(
                hits, 1,
                "ml={ml} nl={nl} mr={mr} nr={nr} p={p}: cell {i} covered {hits} times"
            );
        }
        for counts in [&row_tiles, &col_tiles] {
            let busy: Vec<usize> = counts.iter().copied().filter(|&t| t > 0).collect();
            if let (Some(&hi), Some(&lo)) = (busy.iter().max(), busy.iter().min()) {
                assert!(hi - lo <= 1, "ml={ml} nl={nl} p={p}: tile spread {counts:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        /// Satellite: the 2D M x N strip grid tiles every block exactly —
        /// no overlap, full cover, and at most one remainder tile per
        /// worker in each dimension — including the small-m blocks whose
        /// surplus workers fold into N.
        #[test]
        fn worker_grid_tiles_every_cell_exactly_once(
            ml in 1usize..60,
            nl in 1usize..60,
            mr in 1usize..9,
            nr in 1usize..9,
            p in 1usize..13,
        ) {
            check_partition_2d(ml, nl, mr, nr, p);
        }
    }

    #[test]
    fn partition_2d_edge_cases_pinned() {
        // One row tile, p = 4: pure N split.
        check_partition_2d(3, 40, 8, 8, 4);
        // Two row tiles, p = 8: (2, 4) grid.
        check_partition_2d(10, 33, 8, 8, 8);
        // Prime p with fewer tiles than workers: (1, p) grid.
        check_partition_2d(5, 17, 8, 8, 7);
        // Plenty of tiles: degenerates to pure M strips.
        check_partition_2d(64, 16, 8, 8, 4);
    }

    #[test]
    fn partition_edge_cases_pinned() {
        // More workers than tiles: first `tiles` workers get one tile each.
        check_partition(20, 8, 4); // 3 tiles, 4 workers
        assert_eq!(worker_rows(20, 8, 4, 0), Some((0, 8)));
        assert_eq!(worker_rows(20, 8, 4, 2), Some((16, 4)), "last tile is the ragged one");
        assert_eq!(worker_rows(20, 8, 4, 3), None);
        // Empty block: everyone idles.
        assert_eq!(worker_rows(0, 8, 4, 0), None);
        // Remainder spread: 7 tiles over 4 workers -> 2,2,2,1.
        check_partition(56, 8, 4);
        assert_eq!(worker_rows(56, 8, 4, 0), Some((0, 16)));
        assert_eq!(worker_rows(56, 8, 4, 3), Some((48, 8)));
        // The old fixed-strip scheme would give w0 two tiles and w1 one
        // for ml=24, p=4, mc=16; balanced gives every worker one.
        check_partition(24, 8, 4);
        for wid in 0..3 {
            assert_eq!(worker_rows(24, 8, 4, wid), Some((wid * 8, 8)));
        }
    }
}
