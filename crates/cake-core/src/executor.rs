//! The multithreaded CB-block GEMM engine.
//!
//! Executes the K-first snake schedule over constant-bandwidth blocks
//! (paper Figure 6):
//!
//! * Each of the `p` workers permanently owns one `mc`-row strip of the
//!   current block's A surface — the per-core L2-resident sub-matrix.
//! * The `kc x nc` B panel is packed cooperatively (each worker packs an
//!   interleaved subset of `nr`-column slivers) into one shared buffer —
//!   the LLC-resident surface that is "broadcast" to all cores.
//! * Partial C results are accumulated **in place** in the output matrix
//!   across the whole K run — never written early and re-read, which is
//!   precisely the IO the paper eliminates relative to GOTO.
//! * Surface sharing between consecutive blocks (same `(m,k)` => keep
//!   packed A; same `(k,n)` => keep packed B) skips redundant packing,
//!   mirroring the DRAM-level reuse the schedule was designed for.
//!
//! All workers traverse the schedule in lockstep with two barriers per
//! block: one so nobody repacks the shared B panel while another worker is
//! still computing on it, one so nobody computes on a partially packed
//! panel.

use std::sync::Barrier;

use cake_kernels::edge::run_tile;
use cake_kernels::pack::{packed_a_size, packed_b_size};
use cake_kernels::Ukr;
use cake_matrix::{Element, MatrixView, MatrixViewMut};

use crate::pool::ThreadPool;
use crate::schedule::{BlockGrid, KFirstSchedule};
use crate::shape::CbBlockShape;
use crate::shared::{OutPtr, SharedBuf};

/// Execution statistics for one CAKE GEMM call — observable evidence of
/// the schedule's surface reuse on the *real* executor (the simulator
/// measures the same quantities on the model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// CB blocks executed.
    pub blocks: usize,
    /// Blocks whose shared B panel was reused from the previous block
    /// (an M-step in the snake: same `(k, n)`).
    pub b_packs_skipped: usize,
    /// Blocks whose per-worker A strips were reused (an N-step: same
    /// `(m, k)`).
    pub a_packs_skipped: usize,
    /// Barrier synchronizations per worker (2 per block).
    pub barriers: usize,
}

/// Execute `C += A * B` with the CAKE CB-block schedule.
///
/// * `a` — `M x K` view, `b` — `K x N` view, `c` — `M x N` mutable view.
/// * `shape` — the CB block (`p`, `mc`, `kc`, `nc`); `shape.p` must equal
///   `pool.size()`.
/// * `ukr` — microkernel; `shape.mc` need not be a multiple of `mr` but
///   performance is best when it is.
///
/// # Panics
/// Panics on dimension mismatch between the operand views, or when
/// `pool.size() != shape.p`.
pub fn execute<T: Element>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T>,
    shape: &CbBlockShape,
    ukr: &Ukr<T>,
    pool: &ThreadPool,
) {
    let _ = execute_with_stats(a, b, c, shape, ukr, pool);
}

/// [`execute`], additionally returning per-call [`ExecStats`].
pub fn execute_with_stats<T: Element>(
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    c: &mut MatrixViewMut<'_, T>,
    shape: &CbBlockShape,
    ukr: &Ukr<T>,
    pool: &ThreadPool,
) -> ExecStats {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k, "A is {m}x{k} but B has {} rows", b.rows());
    assert_eq!(c.rows(), m, "C must have {m} rows, has {}", c.rows());
    assert_eq!(c.cols(), n, "C must have {n} cols, has {}", c.cols());
    assert_eq!(
        pool.size(),
        shape.p,
        "pool size {} != shape.p {}",
        pool.size(),
        shape.p
    );
    if m == 0 || n == 0 || k == 0 {
        return ExecStats::default();
    }

    let p = shape.p;
    let (mr, nr) = (ukr.mr(), ukr.nr());
    let (bm, bk, bn) = (shape.m_block(), shape.k_block(), shape.n_block());

    let grid = BlockGrid::for_problem(m, k, n, bm, bk, bn);
    let schedule = KFirstSchedule::new(grid, m, n);
    let nblocks = schedule.len();

    // Shared packed-B panel for the current block.
    let pb_cap = packed_b_size(bk, bn, nr);
    let packed_b = SharedBuf::<T>::zeroed(pb_cap);

    // One packed-A strip per worker, in a single allocation.
    let pa_stride = packed_a_size(shape.mc, bk, mr);
    let packed_a = SharedBuf::<T>::zeroed(pa_stride * p);

    let barrier = Barrier::new(p);
    // SAFETY: the pointer lives as long as `c`; workers write disjoint rows.
    let out = unsafe { OutPtr::new(c.ptr_at_mut(0, 0)) };
    let (rsc, csc) = (c.row_stride(), c.col_stride());

    pool.broadcast(|wid| {
        // Per-worker re-created schedule iterator (cheap: pure arithmetic).
        let sched = schedule.clone();
        let mut prev: Option<crate::schedule::BlockCoord> = None;

        for bi in 0..nblocks {
            let coord = sched.coord_at(bi);
            let (m0, k0, n0) = (coord.m * bm, coord.k * bk, coord.n * bn);
            let ml = bm.min(m - m0);
            let kl = bk.min(k - k0);
            let nl = bn.min(n - n0);

            let share_a = prev.is_some_and(|pc| pc.m == coord.m && pc.k == coord.k);
            let share_b = prev.is_some_and(|pc| pc.k == coord.k && pc.n == coord.n);
            prev = Some(coord);

            // Strip owned by this worker within the block's M extent.
            let strip0 = wid * shape.mc;
            let strip_len = if strip0 < ml { shape.mc.min(ml - strip0) } else { 0 };

            // Phase 1: everyone has finished computing on the previous
            // panels; safe to overwrite them.
            barrier.wait();

            if !share_b {
                // Cooperatively pack B slivers t = wid, wid+p, wid+2p, ...
                // Workers carve disjoint raw sub-slices out of the shared
                // buffer: no two `&mut` regions ever overlap.
                // Raw base pointer without forming a `&mut` (several workers
                // hold raw pointers into the buffer simultaneously).
                let pb_base = packed_b.base_ptr();
                let nslivers = nl.div_ceil(nr);
                let mut t = wid;
                while t < nslivers {
                    let col0 = n0 + t * nr;
                    let live = nr.min(n0 + nl - col0);
                    // SAFETY: sliver t occupies [t*nr*kl, (t+1)*nr*kl), within
                    // capacity since t < nslivers <= bn/nr and kl <= bk; sliver
                    // ranges of distinct t are disjoint and each t has one owner.
                    let sliver: &mut [T] =
                        unsafe { std::slice::from_raw_parts_mut(pb_base.add(t * nr * kl), nr * kl) };
                    for kk in 0..kl {
                        let dst = &mut sliver[kk * nr..(kk + 1) * nr];
                        // Fast path: row-major B rows copy as slices.
                        if let Some(src) = b.contiguous_row(k0 + kk, col0, live) {
                            dst[..live].copy_from_slice(src);
                            dst[live..].fill(T::ZERO);
                        } else {
                            for (j, d) in dst.iter_mut().enumerate() {
                                *d = if j < live {
                                    // SAFETY: k0+kk < k, col0+j < n.
                                    unsafe { b.get_unchecked(k0 + kk, col0 + j) }
                                } else {
                                    T::ZERO
                                };
                            }
                        }
                    }
                    t += p;
                }
            }

            if !share_a && strip_len > 0 {
                // Pack this worker's private A strip (k-major mr slivers).
                // SAFETY: each worker owns the disjoint range
                // [wid*pa_stride, (wid+1)*pa_stride) of the shared buffer.
                let pa: &mut [T] = unsafe {
                    std::slice::from_raw_parts_mut(
                        packed_a.base_ptr().add(wid * pa_stride),
                        pa_stride,
                    )
                };
                let nsliv = strip_len.div_ceil(mr);
                for s in 0..nsliv {
                    let row0 = m0 + strip0 + s * mr;
                    let live = mr.min(m0 + strip0 + strip_len - row0);
                    let base = s * mr * kl;
                    for kk in 0..kl {
                        let dst = &mut pa[base + kk * mr..base + (kk + 1) * mr];
                        for (i, d) in dst.iter_mut().enumerate() {
                            *d = if i < live {
                                // SAFETY: row0+i < m, k0+kk < k.
                                unsafe { a.get_unchecked(row0 + i, k0 + kk) }
                            } else {
                                T::ZERO
                            };
                        }
                    }
                }
            }

            // Phase 2: all packing complete; safe to read shared B.
            barrier.wait();

            if strip_len == 0 {
                continue; // edge block narrower than this worker's strip
            }

            // Read-only phase: raw pointers, no outstanding `&mut`.
            let pb_ptr = packed_b.base_ptr() as *const T;
            let pa_ptr = unsafe { packed_a.base_ptr().add(wid * pa_stride) as *const T };

            let a_slivers = strip_len.div_ceil(mr);
            let b_slivers = nl.div_ceil(nr);

            // A-stationary: keep one A sliver in registers/L1 while sweeping
            // the whole N extent of the block (paper: "each core sequentially
            // reusing one A tile with many B tiles").
            for s in 0..a_slivers {
                let mrows = mr.min(strip_len - s * mr);
                let row = m0 + strip0 + s * mr;
                for t in 0..b_slivers {
                    let ncols = nr.min(nl - t * nr);
                    let col = n0 + t * nr;
                    // SAFETY: packed slivers are zero-padded full tiles;
                    // C indices (row, col) + (mrows, ncols) are in bounds;
                    // each worker's rows are disjoint from all others'.
                    unsafe {
                        let cptr = out.get().add(row * rsc + col * csc);
                        run_tile(
                            ukr,
                            kl,
                            pa_ptr.add(s * mr * kl),
                            pb_ptr.add(t * nr * kl),
                            cptr,
                            rsc,
                            csc,
                            mrows,
                            ncols,
                        );
                    }
                }
            }
        }
    });

    // Statistics are a pure function of the schedule; tally them once.
    let mut stats = ExecStats {
        blocks: nblocks,
        barriers: 2 * nblocks,
        ..ExecStats::default()
    };
    let mut sprev: Option<crate::schedule::BlockCoord> = None;
    for bi in 0..nblocks {
        let coord = schedule.coord_at(bi);
        if let Some(pc) = sprev {
            if pc.m == coord.m && pc.k == coord.k {
                stats.a_packs_skipped += 1;
            }
            if pc.k == coord.k && pc.n == coord.n {
                stats.b_packs_skipped += 1;
            }
        }
        sprev = Some(coord);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cake_kernels::select::best_kernel;
    use cake_matrix::compare::assert_gemm_eq;
    use cake_matrix::{init, Matrix};

    fn reference(a: &Matrix<f32>, b: &Matrix<f32>, c: &mut Matrix<f32>) {
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = c.get(i, j) as f64;
                for kk in 0..a.cols() {
                    s += a.get(i, kk) as f64 * b.get(kk, j) as f64;
                }
                c.set(i, j, s as f32);
            }
        }
    }

    fn run_case(m: usize, k: usize, n: usize, p: usize, mc: usize, kc: usize, nc: usize) {
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);
        let mut c = init::random::<f32>(m, n, 3);
        let mut expected = c.clone();

        let shape = CbBlockShape::fixed(p, mc, kc, nc);
        let ukr = best_kernel::<f32>();
        let pool = ThreadPool::new(p);
        execute(&a.view(), &b.view(), &mut c.view_mut(), &shape, &ukr, &pool);

        reference(&a, &b, &mut expected);
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn single_core_exact_block_fit() {
        run_case(32, 32, 32, 1, 32, 32, 32);
    }

    #[test]
    fn single_core_many_blocks() {
        run_case(64, 48, 80, 1, 16, 16, 16);
    }

    #[test]
    fn multi_core_divisible() {
        run_case(64, 32, 64, 4, 16, 16, 32);
    }

    #[test]
    fn multi_core_ragged_edges() {
        run_case(61, 37, 53, 4, 16, 16, 32);
    }

    #[test]
    fn more_cores_than_rows_in_edge_blocks() {
        // Last M block has fewer rows than p*mc: some workers idle.
        run_case(20, 24, 24, 4, 8, 8, 16);
    }

    #[test]
    fn tall_skinny_and_wide_shapes() {
        run_case(128, 8, 16, 2, 16, 16, 16);
        run_case(16, 8, 128, 2, 16, 16, 16);
        run_case(8, 128, 8, 2, 16, 16, 16);
    }

    #[test]
    fn tiny_problems() {
        run_case(1, 1, 1, 1, 8, 8, 8);
        run_case(3, 2, 5, 2, 8, 8, 8);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = init::eye::<f32>(8, 8);
        let b = init::sequential::<f32>(8, 8);
        let mut c = init::ones::<f32>(8, 8);
        let shape = CbBlockShape::fixed(1, 8, 8, 8);
        let pool = ThreadPool::new(1);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        // C = 1 + I*B = 1 + B.
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(c.get(i, j), 1.0 + b.get(i, j));
            }
        }
    }

    #[test]
    fn zero_dims_are_noops() {
        let a = Matrix::<f32>::zeros(0, 4);
        let b = Matrix::<f32>::zeros(4, 4);
        let mut c = Matrix::<f32>::zeros(0, 4);
        let shape = CbBlockShape::fixed(2, 8, 8, 8);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );

        // K = 0: C unchanged.
        let a = init::random::<f32>(4, 0, 1);
        let b = init::random::<f32>(0, 4, 2);
        let mut c = init::ones::<f32>(4, 4);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        assert_eq!(c.sum_f64(), 16.0);
    }

    #[test]
    #[should_panic(expected = "pool size")]
    fn pool_shape_mismatch_panics() {
        let a = Matrix::<f32>::zeros(4, 4);
        let b = Matrix::<f32>::zeros(4, 4);
        let mut c = Matrix::<f32>::zeros(4, 4);
        let shape = CbBlockShape::fixed(2, 8, 8, 8);
        let pool = ThreadPool::new(3);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f32>::zeros(4, 5);
        let b = Matrix::<f32>::zeros(4, 4); // should be 5 rows
        let mut c = Matrix::<f32>::zeros(4, 4);
        let shape = CbBlockShape::fixed(1, 8, 8, 8);
        let pool = ThreadPool::new(1);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
    }

    #[test]
    fn f64_path_works() {
        let (m, k, n) = (40, 30, 50);
        let a = init::random::<f64>(m, k, 4);
        let b = init::random::<f64>(k, n, 5);
        let mut c = Matrix::<f64>::zeros(m, n);
        let shape = CbBlockShape::fixed(2, 12, 12, 24);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f64>(),
            &pool,
        );
        let mut expected = Matrix::<f64>::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                expected.set(i, j, s);
            }
        }
        assert_gemm_eq(&c, &expected, k);
    }

    #[test]
    fn column_major_output() {
        use cake_matrix::Layout;
        let (m, k, n) = (24, 16, 24);
        let a = init::random::<f32>(m, k, 6);
        let b = init::random::<f32>(k, n, 7);
        let mut c = Matrix::<f32>::zeros_with_layout(m, n, Layout::ColMajor);
        let shape = CbBlockShape::fixed(2, 8, 8, 16);
        let pool = ThreadPool::new(2);
        execute(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        let mut expected = Matrix::<f32>::zeros(m, n);
        reference(&a, &b, &mut expected);
        assert_gemm_eq(&c.to_layout(Layout::RowMajor), &expected, k);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use cake_kernels::select::best_kernel;
    use cake_matrix::{init, Matrix};

    fn run_stats(m: usize, k: usize, n: usize, p: usize, mc: usize, kc: usize, nc: usize) -> ExecStats {
        let a = init::random::<f32>(m, k, 1);
        let b = init::random::<f32>(k, n, 2);
        let mut c = Matrix::<f32>::zeros(m, n);
        let shape = CbBlockShape::fixed(p, mc, kc, nc);
        let pool = ThreadPool::new(p);
        execute_with_stats(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        )
    }

    #[test]
    fn stats_count_blocks_and_barriers() {
        // 2x3x2 block grid = 12 blocks.
        let s = run_stats(32, 48, 32, 1, 16, 16, 16);
        assert_eq!(s.blocks, 12);
        assert_eq!(s.barriers, 24);
    }

    #[test]
    fn snake_reuse_shows_up_in_skip_counts() {
        // Grid (mb=2, kb=3, nb=2), N-outer: transitions = 11 total.
        // M-steps (same k,n): 2 (one per n stripe) -> B skipped twice.
        // N-steps (same m,k): 1 -> A skipped once.
        let s = run_stats(32, 48, 32, 1, 16, 16, 16);
        assert_eq!(s.b_packs_skipped, 2);
        assert_eq!(s.a_packs_skipped, 1);
    }

    #[test]
    fn single_block_has_no_skips() {
        let s = run_stats(16, 16, 16, 1, 16, 16, 16);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.a_packs_skipped + s.b_packs_skipped, 0);
    }

    #[test]
    fn empty_problem_zero_stats() {
        let a = Matrix::<f32>::zeros(0, 4);
        let b = Matrix::<f32>::zeros(4, 4);
        let mut c = Matrix::<f32>::zeros(0, 4);
        let shape = CbBlockShape::fixed(1, 8, 8, 8);
        let pool = ThreadPool::new(1);
        let s = execute_with_stats(
            &a.view(),
            &b.view(),
            &mut c.view_mut(),
            &shape,
            &best_kernel::<f32>(),
            &pool,
        );
        assert_eq!(s, ExecStats::default());
    }

    #[test]
    fn every_transition_skips_at_most_one_pack_kind() {
        let s = run_stats(48, 48, 48, 2, 8, 16, 16);
        // Each of the blocks-1 transitions shares exactly one surface; C
        // shares (K-steps) skip neither pack.
        assert!(s.a_packs_skipped + s.b_packs_skipped < s.blocks);
    }
}
