//! The B-panel ring: a deterministic LRU cache of `(k, n)` block surfaces.
//!
//! The pipelined executor double-buffers the LLC-resident B panel and
//! generalizes the pair to a small **ring** of `ring_depth(kb)` panels.
//! Which panel is live, which gets packed, and which rotation is a cache
//! hit is decided by [`PanelCache`] — a pure function of the block
//! schedule, so every worker replays an identical copy and all agree
//! without communicating.
//!
//! The module is public so external verifiers (the `cake-verify` crate)
//! can replay the *exact* state machine the executor runs: the ring-aware
//! traffic oracle ([`crate::traffic::dram_traffic_with_panel_ring`]) and
//! the deterministic interleaving harness both consume it directly rather
//! than re-deriving an approximation that could drift from the real code.

/// B panels in the executor's ring for a problem with `kb` k-blocks:
/// `kb` panels — enough to make every snake reversal a cache hit — but
/// never fewer than two (the pipelining floor) and capped at
/// [`crate::workspace::MAX_B_PANELS`] so the LLC footprint stays small.
pub fn ring_depth(kb: usize) -> usize {
    kb.clamp(2, crate::workspace::MAX_B_PANELS)
}

/// What the B-panel ring does for the next block's `(k, n)` surface.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PanelAction {
    /// The live panel already holds it (adjacency share): no rotation.
    Keep,
    /// Another ring panel holds it (cache hit): rotate to it, no pack.
    Rotate(usize),
    /// Nowhere resident (miss): pack into this panel and rotate to it.
    Pack(usize),
}

/// Deterministic LRU cache over the B panel ring, keyed by `(k, n)` block
/// surface. Every worker advances an identical copy (the state is a pure
/// function of the schedule), so all workers agree on which panel to read,
/// which to fill, and — crucially for safety — the pack target is never the
/// panel currently being computed from.
///
/// The ring state is inline fixed-size storage (the ring is capped at
/// [`MAX_B_PANELS`](crate::workspace::MAX_B_PANELS) anyway), so creating a
/// `PanelCache` per worker per GEMM call performs **no heap allocation** —
/// the executor's warm path stays allocation-free, which `cake-audit`'s
/// alloc-freedom pass proves statically.
#[derive(Clone, Copy, Debug)]
pub struct PanelCache {
    /// Which `(k, n)` surface each panel holds.
    tags: [Option<(usize, usize)>; crate::workspace::MAX_B_PANELS],
    /// Logical time of each panel's last use (0 = never touched).
    last_use: [u32; crate::workspace::MAX_B_PANELS],
    /// Panels actually in use (`2..=MAX_B_PANELS`).
    depth: usize,
    /// The live panel: the one the current block computes from.
    cur: usize,
    clock: u32,
}

impl PanelCache {
    /// An empty ring of `n_panels` panels (at least 2 for evictions to
    /// have a victim distinct from the live panel, at most
    /// [`MAX_B_PANELS`](crate::workspace::MAX_B_PANELS)).
    ///
    /// # Panics
    /// Panics when `n_panels` is outside `2..=MAX_B_PANELS`.
    pub fn new(n_panels: usize) -> Self {
        // audit: cold constructor precondition, outside the block loop;
        // every executor call site passes ring_depth(..) which clamps into
        // range
        assert!(
            (2..=crate::workspace::MAX_B_PANELS).contains(&n_panels),
            "panel ring depth {n_panels} outside 2..={}",
            crate::workspace::MAX_B_PANELS
        );
        Self {
            tags: [None; crate::workspace::MAX_B_PANELS],
            last_use: [0; crate::workspace::MAX_B_PANELS],
            depth: n_panels,
            cur: 0,
            clock: 0,
        }
    }

    /// Seed the ring with block 0's surface in panel 0 (the prologue pack).
    pub fn seed(&mut self, want: (usize, usize)) {
        self.clock += 1;
        // audit: checked index 0 of a ring whose depth is always >= 2
        self.tags[0] = Some(want);
        // audit: checked same in-range slot as the tag write above
        self.last_use[0] = self.clock;
        self.cur = 0;
    }

    /// Decide how the next block's surface is served and rotate the ring.
    pub fn advance(&mut self, want: (usize, usize)) -> PanelAction {
        self.clock += 1;
        // audit: checked cur is always a prior in-range slot (< depth)
        if self.tags[self.cur] == Some(want) {
            // audit: checked same in-range cur slot as the tag probe above
            self.last_use[self.cur] = self.clock;
            return PanelAction::Keep;
        }
        // audit: checked slice bounded by depth <= MAX_B_PANELS (ctor assert)
        if let Some(j) = self.tags[..self.depth].iter().position(|t| *t == Some(want)) {
            // audit: checked j is a position within tags[..depth]
            self.last_use[j] = self.clock;
            self.cur = j;
            return PanelAction::Rotate(j);
        }
        // Evict the least-recently-used panel that is NOT the live one —
        // workers may still be computing from `cur` while this pack runs.
        // audit: checked the filter over 0..depth with depth >= 2 always
        // leaves at least one candidate, so min_by_key is never None
        let victim = (0..self.depth)
            .filter(|&j| j != self.cur)
            // audit: checked j drawn from 0..depth
            .min_by_key(|&j| self.last_use[j])
            // audit: checked the j != cur filter with depth >= 2 leaves a candidate
            .expect("ring has >= 2 panels");
        // audit: checked victim drawn from 0..depth
        self.tags[victim] = Some(want);
        // audit: checked victim drawn from 0..depth
        self.last_use[victim] = self.clock;
        self.cur = victim;
        PanelAction::Pack(victim)
    }

    /// Index of the live panel (the one the current block computes from).
    pub fn cur(&self) -> usize {
        self.cur
    }

    /// Number of panels in the ring.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The `(k, n)` surface currently held by panel `j`, if any.
    pub fn tag(&self, j: usize) -> Option<(usize, usize)> {
        self.tags[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_depth_is_clamped() {
        assert_eq!(ring_depth(0), 2);
        assert_eq!(ring_depth(1), 2);
        assert_eq!(ring_depth(2), 2);
        assert_eq!(ring_depth(3), 3);
        assert_eq!(ring_depth(4), 4);
        assert_eq!(ring_depth(100), crate::workspace::MAX_B_PANELS);
    }

    #[test]
    fn adjacency_share_keeps_live_panel() {
        let mut c = PanelCache::new(2);
        c.seed((0, 0));
        assert_eq!(c.advance((0, 0)), PanelAction::Keep);
        assert_eq!(c.cur(), 0);
    }

    #[test]
    fn miss_packs_a_non_live_panel() {
        let mut c = PanelCache::new(3);
        c.seed((0, 0));
        let PanelAction::Pack(v) = c.advance((1, 0)) else {
            panic!("distinct surface must miss");
        };
        assert_ne!(v, 0, "victim must not be the panel being read");
        assert_eq!(c.cur(), v);
    }

    #[test]
    fn snake_reversal_hits_the_ring() {
        // k = 0, 1, 1, 0: the reversal back to k=0 finds panel 0 resident.
        let mut c = PanelCache::new(2);
        c.seed((0, 0));
        assert!(matches!(c.advance((1, 0)), PanelAction::Pack(_)));
        assert_eq!(c.advance((1, 0)), PanelAction::Keep);
        assert_eq!(c.advance((0, 0)), PanelAction::Rotate(0));
    }

    #[test]
    fn lru_evicts_oldest_among_non_live() {
        let mut c = PanelCache::new(3);
        c.seed((0, 0)); // panel 0
        assert!(matches!(c.advance((1, 0)), PanelAction::Pack(1)));
        assert!(matches!(c.advance((2, 0)), PanelAction::Pack(2)));
        // All panels full; live = 2. LRU among {0, 1} is 0.
        assert!(matches!(c.advance((3, 0)), PanelAction::Pack(0)));
        assert_eq!(c.tag(0), Some((3, 0)));
        assert_eq!(c.tag(1), Some((1, 0)));
    }

    #[test]
    fn pack_victim_is_never_live_under_any_workload() {
        // Pseudo-random surface stream: the invariant the interleaving
        // harness depends on must hold unconditionally.
        let mut c = PanelCache::new(3);
        c.seed((0, 0));
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let before = c.cur();
            if let PanelAction::Pack(v) = c.advance(((x % 5) as usize, ((x >> 8) % 5) as usize)) {
                assert_ne!(v, before, "pack target may never be the panel being read");
            }
        }
    }
}
