//! The B-panel ring: a deterministic LRU cache of `(k, n)` block surfaces.
//!
//! The pipelined executor double-buffers the LLC-resident B panel and
//! generalizes the pair to a small **ring** of `ring_depth(kb)` panels.
//! Which panel is live, which gets packed, and which rotation is a cache
//! hit is decided by [`PanelCache`] — a pure function of the block
//! schedule, so every worker replays an identical copy and all agree
//! without communicating.
//!
//! The module is public so external verifiers (the `cake-verify` crate)
//! can replay the *exact* state machine the executor runs: the ring-aware
//! traffic oracle ([`crate::traffic::dram_traffic_with_panel_ring`]) and
//! the deterministic interleaving harness both consume it directly rather
//! than re-deriving an approximation that could drift from the real code.

/// B panels in the executor's ring for a problem with `kb` k-blocks:
/// `kb` panels — enough to make every snake reversal a cache hit — but
/// never fewer than two (the pipelining floor) and capped at
/// [`crate::workspace::MAX_B_PANELS`] so the LLC footprint stays small.
pub fn ring_depth(kb: usize) -> usize {
    kb.clamp(2, crate::workspace::MAX_B_PANELS)
}

/// What the B-panel ring does for the next block's `(k, n)` surface.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PanelAction {
    /// The live panel already holds it (adjacency share): no rotation.
    Keep,
    /// Another ring panel holds it (cache hit): rotate to it, no pack.
    Rotate(usize),
    /// Nowhere resident (miss): pack into this panel and rotate to it.
    Pack(usize),
}

/// Deterministic LRU cache over the B panel ring, keyed by `(k, n)` block
/// surface. Every worker advances an identical copy (the state is a pure
/// function of the schedule), so all workers agree on which panel to read,
/// which to fill, and — crucially for safety — the pack target is never the
/// panel currently being computed from.
#[derive(Clone, Debug)]
pub struct PanelCache {
    /// Which `(k, n)` surface each panel holds.
    tags: Vec<Option<(usize, usize)>>,
    /// Logical time of each panel's last use (0 = never touched).
    last_use: Vec<u32>,
    /// The live panel: the one the current block computes from.
    cur: usize,
    clock: u32,
}

impl PanelCache {
    /// An empty ring of `n_panels` panels (at least 2 for evictions to
    /// have a victim distinct from the live panel).
    pub fn new(n_panels: usize) -> Self {
        Self {
            tags: vec![None; n_panels],
            last_use: vec![0; n_panels],
            cur: 0,
            clock: 0,
        }
    }

    /// Seed the ring with block 0's surface in panel 0 (the prologue pack).
    pub fn seed(&mut self, want: (usize, usize)) {
        self.clock += 1;
        self.tags[0] = Some(want);
        self.last_use[0] = self.clock;
        self.cur = 0;
    }

    /// Decide how the next block's surface is served and rotate the ring.
    pub fn advance(&mut self, want: (usize, usize)) -> PanelAction {
        self.clock += 1;
        if self.tags[self.cur] == Some(want) {
            self.last_use[self.cur] = self.clock;
            return PanelAction::Keep;
        }
        if let Some(j) = self.tags.iter().position(|t| *t == Some(want)) {
            self.last_use[j] = self.clock;
            self.cur = j;
            return PanelAction::Rotate(j);
        }
        // Evict the least-recently-used panel that is NOT the live one —
        // workers may still be computing from `cur` while this pack runs.
        let victim = (0..self.tags.len())
            .filter(|&j| j != self.cur)
            .min_by_key(|&j| self.last_use[j])
            .expect("ring has >= 2 panels");
        self.tags[victim] = Some(want);
        self.last_use[victim] = self.clock;
        self.cur = victim;
        PanelAction::Pack(victim)
    }

    /// Index of the live panel (the one the current block computes from).
    pub fn cur(&self) -> usize {
        self.cur
    }

    /// Number of panels in the ring.
    pub fn depth(&self) -> usize {
        self.tags.len()
    }

    /// The `(k, n)` surface currently held by panel `j`, if any.
    pub fn tag(&self, j: usize) -> Option<(usize, usize)> {
        self.tags[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_depth_is_clamped() {
        assert_eq!(ring_depth(0), 2);
        assert_eq!(ring_depth(1), 2);
        assert_eq!(ring_depth(2), 2);
        assert_eq!(ring_depth(3), 3);
        assert_eq!(ring_depth(4), 4);
        assert_eq!(ring_depth(100), crate::workspace::MAX_B_PANELS);
    }

    #[test]
    fn adjacency_share_keeps_live_panel() {
        let mut c = PanelCache::new(2);
        c.seed((0, 0));
        assert_eq!(c.advance((0, 0)), PanelAction::Keep);
        assert_eq!(c.cur(), 0);
    }

    #[test]
    fn miss_packs_a_non_live_panel() {
        let mut c = PanelCache::new(3);
        c.seed((0, 0));
        let PanelAction::Pack(v) = c.advance((1, 0)) else {
            panic!("distinct surface must miss");
        };
        assert_ne!(v, 0, "victim must not be the panel being read");
        assert_eq!(c.cur(), v);
    }

    #[test]
    fn snake_reversal_hits_the_ring() {
        // k = 0, 1, 1, 0: the reversal back to k=0 finds panel 0 resident.
        let mut c = PanelCache::new(2);
        c.seed((0, 0));
        assert!(matches!(c.advance((1, 0)), PanelAction::Pack(_)));
        assert_eq!(c.advance((1, 0)), PanelAction::Keep);
        assert_eq!(c.advance((0, 0)), PanelAction::Rotate(0));
    }

    #[test]
    fn lru_evicts_oldest_among_non_live() {
        let mut c = PanelCache::new(3);
        c.seed((0, 0)); // panel 0
        assert!(matches!(c.advance((1, 0)), PanelAction::Pack(1)));
        assert!(matches!(c.advance((2, 0)), PanelAction::Pack(2)));
        // All panels full; live = 2. LRU among {0, 1} is 0.
        assert!(matches!(c.advance((3, 0)), PanelAction::Pack(0)));
        assert_eq!(c.tag(0), Some((3, 0)));
        assert_eq!(c.tag(1), Some((1, 0)));
    }

    #[test]
    fn pack_victim_is_never_live_under_any_workload() {
        // Pseudo-random surface stream: the invariant the interleaving
        // harness depends on must hold unconditionally.
        let mut c = PanelCache::new(3);
        c.seed((0, 0));
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let before = c.cur();
            if let PanelAction::Pack(v) = c.advance(((x % 5) as usize, ((x >> 8) % 5) as usize)) {
                assert_ne!(v, before, "pack target may never be the panel being read");
            }
        }
    }
}
